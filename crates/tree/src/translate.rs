//! The `wdpf` translation (§2.1): well-designed graph patterns → pattern
//! trees/forests, and back.
//!
//! A UNION-free well-designed pattern goes to a wdPT by the standard
//! OPT-normal-form construction:
//!
//! * a triple pattern becomes a single-node tree,
//! * `P1 AND P2` merges the roots and concatenates the children,
//! * `P1 OPT P2` appends the tree of `P2` as a new child of `P1`'s root,
//!
//! followed by NR normalisation. A general well-designed pattern
//! `P1 UNION ··· UNION Pm` becomes the forest of its branch trees.

use crate::wdpt::{NodeId, Wdpt};
use std::fmt;
use wdsparql_algebra::{check_well_designed, GraphPattern, WdViolation};
use wdsparql_hom::TGraph;

/// Errors of the `wdpf` translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// The input is not well-designed.
    NotWellDesigned(WdViolation),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotWellDesigned(v) => write!(f, "not well-designed: {v}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Intermediate recursive tree used during translation.
struct Spec {
    pat: TGraph,
    children: Vec<Spec>,
}

fn build_spec(p: &GraphPattern) -> Spec {
    match p {
        GraphPattern::Triple(t) => Spec {
            pat: TGraph::from_patterns([*t]),
            children: Vec::new(),
        },
        GraphPattern::And(l, r) => {
            let mut ls = build_spec(l);
            let rs = build_spec(r);
            ls.pat = ls.pat.union(&rs.pat);
            ls.children.extend(rs.children);
            ls
        }
        GraphPattern::Opt(l, r) => {
            let mut ls = build_spec(l);
            ls.children.push(build_spec(r));
            ls
        }
        GraphPattern::Union(_, _) => {
            unreachable!("UNION is split off before tree construction")
        }
    }
}

fn spec_into_wdpt(spec: Spec) -> Wdpt {
    let mut t = Wdpt::new(spec.pat);
    fn attach(t: &mut Wdpt, parent: NodeId, children: Vec<Spec>) {
        for c in children {
            let id = t.add_child(parent, c.pat);
            attach(t, id, c.children);
        }
    }
    let root = t.root();
    attach(&mut t, root, spec.children);
    t
}

/// Translates a UNION-free well-designed pattern into an equivalent wdPT in
/// NR normal form.
pub fn wdpt_from_pattern(p: &GraphPattern) -> Result<Wdpt, TranslateError> {
    check_well_designed(p).map_err(TranslateError::NotWellDesigned)?;
    if !p.is_union_free() {
        // Top-level UNION with more than one branch: not a single tree.
        return Err(TranslateError::NotWellDesigned(
            WdViolation::UnionNotTopLevel,
        ));
    }
    let mut t = spec_into_wdpt(build_spec(p));
    t.nr_normalize();
    t.validate()
        .expect("translation of a well-designed pattern satisfies the wdPT invariants");
    Ok(t)
}

/// A well-designed pattern forest (wdPF): a finite set of wdPTs.
#[derive(Clone, Debug)]
pub struct Wdpf {
    pub trees: Vec<Wdpt>,
}

impl Wdpf {
    pub fn new(trees: Vec<Wdpt>) -> Wdpf {
        Wdpf { trees }
    }

    /// The paper's polynomial-time `wdpf(P)` function: UNION branches →
    /// trees.
    pub fn from_pattern(p: &GraphPattern) -> Result<Wdpf, TranslateError> {
        check_well_designed(p).map_err(TranslateError::NotWellDesigned)?;
        let branches = p
            .union_branches()
            .expect("well-designed patterns are in UNION normal form");
        let trees = branches
            .into_iter()
            .map(wdpt_from_pattern)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Wdpf { trees })
    }

    pub fn len(&self) -> usize {
        self.trees.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Wdpt> {
        self.trees.iter()
    }
}

impl fmt::Display for Wdpf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.trees.iter().enumerate() {
            writeln!(f, "T{}:", i + 1)?;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// The inverse translation: a wdPT back to an equivalent graph pattern
/// (`pat(n)` as an AND chain, children nested via OPT).
///
/// Panics if some node label is empty (hand-built degenerate trees).
pub fn pattern_from_wdpt(t: &Wdpt) -> GraphPattern {
    fn node_pattern(t: &Wdpt, n: NodeId) -> GraphPattern {
        let mut acc = GraphPattern::and_all(t.pat(n).iter().copied());
        for &c in t.children(n) {
            acc = GraphPattern::opt(acc, node_pattern(t, c));
        }
        acc
    }
    node_pattern(t, t.root())
}

/// The inverse translation for forests (top-level UNION).
pub fn pattern_from_wdpf(f: &Wdpf) -> GraphPattern {
    GraphPattern::union_all(f.trees.iter().map(pattern_from_wdpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wdpt::ROOT;
    use wdsparql_algebra::{eval, parse_pattern};
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, RdfGraph};

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    #[test]
    fn example2_forest_shape() {
        // P = P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z)))
        // wdpf(P) = {T1, T2} from Figure 2 with k = 2.
        let p = parse_pattern(
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2))) \
             UNION ((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))",
        )
        .unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        assert_eq!(f.len(), 2);

        let t1 = &f.trees[0];
        assert_eq!(t1.len(), 3);
        assert_eq!(t1.pat(ROOT), &tg(&[("?x", "p", "?y")]));
        let kids = t1.children(ROOT);
        assert_eq!(t1.pat(kids[0]), &tg(&[("?z", "q", "?x")]));
        assert_eq!(
            t1.pat(kids[1]),
            &tg(&[("?y", "r", "?o1"), ("?o1", "r", "?o2")])
        );

        let t2 = &f.trees[1];
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.pat(ROOT), &tg(&[("?x", "p", "?y")]));
        assert_eq!(
            t2.pat(t2.children(ROOT)[0]),
            &tg(&[("?z", "q", "?x"), ("?w", "q", "?z")])
        );
    }

    #[test]
    fn and_under_opt_merges_roots() {
        // ((A OPT B) AND C) — root is A ∪ C.
        let p = parse_pattern("((?x, p, ?y) OPT (?y, q, ?z)) AND (?x, r, ?w)").unwrap();
        let t = wdpt_from_pattern(&p).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.pat(ROOT), &tg(&[("?x", "p", "?y"), ("?x", "r", "?w")]));
    }

    #[test]
    fn not_well_designed_is_rejected() {
        let p = parse_pattern("((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2))")
            .unwrap();
        assert!(matches!(
            wdpt_from_pattern(&p),
            Err(TranslateError::NotWellDesigned(_))
        ));
        assert!(Wdpf::from_pattern(&p).is_err());
    }

    #[test]
    fn union_pattern_is_not_a_single_tree() {
        let p = parse_pattern("(?x, p, ?y) UNION (?x, q, ?y)").unwrap();
        assert!(wdpt_from_pattern(&p).is_err());
        assert_eq!(Wdpf::from_pattern(&p).unwrap().len(), 2);
    }

    #[test]
    fn translation_produces_nr_normal_form() {
        // (A OPT B) where B adds no fresh variable — the child disappears.
        let p = parse_pattern("(?x, p, ?y) OPT (?y, q, ?x)").unwrap();
        let t = wdpt_from_pattern(&p).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.is_nr_normal_form());
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
            ("w0", "q", "z0"),
        ]);
        for text in [
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
            "((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))",
            "((?x, p, ?y) AND (?y, r, ?o1))",
            "((?x, p, ?y) OPT (?y, q, ?x))",
            "(((?x, p, ?y) OPT (?z, q, ?x)) AND (?y, r, ?o1))",
        ] {
            let p = parse_pattern(text).unwrap();
            let t = wdpt_from_pattern(&p).unwrap();
            let back = pattern_from_wdpt(&t);
            assert_eq!(
                eval(&p, &g),
                eval(&back, &g),
                "semantics changed for {text}"
            );
        }
    }

    #[test]
    fn forest_roundtrip_preserves_semantics() {
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("w0", "q", "z0"),
        ]);
        let p = parse_pattern(
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2))) \
             UNION ((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))",
        )
        .unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        let back = pattern_from_wdpf(&f);
        assert_eq!(eval(&p, &g), eval(&back, &g));
    }

    #[test]
    fn nr_normalisation_preserves_semantics_via_patterns() {
        // A filter node with a child: ((A OPT B) with B redundant but
        // carrying a child C). Built by hand, normalised, compared through
        // the inverse translation.
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let b = t.add_child(ROOT, tg(&[("?y", "q", "?x")]));
        t.add_child(b, tg(&[("?x", "r", "?w")]));
        let before = pattern_from_wdpt(&t);
        let mut t2 = t.clone();
        t2.nr_normalize();
        let after = pattern_from_wdpt(&t2);
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "q", "a"),
            ("a", "r", "c"),
            ("e", "p", "f"),
            ("f", "q", "e"),
            ("g", "p", "h"),
        ]);
        assert_eq!(eval(&before, &g), eval(&after, &g));
    }
}
