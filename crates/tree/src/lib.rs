//! # wdsparql-tree
//!
//! Well-designed pattern trees (wdPTs) and forests (wdPFs) — the tree
//! representation of well-designed AND/OPT/UNION patterns (§2.1 of the
//! paper): construction, validation (connectedness condition, NR normal
//! form), the `wdpf` translation and its inverse, and subtree machinery
//! (supports, subtree children) used by the width measures and evaluators.

#![forbid(unsafe_code)]

pub mod subtree;
pub mod translate;
pub mod wdpt;

pub use subtree::{
    enumerate_subtrees, is_valid_subtree, maximal_subtree_within, root_subtree, subtree_children,
    subtree_pat, subtree_vars, subtree_with_vars, Subtree,
};
pub use translate::{
    pattern_from_wdpf, pattern_from_wdpt, wdpt_from_pattern, TranslateError, Wdpf,
};
pub use wdpt::{NodeId, TreeError, Wdpt, ROOT};
