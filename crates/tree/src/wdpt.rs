//! Well-designed pattern trees (wdPTs, §2.1).
//!
//! A wdPT is a rooted tree whose nodes carry t-graphs; the tree structure
//! records the nesting of OPT operators. Invariants:
//!
//! 1. rooted tree (node 0 is always the root here),
//! 2. each node is labelled with a t-graph,
//! 3. for every variable, the nodes whose label mentions it induce a
//!    connected subgraph of the tree,
//!
//! plus, throughout the paper (and enforced by [`Wdpt::nr_normalize`]):
//! NR normal form — every non-root node has a variable not in its parent.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wdsparql_hom::TGraph;
use wdsparql_rdf::Variable;

/// Index of a node inside its [`Wdpt`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// The root node id.
pub const ROOT: NodeId = NodeId(0);

#[derive(Clone, Debug)]
struct Node {
    pat: TGraph,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A well-designed pattern tree.
#[derive(Clone)]
pub struct Wdpt {
    nodes: Vec<Node>,
}

/// Structural errors detected by [`Wdpt::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// Condition (3) fails: the occurrences of the variable do not induce a
    /// connected subgraph of the tree.
    DisconnectedVariable(Variable),
    /// NR normal form fails at the node: it adds no fresh variable.
    NotNrNormalForm(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DisconnectedVariable(v) => {
                write!(f, "occurrences of {v} are not connected in the tree")
            }
            TreeError::NotNrNormalForm(n) => {
                write!(f, "node {} adds no fresh variable (not NR)", n.0)
            }
        }
    }
}

impl std::error::Error for TreeError {}

impl Wdpt {
    /// Creates a tree with only a root labelled `pat`.
    pub fn new(pat: TGraph) -> Wdpt {
        Wdpt {
            nodes: vec![Node {
                pat,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child of `parent` labelled `pat`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, pat: TGraph) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "no such parent");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            pat,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    pub fn root(&self) -> NodeId {
        ROOT
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a wdPT always has a root
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// `pat(n)`.
    pub fn pat(&self, n: NodeId) -> &TGraph {
        &self.nodes[n.0].pat
    }

    /// `vars(n)`.
    pub fn vars(&self, n: NodeId) -> BTreeSet<Variable> {
        self.nodes[n.0].pat.vars()
    }

    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.0].parent
    }

    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.0].children
    }

    /// `pat(T)`: the union of all node labels.
    pub fn pat_tree(&self) -> TGraph {
        let mut out = TGraph::new();
        for n in &self.nodes {
            out = out.union(&n.pat);
        }
        out
    }

    /// `vars(T)`.
    pub fn vars_tree(&self) -> BTreeSet<Variable> {
        self.pat_tree().vars()
    }

    /// The nodes on the path from the root to `n`, inclusive.
    pub fn path_from_root(&self, n: NodeId) -> Vec<NodeId> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// The *branch* `B_n` of `n`: the nodes on the path from the root to the
    /// parent of `n` (§3.2). `B_root = ∅`.
    pub fn branch(&self, n: NodeId) -> Vec<NodeId> {
        match self.parent(n) {
            None => Vec::new(),
            Some(p) => self.path_from_root(p),
        }
    }

    /// Checks condition (3) and NR normal form.
    pub fn validate(&self) -> Result<(), TreeError> {
        self.check_connectedness()?;
        for n in self.node_ids() {
            if let Some(p) = self.parent(n) {
                if self.vars(n).is_subset(&self.vars(p)) {
                    return Err(TreeError::NotNrNormalForm(n));
                }
            }
        }
        Ok(())
    }

    /// Checks only condition (3) (variable-occurrence connectedness).
    pub fn check_connectedness(&self) -> Result<(), TreeError> {
        let mut holders: BTreeMap<Variable, Vec<NodeId>> = BTreeMap::new();
        for n in self.node_ids() {
            for v in self.vars(n) {
                holders.entry(v).or_default().push(n);
            }
        }
        for (v, nodes) in holders {
            if nodes.len() <= 1 {
                continue;
            }
            let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
            // BFS within the holder set starting from the holder closest to
            // the root (holders form a connected subtree iff every holder's
            // parent chain reaches the top holder within the set).
            let mut seen: BTreeSet<NodeId> = BTreeSet::new();
            let start = nodes[0];
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(cur) = stack.pop() {
                let mut nbrs: Vec<NodeId> = self.children(cur).to_vec();
                if let Some(p) = self.parent(cur) {
                    nbrs.push(p);
                }
                for nb in nbrs {
                    if set.contains(&nb) && seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
            if seen.len() != set.len() {
                return Err(TreeError::DisconnectedVariable(v));
            }
        }
        Ok(())
    }

    /// Is the tree in NR normal form?
    pub fn is_nr_normal_form(&self) -> bool {
        self.node_ids().all(|n| match self.parent(n) {
            None => true,
            Some(p) => !self.vars(n).is_subset(&self.vars(p)),
        })
    }

    /// Rewrites the tree into NR normal form, preserving `⟦T⟧_G`
    /// (Letelier et al.): while some non-root node `n` adds no variable
    /// over its parent, delete `n`, add `pat(n)` into each of `n`'s
    /// children, and attach those children to `n`'s parent.
    pub fn nr_normalize(&mut self) {
        loop {
            let Some(bad) = self.node_ids().find(|&n| match self.parent(n) {
                None => false,
                Some(p) => self.vars(n).is_subset(&self.vars(p)),
            }) else {
                break;
            };
            self.remove_and_merge(bad);
        }
    }

    /// Removes node `bad` (non-root), pushing its label into its children
    /// and reattaching them to its parent. Rebuilds the node arena to keep
    /// ids dense.
    fn remove_and_merge(&mut self, bad: NodeId) {
        let parent = self.parent(bad).expect("cannot remove the root");
        let bad_pat = self.nodes[bad.0].pat.clone();
        let bad_children = self.nodes[bad.0].children.clone();
        // Merge label into children and reparent them.
        for &c in &bad_children {
            self.nodes[c.0].pat = self.nodes[c.0].pat.union(&bad_pat);
            self.nodes[c.0].parent = Some(parent);
        }
        // Replace `bad` in parent's child list by bad's children, keeping
        // sibling order stable.
        let pos = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == bad)
            .expect("parent lists its child");
        self.nodes[parent.0]
            .children
            .splice(pos..=pos, bad_children.iter().copied());
        // Compact the arena: shift every id above `bad` down by one.
        self.nodes.remove(bad.0);
        let fix = |id: &mut NodeId| {
            if id.0 > bad.0 {
                id.0 -= 1;
            }
        };
        for node in &mut self.nodes {
            if let Some(ref mut p) = node.parent {
                fix(p);
            }
            for c in &mut node.children {
                fix(c);
            }
        }
    }

    /// Renders the tree with indentation, root first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(ROOT, 0, &mut out);
        out
    }

    fn render_node(&self, n: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{}\n", self.pat(n)));
        for &c in self.children(n) {
            self.render_node(c, depth + 1, out);
        }
    }
}

impl fmt::Display for Wdpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl fmt::Debug for Wdpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn build_and_navigate() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        let b = t.add_child(a, tg(&[("?z", "r", "?w")]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.parent(b), Some(a));
        assert_eq!(t.children(ROOT), &[a]);
        assert_eq!(t.path_from_root(b), vec![ROOT, a, b]);
        assert_eq!(t.branch(b), vec![ROOT, a]);
        assert!(t.branch(ROOT).is_empty());
        assert_eq!(t.pat_tree().len(), 3);
        assert_eq!(
            t.vars_tree(),
            [v("x"), v("y"), v("z"), v("w")].into_iter().collect()
        );
    }

    #[test]
    fn validate_accepts_good_tree() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        t.add_child(a, tg(&[("?z", "r", "?w")]));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_disconnected_variable() {
        // ?w occurs at the root and in a grandchild but not the child.
        let mut t = Wdpt::new(tg(&[("?x", "p", "?w")]));
        let a = t.add_child(ROOT, tg(&[("?x", "q", "?z")]));
        t.add_child(a, tg(&[("?z", "r", "?w")]));
        assert_eq!(
            t.check_connectedness(),
            Err(TreeError::DisconnectedVariable(v("w")))
        );
    }

    #[test]
    fn validate_catches_nr_violation() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?x")])); // no fresh var
        assert_eq!(t.validate(), Err(TreeError::NotNrNormalForm(a)));
        assert!(!t.is_nr_normal_form());
    }

    #[test]
    fn nr_normalize_deletes_childless_filter_node() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        t.add_child(ROOT, tg(&[("?y", "q", "?x")]));
        t.nr_normalize();
        assert_eq!(t.len(), 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn nr_normalize_merges_label_into_children() {
        // root {x p y} -> n {y q x} -> m {x r ?w}
        // n adds no fresh var; after normalisation m's label must contain
        // n's triple and hang off the root.
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let n = t.add_child(ROOT, tg(&[("?y", "q", "?x")]));
        t.add_child(n, tg(&[("?x", "r", "?w")]));
        t.nr_normalize();
        assert_eq!(t.len(), 2);
        let child = t.children(ROOT)[0];
        assert_eq!(t.pat(child), &tg(&[("?y", "q", "?x"), ("?x", "r", "?w")]));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn nr_normalize_cascades() {
        // Two stacked filter nodes collapse into the grandchild.
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let n1 = t.add_child(ROOT, tg(&[("?y", "q", "?x")]));
        let n2 = t.add_child(n1, tg(&[("?x", "q", "?y")]));
        t.add_child(n2, tg(&[("?y", "r", "?w")]));
        t.nr_normalize();
        assert_eq!(t.len(), 2);
        let child = t.children(ROOT)[0];
        assert_eq!(t.pat(child).len(), 3);
        assert!(t.is_nr_normal_form());
    }

    #[test]
    fn nr_normalize_preserves_sibling_order() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        t.add_child(ROOT, tg(&[("?y", "q", "?a")]));
        let filt = t.add_child(ROOT, tg(&[("?y", "q", "?x")]));
        t.add_child(filt, tg(&[("?x", "r", "?b")]));
        t.add_child(ROOT, tg(&[("?y", "q", "?c")]));
        t.nr_normalize();
        let kids = t.children(ROOT).to_vec();
        assert_eq!(kids.len(), 3);
        let mids: Vec<_> = kids
            .iter()
            .map(|&k| t.vars(k).into_iter().collect::<Vec<_>>())
            .collect();
        // Order: ?a-child, merged ?b-child, ?c-child.
        assert!(mids[0].contains(&v("a")));
        assert!(mids[1].contains(&v("b")));
        assert!(mids[2].contains(&v("c")));
    }

    #[test]
    fn render_is_indented() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        t.add_child(a, tg(&[("?z", "r", "?w")]));
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }
}
