//! Subtrees of a wdPT (§2.1): connected node sets containing the root.
//!
//! The arena in [`Wdpt`] guarantees `parent(n).0 < n.0`, which makes
//! subtree enumeration and closure computations simple index scans.

use crate::wdpt::{NodeId, Wdpt, ROOT};
use std::collections::BTreeSet;
use wdsparql_hom::TGraph;
use wdsparql_rdf::Variable;

/// A subtree is the set of its node ids (always containing the root).
pub type Subtree = BTreeSet<NodeId>;

/// The subtree containing only the root.
pub fn root_subtree() -> Subtree {
    [ROOT].into_iter().collect()
}

/// Is `s` a subtree of `t` (contains the root; closed under parents)?
pub fn is_valid_subtree(t: &Wdpt, s: &Subtree) -> bool {
    s.contains(&ROOT)
        && s.iter().all(|&n| {
            n.0 < t.len()
                && match t.parent(n) {
                    None => true,
                    Some(p) => s.contains(&p),
                }
        })
}

/// `pat(T')` for a subtree.
pub fn subtree_pat(t: &Wdpt, s: &Subtree) -> TGraph {
    let mut out = TGraph::new();
    for &n in s {
        out = out.union(t.pat(n));
    }
    out
}

/// `vars(T')` for a subtree.
pub fn subtree_vars(t: &Wdpt, s: &Subtree) -> BTreeSet<Variable> {
    let mut out = BTreeSet::new();
    for &n in s {
        out.extend(t.vars(n));
    }
    out
}

/// The *children of the subtree*: nodes outside `s` whose parent is in `s`.
pub fn subtree_children(t: &Wdpt, s: &Subtree) -> Vec<NodeId> {
    t.node_ids()
        .filter(|n| !s.contains(n))
        .filter(|&n| t.parent(n).is_some_and(|p| s.contains(&p)))
        .collect()
}

/// Enumerates *all* subtrees of `t` (exponentially many in general).
pub fn enumerate_subtrees(t: &Wdpt) -> Vec<Subtree> {
    let mut acc: Vec<Subtree> = vec![root_subtree()];
    for id in 1..t.len() {
        let n = NodeId(id);
        let parent = t.parent(n).expect("non-root has a parent");
        let mut next = Vec::with_capacity(acc.len() * 2);
        for s in acc {
            if s.contains(&parent) {
                let mut with = s.clone();
                with.insert(n);
                next.push(s);
                next.push(with);
            } else {
                next.push(s);
            }
        }
        acc = next;
    }
    acc
}

/// The unique maximal subtree `T'` with `vars(T') ⊆ allowed` — the greedy
/// closure: start at the root (required to satisfy the bound) and keep
/// adding children whose variables fit. Returns `None` if even the root
/// does not fit.
pub fn maximal_subtree_within(t: &Wdpt, allowed: &BTreeSet<Variable>) -> Option<Subtree> {
    if !t.vars(ROOT).is_subset(allowed) {
        return None;
    }
    let mut s = root_subtree();
    loop {
        let mut grew = false;
        for n in subtree_children(t, &s) {
            if t.vars(n).is_subset(allowed) {
                s.insert(n);
                grew = true;
            }
        }
        if !grew {
            return Some(s);
        }
    }
}

/// The unique subtree `T'` with `vars(T') = target` exactly, if any — the
/// witness `T^{sp(i)}` in the definition of support (§3.1). For trees in NR
/// normal form this witness is unique when it exists.
pub fn subtree_with_vars(t: &Wdpt, target: &BTreeSet<Variable>) -> Option<Subtree> {
    let s = maximal_subtree_within(t, target)?;
    (&subtree_vars(t, &s) == target).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// root {x p y} with children {y q z} and {y r w}, grandchild {z s u}.
    fn sample() -> (Wdpt, NodeId, NodeId, NodeId) {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        let b = t.add_child(ROOT, tg(&[("?y", "r", "?w")]));
        let c = t.add_child(a, tg(&[("?z", "s", "?u")]));
        (t, a, b, c)
    }

    #[test]
    fn validity_checks() {
        let (t, a, _b, c) = sample();
        assert!(is_valid_subtree(&t, &root_subtree()));
        let good: Subtree = [ROOT, a, c].into_iter().collect();
        assert!(is_valid_subtree(&t, &good));
        let no_root: Subtree = [a].into_iter().collect();
        assert!(!is_valid_subtree(&t, &no_root));
        let gap: Subtree = [ROOT, c].into_iter().collect();
        assert!(!is_valid_subtree(&t, &gap));
    }

    #[test]
    fn children_of_subtree() {
        let (t, a, b, c) = sample();
        assert_eq!(subtree_children(&t, &root_subtree()), vec![a, b]);
        let with_a: Subtree = [ROOT, a].into_iter().collect();
        assert_eq!(subtree_children(&t, &with_a), vec![b, c]);
        let all: Subtree = [ROOT, a, b, c].into_iter().collect();
        assert!(subtree_children(&t, &all).is_empty());
    }

    #[test]
    fn enumerate_counts() {
        let (t, _, _, _) = sample();
        // Subtrees: {r}, {r,a}, {r,b}, {r,a,b}, {r,a,c}, {r,a,b,c} = 6.
        let subs = enumerate_subtrees(&t);
        assert_eq!(subs.len(), 6);
        for s in &subs {
            assert!(is_valid_subtree(&t, s));
        }
    }

    #[test]
    fn maximal_subtree_closure() {
        let (t, a, _b, _c) = sample();
        let allowed: BTreeSet<Variable> = [v("x"), v("y"), v("z")].into_iter().collect();
        let s = maximal_subtree_within(&t, &allowed).unwrap();
        assert_eq!(s, [ROOT, a].into_iter().collect::<Subtree>());
        // Root does not fit: no subtree.
        let tiny: BTreeSet<Variable> = [v("x")].into_iter().collect();
        assert!(maximal_subtree_within(&t, &tiny).is_none());
    }

    #[test]
    fn witness_subtree_requires_exact_vars() {
        let (t, a, _b, _c) = sample();
        let exact: BTreeSet<Variable> = [v("x"), v("y"), v("z")].into_iter().collect();
        assert_eq!(
            subtree_with_vars(&t, &exact),
            Some([ROOT, a].into_iter().collect::<Subtree>())
        );
        // Superset of achievable vars but unreachable exactly: {x,y,z,q}.
        let too_many: BTreeSet<Variable> = [v("x"), v("y"), v("z"), v("nonexistent")]
            .into_iter()
            .collect();
        assert_eq!(subtree_with_vars(&t, &too_many), None);
    }

    #[test]
    fn pat_and_vars_of_subtree() {
        let (t, a, _b, _c) = sample();
        let s: Subtree = [ROOT, a].into_iter().collect();
        assert_eq!(subtree_pat(&t, &s).len(), 2);
        assert_eq!(
            subtree_vars(&t, &s),
            [v("x"), v("y"), v("z")].into_iter().collect()
        );
    }
}
