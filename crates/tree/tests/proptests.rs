//! Property tests for pattern trees: translation, NR normalisation and
//! subtree machinery on randomly shaped (well-designed by construction)
//! patterns.

use proptest::prelude::*;
use wdsparql_algebra::{eval, GraphPattern};
use wdsparql_hom::TGraph;
use wdsparql_rdf::{iri, tp, var, RdfGraph, Term, Triple};
use wdsparql_tree::{
    enumerate_subtrees, is_valid_subtree, pattern_from_wdpt, subtree_children, subtree_vars,
    wdpt_from_pattern, Wdpt, ROOT,
};

/// Well-designed UNION-free patterns by construction (same technique as
/// the workspace-level tests): OPT right sides get private fresh
/// variables.
fn arb_wd_pattern() -> impl Strategy<Value = GraphPattern> {
    fn gen(depth: usize) -> BoxedStrategy<(GraphPattern, usize)> {
        // Returns (pattern, fresh counter consumed) built over var ids
        // [base..base+consumed). To keep things deterministic we thread a
        // seed through proptest's own RNG choices instead.
        let leaf = (0..3usize, 0..2usize, 0..3usize)
            .prop_map(|(a, p, b)| {
                let t = tp(
                    var(&format!("tv{a}")),
                    iri(["tp", "tq"][p]),
                    var(&format!("tv{b}")),
                );
                (GraphPattern::Triple(t), 0usize)
            })
            .boxed();
        if depth == 0 {
            return leaf;
        }
        let sub = gen(depth - 1);
        let sub2 = gen(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub2.clone())
                .prop_map(|((l, _), (r, _))| { (GraphPattern::and(l, r), 0) }),
            (sub, sub2, 0..1000usize).prop_map(|((l, _), (r, _), salt)| {
                // Rename the right side's variables to privates so the OPT
                // scope condition holds.
                let renamed = rename_vars(&r, &format!("opt{salt}"));
                (GraphPattern::opt(l, renamed), 0)
            }),
        ]
        .boxed()
    }
    gen(3).prop_map(|(p, _)| p)
}

fn rename_vars(p: &GraphPattern, suffix: &str) -> GraphPattern {
    match p {
        GraphPattern::Triple(t) => {
            let f = |term: Term| match term {
                Term::Var(v) => var(&format!("{}_{suffix}", v.name())),
                other => other,
            };
            GraphPattern::Triple(tp(f(t.s), f(t.p), f(t.o)))
        }
        GraphPattern::And(l, r) => {
            GraphPattern::and(rename_vars(l, suffix), rename_vars(r, suffix))
        }
        GraphPattern::Opt(l, r) => {
            GraphPattern::opt(rename_vars(l, suffix), rename_vars(r, suffix))
        }
        GraphPattern::Union(l, r) => {
            GraphPattern::union(rename_vars(l, suffix), rename_vars(r, suffix))
        }
    }
}

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..4usize, 0..2usize, 0..4usize), 0..10).prop_map(|ts| {
        RdfGraph::from_triples(ts.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("tn{s}"), ["tp", "tq"][p], &format!("tn{o}"))
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Translation accepts exactly the well-designed patterns we generate
    /// and produces validated NR-normal-form trees.
    #[test]
    fn translation_produces_valid_nr_trees(p in arb_wd_pattern()) {
        prop_assume!(wdsparql_algebra::is_well_designed(&p));
        let t = wdpt_from_pattern(&p).expect("well-designed translates");
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.is_nr_normal_form());
    }

    /// The inverse translation preserves semantics.
    #[test]
    fn translation_roundtrip_semantics(p in arb_wd_pattern(), g in arb_graph()) {
        prop_assume!(wdsparql_algebra::is_well_designed(&p));
        let t = wdpt_from_pattern(&p).unwrap();
        let back = pattern_from_wdpt(&t);
        prop_assert_eq!(eval(&p, &g), eval(&back, &g));
    }

    /// Subtree enumeration yields only valid subtrees; their children are
    /// disjoint from the subtree and attach to it.
    #[test]
    fn subtree_enumeration_invariants(p in arb_wd_pattern()) {
        prop_assume!(wdsparql_algebra::is_well_designed(&p));
        let t = wdpt_from_pattern(&p).unwrap();
        let subs = enumerate_subtrees(&t);
        // Count: subtrees of a rooted tree = ∏ over children products; at
        // minimum 1 (root alone), at most 2^(n-1) + ... just bound it.
        prop_assert!(!subs.is_empty());
        for s in &subs {
            prop_assert!(is_valid_subtree(&t, s));
            for c in subtree_children(&t, s) {
                prop_assert!(!s.contains(&c));
                prop_assert!(s.contains(&t.parent(c).unwrap()));
            }
        }
        // Subtrees are pairwise distinct.
        let set: std::collections::BTreeSet<_> = subs.iter().cloned().collect();
        prop_assert_eq!(set.len(), subs.len());
    }

    /// NR normalisation preserves semantics on hand-degraded trees: we
    /// build a tree, add a redundant filter child, and compare.
    #[test]
    fn nr_normalisation_preserves_semantics(g in arb_graph(), a in 0..3usize, b in 0..3usize) {
        let mut t = Wdpt::new(TGraph::from_patterns([tp(
            var("nx"), iri("tp"), var("ny"),
        )]));
        // Redundant child: uses only root variables.
        let filt = t.add_child(ROOT, TGraph::from_patterns([tp(
            var(["nx", "ny", "nx"][a]), iri("tq"), var(["ny", "nx", "nx"][b]),
        )]));
        // A real grandchild with a fresh variable.
        t.add_child(filt, TGraph::from_patterns([tp(
            var("ny"), iri("tp"), var("nz"),
        )]));
        let before = pattern_from_wdpt(&t);
        let mut t2 = t.clone();
        t2.nr_normalize();
        prop_assert!(t2.is_nr_normal_form());
        let after = pattern_from_wdpt(&t2);
        prop_assert_eq!(eval(&before, &g), eval(&after, &g));
    }

    /// vars of a subtree = union of node vars (and the witness-subtree
    /// finder returns exactly matching subtrees).
    #[test]
    fn subtree_vars_are_unions(p in arb_wd_pattern()) {
        prop_assume!(wdsparql_algebra::is_well_designed(&p));
        let t = wdpt_from_pattern(&p).unwrap();
        for s in enumerate_subtrees(&t) {
            let direct = subtree_vars(&t, &s);
            let mut expected = std::collections::BTreeSet::new();
            for &n in &s {
                expected.extend(t.vars(n));
            }
            prop_assert_eq!(&direct, &expected);
            if let Some(w) = wdsparql_tree::subtree_with_vars(&t, &direct) {
                prop_assert_eq!(subtree_vars(&t, &w), direct);
            }
        }
    }
}
