//! [`TripleStore`]: the concurrent query service over an
//! [`EncodedGraph`].
//!
//! The store keeps the encoded graph in an `Arc` behind a reader-writer
//! lock: queries clone the `Arc` under a brief read lock and evaluate
//! lock-free against that snapshot, while bulk loads mutate via
//! copy-on-write under the write lock — so a slow query never blocks a
//! load, and a load never blocks queries. An LRU result cache is keyed
//! by `(query, graph epoch)` — a bulk load bumps the epoch, so stale
//! entries can never be served — and a [`StoreStats`] snapshot's
//! per-predicate cardinalities drive most-selective-first,
//! connectivity-aware ordering of multi-pattern (BGP) queries.

use crate::encoded::EncodedGraph;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wdsparql_rdf::{binding_of, Iri, Mapping, RdfGraph, Term, Triple, TriplePattern, Variable};

/// A snapshot of the store's contents, taken under the read lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Triples in the store.
    pub triples: usize,
    /// Distinct terms (= `|dom(G)|`).
    pub terms: usize,
    /// Distinct subjects / predicates / objects.
    pub subjects: usize,
    pub predicates: usize,
    pub objects: usize,
    /// Per-predicate cardinalities, descending.
    pub predicate_cardinalities: Vec<(Iri, usize)>,
    /// Bulk-load generation; queries are cached per epoch.
    pub epoch: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} triple(s) over {} term(s) | {} subject(s), {} predicate(s), {} object(s) | epoch {}",
            self.triples, self.terms, self.subjects, self.predicates, self.objects, self.epoch
        )?;
        write!(f, "predicate cardinalities:")?;
        for (p, n) in &self.predicate_cardinalities {
            write!(f, " {p}={n}")?;
        }
        Ok(())
    }
}

/// Cache hit/miss counters (monotonic over the store's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// Cache key: query text plus the epoch it was computed under.
type CacheKey = (String, u64);
/// Cached value with its last-use stamp.
type CacheEntry = (Arc<Vec<Mapping>>, u64);

/// A small LRU keyed by `(query text, epoch)`. Recency is tracked by a
/// logical clock; eviction scans for the stalest entry, which is linear
/// but cheap at the configured capacities.
struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, CacheEntry>,
}

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<Mapping>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            Arc::clone(v)
        })
    }

    fn put(&mut self, key: CacheKey, value: Arc<Vec<Mapping>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }
}

struct Inner {
    /// The current graph snapshot. Readers clone the `Arc` under a brief
    /// read lock and evaluate lock-free against the snapshot, so a slow
    /// query never blocks a bulk load (or, behind a writer-preferring
    /// lock, other queries). `bulk_load` mutates via [`Arc::make_mut`] —
    /// in place when no query holds the snapshot, copy-on-write
    /// otherwise.
    graph: Arc<EncodedGraph>,
    epoch: u64,
}

/// The concurrent triple-store service.
///
/// Shareable across threads behind an [`Arc`]; reads (queries, stats)
/// evaluate against a cheap `Arc` snapshot of the graph,
/// [`TripleStore::bulk_load`] takes the write lock and bumps the epoch.
pub struct TripleStore {
    inner: RwLock<Inner>,
    cache: Mutex<LruCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TripleStore {
    fn default() -> TripleStore {
        TripleStore::new()
    }
}

impl TripleStore {
    /// An empty store with the default cache capacity (128 queries).
    pub fn new() -> TripleStore {
        TripleStore::with_cache_capacity(128)
    }

    pub fn with_cache_capacity(capacity: usize) -> TripleStore {
        TripleStore {
            inner: RwLock::new(Inner {
                graph: Arc::new(EncodedGraph::new()),
                epoch: 0,
            }),
            cache: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn from_triples<I>(triples: I) -> TripleStore
    where
        I: IntoIterator<Item = Triple>,
    {
        let store = TripleStore::new();
        store.bulk_load(triples);
        store
    }

    pub fn from_rdf(g: &RdfGraph) -> TripleStore {
        TripleStore::from_triples(g.iter().copied())
    }

    /// Bulk-loads a batch of triples under the write lock. Returns the
    /// number of new triples; bumps the epoch (invalidating cached
    /// results) when anything changed.
    pub fn bulk_load<I>(&self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        let batch: Vec<Triple> = triples.into_iter().collect();
        let mut inner = self.inner.write();
        // A no-op batch must not pay `Arc::make_mut`: with any query
        // snapshot alive that would deep-clone the whole graph only to
        // change nothing (e.g. an idempotent ingest retry).
        if batch.iter().all(|t| inner.graph.contains(t)) {
            return 0;
        }
        let added = Arc::make_mut(&mut inner.graph).insert_batch(batch);
        if added > 0 {
            inner.epoch += 1;
            // Every cached entry is keyed to an older epoch and is now
            // unreachable — drop them so the result sets free their
            // memory immediately instead of lingering until evicted.
            self.cache.lock().map.clear();
        }
        added
    }

    /// The current graph snapshot and its epoch (one brief read lock).
    fn snapshot(&self) -> (Arc<EncodedGraph>, u64) {
        let inner = self.inner.read();
        (Arc::clone(&inner.graph), inner.epoch)
    }

    pub fn len(&self) -> usize {
        self.snapshot().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Runs `f` against a snapshot of the encoded graph — the hook the
    /// evaluation engine uses to borrow the store as a
    /// [`wdsparql_rdf::TripleIndex`]. `f` runs lock-free: a long
    /// evaluation never blocks concurrent bulk loads or other queries.
    pub fn with_index<R>(&self, f: impl FnOnce(&EncodedGraph) -> R) -> R {
        f(&self.snapshot().0)
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> StoreStats {
        let (graph, epoch) = self.snapshot();
        let (subjects, predicates, objects) = graph.position_cardinalities();
        StoreStats {
            triples: graph.len(),
            terms: graph.term_count(),
            subjects,
            predicates,
            objects,
            predicate_cardinalities: graph.predicate_cardinalities(),
            epoch,
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().map.len(),
        }
    }

    /// Evaluation order for a conjunctive (BGP) query: pattern indexes
    /// most-selective-first. Selectivity is the bound-prefix range length
    /// — exact for every bound combination, and identical to the
    /// [`StoreStats`] predicate cardinality when only the predicate is
    /// bound.
    pub fn plan(&self, patterns: &[TriplePattern]) -> Vec<usize> {
        Self::plan_order(&self.snapshot().0, patterns)
    }

    /// The one source of truth for BGP evaluation order, shared by
    /// [`TripleStore::plan`] (what callers display) and `eval_bgp` (what
    /// actually runs) so the two can never diverge.
    ///
    /// Greedy: seed with the most selective pattern, then repeatedly take
    /// the most selective pattern sharing a variable with what is already
    /// bound. A disconnected pattern (Cartesian product) is chosen only
    /// when nothing connected remains — deferring it keeps the bind-join
    /// loop's intermediate result linear in the joined component instead
    /// of multiplying unrelated match sets.
    fn plan_order(graph: &EncodedGraph, patterns: &[TriplePattern]) -> Vec<usize> {
        let mut remaining: Vec<usize> = (0..patterns.len()).collect();
        remaining.sort_by_key(|&i| graph.candidate_count(&patterns[i]));
        let mut order = Vec::with_capacity(patterns.len());
        let mut bound: HashSet<Variable> = HashSet::new();
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .position(|&i| patterns[i].vars().iter().any(|v| bound.contains(v)))
                .unwrap_or(0);
            let i = remaining.remove(pick);
            bound.extend(patterns[i].vars());
            order.push(i);
        }
        order
    }

    /// Collision-free cache key: every term is rendered as its kind tag
    /// plus interned id (stable for the process lifetime of the cache).
    /// The `Display` form would not do — an IRI's spelling is arbitrary
    /// text, so two distinct pattern lists could print identically.
    fn cache_key(patterns: &[TriplePattern]) -> String {
        use std::fmt::Write;
        let mut key = String::new();
        for pat in patterns {
            for term in pat.positions() {
                let (kind, id) = match term {
                    Term::Var(v) => ('v', v.id()),
                    Term::Iri(i) => ('i', i.id()),
                };
                write!(key, "{kind}{id},").expect("writing to a String cannot fail");
            }
        }
        key
    }

    /// Cached single-pattern solutions.
    pub fn solutions(&self, pat: &TriplePattern) -> Arc<Vec<Mapping>> {
        self.cached(Self::cache_key(std::slice::from_ref(pat)), |graph| {
            graph.solutions(pat)
        })
    }

    /// Evaluates the conjunction of `patterns` (a BGP: the AND-only
    /// fragment) with most-selective-first ordering, a sorted-merge
    /// semi-join on the first shared variable, and index-nested-loop
    /// (bind) joins for the rest. Results are cached per epoch.
    pub fn query(&self, patterns: &[TriplePattern]) -> Arc<Vec<Mapping>> {
        self.cached(Self::cache_key(patterns), |graph| {
            Self::eval_bgp(graph, patterns)
        })
    }

    fn eval_bgp(graph: &EncodedGraph, patterns: &[TriplePattern]) -> Vec<Mapping> {
        if patterns.is_empty() {
            return vec![Mapping::new()];
        }
        let order = Self::plan_order(graph, patterns);
        let first = &patterns[order[0]];
        let mut sols = graph.solutions(first);
        // Semi-join: when the two most selective patterns share a
        // variable, drop seed solutions whose value for it cannot occur
        // in the second pattern. The first pattern's side is already in
        // hand (`sols` was just enumerated), so only the second
        // pattern's sorted candidate ids are scanned.
        if let Some(&second) = order.get(1) {
            let shared = first
                .vars()
                .intersection(&patterns[second].vars())
                .copied()
                .next();
            if let Some(v) = shared {
                if let Some(ids) = graph.candidate_ids(&patterns[second], v) {
                    sols.retain(|mu| {
                        mu.get(v).is_some_and(|i| {
                            graph
                                .dictionary()
                                .lookup(i)
                                .is_some_and(|id| ids.binary_search(&id).is_ok())
                        })
                    });
                }
            }
        }
        for &i in &order[1..] {
            let pat = &patterns[i];
            let mut next = Vec::new();
            for mu in &sols {
                let bound = pat.apply_partial(mu);
                for t in graph.match_pattern(&bound) {
                    let nu = binding_of(&bound, &t)
                        .expect("match_pattern returns only matching triples");
                    let merged = mu
                        .union(&nu)
                        .expect("bound pattern cannot rebind branch variables");
                    next.push(merged);
                }
            }
            sols = next;
        }
        sols
    }

    /// Shared variables helper for callers composing their own joins.
    pub fn shared_vars(a: &TriplePattern, b: &TriplePattern) -> Vec<Variable> {
        a.vars().intersection(&b.vars()).copied().collect()
    }

    fn cached(
        &self,
        key: String,
        compute: impl FnOnce(&EncodedGraph) -> Vec<Mapping>,
    ) -> Arc<Vec<Mapping>> {
        let (graph, epoch) = self.snapshot();
        let key = (key, epoch);
        if let Some(hit) = self.cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Computed lock-free on the snapshot. Skip the insert when a
        // bulk load landed meanwhile: the entry would be keyed to the
        // old epoch — correct but unreachable, so only dead weight. (A
        // load racing in between the check and the put can still leave
        // one such entry; the next load's cache clear removes it.)
        let value = Arc::new(compute(&graph));
        if self.inner.read().epoch == epoch {
            self.cache.lock().put(key, Arc::clone(&value));
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn store() -> TripleStore {
        TripleStore::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("c", "p", "d"),
                ("b", "q", "x"),
                ("c", "q", "x"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    #[test]
    fn bulk_load_bumps_epoch_only_on_change() {
        let s = store();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.bulk_load([Triple::from_strs("a", "p", "b")]), 0);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.bulk_load([Triple::from_strs("z", "p", "z")]), 1);
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn stats_snapshot_reports_cardinalities() {
        let s = store();
        let st = s.stats();
        assert_eq!(st.triples, 5);
        assert_eq!(st.predicates, 2);
        assert_eq!(st.predicate_cardinalities[0], (Iri::new("p"), 3));
        assert!(st.to_string().contains("p=3"));
    }

    #[test]
    fn plan_orders_most_selective_first() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")), // 3 candidates
            tp(var("y"), iri("q"), iri("x")), // 2 candidates
            tp(iri("a"), iri("p"), var("y")), // 1 candidate
        ];
        assert_eq!(s.plan(&pats), vec![2, 1, 0]);
    }

    #[test]
    fn plan_defers_disconnected_patterns() {
        // p: 2 triples, q: 3, r: 4 — by selectivity alone the order would
        // be [p, q, r], but q shares no variable with p, so the planner
        // must bridge through r to avoid a Cartesian product.
        let s = TripleStore::from_triples(
            [
                ("a1", "p", "b1"),
                ("a2", "p", "b2"),
                ("c1", "q", "d1"),
                ("c2", "q", "d2"),
                ("c3", "q", "d3"),
                ("b1", "r", "c1"),
                ("b2", "r", "c2"),
                ("b3", "r", "c3"),
                ("b4", "r", "c4"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let pats = [
            tp(var("a"), iri("p"), var("b")),
            tp(var("c"), iri("q"), var("d")),
            tp(var("b"), iri("r"), var("c")),
        ];
        assert_eq!(s.plan(&pats), vec![0, 2, 1]);
        // The reordered evaluation still yields the full join.
        assert_eq!(s.query(&pats).len(), 2);
    }

    #[test]
    fn query_joins_and_caches() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let sols = s.query(&pats);
        // (a,b) with b q x; (b,c) with c q x.
        assert_eq!(sols.len(), 2);
        for mu in sols.iter() {
            assert_eq!(mu.get(Variable::new("z")), Some(Iri::new("x")));
        }
        let before = s.cache_stats();
        let again = s.query(&pats);
        let after = s.cache_stats();
        assert_eq!(sols, again);
        assert_eq!(after.hits, before.hits + 1);
        // A load invalidates: the stale entries are dropped outright and
        // the next query recomputes.
        s.bulk_load([Triple::from_strs("d", "q", "x")]);
        assert_eq!(s.cache_stats().entries, 0);
        let fresh = s.query(&pats);
        assert_eq!(fresh.len(), 3);
    }

    #[test]
    fn query_agrees_with_reference_join_order_independence() {
        let s = store();
        let a = tp(var("x"), iri("p"), var("y"));
        let b = tp(var("y"), iri("q"), var("z"));
        let ab = s.query(&[a, b]);
        let ba = s.query(&[b, a]);
        let mut xs: Vec<Mapping> = ab.iter().cloned().collect();
        let mut ys: Vec<Mapping> = ba.iter().cloned().collect();
        xs.sort();
        ys.sort();
        assert_eq!(xs, ys);
    }

    #[test]
    fn empty_query_yields_the_empty_mapping() {
        let s = store();
        let sols = s.query(&[]);
        assert_eq!(sols.as_slice(), &[Mapping::new()]);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let s = TripleStore::with_cache_capacity(2);
        s.bulk_load([Triple::from_strs("a", "p", "b")]);
        let p1 = tp(var("x"), iri("p"), var("y"));
        let p2 = tp(iri("a"), var("w"), var("y"));
        let p3 = tp(var("x"), var("w"), iri("b"));
        s.solutions(&p1);
        s.solutions(&p2);
        s.solutions(&p1); // refresh p1
        s.solutions(&p3); // evicts p2
        assert_eq!(s.cache_stats().entries, 2);
        let before = s.cache_stats().hits;
        s.solutions(&p1);
        assert_eq!(s.cache_stats().hits, before + 1);
        s.solutions(&p2); // miss: was evicted
        assert_eq!(s.cache_stats().misses, 4);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for i in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    if i == 0 && j % 10 == 0 {
                        s.bulk_load([Triple::from_strs(&format!("w{j}"), "p", "b")]);
                    }
                    let sols = s.query(&[tp(var("x"), iri("p"), var("y"))]);
                    assert!(sols.len() >= 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.len() > 5);
    }
}
