//! [`TripleStore`]: the concurrent query service over an
//! [`EncodedGraph`].
//!
//! The store keeps the encoded graph in an `Arc` behind a reader-writer
//! lock: queries clone the `Arc` under a brief read lock and evaluate
//! lock-free against that snapshot, while bulk loads mutate via
//! copy-on-write under the write lock — so a slow query never blocks a
//! load, and a load never blocks queries. An LRU result cache is keyed
//! by `(query, graph epoch)` — a bulk load bumps the epoch, so stale
//! entries can never be served — with per-key in-flight deduplication so
//! concurrent misses of the same query compute it once. A [`StoreStats`]
//! snapshot's per-predicate cardinalities drive most-selective-first,
//! connectivity-aware ordering of multi-pattern (BGP) queries, and
//! [`TripleStore::query_with_plan`] threads one snapshot *and one plan*
//! through planning and execution: the displayed plan is always the
//! executed one, computed exactly once.
//!
//! The BGP machinery ([`plan_order`], [`eval_bgp_planned`]) is generic
//! over [`TripleIndex`], which is what lets the sharded facade
//! ([`crate::ShardedStore`]) run the identical planner and join pipeline
//! over its scatter-gather snapshot.

use crate::cache::ResultCache;
use crate::encoded::{CapacityError, EncodedGraph};
use crate::join::open_bgp_stream;
pub(crate) use crate::join::{eval_bgp_planned, eval_bgp_planned_profiled};
use crate::persist::vfs::Vfs;
use crate::persist::{PersistError, PersistOpts, StoreDir};
use crate::wcoj::{
    eval_bgp_wco, eval_bgp_wco_profiled, eval_bgp_with_strategy, resolve_with_order, JoinStrategy,
    WcoLevelStats,
};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use wdsparql_obs::{QueryProfile, Span};
use wdsparql_rdf::{
    ExecError, Iri, Mapping, QueryBudget, RdfGraph, SolutionStream, Term, Triple, TripleIndex,
    TriplePattern, Variable,
};

pub use crate::cache::CacheStats;

/// Why a store mutation failed: the in-memory capacity guard refused
/// the batch, or — on a durable store — the persistence layer could not
/// make it durable. Either way the store is unchanged.
#[derive(Debug)]
pub enum StoreError {
    /// The batch would exceed [`crate::MAX_TRIPLES`] or the configured
    /// [`TripleStore::set_capacity_limit`].
    Capacity(CapacityError),
    /// The durable commit (or open/attach) failed; see [`PersistError`].
    Persist(PersistError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Capacity(e) => e.fmt(f),
            StoreError::Persist(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Capacity(e) => Some(e),
            StoreError::Persist(e) => Some(e),
        }
    }
}

impl From<CapacityError> for StoreError {
    fn from(e: CapacityError) -> StoreError {
        StoreError::Capacity(e)
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> StoreError {
        StoreError::Persist(e)
    }
}

/// A recovered image that overflows the in-memory row bound can only
/// come from a tampered or mismatched store directory — the store that
/// wrote it enforced the same bound on every commit.
fn replay_overflow(e: CapacityError) -> StoreError {
    StoreError::Persist(PersistError::Corrupt(format!(
        "recovered image exceeds the in-memory row bound: {e}"
    )))
}

/// A snapshot of the store's contents, taken under the read lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Triples in the store.
    pub triples: usize,
    /// Distinct terms (= `|dom(G)|`).
    pub terms: usize,
    /// Distinct subjects / predicates / objects.
    pub subjects: usize,
    pub predicates: usize,
    pub objects: usize,
    /// Per-predicate cardinalities, descending.
    pub predicate_cardinalities: Vec<(Iri, usize)>,
    /// Bulk-load generation; queries are cached per epoch.
    pub epoch: u64,
    /// Rows in the compacted base arrays.
    pub base_rows: usize,
    /// Rows pending in delta segments.
    pub delta_rows: usize,
    /// Pending delta segments.
    pub segments: usize,
    /// Lifetime count of delta folds.
    pub compactions: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} triple(s) over {} term(s) | {} subject(s), {} predicate(s), {} object(s) | epoch {}",
            self.triples, self.terms, self.subjects, self.predicates, self.objects, self.epoch
        )?;
        writeln!(
            f,
            "segments: {} base row(s) + {} delta row(s) in {} segment(s), {} compaction(s)",
            self.base_rows, self.delta_rows, self.segments, self.compactions
        )?;
        write!(f, "predicate cardinalities:")?;
        for (p, n) in &self.predicate_cardinalities {
            write!(f, " {p}={n}")?;
        }
        Ok(())
    }
}

/// Builds a [`StoreStats`] from one graph snapshot and its epoch — the
/// single construction shared by [`TripleStore::stats`] and the sharded
/// facade's per-shard stats.
pub(crate) fn stats_of(graph: &EncodedGraph, epoch: u64) -> StoreStats {
    let (subjects, predicates, objects) = graph.position_cardinalities();
    StoreStats {
        triples: graph.len(),
        terms: graph.term_count(),
        subjects,
        predicates,
        objects,
        predicate_cardinalities: graph.predicate_cardinalities(),
        epoch,
        base_rows: graph.base_len(),
        delta_rows: graph.delta_len(),
        segments: graph.segment_count(),
        compactions: graph.compactions(),
    }
}

/// A BGP answered together with the plan that produced it — both derived
/// from one graph snapshot, so they can never diverge.
#[derive(Clone, Debug)]
#[must_use = "a dropped PlannedQuery is a query that was planned and evaluated for nothing"]
pub struct PlannedQuery {
    /// Pattern indexes in selectivity order (the pairwise evaluation
    /// order; the WCOJ consumes it only as a selectivity signal).
    pub plan: Vec<usize>,
    /// The solution mappings.
    pub solutions: Arc<Vec<Mapping>>,
    /// The epoch of the snapshot both were computed on.
    pub epoch: u64,
    /// The join strategy that actually ran (`Auto` already resolved to
    /// [`JoinStrategy::Pairwise`] or [`JoinStrategy::Wco`]).
    pub strategy: JoinStrategy,
    /// The execution profile, on the
    /// [`TripleStore::query_with_profile`] path only (`None` elsewhere —
    /// nothing is collected unless profiling was requested).
    pub profile: Option<QueryProfile>,
}

/// Cache key: query text plus the epoch it was computed under.
type CacheKey = (String, u64);

/// An owned, lock-free view of the store's graph at one epoch: the
/// `Arc`'d snapshot a query evaluates against, handed out by
/// [`TripleStore::read_snapshot`]. Holding one pins the graph version —
/// concurrent bulk loads proceed copy-on-write and become visible on the
/// next snapshot. Dereferences to [`EncodedGraph`], so the whole
/// [`TripleIndex`] surface is available on it.
#[derive(Clone)]
#[must_use = "a snapshot pins a graph version; dropping it unused pins nothing"]
pub struct StoreSnapshot {
    graph: Arc<EncodedGraph>,
    epoch: u64,
}

impl StoreSnapshot {
    /// The epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's graph.
    pub fn graph(&self) -> &EncodedGraph {
        &self.graph
    }

    /// A shared empty snapshot (epoch 0) — the placeholder the sharded
    /// facade puts in the slots a routed query provably never reads, so
    /// holding the snapshot pins nothing there. One static graph backs
    /// every placeholder; no per-query allocation.
    pub(crate) fn empty() -> StoreSnapshot {
        static EMPTY: OnceLock<Arc<EncodedGraph>> = OnceLock::new();
        StoreSnapshot {
            graph: Arc::clone(EMPTY.get_or_init(|| Arc::new(EncodedGraph::new()))),
            epoch: 0,
        }
    }
}

impl std::ops::Deref for StoreSnapshot {
    type Target = EncodedGraph;

    fn deref(&self) -> &EncodedGraph {
        &self.graph
    }
}

/// The one source of truth for BGP evaluation order, shared by
/// [`TripleStore::plan`], [`TripleStore::query_with_plan`], the sharded
/// facade and [`eval_bgp`] (what actually runs) so displayed and
/// executed plans only ever come from one computation on one graph.
///
/// Greedy: seed with the most selective pattern, then repeatedly take
/// the most selective pattern sharing a variable with what is already
/// bound. A disconnected pattern (Cartesian product) is chosen only
/// when nothing connected remains — deferring it keeps the bind-join
/// loop's intermediate result linear in the joined component instead
/// of multiplying unrelated match sets.
pub(crate) fn plan_order(ix: &dyn TripleIndex, patterns: &[TriplePattern]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    // `sort_by_cached_key`: exactly one candidate_count per pattern —
    // the planning cost callers pay once per planned query.
    remaining.sort_by_cached_key(|&i| ix.candidate_count(&patterns[i]));
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound: HashSet<Variable> = HashSet::new();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&i| patterns[i].vars().iter().any(|v| bound.contains(v)))
            .unwrap_or(0);
        let i = remaining.remove(pick);
        bound.extend(patterns[i].vars());
        order.push(i);
    }
    order
}

/// Plans and evaluates a BGP in one call — the unplanned entry point
/// ([`TripleStore::query`] on a cache miss). Callers that already hold
/// the order (the `query_with_plan` path, which must return it anyway)
/// use [`eval_bgp_planned`] directly so each planned query plans once.
pub(crate) fn eval_bgp(ix: &dyn TripleIndex, patterns: &[TriplePattern]) -> Vec<Mapping> {
    let order = plan_order(ix, patterns);
    eval_bgp_planned(ix, patterns, &order)
}

/// The pairwise pipeline as a public entry point (plan + semi-join +
/// bind joins on one snapshot) — the baseline the WCOJ benches and
/// equivalence tests compare [`crate::wcoj::eval_bgp_wco`] against.
pub fn eval_bgp_pairwise(ix: &dyn TripleIndex, patterns: &[TriplePattern]) -> Vec<Mapping> {
    eval_bgp(ix, patterns)
}

/// Per-step counters of one pairwise run, reported by the profiled
/// variant of the pipeline: one entry per plan position, in execution
/// order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairwiseStepStats {
    /// Index of the pattern joined at this step (into the caller's
    /// pattern list, i.e. a plan entry).
    pub pattern: usize,
    /// Index probes issued: 1 for the seed enumeration, one bound
    /// `match_pattern` per left-hand row for a bind join.
    pub scans: u64,
    /// Intermediate result cardinality *after* this step (for the seed:
    /// after the semi-join prune).
    pub rows: u64,
}

/// Collision-free cache key: every term is rendered as its kind tag
/// plus interned id (stable for the process lifetime of the cache).
/// The `Display` form would not do — an IRI's spelling is arbitrary
/// text, so two distinct pattern lists could print identically.
pub(crate) fn bgp_cache_key(patterns: &[TriplePattern]) -> String {
    strategy_cache_key(patterns, None)
}

/// [`bgp_cache_key`] prefixed with the *configured* [`JoinStrategy`]
/// (when one shapes the computation): entries produced under different
/// knob settings can never serve each other — even mid-flight across a
/// concurrent [`TripleStore::set_join_strategy`], whose cache clear
/// alone could not stop an in-flight compute from landing its result
/// under a key the new strategy would then hit. Single-pattern lookups
/// pass `None` — their results are strategy-independent.
pub(crate) fn strategy_cache_key(
    patterns: &[TriplePattern],
    strategy: Option<JoinStrategy>,
) -> String {
    use std::fmt::Write;
    let mut key = String::new();
    if let Some(strategy) = strategy {
        let tag = match strategy {
            JoinStrategy::Pairwise => 'p',
            JoinStrategy::Wco => 'w',
            JoinStrategy::Auto => 'a',
        };
        let _ = write!(key, "{tag}|"); // infallible: fmt::Write on String
    }
    for pat in patterns {
        for term in pat.positions() {
            let (kind, id) = match term {
                Term::Var(v) => ('v', v.id()),
                Term::Iri(i) => ('i', i.id()),
            };
            let _ = write!(key, "{kind}{id},"); // infallible: fmt::Write on String
        }
    }
    key
}

struct Inner {
    /// The current graph snapshot. Readers clone the `Arc` under a brief
    /// read lock and evaluate lock-free against the snapshot, so a slow
    /// query never blocks a bulk load (or, behind a writer-preferring
    /// lock, other queries). `bulk_load` mutates via [`Arc::make_mut`] —
    /// in place when no query holds the snapshot, copy-on-write
    /// otherwise.
    graph: Arc<EncodedGraph>,
    epoch: u64,
    /// Service-level ingest cap (see [`TripleStore::set_capacity_limit`]).
    /// Lives here — not in the graph — so configuring it never pays the
    /// copy-on-write bill of [`Arc::make_mut`] on a pinned dataset.
    capacity_limit: Option<usize>,
    /// The durable backing directory, when this store was opened with
    /// [`TripleStore::open`] (or attached via
    /// [`TripleStore::persist_to`]). `None` ⟹ purely in-memory. Living
    /// inside `Inner` means every durable commit happens under the same
    /// write lock that publishes the in-memory state, so the on-disk
    /// epoch sequence and the served epoch sequence can never interleave.
    persist: Option<StoreDir>,
}

/// The concurrent triple-store service.
///
/// Shareable across threads behind an [`Arc`]; reads (queries, stats)
/// evaluate against a cheap `Arc` snapshot of the graph,
/// [`TripleStore::bulk_load`] takes the write lock and bumps the epoch,
/// [`TripleStore::compact`] folds the graph's delta segments without
/// changing its contents (so the epoch — and every cached result —
/// survives). For write scaling beyond one write lock, front N of these
/// with [`crate::ShardedStore`].
pub struct TripleStore {
    inner: RwLock<Inner>,
    cache: ResultCache<CacheKey>,
    /// How BGPs are joined (see [`JoinStrategy`]); separate from `inner`
    /// so reading it never queues behind a bulk load.
    strategy: RwLock<JoinStrategy>,
}

impl Default for TripleStore {
    fn default() -> TripleStore {
        TripleStore::new()
    }
}

impl TripleStore {
    /// An empty store with the default cache capacity (128 queries).
    pub fn new() -> TripleStore {
        TripleStore::with_cache_capacity(128)
    }

    pub fn with_cache_capacity(capacity: usize) -> TripleStore {
        TripleStore {
            inner: RwLock::new(Inner {
                graph: Arc::new(EncodedGraph::new()),
                epoch: 0,
                capacity_limit: None,
                persist: None,
            }),
            cache: ResultCache::new(capacity),
            strategy: RwLock::new(JoinStrategy::default()),
        }
    }

    /// The configured [`JoinStrategy`] ([`JoinStrategy::Auto`] by
    /// default).
    pub fn join_strategy(&self) -> JoinStrategy {
        *self.strategy.read()
    }

    /// Sets how BGPs are joined. Correctness does not depend on this
    /// call's cache clear — BGP entries are keyed by the strategy that
    /// computed them (see [`strategy_cache_key`]), so strategies can
    /// never serve each other's runs, in-flight computations included —
    /// the clear just frees result sets the old setting will no longer
    /// reach.
    pub fn set_join_strategy(&self, strategy: JoinStrategy) {
        *self.strategy.write() = strategy;
        self.cache.clear();
    }

    pub fn from_triples<I>(triples: I) -> TripleStore
    where
        I: IntoIterator<Item = Triple>,
    {
        let store = TripleStore::new();
        store.bulk_load(triples);
        store.compact();
        store
    }

    pub fn from_rdf(g: &RdfGraph) -> TripleStore {
        TripleStore::from_triples(g.iter().copied())
    }

    /// Opens (or creates) a durable store rooted at `dir`.
    ///
    /// An empty or absent directory is formatted; an existing one is
    /// recovered: leftover temp files are swept, the manifest and
    /// checkpoint are verified by checksum, the commit log is replayed
    /// (a torn tail is truncated, corrupt referenced segments are
    /// quarantined), and the graph is rebuilt at the last consistent
    /// epoch. Every subsequent [`TripleStore::bulk_load`] is committed
    /// to disk before it is acknowledged.
    pub fn open(dir: impl AsRef<Path>) -> Result<TripleStore, StoreError> {
        TripleStore::open_with_opts(dir, PersistOpts::default())
    }

    /// [`TripleStore::open`] with explicit page-size / retry settings.
    pub fn open_with_opts(
        dir: impl AsRef<Path>,
        opts: PersistOpts,
    ) -> Result<TripleStore, StoreError> {
        let sd = StoreDir::real(dir.as_ref(), opts)?;
        TripleStore::open_dir(sd, 128)
    }

    /// [`TripleStore::open`] over an arbitrary [`Vfs`] — the hook the
    /// fault-injection tests use to run the real open/commit/recover
    /// code against [`crate::persist::vfs::FaultFs`].
    pub fn open_with_vfs(
        fs: Arc<dyn Vfs + Send + Sync>,
        opts: PersistOpts,
    ) -> Result<TripleStore, StoreError> {
        TripleStore::open_dir(StoreDir::new(fs, opts), 128)
    }

    pub(crate) fn open_dir(
        mut dir: StoreDir,
        cache_capacity: usize,
    ) -> Result<TripleStore, StoreError> {
        let start = Instant::now();
        let store = TripleStore::with_cache_capacity(cache_capacity);
        let mut graph = EncodedGraph::new();
        let mut epoch = 0;
        if dir.is_formatted()? {
            let rec = dir.recover()?;
            epoch = rec.epoch;
            graph
                .insert_batch(rec.checkpoint)
                .map_err(replay_overflow)?;
            // The checkpoint is the bulk of the data: fold it into the
            // base arrays now so the reopened store starts with the
            // same compact shape a long-running one converges to.
            graph.compact();
            for (_epoch, delta) in rec.deltas {
                graph.insert_batch(delta).map_err(replay_overflow)?;
            }
        } else {
            dir.format()?;
        }
        {
            let mut inner = store.inner.write();
            inner.graph = Arc::new(graph);
            inner.epoch = epoch;
            inner.persist = Some(dir);
        }
        crate::obs::on_recovery(start.elapsed());
        Ok(store)
    }

    /// Attaches durable storage at `dir` to this (so far volatile)
    /// store: formats the directory, checkpoints the current contents
    /// into it, and commits every later [`TripleStore::bulk_load`]
    /// durably. Refuses a directory that already holds a store (open it
    /// instead) and a store that is already durable.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        self.persist_to_opts(dir, PersistOpts::default())
    }

    /// [`TripleStore::persist_to`] with explicit settings.
    pub fn persist_to_opts(
        &self,
        dir: impl AsRef<Path>,
        opts: PersistOpts,
    ) -> Result<(), StoreError> {
        let sd = StoreDir::real(dir.as_ref(), opts)?;
        self.attach(sd)
    }

    pub(crate) fn attach(&self, mut sd: StoreDir) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        if inner.persist.is_some() {
            return Err(StoreError::Persist(PersistError::Corrupt(
                "store is already durable".into(),
            )));
        }
        if sd.is_formatted()? {
            return Err(StoreError::Persist(PersistError::Corrupt(
                "refusing to persist into a directory that already holds a store \
                 (open it instead)"
                    .into(),
            )));
        }
        sd.format()?;
        let image: Vec<Triple> = inner.graph.iter().collect();
        if !image.is_empty() || inner.epoch > 0 {
            sd.checkpoint(inner.epoch, &image)?;
        }
        inner.persist = Some(sd);
        Ok(())
    }

    /// Caps the store at `limit` rows: loads that would exceed it fail
    /// with [`CapacityError`] (`None` restores the hard
    /// [`crate::MAX_TRIPLES`] bound). An ingest guard for operators —
    /// the store itself always stops at the `u32` offset-table bound.
    pub fn set_capacity_limit(&self, limit: Option<usize>) {
        self.inner.write().capacity_limit = limit;
    }

    /// Bulk-loads a batch of triples. Returns the number of new triples;
    /// bumps the epoch (invalidating cached results) when anything
    /// changed.
    ///
    /// The all-contains no-op pre-scan (an idempotent ingest retry must
    /// not deep-clone the graph under [`Arc::make_mut`]) runs against a
    /// read-lock snapshot, so it never stalls readers behind the
    /// write-lock queue; only the epoch re-validation and the actual
    /// insert hold the write lock.
    ///
    /// Panics if the store would exceed [`crate::MAX_TRIPLES`] rows (or
    /// the configured [`TripleStore::set_capacity_limit`]) — use
    /// [`TripleStore::try_bulk_load`] to handle that case.
    pub fn bulk_load<I>(&self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        // analyzer-allow: no-unwrap-in-service bulk_load is documented as
        // the panicking facade over try_bulk_load; callers that cannot
        // tolerate the capacity panic use the fallible form.
        self.try_bulk_load(triples)
            .expect("bulk_load exceeds the store's capacity")
    }

    /// As [`TripleStore::bulk_load`], but surfaces the capacity guard —
    /// and, on a durable store, persistence failures — as an error
    /// instead of panicking. On `Err` the store is unchanged, both in
    /// memory and on disk (a failed durable commit rolls back before
    /// returning).
    pub fn try_bulk_load<I>(&self, triples: I) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = Triple>,
    {
        let batch: Vec<Triple> = triples.into_iter().collect();
        if batch.is_empty() {
            return Ok(0);
        }
        // No-op pre-scan on a lock-free snapshot: O(batch · log n) of
        // dictionary lookups and containment probes happens with no lock
        // held at all. The snapshot `Arc` must drop before the write
        // lock, or `Arc::make_mut` below would see it and deep-clone the
        // whole graph on every load.
        let start = Instant::now();
        let (all_present, epoch) = {
            let (snapshot, epoch) = self.snapshot();
            (batch.iter().all(|t| snapshot.contains(t)), epoch)
        };
        let mut inner = self.inner.write();
        if all_present {
            // Re-validate under the write lock: the snapshot may be
            // stale. Same epoch — nothing changed since the pre-scan, so
            // the verdict stands. Epoch moved — re-check against the
            // current graph (rare, and still cheaper than a deep clone).
            if inner.epoch == epoch || batch.iter().all(|t| inner.graph.contains(t)) {
                return Ok(0);
            }
        }
        let limit = inner.capacity_limit.unwrap_or(crate::MAX_TRIPLES);
        let inner = &mut *inner;
        let added = if let Some(dir) = inner.persist.as_mut() {
            // Durable path: the exact fresh set must hit disk before it
            // becomes visible, so an acked load is durable (the ack
            // happens after fsync) and a failed one is invisible (the
            // commit rolls back, and the graph was never touched).
            let mut seen = HashSet::new();
            let fresh: Vec<Triple> = batch
                .iter()
                .copied()
                .filter(|t| !inner.graph.contains(t) && seen.insert(*t))
                .collect();
            if fresh.is_empty() {
                return Ok(0);
            }
            // The capacity verdict must precede the durable commit: a
            // batch acked to disk and then refused in memory would leave
            // the two states disagreeing forever.
            crate::segment::check_capacity(inner.graph.len() + fresh.len(), limit)?;
            dir.commit_batch(inner.epoch + 1, &fresh)?;
            // analyzer-allow: no-unwrap-in-service the capacity check
            // above ran against this exact fresh set, so the capped
            // insert cannot be refused after the durable commit acked.
            let added = Arc::make_mut(&mut inner.graph)
                .insert_batch_capped(fresh, limit)
                .expect("capacity was checked before the durable commit");
            debug_assert!(added > 0);
            added
        } else {
            Arc::make_mut(&mut inner.graph).insert_batch_capped(batch, limit)?
        };
        if added > 0 {
            inner.epoch += 1;
            crate::obs::on_epoch_bump();
            // Every cached entry is keyed to an older epoch and is now
            // unreachable — drop them so the result sets free their
            // memory immediately instead of lingering until evicted.
            self.cache.clear();
        }
        crate::obs::on_bulk_load(start.elapsed());
        Ok(added)
    }

    /// Folds the graph's pending delta segments into its base arrays
    /// (rebuilding the PSO permutation). The triple set is unchanged, so
    /// the epoch — and every cached result — stays valid. Returns `false`
    /// when there was nothing to fold.
    ///
    /// On a durable store a successful fold also writes a best-effort
    /// checkpoint, folding the commit log into a fresh base image on
    /// disk; a checkpoint failure is swallowed (the previous manifest +
    /// log remain a complete, consistent description of the store — use
    /// [`TripleStore::checkpoint`] to observe the error).
    pub fn compact(&self) -> bool {
        // The fold is O(rows + terms): doing it under the write lock
        // would stall every new snapshot for the duration. Instead,
        // clone and fold off-lock against a snapshot, then swap the
        // result in under a brief write lock if no load raced in
        // (same epoch ⟹ same contents, so the swap is invisible).
        // After a few lost races, fold in place to guarantee progress.
        for _ in 0..3 {
            let (snapshot, epoch) = self.snapshot();
            if snapshot.is_compacted() {
                return false;
            }
            let mut folded = (*snapshot).clone();
            drop(snapshot);
            folded.compact();
            let mut inner = self.inner.write();
            if inner.epoch == epoch {
                inner.graph = Arc::new(folded);
                Self::checkpoint_locked(&mut inner);
                return true;
            }
        }
        let mut inner = self.inner.write();
        if inner.graph.is_compacted() {
            return false;
        }
        let folded = Arc::make_mut(&mut inner.graph).compact();
        if folded {
            Self::checkpoint_locked(&mut inner);
        }
        folded
    }

    /// Best-effort checkpoint of the current image, under an
    /// already-held write lock. No-op on volatile stores; on durable
    /// ones a failure is deliberately ignored here — the old manifest
    /// and log still describe the store exactly, and any orphaned
    /// half-written base file is swept at the next recovery.
    fn checkpoint_locked(inner: &mut Inner) {
        if let Some(dir) = inner.persist.as_mut() {
            let image: Vec<Triple> = inner.graph.iter().collect();
            let _ = dir.checkpoint(inner.epoch, &image);
        }
    }

    /// Checkpoints a durable store now: rewrites the on-disk base image
    /// from the current graph and truncates the commit log. Returns
    /// `Ok(false)` (and does nothing) on a volatile store, `Ok(true)`
    /// after a durable checkpoint.
    pub fn checkpoint(&self) -> Result<bool, StoreError> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let Some(dir) = inner.persist.as_mut() else {
            return Ok(false);
        };
        let image: Vec<Triple> = inner.graph.iter().collect();
        dir.checkpoint(inner.epoch, &image)?;
        Ok(true)
    }

    /// Whether this store is backed by a durable directory (opened via
    /// [`TripleStore::open`] or attached via [`TripleStore::persist_to`]).
    pub fn is_durable(&self) -> bool {
        self.inner.read().persist.is_some()
    }

    /// The current graph snapshot and its epoch (one brief read lock).
    fn snapshot(&self) -> (Arc<EncodedGraph>, u64) {
        let inner = self.inner.read();
        (Arc::clone(&inner.graph), inner.epoch)
    }

    /// An owned, lock-free snapshot of the store: the graph `Arc` and
    /// its epoch. Long analytical reads run on it without blocking loads
    /// (which proceed copy-on-write while the snapshot is held).
    pub fn read_snapshot(&self) -> StoreSnapshot {
        let (graph, epoch) = self.snapshot();
        StoreSnapshot { graph, epoch }
    }

    pub fn len(&self) -> usize {
        self.snapshot().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Runs `f` against a snapshot of the encoded graph — the hook the
    /// evaluation engine uses to borrow the store as a
    /// [`wdsparql_rdf::TripleIndex`]. `f` runs lock-free: a long
    /// evaluation never blocks concurrent bulk loads or other queries.
    pub fn with_index<R>(&self, f: impl FnOnce(&EncodedGraph) -> R) -> R {
        f(&self.snapshot().0)
    }

    /// A consistent stats snapshot. Also refreshes the process-wide
    /// registry's `store.*` gauges — the registry keeps the last
    /// published observation, this remains the source of truth.
    pub fn stats(&self) -> StoreStats {
        let (graph, epoch) = self.snapshot();
        let stats = stats_of(&graph, epoch);
        crate::obs::publish_store_gauges(
            stats.triples as u64,
            stats.terms as u64,
            stats.base_rows as u64,
            stats.delta_rows as u64,
            stats.segments as u64,
            stats.epoch,
            1,
        );
        stats
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Evaluation order for a conjunctive (BGP) query: pattern indexes
    /// most-selective-first, computed on the current snapshot. For a
    /// plan guaranteed to match an execution, use
    /// [`TripleStore::query_with_plan`] — between a bare `plan` and a
    /// later `query`, a bulk load may land and change the snapshot.
    pub fn plan(&self, patterns: &[TriplePattern]) -> Vec<usize> {
        plan_order(&*self.snapshot().0, patterns)
    }

    /// Cached single-pattern solutions.
    pub fn solutions(&self, pat: &TriplePattern) -> Arc<Vec<Mapping>> {
        let (graph, epoch) = self.snapshot();
        self.cached(epoch, bgp_cache_key(std::slice::from_ref(pat)), || {
            graph.solutions(pat)
        })
    }

    /// Evaluates the conjunction of `patterns` (a BGP: the AND-only
    /// fragment) under the configured [`JoinStrategy`]: the pairwise
    /// pipeline (most-selective-first ordering, a sorted semi-join on
    /// the first shared variable, bind joins for the rest), the
    /// worst-case-optimal leapfrog join over the sorted permutations, or
    /// — under `Auto` — whichever the core's shape calls for. Results
    /// are cached per epoch.
    pub fn query(&self, patterns: &[TriplePattern]) -> Arc<Vec<Mapping>> {
        let (graph, epoch) = self.snapshot();
        let strategy = self.join_strategy();
        self.cached(epoch, strategy_cache_key(patterns, Some(strategy)), || {
            eval_bgp_with_strategy(&*graph, patterns, strategy)
        })
    }

    /// As [`TripleStore::query`], but also returns the evaluation order —
    /// plan and solutions computed on the *same* snapshot, taken once,
    /// and the plan computed exactly once (execution receives the order
    /// instead of re-deriving it). A bulk load landing between planning
    /// and execution cannot make the displayed plan diverge from the
    /// executed one (the epoch field names the snapshot both came from).
    pub fn query_with_plan(&self, patterns: &[TriplePattern]) -> PlannedQuery {
        self.query_with_plan_interleaved(patterns, || ())
    }

    /// [`TripleStore::query_with_plan`] with an injection point between
    /// planning and execution — the regression hook for the epoch race
    /// (tests interleave a `bulk_load` there and assert plan/solution
    /// consistency).
    fn query_with_plan_interleaved(
        &self,
        patterns: &[TriplePattern],
        between: impl FnOnce(),
    ) -> PlannedQuery {
        let start = Instant::now();
        let (graph, epoch) = self.snapshot();
        let configured = self.join_strategy();
        let plan_start = Instant::now();
        let plan = plan_order(&*graph, patterns);
        let strategy = resolve_with_order(&*graph, patterns, configured, &plan);
        let plan_elapsed = plan_start.elapsed();
        between();
        let key = strategy_cache_key(patterns, Some(configured));
        let solutions = self.cached(epoch, key, || match strategy {
            JoinStrategy::Wco => eval_bgp_wco(&*graph, patterns),
            _ => eval_bgp_planned(&*graph, patterns, &plan),
        });
        crate::obs::on_query(strategy == JoinStrategy::Wco, start.elapsed(), plan_elapsed);
        PlannedQuery {
            plan,
            solutions,
            epoch,
            strategy,
            profile: None,
        }
    }

    /// As [`TripleStore::query_with_plan`], additionally building an
    /// execution profile: a span tree with plan timing, the resolved
    /// strategy, the cache outcome, and — when the evaluation actually
    /// ran (a cache miss) — per-level WCOJ counters or per-step pairwise
    /// intermediate cardinalities. A cache hit reports `cache=hit` and
    /// no `execute` span: nothing was executed.
    pub fn query_with_profile(&self, patterns: &[TriplePattern]) -> PlannedQuery {
        let start = Instant::now();
        let (graph, epoch) = self.snapshot();
        let configured = self.join_strategy();
        let plan_start = Instant::now();
        let plan = plan_order(&*graph, patterns);
        let strategy = resolve_with_order(&*graph, patterns, configured, &plan);
        let plan_elapsed = plan_start.elapsed();
        let key = strategy_cache_key(patterns, Some(configured));
        let mut execute: Option<Span> = None;
        let solutions = self.cached(epoch, key, || {
            let exec_start = Instant::now();
            let (sols, detail) = match strategy {
                JoinStrategy::Wco => {
                    let (sols, levels) = eval_bgp_wco_profiled(&*graph, patterns);
                    (sols, wco_level_spans(&levels))
                }
                _ => {
                    let (sols, steps) = eval_bgp_planned_profiled(&*graph, patterns, &plan);
                    (sols, pairwise_step_spans(patterns, &steps))
                }
            };
            let mut span = Span::new("execute").timed(exec_start.elapsed());
            for child in detail {
                span.push(child);
            }
            execute = Some(span);
            sols
        });
        let total = start.elapsed();
        crate::obs::on_query(strategy == JoinStrategy::Wco, total, plan_elapsed);
        let computed_here = execute.is_some();
        let mut root = Span::new("query")
            .timed(total)
            .field("strategy", strategy)
            .field("epoch", epoch)
            .field("patterns", patterns.len())
            .field("rows", solutions.len())
            .field("cache", if computed_here { "miss" } else { "hit" });
        root.push(plan_span(&plan, plan_elapsed));
        if let Some(span) = execute {
            root.push(span);
        }
        PlannedQuery {
            plan,
            solutions,
            epoch,
            strategy,
            profile: Some(QueryProfile::new(root)),
        }
    }

    /// As [`TripleStore::query`], evaluated under `budget`: the
    /// streaming evaluators checkpoint the deadline/cancellation token
    /// at every pull and inside their inner loops, so a failed budget
    /// surfaces as a typed [`ExecError`] within one seek/merge step
    /// instead of running to completion. Complete results are cached
    /// exactly like [`TripleStore::query`]'s (same key, so the two
    /// paths serve each other); a budget failure is never cached — the
    /// next caller recomputes under its own budget.
    pub fn query_budgeted(
        &self,
        patterns: &[TriplePattern],
        budget: &QueryBudget,
    ) -> Result<Arc<Vec<Mapping>>, ExecError> {
        // Checkpoint before even consulting the cache: an already-dead
        // budget (zero deadline, tripped token) fails here, so the
        // outcome does not depend on what happens to be cached.
        budget.check()?;
        let (graph, epoch) = self.snapshot();
        let strategy = self.join_strategy();
        let key = strategy_cache_key(patterns, Some(strategy));
        let out = self.cache.get_or_try_compute(
            (key, epoch),
            || self.inner.read().epoch == epoch,
            || open_bgp_stream(&*graph, patterns, strategy, budget).collect_limit(None),
        );
        match &out {
            Ok(rows) => crate::obs::on_rows_streamed(rows.len() as u64),
            Err(ExecError::DeadlineExceeded) => crate::obs::on_deadline_exceeded(),
            Err(ExecError::Cancelled) => {}
        }
        out
    }

    /// Streams the first `limit` solutions of a BGP under `budget` —
    /// LIMIT pushdown: enumeration stops the moment the k-th solution
    /// arrives, so the evaluators do work proportional to the prefix,
    /// not the full result. The prefix equals the first `limit` rows of
    /// the corresponding full run (same plan, same snapshot, same
    /// order). **Uncached** in both directions: a k-prefix is a partial
    /// result and cached entries only ever hold complete ones.
    pub fn query_limited(
        &self,
        patterns: &[TriplePattern],
        limit: usize,
        budget: &QueryBudget,
    ) -> Result<Vec<Mapping>, ExecError> {
        budget.check()?;
        let (graph, _epoch) = self.snapshot();
        let strategy = self.join_strategy();
        let out = open_bgp_stream(&*graph, patterns, strategy, budget).collect_limit(Some(limit));
        match &out {
            Ok(rows) => crate::obs::on_rows_streamed(rows.len() as u64),
            Err(ExecError::DeadlineExceeded) => crate::obs::on_deadline_exceeded(),
            Err(ExecError::Cancelled) => {}
        }
        out
    }

    /// The infallible facade over [`TripleStore::query_limited`]: the
    /// first `limit` solutions under an unlimited budget.
    pub fn solutions_limit(&self, patterns: &[TriplePattern], limit: usize) -> Vec<Mapping> {
        // analyzer-allow: no-unwrap-in-service an unlimited budget never
        // fails a checkpoint, so the streamed prefix always arrives.
        self.query_limited(patterns, limit, &QueryBudget::unlimited())
            .expect("an unlimited budget never fails a checkpoint")
    }

    /// Shared variables helper for callers composing their own joins.
    pub fn shared_vars(a: &TriplePattern, b: &TriplePattern) -> Vec<Variable> {
        a.vars().intersection(&b.vars()).copied().collect()
    }

    /// Serves `(key, epoch)` from the cache, or computes it — at most
    /// once across concurrent callers (see
    /// [`ResultCache::get_or_compute`]). A result whose epoch has been
    /// superseded by the time it lands is returned but not cached.
    fn cached(
        &self,
        epoch: u64,
        key: String,
        compute: impl FnOnce() -> Vec<Mapping>,
    ) -> Arc<Vec<Mapping>> {
        self.cache
            .get_or_compute((key, epoch), || self.inner.read().epoch == epoch, compute)
    }
}

/// The `plan` child span of a query profile: the chosen pattern order
/// and the time planning (ordering + strategy resolution) took.
pub(crate) fn plan_span(plan: &[usize], elapsed: Duration) -> Span {
    let order = plan
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    Span::new("plan").timed(elapsed).field("order", order)
}

/// One `level ?v` span per WCOJ variable level, carrying the leapfrog's
/// per-level counters.
pub(crate) fn wco_level_spans(levels: &[(Variable, WcoLevelStats)]) -> Vec<Span> {
    levels
        .iter()
        .map(|(v, s)| {
            Span::new(format!("level {v}"))
                .field("rows", s.rows)
                .field("seeks", s.seeks)
                .field("gallop_steps", s.gallop_steps)
        })
        .collect()
}

/// One `join` span per pairwise plan step, carrying the step's pattern,
/// probe count and intermediate cardinality.
pub(crate) fn pairwise_step_spans(
    patterns: &[TriplePattern],
    steps: &[PairwiseStepStats],
) -> Vec<Span> {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Span::new(if i == 0 { "scan" } else { "join" })
                .field("pattern", patterns[s.pattern])
                .field("scans", s.scans)
                .field("rows", s.rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn store() -> TripleStore {
        TripleStore::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("c", "p", "d"),
                ("b", "q", "x"),
                ("c", "q", "x"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    #[test]
    fn bulk_load_bumps_epoch_only_on_change() {
        let s = store();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.bulk_load([Triple::from_strs("a", "p", "b")]), 0);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.bulk_load([Triple::from_strs("z", "p", "z")]), 1);
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn stats_snapshot_reports_cardinalities() {
        let s = store();
        let st = s.stats();
        assert_eq!(st.triples, 5);
        assert_eq!(st.predicates, 2);
        assert_eq!(st.predicate_cardinalities[0], (Iri::new("p"), 3));
        assert!(st.to_string().contains("p=3"));
        // from_triples compacts: everything in the base, no deltas.
        assert_eq!((st.base_rows, st.delta_rows, st.segments), (5, 0, 0));
        assert!(st.to_string().contains("5 base row(s)"));
    }

    #[test]
    fn compact_folds_segments_and_keeps_the_cache() {
        let s = store();
        s.bulk_load([Triple::from_strs("d", "p", "e")]);
        let pats = [tp(var("x"), iri("p"), var("y"))];
        let before = s.query(&pats);
        assert!(s.stats().delta_rows > 0, "bulk_load should stage a delta");
        assert!(s.compact());
        assert!(!s.compact(), "second compact is a no-op");
        let st = s.stats();
        assert_eq!((st.delta_rows, st.segments), (0, 0));
        // Same epoch, same cached entry — and the same answers.
        let hits_before = s.cache_stats().hits;
        let after = s.query(&pats);
        assert_eq!(before, after);
        assert_eq!(s.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn capacity_limit_guards_loads_and_reports_cleanly() {
        let s = TripleStore::new();
        s.set_capacity_limit(Some(3));
        assert_eq!(s.bulk_load([Triple::from_strs("a", "p", "b")]), 1);
        let err = s
            .try_bulk_load((0..4).map(|i| Triple::from_strs(&format!("s{i}"), "p", "o")))
            .unwrap_err();
        let StoreError::Capacity(err) = err else {
            panic!("expected a capacity error, got {err}");
        };
        assert_eq!((err.attempted, err.limit), (5, 3));
        assert!(err.to_string().contains("configured limit of 3"));
        assert_eq!(s.len(), 1, "refused load leaves the store unchanged");
        // Lifting the limit lets the same batch in.
        s.set_capacity_limit(None);
        assert_eq!(
            s.bulk_load((0..4).map(|i| Triple::from_strs(&format!("s{i}"), "p", "o"))),
            4
        );
    }

    #[test]
    fn read_snapshot_pins_an_epoch() {
        let s = store();
        let snap = s.read_snapshot();
        assert_eq!(snap.epoch(), s.epoch());
        let before = snap.len();
        s.bulk_load([Triple::from_strs("zz", "p", "zz")]);
        // The held snapshot still sees the old world; a fresh one moves.
        assert_eq!(snap.len(), before);
        assert!(!snap.contains(&Triple::from_strs("zz", "p", "zz")));
        let fresh = s.read_snapshot();
        assert_eq!(fresh.len(), before + 1);
        assert_eq!(fresh.epoch(), snap.epoch() + 1);
    }

    #[test]
    fn plan_orders_most_selective_first() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")), // 3 candidates
            tp(var("y"), iri("q"), iri("x")), // 2 candidates
            tp(iri("a"), iri("p"), var("y")), // 1 candidate
        ];
        assert_eq!(s.plan(&pats), vec![2, 1, 0]);
    }

    #[test]
    fn plan_defers_disconnected_patterns() {
        // p: 2 triples, q: 3, r: 4 — by selectivity alone the order would
        // be [p, q, r], but q shares no variable with p, so the planner
        // must bridge through r to avoid a Cartesian product.
        let s = TripleStore::from_triples(
            [
                ("a1", "p", "b1"),
                ("a2", "p", "b2"),
                ("c1", "q", "d1"),
                ("c2", "q", "d2"),
                ("c3", "q", "d3"),
                ("b1", "r", "c1"),
                ("b2", "r", "c2"),
                ("b3", "r", "c3"),
                ("b4", "r", "c4"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let pats = [
            tp(var("a"), iri("p"), var("b")),
            tp(var("c"), iri("q"), var("d")),
            tp(var("b"), iri("r"), var("c")),
        ];
        assert_eq!(s.plan(&pats), vec![0, 2, 1]);
        // The reordered evaluation still yields the full join.
        assert_eq!(s.query(&pats).len(), 2);
    }

    /// A [`TripleIndex`] wrapper that counts planner probes — the
    /// regression harness for double planning: execution receives the
    /// order and must never call `candidate_count` again.
    struct CountingIndex<'a> {
        inner: &'a EncodedGraph,
        count_calls: Cell<usize>,
    }

    impl TripleIndex for CountingIndex<'_> {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn contains(&self, t: &Triple) -> bool {
            self.inner.contains(t)
        }

        fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
            Box::new(self.inner.iter())
        }

        fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
            TripleIndex::dom(self.inner)
        }

        fn dom_contains(&self, i: Iri) -> bool {
            TripleIndex::dom_contains(self.inner, i)
        }

        fn candidate_count(&self, pat: &TriplePattern) -> usize {
            self.count_calls.set(self.count_calls.get() + 1);
            self.inner.candidate_count(pat)
        }

        fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
            self.inner.match_pattern(pat)
        }
    }

    #[test]
    fn planned_execution_does_not_replan() {
        let g = EncodedGraph::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("b", "q", "x"),
                ("c", "q", "x"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let ix = CountingIndex {
            inner: &g,
            count_calls: Cell::new(0),
        };
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let order = plan_order(&ix, &pats);
        assert_eq!(
            ix.count_calls.get(),
            pats.len(),
            "planning probes each pattern exactly once"
        );
        ix.count_calls.set(0);
        let sols = eval_bgp_planned(&ix, &pats, &order);
        assert_eq!(sols.len(), 2);
        assert_eq!(
            ix.count_calls.get(),
            0,
            "execution with a plan in hand must not re-plan"
        );
    }

    #[test]
    fn planned_query_survives_an_interleaved_bulk_load() {
        // Before the fix, `plan` and `query` took separate snapshots: a
        // bulk load in between made the displayed plan and the executed
        // one come from different epochs. `query_with_plan` threads one
        // snapshot through both; the injected interleave lands exactly
        // in the old race window.
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let epoch_before = s.epoch();
        let out = s.query_with_plan_interleaved(&pats, || {
            // Make the load change both the plan input (q outgrows p, so
            // selectivity flips) and the answer set (d q x joins c p d).
            s.bulk_load((0..6).map(|i| Triple::from_strs(&format!("n{i}"), "q", "x")));
            s.bulk_load([Triple::from_strs("d", "q", "x")]);
        });
        // Plan and solutions both reflect the pre-load snapshot ...
        assert_eq!(out.epoch, epoch_before);
        assert_eq!(out.plan, vec![1, 0], "plan of the pre-load graph");
        assert_eq!(out.solutions.len(), 2, "solutions of the pre-load graph");
        // ... while a fresh call sees the post-load world, consistently.
        let fresh = s.query_with_plan(&pats);
        assert_eq!(fresh.epoch, s.epoch());
        assert_eq!(fresh.plan, vec![0, 1], "plan of the post-load graph");
        assert_eq!(fresh.solutions.len(), 3);
    }

    #[test]
    fn noop_bulk_load_revalidates_under_the_write_lock() {
        let s = store();
        let epoch = s.epoch();
        // All-present batches are detected on the snapshot and re-validated
        // under the write lock — no epoch bump, no cache clear.
        let pats = [tp(var("x"), iri("p"), var("y"))];
        s.query(&pats);
        let entries = s.cache_stats().entries;
        assert_eq!(s.bulk_load(store_triples()), 0);
        assert_eq!(s.epoch(), epoch);
        assert_eq!(s.cache_stats().entries, entries, "cache survived the no-op");
        // An empty batch takes no locks at all.
        assert_eq!(s.bulk_load(std::iter::empty::<Triple>()), 0);
    }

    fn store_triples() -> Vec<Triple> {
        [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
            ("b", "q", "x"),
            ("c", "q", "x"),
        ]
        .map(|(s, p, o)| Triple::from_strs(s, p, o))
        .to_vec()
    }

    #[test]
    fn join_strategy_knob_routes_and_agrees() {
        let s = TripleStore::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("a", "p", "c"),
                ("c", "p", "d"),
                ("b", "p", "d"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        let chain = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
        ];
        // Auto (the default) resolves the cyclic core to the WCOJ and
        // the chain to the pairwise pipeline.
        assert_eq!(s.join_strategy(), crate::JoinStrategy::Auto);
        let auto = s.query_with_plan(&triangle);
        assert_eq!(auto.strategy, crate::JoinStrategy::Wco);
        assert_eq!(
            s.query_with_plan(&chain).strategy,
            crate::JoinStrategy::Pairwise
        );
        // Forcing pairwise agrees on the solution set, and flipping the
        // knob clears the cache (no stale cross-strategy hits).
        s.set_join_strategy(crate::JoinStrategy::Pairwise);
        assert_eq!(s.cache_stats().entries, 0, "knob flip clears the cache");
        let pairwise = s.query_with_plan(&triangle);
        assert_eq!(pairwise.strategy, crate::JoinStrategy::Pairwise);
        let sorted = |sols: &Arc<Vec<Mapping>>| {
            let mut v: Vec<Mapping> = sols.iter().cloned().collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&auto.solutions), sorted(&pairwise.solutions));
        assert!(!auto.solutions.is_empty());
        // And the forced-WCO knob serves the plain query path too.
        s.set_join_strategy(crate::JoinStrategy::Wco);
        assert_eq!(
            sorted(&s.query(&chain)),
            sorted(&{
                s.set_join_strategy(crate::JoinStrategy::Pairwise);
                s.query(&chain)
            })
        );
    }

    #[test]
    fn query_with_profile_builds_a_span_tree() {
        let s = TripleStore::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("a", "p", "c"),
                ("c", "p", "d"),
                ("b", "p", "d"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        let out = s.query_with_profile(&triangle);
        assert_eq!(out.strategy, JoinStrategy::Wco);
        assert_eq!(out.solutions, s.query_with_plan(&triangle).solutions);
        let profile = out.profile.expect("profiling was requested");
        assert_eq!(profile.root.get("strategy"), Some("wco"));
        assert_eq!(profile.root.get("cache"), Some("miss"));
        assert!(profile.root.duration().is_some());
        let exec = profile
            .root
            .children()
            .iter()
            .find(|c| c.name() == "execute")
            .expect("a miss has an execute span");
        assert_eq!(exec.children().len(), 3, "one span per variable level");
        for level in exec.children() {
            assert!(level.name().starts_with("level ?"), "{}", level.name());
            assert!(level.get("rows").is_some());
            assert!(level.get("seeks").is_some());
            assert!(level.get("gallop_steps").is_some());
        }
        let text = profile.to_string();
        assert!(text.contains("├─ plan"), "rendered tree:\n{text}");
        // The same query again is served from the cache: no execute span.
        let again = s.query_with_profile(&triangle);
        let cached = again.profile.expect("profiling was requested");
        assert_eq!(cached.root.get("cache"), Some("hit"));
        assert!(cached.root.children().iter().all(|c| c.name() != "execute"));
        // An acyclic chain resolves pairwise: scan + join steps with
        // intermediate cardinalities.
        let chain = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
        ];
        let pq = s.query_with_profile(&chain);
        assert_eq!(pq.strategy, JoinStrategy::Pairwise);
        let profile = pq.profile.expect("profiling was requested");
        let exec = profile
            .root
            .children()
            .iter()
            .find(|c| c.name() == "execute")
            .expect("a miss has an execute span");
        assert_eq!(exec.children().len(), 2);
        assert_eq!(exec.children()[0].name(), "scan");
        assert_eq!(exec.children()[1].name(), "join");
        assert_eq!(
            exec.children()[1].get("rows").map(str::to_owned),
            Some(pq.solutions.len().to_string()),
            "the last step's cardinality is the answer count"
        );
    }

    #[test]
    fn query_joins_and_caches() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let sols = s.query(&pats);
        // (a,b) with b q x; (b,c) with c q x.
        assert_eq!(sols.len(), 2);
        for mu in sols.iter() {
            assert_eq!(mu.get(Variable::new("z")), Some(Iri::new("x")));
        }
        let before = s.cache_stats();
        let again = s.query(&pats);
        let after = s.cache_stats();
        assert_eq!(sols, again);
        assert_eq!(after.hits, before.hits + 1);
        // A load invalidates: the stale entries are dropped outright and
        // the next query recomputes.
        s.bulk_load([Triple::from_strs("d", "q", "x")]);
        assert_eq!(s.cache_stats().entries, 0);
        let fresh = s.query(&pats);
        assert_eq!(fresh.len(), 3);
    }

    #[test]
    fn query_agrees_with_reference_join_order_independence() {
        let s = store();
        let a = tp(var("x"), iri("p"), var("y"));
        let b = tp(var("y"), iri("q"), var("z"));
        let ab = s.query(&[a, b]);
        let ba = s.query(&[b, a]);
        let mut xs: Vec<Mapping> = ab.iter().cloned().collect();
        let mut ys: Vec<Mapping> = ba.iter().cloned().collect();
        xs.sort();
        ys.sort();
        assert_eq!(xs, ys);
    }

    #[test]
    fn empty_query_yields_the_empty_mapping() {
        let s = store();
        let sols = s.query(&[]);
        assert_eq!(sols.as_slice(), &[Mapping::new()]);
    }

    #[test]
    fn query_budgeted_shares_the_cache_and_types_its_failures() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        // An unlimited budget agrees with the materialising path and
        // lands in the same cache entry.
        let budgeted = s
            .query_budgeted(&pats, &QueryBudget::unlimited())
            .expect("unlimited");
        assert_eq!(budgeted, s.query(&pats), "one cache entry serves both");
        assert_eq!(s.cache_stats().misses, 1, "query() hit the budgeted entry");
        // A dead budget fails typed, and the failure is not cached: the
        // key stays recomputable.
        let s2 = store();
        let err = s2.query_budgeted(&pats, &QueryBudget::with_deadline(Duration::ZERO));
        assert_eq!(err, Err(ExecError::DeadlineExceeded));
        assert_eq!(s2.cache_stats().entries, 0, "errors never land in the LRU");
        assert_eq!(
            s2.query_budgeted(&pats, &QueryBudget::unlimited())
                .expect("fresh budget")
                .len(),
            2
        );
        // Cancellation surfaces as its own variant.
        let token = wdsparql_rdf::CancelToken::new();
        token.cancel();
        let s3 = store();
        assert_eq!(
            s3.query_budgeted(&pats, &QueryBudget::with_cancel(token)),
            Err(ExecError::Cancelled)
        );
    }

    #[test]
    fn query_limited_streams_the_exact_prefix_uncached() {
        let s = store();
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let full = s.query(&pats);
        assert_eq!(full.len(), 2);
        for k in 0..=full.len() {
            assert_eq!(
                s.solutions_limit(&pats, k),
                full[..k],
                "LIMIT {k} must be the exact k-prefix of the full run"
            );
        }
        // Over-asking caps at the full result.
        assert_eq!(s.solutions_limit(&pats, 99), *full);
        // Limited runs neither read nor populate the result cache.
        let entries = s.cache_stats().entries;
        let hits = s.cache_stats().hits;
        s.solutions_limit(&pats, 1);
        assert_eq!(s.cache_stats().entries, entries);
        assert_eq!(s.cache_stats().hits, hits);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let s = TripleStore::with_cache_capacity(2);
        s.bulk_load([Triple::from_strs("a", "p", "b")]);
        let p1 = tp(var("x"), iri("p"), var("y"));
        let p2 = tp(iri("a"), var("w"), var("y"));
        let p3 = tp(var("x"), var("w"), iri("b"));
        s.solutions(&p1);
        s.solutions(&p2);
        s.solutions(&p1); // refresh p1
        s.solutions(&p3); // evicts p2
        assert_eq!(s.cache_stats().entries, 2);
        let before = s.cache_stats().hits;
        s.solutions(&p1);
        assert_eq!(s.cache_stats().hits, before + 1);
        s.solutions(&p2); // miss: was evicted
        assert_eq!(s.cache_stats().misses, 4);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for i in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    if i == 0 && j % 10 == 0 {
                        s.bulk_load([Triple::from_strs(&format!("w{j}"), "p", "b")]);
                    }
                    if i == 1 && j % 25 == 0 {
                        s.compact();
                    }
                    let sols = s.query(&[tp(var("x"), iri("p"), var("y"))]);
                    assert!(sols.len() >= 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.len() > 5);
    }
}
