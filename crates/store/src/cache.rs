//! The shared result cache behind [`TripleStore`] and [`ShardedStore`]:
//! an LRU keyed by an arbitrary key type (query text plus whatever epoch
//! shape the owner validates against), with per-key in-flight
//! deduplication so N concurrent misses of the same key compute the
//! result once.
//!
//! Recency is tracked by a logical clock plus a tick-ordered index
//! ([`std::collections::BTreeMap`]), so eviction pops the stalest entry
//! in `O(log n)` instead of scanning the whole map — the scan was fine
//! at a 128-entry default but not for the service-sized caches the
//! sharded facade fronts.
//!
//! [`TripleStore`]: crate::TripleStore
//! [`ShardedStore`]: crate::ShardedStore

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use wdsparql_rdf::{ExecError, Mapping};

/// Cache hit/miss counters (monotonic over the cache's lifetime).
/// `hits` counts results served without a computation — from the LRU or
/// by joining another thread's in-flight computation; `misses` counts
/// actual evaluations. `evictions` counts entries pushed out by
/// capacity pressure (epoch invalidations via `clear`/`retain` are not
/// evictions), and `stampede_waits` is the subset of `hits` that were
/// served by joining an in-flight computation rather than the LRU.
/// Every counter is mirrored into the process-wide metrics registry
/// ([`crate::obs`]) as `cache.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub stampede_waits: u64,
    pub entries: usize,
}

/// In-flight computation slot: filled exactly once, everyone else
/// waits. The slot holds the computation's *outcome* — a budget failure
/// ([`ExecError`]) lands here too, so every waiter of a doomed
/// computation gets the same typed error instead of a partial result.
type PendingSlot = Arc<OnceLock<Result<Arc<Vec<Mapping>>, ExecError>>>;

/// A small LRU over solution sets. Recency is a logical clock; the
/// tick-ordered index makes eviction `O(log n)` (pop the smallest
/// stamp) while preserving exactly the old full-scan eviction order:
/// the entry with the stalest stamp goes first.
pub(crate) struct LruCache<K> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (Arc<Vec<Mapping>>, u64)>,
    /// stamp → key, mirror of `map`'s stamps (stamps are unique: the
    /// clock advances on every touch).
    order: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    pub(crate) fn new(capacity: usize) -> LruCache<K> {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<Arc<Vec<Mapping>>> {
        self.tick += 1;
        let tick = self.tick;
        let (value, stamp) = self.map.get_mut(key)?;
        self.order.remove(stamp);
        *stamp = tick;
        self.order.insert(tick, key.clone());
        Some(Arc::clone(value))
    }

    /// Inserts (or refreshes) `key`; returns `true` when a stale entry
    /// was evicted to make room — the owner's eviction counter hook.
    pub(crate) fn put(&mut self, key: K, value: Arc<Vec<Mapping>>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let mut evicted = false;
        if let Some((_, stamp)) = self.map.get(&key) {
            self.order.remove(stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((_, oldest)) = self.order.pop_first() {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.order.insert(self.tick, key.clone());
        self.map.insert(key, (value, self.tick));
        evicted
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Drops every entry whose key fails the predicate (the sharded
    /// facade's selective invalidation: only results that read a bumped
    /// shard go).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let doomed: Vec<(K, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(k, (_, stamp))| (k.clone(), *stamp))
            .collect();
        for (k, stamp) in doomed {
            self.map.remove(&k);
            self.order.remove(&stamp);
        }
    }
}

/// An LRU result cache with per-key in-flight deduplication, generic
/// over the key (the owner decides what "epoch" means: a single counter
/// for [`TripleStore`], a per-shard epoch vector for [`ShardedStore`]).
///
/// [`TripleStore`]: crate::TripleStore
/// [`ShardedStore`]: crate::ShardedStore
pub(crate) struct ResultCache<K> {
    cache: Mutex<LruCache<K>>,
    /// In-flight computations keyed like the cache: concurrent misses of
    /// the same key join the first thread's slot instead of re-running
    /// the evaluation.
    pending: Mutex<HashMap<K, PendingSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stampede_waits: AtomicU64,
}

impl<K: Eq + Hash + Clone> ResultCache<K> {
    pub(crate) fn new(capacity: usize) -> ResultCache<K> {
        ResultCache {
            cache: Mutex::new(LruCache::new(capacity)),
            pending: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stampede_waits: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            // relaxed-ok: monotonic counters read for reporting only; no
            // other memory depends on their order.
            hits: self.hits.load(Ordering::Relaxed),
            // relaxed-ok: same reporting-only counter as `hits` above.
            misses: self.misses.load(Ordering::Relaxed),
            // relaxed-ok: same reporting-only counter as `hits` above.
            evictions: self.evictions.load(Ordering::Relaxed),
            // relaxed-ok: same reporting-only counter as `hits` above.
            stampede_waits: self.stampede_waits.load(Ordering::Relaxed),
            entries: self.cache.lock().len(),
        }
    }

    /// Drops every cached entry (the single-epoch owner's invalidation:
    /// after an epoch bump all old entries are unreachable, so freeing
    /// their result sets immediately beats waiting for eviction).
    pub(crate) fn clear(&self) {
        self.cache.lock().clear();
    }

    /// Selectively drops entries whose key fails the predicate.
    pub(crate) fn retain(&self, keep: impl FnMut(&K) -> bool) {
        self.cache.lock().retain(keep);
    }

    /// Serves `key` from the cache, or computes it — at most once across
    /// concurrent callers: the first miss installs an in-flight slot,
    /// later misses of the same key block on that slot instead of
    /// re-running `compute`. The leader publishes to the LRU only when
    /// `still_valid` holds (the owner re-checks its epochs there), so a
    /// result computed on a snapshot that has since been superseded is
    /// returned to callers but never cached.
    pub(crate) fn get_or_compute(
        &self,
        key: K,
        still_valid: impl FnOnce() -> bool,
        compute: impl FnOnce() -> Vec<Mapping>,
    ) -> Arc<Vec<Mapping>> {
        // analyzer-allow: no-unwrap-in-service an infallible computation
        // wrapped in Ok can never surface a budget error.
        self.get_or_try_compute(key, still_valid, || Ok(compute()))
            .expect("an infallible computation cannot fail")
    }

    /// The fallible twin of [`ResultCache::get_or_compute`] — the entry
    /// point for budgeted queries. A `compute` that fails its
    /// [`wdsparql_rdf::QueryBudget`] stores the [`ExecError`] in the
    /// in-flight slot, so every concurrent waiter of the doomed
    /// computation receives the same typed error; **errors are never
    /// inserted into the LRU** (cached entries only ever hold complete
    /// result sets), so the next caller of the key recomputes under its
    /// own budget.
    pub(crate) fn get_or_try_compute(
        &self,
        key: K,
        still_valid: impl FnOnce() -> bool,
        compute: impl FnOnce() -> Result<Vec<Mapping>, ExecError>,
    ) -> Result<Arc<Vec<Mapping>>, ExecError> {
        if let Some(hit) = self.cache.lock().get(&key) {
            // relaxed-ok: statistics counter; the hit itself synchronizes
            // through the cache mutex.
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::obs::on_cache_hit();
            return Ok(hit);
        }
        let (slot, leader) = {
            let mut pending = self.pending.lock();
            match pending.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    // Double-check the cache while holding the pending
                    // lock: a leader that published and unregistered
                    // between our cache miss and this point must not
                    // trigger a second computation. (Lock order is
                    // pending → cache here; no path nests them the other
                    // way round.)
                    if let Some(hit) = self.cache.lock().get(&key) {
                        // relaxed-ok: statistics counter, ordered by the
                        // pending+cache mutexes held here.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        crate::obs::on_cache_hit();
                        return Ok(hit);
                    }
                    let slot: PendingSlot = Arc::new(OnceLock::new());
                    e.insert(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        // Exactly one closure runs per slot; every other caller blocks
        // inside `get_or_init` until the outcome lands. The miss counter
        // therefore counts computations, not callers.
        let mut computed_here = false;
        let value = slot
            .get_or_init(|| {
                computed_here = true;
                // relaxed-ok: one computation = one miss, counted for
                // stats; publication order is carried by the OnceLock,
                // not this add.
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::obs::on_cache_miss();
                compute().map(Arc::new)
            })
            .clone();
        if !computed_here {
            // relaxed-ok: statistics counter; joiners synchronized via the
            // slot's OnceLock already.
            self.hits.fetch_add(1, Ordering::Relaxed);
            // relaxed-ok: as above — the stampede-wait subset of hits.
            self.stampede_waits.fetch_add(1, Ordering::Relaxed);
            crate::obs::on_cache_hit();
            crate::obs::on_cache_stampede_wait();
        }
        if leader {
            // Publish before unregistering, so a racer either sees the
            // cache entry or the pending slot. Skip the insert when the
            // owner's epochs moved meanwhile: the entry would be keyed
            // to a stale epoch — correct but unreachable, so only dead
            // weight. Errors never land in the LRU at all.
            if let Ok(complete) = &value {
                if still_valid() && self.cache.lock().put(key.clone(), Arc::clone(complete)) {
                    // relaxed-ok: statistics counter; eviction itself is
                    // ordered by the cache mutex.
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    crate::obs::on_cache_eviction();
                }
            }
            self.pending.lock().remove(&key);
        }
        value
    }

    #[cfg(test)]
    pub(crate) fn pending_is_empty(&self) -> bool {
        self.pending.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: usize) -> Arc<Vec<Mapping>> {
        Arc::new(vec![Mapping::new(); n])
    }

    /// The tick-ordered index evicts exactly what the old full-scan
    /// `min_by_key` eviction evicted: the entry with the stalest stamp,
    /// where both `get` and `put` refresh a key's stamp.
    #[test]
    fn eviction_order_is_unchanged() {
        let mut lru: LruCache<&str> = LruCache::new(2);
        lru.put("a", val(1));
        lru.put("b", val(2));
        assert!(lru.get(&"a").is_some()); // refresh a → b is stalest
        lru.put("c", val(3)); // evicts b
        assert!(lru.get(&"b").is_none());
        assert!(lru.get(&"a").is_some());
        assert!(lru.get(&"c").is_some());

        // Re-putting an existing key refreshes it without evicting.
        lru.put("a", val(4)); // a newest, c stalest
        lru.put("d", val(5)); // evicts c
        assert!(lru.get(&"c").is_none());
        assert_eq!(lru.get(&"a").unwrap().len(), 4);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru: LruCache<&str> = LruCache::new(0);
        lru.put("a", val(1));
        assert!(lru.get(&"a").is_none());
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn retain_drops_only_failing_keys() {
        let mut lru: LruCache<u32> = LruCache::new(8);
        for k in 0..6 {
            lru.put(k, val(k as usize));
        }
        lru.retain(|k| k % 2 == 0);
        assert_eq!(lru.len(), 3);
        assert!(lru.get(&1).is_none());
        assert!(lru.get(&2).is_some());
        // The order index stayed in sync: filling to capacity evicts the
        // stalest survivor, not a ghost of a retained-away key.
        for k in 10..15 {
            lru.put(k, val(1));
        }
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn invalid_results_are_returned_but_not_cached() {
        let cache: ResultCache<&str> = ResultCache::new(8);
        let out = cache.get_or_compute("k", || false, || vec![Mapping::new()]);
        assert_eq!(out.len(), 1);
        assert_eq!(cache.stats().entries, 0, "stale result must not land");
        assert_eq!(cache.stats().misses, 1);
        let again = cache.get_or_compute("k", || true, || vec![Mapping::new()]);
        assert_eq!(again.len(), 1);
        assert_eq!(cache.stats().misses, 2, "recomputed, not served stale");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_misses_compute_once() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let cache: Arc<ResultCache<String>> = Arc::new(ResultCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let value = cache.get_or_compute(
                    "dedup-key".to_string(),
                    || true,
                    || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the slot long enough that every thread
                        // passes its cache-miss check while the
                        // computation is still in flight.
                        std::thread::sleep(std::time::Duration::from_millis(200));
                        vec![Mapping::new()]
                    },
                );
                value.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation");
        let cs = cache.stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.hits, 7, "joiners count as hits");
        assert_eq!(cs.stampede_waits, 7, "every joiner waited on the slot");
        assert!(cache.pending_is_empty(), "slot unregistered");
    }

    #[test]
    fn budget_errors_propagate_to_waiters_and_are_never_cached() {
        use std::sync::Barrier;
        let cache: Arc<ResultCache<String>> = Arc::new(ResultCache::new(8));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_try_compute(
                    "doomed".to_string(),
                    || true,
                    || {
                        // Hold the slot so every thread joins in flight.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        Err(ExecError::DeadlineExceeded)
                    },
                )
            }));
        }
        for h in handles {
            assert_eq!(
                h.join().unwrap(),
                Err(ExecError::DeadlineExceeded),
                "every caller of the doomed key sees the typed error"
            );
        }
        let cs = cache.stats();
        assert_eq!(cs.misses, 1, "the doomed computation ran once");
        assert_eq!(cs.entries, 0, "an error must never land in the LRU");
        assert!(cache.pending_is_empty(), "slot unregistered after error");
        // The key is recomputable afterwards, under a fresh budget.
        let ok = cache
            .get_or_try_compute("doomed".to_string(), || true, || Ok(vec![Mapping::new()]))
            .expect("fresh computation succeeds");
        assert_eq!(ok.len(), 1);
        assert_eq!(cache.stats().entries, 1, "complete results cache normally");
    }

    #[test]
    fn capacity_evictions_are_counted() {
        let cache: ResultCache<u32> = ResultCache::new(2);
        for k in 0..4 {
            cache.get_or_compute(k, || true, || vec![Mapping::new()]);
        }
        let cs = cache.stats();
        assert_eq!(cs.misses, 4);
        assert_eq!(cs.entries, 2);
        assert_eq!(cs.evictions, 2, "third and fourth insert each evicted");
        assert_eq!(cs.stampede_waits, 0);
        // Epoch-style invalidation is not an eviction.
        cache.clear();
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.stats().entries, 0);
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    #[test]
    fn infallible_waiter_joining_doomed_budgeted_leader_panics() {
        let cache: Arc<ResultCache<String>> = Arc::new(ResultCache::new(8));
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let _ = c2.get_or_try_compute(
                "k".to_string(),
                || true,
                || {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                    Err(ExecError::DeadlineExceeded)
                },
            );
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // The infallible path joins the in-flight slot and receives the
        // leader's Err -> expect() panics.
        let waiter = std::thread::spawn(move || {
            cache.get_or_compute("k".to_string(), || true, || vec![Mapping::new()])
        });
        leader.join().unwrap();
        assert!(
            waiter.join().is_err(),
            "waiter should have panicked (bug repro)"
        );
    }
}
