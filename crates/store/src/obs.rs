//! The store stack's process-wide metrics: one [`wdsparql_obs::Registry`]
//! shared by every [`TripleStore`]/[`ShardedStore`] in the process, fed
//! by the event hooks below.
//!
//! The hooks are the **only** coupling between the store internals and
//! the registry. With the default `obs` feature they are one atomic RMW
//! each; built with `--no-default-features` every hook compiles to an
//! empty inline function, which is how the documented hot-path overhead
//! bound is measured (see `crates/obs/README.md`). Per-query execution
//! profiles ([`QueryProfile`](wdsparql_obs::QueryProfile) span trees)
//! are *not* routed through here — they are explicit opt-in values built
//! by `query_with_profile` and carried on the planned-query results.
//!
//! [`TripleStore`]: crate::TripleStore
//! [`ShardedStore`]: crate::ShardedStore

use std::sync::OnceLock;
use wdsparql_obs::Registry;

#[cfg(feature = "obs")]
use std::time::Duration;
#[cfg(feature = "obs")]
use wdsparql_obs::SHARD_SLOTS;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Exists (empty) even without the `obs`
/// feature, so `metrics_json` keeps a stable signature either way.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// The `schema: 3` JSON snapshot of the registry — what the CLI's
/// `--metrics-json PATH` writes and CI validates against
/// `crates/obs/metrics-schema.json`.
pub fn metrics_json() -> String {
    registry().to_json()
}

/// Saturates a `Duration` into histogram nanoseconds.
#[cfg(feature = "obs")]
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(feature = "obs")]
pub(crate) fn on_query(wco: bool, total: Duration, plan: Duration) {
    let r = registry();
    r.queries_total.inc();
    if wco {
        r.queries_wco.inc();
    } else {
        r.queries_pairwise.inc();
    }
    r.query_ns.record(ns(total));
    r.plan_ns.record(ns(plan));
}

#[cfg(feature = "obs")]
pub(crate) fn on_epoch_bump() {
    registry().epoch_bumps.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_bulk_load(elapsed: Duration) {
    registry().bulk_load_ns.record(ns(elapsed));
}

#[cfg(feature = "obs")]
pub(crate) fn on_compaction(elapsed: Duration) {
    let r = registry();
    r.compactions.inc();
    r.compact_ns.record(ns(elapsed));
}

#[cfg(feature = "obs")]
pub(crate) fn on_segment_append() {
    registry().segments_created.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_cache_hit() {
    registry().cache_hits.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_cache_miss() {
    registry().cache_misses.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_cache_eviction() {
    registry().cache_evictions.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_cache_stampede_wait() {
    registry().cache_stampede_waits.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_routed_read() {
    registry().routed_reads.inc();
}

#[cfg(feature = "obs")]
pub(crate) fn on_fanout(elapsed: Duration) {
    let r = registry();
    r.fanout_reads.inc();
    r.fanout_ns.record(ns(elapsed));
}

/// Rows ingested by shard `shard` — the load-balance signal. Shards
/// past the fixed slot count fold into the last slot.
#[cfg(feature = "obs")]
pub(crate) fn on_shard_rows(shard: usize, rows: u64) {
    registry().shard_rows[shard.min(SHARD_SLOTS - 1)].add(rows);
}

/// One shard's share of a read (routed or fan-out): rows served and
/// time spent, by slot — the read-side load-balance signal.
#[cfg(feature = "obs")]
pub(crate) fn on_shard_read(shard: usize, rows: u64, elapsed: Duration) {
    let slot = shard.min(SHARD_SLOTS - 1);
    let r = registry();
    r.shard_read_rows[slot].add(rows);
    r.shard_read_ns[slot].record(ns(elapsed));
}

/// A budgeted query failed its deadline checkpoint.
#[cfg(feature = "obs")]
pub(crate) fn on_deadline_exceeded() {
    registry().deadline_exceeded.inc();
}

/// The persistence layer issued an `fsync` or `dir_sync`.
#[cfg(feature = "obs")]
pub(crate) fn on_fsync() {
    registry().fsyncs.inc();
}

/// The persistence layer retried a transient I/O failure.
#[cfg(feature = "obs")]
pub(crate) fn on_commit_retry() {
    registry().commit_retries.inc();
}

/// Recovery quarantined `n` segments that failed verification.
#[cfg(feature = "obs")]
pub(crate) fn on_quarantine(n: u64) {
    registry().segments_quarantined.add(n);
}

/// A durable store finished opening (verify + rebuild + replay).
#[cfg(feature = "obs")]
pub(crate) fn on_recovery(elapsed: Duration) {
    registry().recovery_ns.record(ns(elapsed));
}

/// A budgeted/limited query completed, streaming `rows` solutions.
#[cfg(feature = "obs")]
pub(crate) fn on_rows_streamed(rows: u64) {
    registry().rows_streamed.record(rows);
}

/// Refreshes the `store.*` gauges from a stats snapshot (called by the
/// services' `stats()`, so the registry mirrors the latest observation).
#[cfg(feature = "obs")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn publish_store_gauges(
    triples: u64,
    terms: u64,
    base_rows: u64,
    delta_rows: u64,
    segments: u64,
    epoch: u64,
    shard_count: u64,
) {
    let r = registry();
    r.triples.set(triples);
    r.terms.set(terms);
    r.base_rows.set(base_rows);
    r.delta_rows.set(delta_rows);
    r.segments.set(segments);
    r.epoch.set(epoch);
    r.shard_count.set(shard_count);
}

// ── no-op shims (feature `obs` off) ────────────────────────────────────
// Same names, same call sites, zero code: the compiler inlines these
// away entirely, which is what the instrumentation-overhead measurement
// compares against.

#[cfg(not(feature = "obs"))]
pub(crate) fn on_query(_wco: bool, _total: std::time::Duration, _plan: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_epoch_bump() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_bulk_load(_elapsed: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_compaction(_elapsed: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_segment_append() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_cache_hit() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_cache_miss() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_cache_eviction() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_cache_stampede_wait() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_routed_read() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_fanout(_elapsed: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_shard_rows(_shard: usize, _rows: u64) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_shard_read(_shard: usize, _rows: u64, _elapsed: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_deadline_exceeded() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_fsync() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_commit_retry() {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_quarantine(_n: u64) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_recovery(_elapsed: std::time::Duration) {}
#[cfg(not(feature = "obs"))]
pub(crate) fn on_rows_streamed(_rows: u64) {}
#[cfg(not(feature = "obs"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn publish_store_gauges(
    _triples: u64,
    _terms: u64,
    _base_rows: u64,
    _delta_rows: u64,
    _segments: u64,
    _epoch: u64,
    _shard_count: u64,
) {
}

#[cfg(test)]
mod tests {
    #[test]
    fn metrics_json_is_schema_valid_from_a_cold_start() {
        let text = super::metrics_json();
        assert!(text.contains("\"schema\": 3"));
        assert!(text.contains("\"cache.hits\""));
        assert!(text.contains("\"query.total_ns\""));
        assert!(text.contains("\"store.deadline_exceeded_total\""));
        assert!(text.contains("\"query.rows_streamed\""));
        assert!(text.contains("\"shard_read_ns\""));
        assert!(text.contains("\"store.fsync_total\""));
        assert!(text.contains("\"store.commit_retries_total\""));
        assert!(text.contains("\"store.segments_quarantined_total\""));
        assert!(text.contains("\"store.recovery_ns\""));
    }
}
