//! Row-run plumbing for the log-structured [`EncodedGraph`]: permutation
//! rotations, immutable sorted delta segments, k-way merges, offset
//! tables and the `u32` capacity guard.
//!
//! A [`Segment`] is the unit of the write path: one `insert_batch`
//! becomes one segment holding the batch's rows sorted under the SPO,
//! POS and OSP rotations (the PSO permutation exists only in the
//! compacted base — see [`Perm::Pso`]). Segments are immutable once
//! built; compaction folds them back into the base arrays with one
//! k-way merge per permutation.
//!
//! [`EncodedGraph`]: crate::EncodedGraph

use crate::dict::TermId;
use std::fmt;
use std::sync::OnceLock;

/// One dictionary-encoded row: a triple's ids under some rotation.
pub(crate) type Row = [TermId; 3];

/// Which permutation a row slice came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Perm {
    Spo,
    Pos,
    Osp,
    /// Predicate-led, subject-sorted — the merge-join permutation.
    /// Unlike the other three it is *base-only*: delta segments carry no
    /// PSO run, so the scan planner consults it only when the graph is
    /// fully compacted.
    Pso,
}

impl Perm {
    /// Row position of each original component (s, p, o) in this
    /// permutation's rows.
    pub(crate) fn layout(self) -> [usize; 3] {
        match self {
            Perm::Spo => [0, 1, 2],
            Perm::Pos => [2, 0, 1],
            Perm::Osp => [1, 2, 0],
            Perm::Pso => [1, 0, 2],
        }
    }

    /// Rotates an `(s, p, o)` row into this permutation's order.
    pub(crate) fn rotate(self, [s, p, o]: Row) -> Row {
        match self {
            Perm::Spo => [s, p, o],
            Perm::Pos => [p, o, s],
            Perm::Osp => [o, s, p],
            Perm::Pso => [p, s, o],
        }
    }

    /// Reassembles a row of this permutation into (s, p, o) ids.
    pub(crate) fn spo_of(self, row: Row) -> Row {
        let [s, p, o] = self.layout();
        [row[s], row[p], row[o]]
    }
}

/// Hard capacity of one [`EncodedGraph`]: the per-permutation offset
/// tables hold `u32` row indexes, so the triple count must stay
/// representable — at most `u32::MAX` rows.
///
/// [`EncodedGraph`]: crate::EncodedGraph
pub const MAX_TRIPLES: usize = u32::MAX as usize;

/// An insert was refused because it would push the store past its
/// capacity: [`MAX_TRIPLES`] rows (above which the `u32` offset tables
/// would silently truncate), or a lower limit configured with
/// `EncodedGraph::set_capacity_limit` / `TripleStore::set_capacity_limit`
/// (an ingest guard for operators and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityError {
    /// The row count the rejected insert would have produced.
    pub attempted: usize,
    /// The capacity it tripped: [`MAX_TRIPLES`] or the configured limit.
    pub limit: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.limit < MAX_TRIPLES {
            write!(
                f,
                "store capacity exceeded: {} triples over the configured \
                 limit of {}",
                self.attempted, self.limit
            )
        } else {
            write!(
                f,
                "store capacity exceeded: {} triples would overflow the u32 \
                 offset tables (max {MAX_TRIPLES})",
                self.attempted
            )
        }
    }
}

impl std::error::Error for CapacityError {}

/// Guards the boundary arithmetic behind [`MAX_TRIPLES`] (or a lower
/// configured `limit`): `Ok` exactly when a store of `total_rows`
/// triples stays within the limit — and therefore still indexes with
/// `u32` offsets, since `limit` is clamped to [`MAX_TRIPLES`].
pub(crate) fn check_capacity(total_rows: usize, limit: usize) -> Result<(), CapacityError> {
    let limit = limit.min(MAX_TRIPLES);
    if total_rows > limit {
        return Err(CapacityError {
            attempted: total_rows,
            limit,
        });
    }
    debug_assert!(u32::try_from(total_rows).is_ok());
    Ok(())
}

/// One immutable delta segment: the new rows of a single `insert_batch`,
/// sorted in SPO order. The POS and OSP rotations are derived lazily on
/// the first scan that needs them — an ingest-only workload (batch after
/// batch, compact, never read between) pays for exactly one sort per
/// batch. Bounded-prefix scans over a segment run use binary search
/// directly — the runs are small, so they carry no offset tables — and
/// compaction consumes only the SPO run (the merged base re-derives the
/// other permutations by counting scatters, see [`scatter_by`]).
#[derive(Clone, Debug)]
pub(crate) struct Segment {
    spo: Vec<Row>,
    pos: OnceLock<Vec<Row>>,
    osp: OnceLock<Vec<Row>>,
}

impl Segment {
    /// Builds a segment from rows already sorted in SPO order.
    pub(crate) fn from_sorted_spo(spo: Vec<Row>) -> Segment {
        debug_assert!(spo.is_sorted());
        Segment {
            spo,
            pos: OnceLock::new(),
            osp: OnceLock::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.spo.len()
    }

    fn rotated(&self, perm: Perm) -> Vec<Row> {
        let mut rows: Vec<Row> = self.spo.iter().map(|&r| perm.rotate(r)).collect();
        rows.sort_unstable();
        rows
    }

    /// The segment's sorted run under `perm`. Panics for [`Perm::Pso`]:
    /// deltas carry no PSO run by design (the planner never asks).
    pub(crate) fn rows(&self, perm: Perm) -> &[Row] {
        match perm {
            Perm::Spo => &self.spo,
            Perm::Pos => self.pos.get_or_init(|| self.rotated(Perm::Pos)),
            Perm::Osp => self.osp.get_or_init(|| self.rotated(Perm::Osp)),
            Perm::Pso => unreachable!("delta segments carry no PSO run"),
        }
    }

    /// Consumes the segment into its SPO run — the compaction hand-off
    /// (the base rebuilds every other permutation from the merged SPO).
    pub(crate) fn into_spo(self) -> Vec<Row> {
        self.spo
    }
}

/// Stable counting sort of `rows` by the component at `key`, each row
/// rotated by `rotate` on its way out. Because counting sort is stable,
/// feeding rows already sorted by a secondary order yields the full
/// lexicographic order of the rotated rows in **O(rows + terms)** — no
/// comparisons: SPO scattered by `o` is OSP, OSP scattered by `p` is
/// POS, SPO scattered by `p` is PSO. Also returns the leading-id offset
/// table of the result (the scatter computes it anyway).
pub(crate) fn scatter_by(
    rows: &[Row],
    key: usize,
    terms: usize,
    rotate: impl Fn(Row) -> Row,
) -> (Vec<Row>, Vec<u32>) {
    debug_assert!(u32::try_from(rows.len()).is_ok(), "capacity guard bypassed");
    let mut off = vec![0u32; terms + 1];
    for row in rows {
        off[row[key] as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    let mut cursor: Vec<u32> = off.clone();
    let mut out = vec![[0 as TermId; 3]; rows.len()];
    for &row in rows {
        let slot = &mut cursor[row[key] as usize];
        out[*slot as usize] = rotate(row);
        *slot += 1;
    }
    (out, off)
}

/// Merges two sorted, disjoint runs into one sorted vector (rows during
/// compaction, terms for the sorted domain).
pub(crate) fn merge_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// K-way merge of sorted, pairwise-disjoint row runs into one sorted
/// vector — the compaction primitive. Tournament rounds merge runs
/// pairwise (similar sizes first), so total work is `O(rows · log runs)`
/// rather than the quadratic left fold.
pub(crate) fn merge_many(runs: Vec<Vec<Row>>) -> Vec<Row> {
    let mut runs: Vec<Vec<Row>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    runs.sort_by_key(Vec::len);
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_sorted(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Leading-component offsets: `off[id]..off[id+1]` is the row range whose
/// first component is `id`. The caller guarantees (via
/// [`check_capacity`]) that the row count fits `u32`.
pub(crate) fn offsets(rows: &[Row], terms: usize) -> Vec<u32> {
    debug_assert!(u32::try_from(rows.len()).is_ok(), "capacity guard bypassed");
    let mut off = vec![0u32; terms + 1];
    for row in rows {
        off[row[0] as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    off
}

/// Lazy k-way merge over sorted, disjoint row runs, yielding globally
/// sorted rows — the read-side counterpart of [`merge_many`], used by
/// `EncodedGraph::iter` to present base + deltas in SPO order without
/// materialising the merge.
pub(crate) struct MergedRows<'a> {
    /// The remaining suffix of every source run.
    heads: Vec<&'a [Row]>,
}

impl<'a> MergedRows<'a> {
    pub(crate) fn new(sources: impl IntoIterator<Item = &'a [Row]>) -> MergedRows<'a> {
        MergedRows {
            heads: sources.into_iter().filter(|s| !s.is_empty()).collect(),
        }
    }
}

impl Iterator for MergedRows<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        // Linear min over the run heads: the run count is small (one base
        // + a bounded number of segments), so a heap would cost more than
        // it saves.
        let (pos, _) = self
            .heads
            .iter()
            .enumerate()
            .min_by_key(|(_, run)| run[0])?;
        let run = &mut self.heads[pos];
        let row = run[0];
        *run = &run[1..];
        if run.is_empty() {
            self.heads.swap_remove(pos);
        }
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_round_trip() {
        let row: Row = [1, 2, 3];
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp, Perm::Pso] {
            assert_eq!(perm.spo_of(perm.rotate(row)), row, "{perm:?}");
        }
    }

    #[test]
    fn capacity_guard_boundary_arithmetic() {
        assert_eq!(check_capacity(0, MAX_TRIPLES), Ok(()));
        assert_eq!(check_capacity(MAX_TRIPLES, MAX_TRIPLES), Ok(()));
        let err = check_capacity(MAX_TRIPLES + 1, MAX_TRIPLES).unwrap_err();
        assert_eq!(err.attempted, MAX_TRIPLES + 1);
        assert_eq!(err.limit, MAX_TRIPLES);
        assert!(err.to_string().contains("capacity exceeded"));
        // A configured limit trips earlier, names itself, and is clamped
        // to the hard u32 bound.
        assert_eq!(check_capacity(10, 10), Ok(()));
        let err = check_capacity(11, 10).unwrap_err();
        assert_eq!((err.attempted, err.limit), (11, 10));
        assert!(err.to_string().contains("configured limit of 10"));
        assert_eq!(
            check_capacity(MAX_TRIPLES + 1, usize::MAX)
                .unwrap_err()
                .limit,
            MAX_TRIPLES
        );
        // The guard is exactly the u32 representability bound the offset
        // tables rely on.
        assert_eq!(MAX_TRIPLES, u32::MAX as usize);
    }

    #[test]
    fn segment_runs_are_sorted_rotations() {
        let seg = Segment::from_sorted_spo(vec![[0, 1, 2], [1, 0, 0], [1, 2, 0]]);
        assert_eq!(seg.len(), 3);
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp] {
            let rows = seg.rows(perm);
            assert!(rows.is_sorted(), "{perm:?}");
            let mut back: Vec<Row> = rows.iter().map(|&r| perm.spo_of(r)).collect();
            back.sort_unstable();
            assert_eq!(back, seg.rows(Perm::Spo));
        }
    }

    #[test]
    fn scatters_derive_the_other_permutations() {
        // A small but irregular SPO-sorted set.
        let mut spo: Vec<Row> = vec![
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 0],
            [1, 1, 2],
            [2, 0, 1],
            [2, 2, 2],
        ];
        spo.sort_unstable();
        let sorted_rotation = |perm: Perm| {
            let mut rows: Vec<Row> = spo.iter().map(|&r| perm.rotate(r)).collect();
            rows.sort_unstable();
            rows
        };
        let (osp, osp_off) = scatter_by(&spo, 2, 3, |[s, p, o]| [o, s, p]);
        assert_eq!(osp, sorted_rotation(Perm::Osp));
        assert_eq!(osp_off, offsets(&osp, 3));
        let (pos, pos_off) = scatter_by(&osp, 2, 3, |[o, s, p]| [p, o, s]);
        assert_eq!(pos, sorted_rotation(Perm::Pos));
        assert_eq!(pos_off, offsets(&pos, 3));
        let (pso, pso_off) = scatter_by(&spo, 1, 3, |[s, p, o]| [p, s, o]);
        assert_eq!(pso, sorted_rotation(Perm::Pso));
        assert_eq!(pso_off, pos_off);
    }

    #[test]
    fn merges_agree_with_sorting() {
        let a = vec![[0, 0, 0], [2, 0, 0], [4, 0, 0]];
        let b = vec![[1, 0, 0], [3, 0, 0]];
        let c = vec![[5, 0, 0]];
        let mut want: Vec<Row> = [a.clone(), b.clone(), c.clone()].concat();
        want.sort_unstable();
        assert_eq!(merge_sorted(&a, &b), merge_many(vec![a.clone(), b.clone()]));
        assert_eq!(merge_many(vec![a.clone(), b.clone(), c.clone()]), want);
        assert_eq!(merge_many(vec![]), Vec::<Row>::new());
        let merged: Vec<Row> =
            MergedRows::new([a.as_slice(), b.as_slice(), c.as_slice()]).collect();
        assert_eq!(merged, want);
    }

    #[test]
    fn offsets_partition_by_leading_id() {
        let rows = vec![[0, 9, 9], [0, 9, 9], [2, 1, 1]];
        let off = offsets(&rows, 3);
        assert_eq!(off, vec![0, 2, 2, 3]);
    }
}
