//! [`EncodedGraph`]: the triple set as sorted permutation arrays with a
//! log-structured write path.
//!
//! Every triple is dictionary-encoded into a `[TermId; 3]` row and stored
//! under several component rotations:
//!
//! ```text
//! SPO  rows are (s, p, o)   answers  (s ? ?) (s p ?) (s p o) (? ? ?)
//! POS  rows are (p, o, s)   answers  (? p ?) (? p o)
//! OSP  rows are (o, s, p)   answers  (? ? o) (s ? o)
//! PSO  rows are (p, s, o)   subject-sorted (? p ?) — merge-join inputs
//! ```
//!
//! The **base** arrays hold the compacted bulk: dictionary ids are dense,
//! so each base permutation carries an offset array indexed by leading
//! term id, and a bound *first* component resolves to its contiguous row
//! range in O(1). Writes are **log-structured**: `insert_batch` appends
//! one small sorted [`Segment`] per call instead of rewriting the base;
//! reads merge base + segments behind the same bounded-prefix narrowing
//! (segments are tiny, so their leading ranges come from binary search
//! instead of offsets). [`EncodedGraph::compact`] folds the segments
//! back into the base with one k-way merge of the SPO runs and re-derives
//! OSP, POS and the base-only PSO by stable counting scatters; a
//! [`CompactionPolicy`] decides when that happens automatically.

use crate::dict::{Dictionary, TermId};
use crate::segment::{
    check_capacity, merge_many, merge_sorted, offsets, scatter_by, MergedRows, Perm, Row, Segment,
};
pub use crate::segment::{CapacityError, MAX_TRIPLES};
use wdsparql_rdf::{binding_of, Iri, Mapping, RdfGraph, Term, Triple, TripleIndex, TriplePattern};

/// When [`EncodedGraph::insert_batch`] folds its delta segments back
/// into the base arrays on its own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Compact when the deltas exceed a quarter of the base (plus slack)
    /// or the segment count would degrade scans — amortised `O(log n)`
    /// rewrites per row instead of one per batch.
    #[default]
    Adaptive,
    /// Compact after every batch: the pre-log-structured full-rewrite
    /// write path, kept as the write-amplification bench baseline.
    EveryBatch,
    /// Never compact automatically; only [`EncodedGraph::compact`] folds.
    Manual,
}

/// Segment-count bound for [`CompactionPolicy::Adaptive`]: every scan
/// binary-searches each segment, so the fan-in stays small.
const MAX_SEGMENTS: usize = 48;
/// Delta slack for [`CompactionPolicy::Adaptive`], so tiny stores do not
/// compact on every batch.
const ADAPTIVE_SLACK: usize = 4096;

/// A dictionary-encoded, permutation-indexed set of ground triples.
#[derive(Clone, Debug, Default)]
pub struct EncodedGraph {
    dict: Dictionary,
    /// Compacted base permutations and their leading-id offset tables.
    spo: Vec<Row>,
    pos: Vec<Row>,
    osp: Vec<Row>,
    /// Base-only merge-join permutation, rebuilt by [`Self::compact`];
    /// consulted by `scan` only when no delta segments are pending.
    pso: Vec<Row>,
    spo_off: Vec<u32>,
    pos_off: Vec<u32>,
    osp_off: Vec<u32>,
    pso_off: Vec<u32>,
    /// Pending delta segments, oldest first; disjoint from the base and
    /// from each other.
    segments: Vec<Segment>,
    /// Total rows across `segments`.
    delta_rows: usize,
    policy: CompactionPolicy,
    /// Lifetime count of delta folds (not bumped by no-op compactions).
    compactions: u64,
    dom_sorted: Vec<Iri>,
}

/// The narrowed row runs answering one pattern: the base range plus one
/// run per pending delta segment, all under the same permutation. The
/// base is held apart from the deltas so the common fully-compacted case
/// allocates nothing (an empty `Vec` has no heap block).
pub(crate) struct PatternRuns<'a> {
    pub(crate) base: &'a [Row],
    pub(crate) deltas: Vec<&'a [Row]>,
}

impl<'a> PatternRuns<'a> {
    /// The non-empty runs, base first.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &'a [Row]> + '_ {
        std::iter::once(self.base)
            .chain(self.deltas.iter().copied())
            .filter(|r| !r.is_empty())
    }

    fn total(&self) -> usize {
        self.base.len() + self.deltas.iter().map(|d| d.len()).sum::<usize>()
    }
}

/// The resolution of a pattern against the indexes: the permutation
/// whose sorted prefix covers the bound positions, and the narrowed
/// runs. `residual` is `None` on every shape but one — the `(s ? o)`
/// hybrid, where a tiny subject block is scanned with the object as a
/// per-row filter instead of binary-searching a hub object's block.
struct Scan<'a> {
    perm: Perm,
    runs: PatternRuns<'a>,
    /// At most one `(row position, required id)` filter.
    residual: Option<(usize, TermId)>,
}

impl Scan<'_> {
    #[inline]
    fn row_passes(&self, row: &Row) -> bool {
        self.residual.is_none_or(|(pos, id)| row[pos] == id)
    }
}

impl EncodedGraph {
    pub fn new() -> EncodedGraph {
        EncodedGraph::default()
    }

    /// An empty graph with the given [`CompactionPolicy`].
    pub fn with_compaction_policy(policy: CompactionPolicy) -> EncodedGraph {
        EncodedGraph {
            policy,
            ..EncodedGraph::default()
        }
    }

    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// One-shot build: a single batch, compacted (so the PSO permutation
    /// is ready before the first query).
    pub fn from_triples<I>(triples: I) -> EncodedGraph
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut g = EncodedGraph::new();
        g.insert_batch(triples)
            .expect("one-shot build exceeds MAX_TRIPLES");
        g.compact();
        g
    }

    /// Re-encodes an [`RdfGraph`].
    pub fn from_rdf(g: &RdfGraph) -> EncodedGraph {
        EncodedGraph::from_triples(g.iter().copied())
    }

    /// Bulk insert: encodes and sorts `triples` into one new delta
    /// segment per call — `O(batch · log batch)` plus a containment probe
    /// per triple, never a base rewrite (unless the [`CompactionPolicy`]
    /// folds afterwards). Returns the number of triples that were not
    /// already present.
    ///
    /// Errors with [`CapacityError`] — leaving the graph (and its
    /// dictionary) untouched — when the insert would push the store past
    /// [`MAX_TRIPLES`] rows, the bound above which the `u32` offset
    /// tables would silently truncate.
    pub fn insert_batch<I>(&mut self, triples: I) -> Result<usize, CapacityError>
    where
        I: IntoIterator<Item = Triple>,
    {
        self.insert_batch_capped(triples, MAX_TRIPLES)
    }

    /// [`EncodedGraph::insert_batch`] under a row-count `limit` (clamped
    /// to [`MAX_TRIPLES`]) — the hook the service layer uses to enforce
    /// its configurable ingest cap. The limit is a parameter, not graph
    /// state, so configuring it never touches the copy-on-write payload.
    pub(crate) fn insert_batch_capped<I>(
        &mut self,
        triples: I,
        limit: usize,
    ) -> Result<usize, CapacityError>
    where
        I: IntoIterator<Item = Triple>,
    {
        // Phase 1, read-only: drop triples already present *before*
        // interning anything, so a refused batch cannot leave terms in
        // the dictionary that no triple uses. A triple with any unknown
        // term is fresh by definition; the rest are probed in sorted row
        // order — one two-pointer walk per segment and a block binary
        // search against the base, instead of per-triple searches of
        // every run.
        let mut fresh: Vec<Triple> = Vec::new();
        let mut known: Vec<(Row, Triple)> = Vec::new();
        for t in triples {
            match self.encode_triple(&t) {
                None => fresh.push(t),
                Some(row) => known.push((row, t)),
            }
        }
        known.sort_unstable_by_key(|&(row, _)| row);
        known.dedup_by_key(|&mut (row, _)| row);
        let mut present = vec![false; known.len()];
        for seg in &self.segments {
            let run = seg.rows(Perm::Spo);
            let mut i = 0;
            for ((row, _), present) in known.iter().zip(&mut present) {
                while i < run.len() && run[i] < *row {
                    i += 1;
                }
                if i == run.len() {
                    break;
                }
                if run[i] == *row {
                    *present = true;
                }
            }
        }
        for ((row, t), present) in known.into_iter().zip(present) {
            if !present && !self.base_contains(row) {
                fresh.push(t);
            }
        }
        if fresh.is_empty() {
            return Ok(0);
        }
        // `fresh` may still repeat triples whose terms are not all
        // interned yet (in-batch duplicates); those die in the row-level
        // dedup below, after interning — harmless, since a duplicate
        // brings no new terms. The capacity pre-check therefore uses the
        // conservative count, and only a batch failing it pays for an
        // exact triple-level dedup and a re-check.
        if check_capacity(self.len() + fresh.len(), limit).is_err() {
            fresh.sort_unstable();
            fresh.dedup();
            check_capacity(self.len() + fresh.len(), limit)?;
        }
        // Phase 2: intern, sort into one delta segment, fold the newly
        // interned terms into the sorted domain.
        let prev_terms = self.dict.len();
        let mut rows: Vec<Row> = fresh
            .into_iter()
            .map(|t| {
                [
                    self.dict.encode(t.s),
                    self.dict.encode(t.p),
                    self.dict.encode(t.o),
                ]
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let segment = Segment::from_sorted_spo(rows);
        let added = segment.len();
        self.delta_rows += added;
        self.segments.push(segment);
        crate::obs::on_segment_append();
        if self.dict.len() > prev_terms {
            let mut new_terms: Vec<Iri> = (prev_terms..self.dict.len())
                .map(|id| self.dict.decode(id as TermId))
                .collect();
            new_terms.sort_unstable();
            self.dom_sorted = merge_sorted(&self.dom_sorted, &new_terms);
        }
        if self.auto_compact_due() {
            self.compact();
        }
        Ok(added)
    }

    fn auto_compact_due(&self) -> bool {
        match self.policy {
            CompactionPolicy::EveryBatch => true,
            CompactionPolicy::Manual => false,
            CompactionPolicy::Adaptive => {
                self.segments.len() >= MAX_SEGMENTS
                    || self.delta_rows * 4 > self.spo.len() + ADAPTIVE_SLACK
            }
        }
    }

    /// Folds every pending delta segment into the base arrays: one k-way
    /// merge of the SPO runs, then the OSP, POS and PSO permutations and
    /// all four offset tables are re-derived from the merged SPO by
    /// stable counting scatters (`O(rows + terms)` each, no comparison
    /// sorts — see [`scatter_by`]). Returns `false` when there was
    /// nothing to do. The triple set is unchanged — only its physical
    /// layout.
    pub fn compact(&mut self) -> bool {
        if self.segments.is_empty() && self.pso.len() == self.spo.len() {
            return false;
        }
        let start = std::time::Instant::now();
        if !self.segments.is_empty() {
            self.compactions += 1;
            self.delta_rows = 0;
            let mut spo_runs = vec![std::mem::take(&mut self.spo)];
            for seg in std::mem::take(&mut self.segments) {
                spo_runs.push(seg.into_spo());
            }
            self.spo = merge_many(spo_runs);
        }
        let terms = self.dict.len();
        self.spo_off = offsets(&self.spo, terms);
        // Stability chains the sort keys: SPO scattered by o is OSP,
        // OSP scattered by p is POS, SPO scattered by p is PSO (whose
        // offset table equals POS's — both count rows per predicate).
        let (osp, osp_off) = scatter_by(&self.spo, 2, terms, |[s, p, o]| [o, s, p]);
        self.osp = osp;
        self.osp_off = osp_off;
        let (pos, pos_off) = scatter_by(&self.osp, 2, terms, |[o, s, p]| [p, o, s]);
        self.pos = pos;
        self.pos_off = pos_off;
        let (pso, pso_off) = scatter_by(&self.spo, 1, terms, |[s, p, o]| [p, s, o]);
        self.pso = pso;
        self.pso_off = pso_off;
        debug_assert!(self.osp.is_sorted() && self.pos.is_sorted() && self.pso.is_sorted());
        debug_assert_eq!(self.pso_off, self.pos_off);
        crate::obs::on_compaction(start.elapsed());
        true
    }

    pub fn len(&self) -> usize {
        self.spo.len() + self.delta_rows
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in the compacted base arrays.
    pub fn base_len(&self) -> usize {
        self.spo.len()
    }

    /// Rows pending in delta segments (not yet compacted).
    pub fn delta_len(&self) -> usize {
        self.delta_rows
    }

    /// Pending delta segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// True when [`EncodedGraph::compact`] would have nothing to do: no
    /// pending segments and the PSO permutation is in sync with the base.
    pub fn is_compacted(&self) -> bool {
        self.segments.is_empty() && self.pso.len() == self.spo.len()
    }

    /// Lifetime count of delta folds.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of distinct terms (= `|dom(G)|`).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    pub fn contains(&self, t: &Triple) -> bool {
        let Some(row) = self.encode_triple(t) else {
            return false;
        };
        self.contains_ids(row)
    }

    fn encode_triple(&self, t: &Triple) -> Option<Row> {
        Some([
            self.dict.lookup(t.s)?,
            self.dict.lookup(t.p)?,
            self.dict.lookup(t.o)?,
        ])
    }

    fn base_contains(&self, row: Row) -> bool {
        self.leading_range(&self.spo, &self.spo_off, row[0])
            .binary_search(&row)
            .is_ok()
    }

    fn contains_ids(&self, row: Row) -> bool {
        self.base_contains(row)
            || self
                .segments
                .iter()
                .any(|s| s.rows(Perm::Spo).binary_search(&row).is_ok())
    }

    fn decode_triple(&self, row: Row) -> Triple {
        Triple::new(
            self.dict.decode(row[0]),
            self.dict.decode(row[1]),
            self.dict.decode(row[2]),
        )
    }

    /// The contiguous row range of base permutation `rows` whose leading
    /// component is `id` — O(1) through the offset array. Empty when the
    /// id is out of the table's range (terms interned after the last
    /// compaction have no base rows yet).
    #[inline]
    fn leading_range<'a>(&self, rows: &'a [Row], off: &[u32], id: TermId) -> &'a [Row] {
        let i = id as usize;
        if i + 1 >= off.len() {
            return &[];
        }
        &rows[off[i] as usize..off[i + 1] as usize]
    }

    /// Narrows a sorted row slice to the rows with `row[pos] == key` by
    /// binary search. Valid whenever the slice is sorted on `pos` (i.e.
    /// all earlier row positions are constant on the slice; for `pos ==
    /// 0` that holds on any sorted run, which is how segment runs resolve
    /// their leading component without an offset table).
    #[inline]
    fn narrow(slice: &[Row], pos: usize, key: TermId) -> &[Row] {
        let lo = slice.partition_point(|r| r[pos] < key);
        let hi = lo + slice[lo..].partition_point(|r| r[pos] <= key);
        &slice[lo..hi]
    }

    /// Resolves the pattern's bound positions to dictionary ids. `None`
    /// when a bound term is not interned (nothing can match).
    #[inline]
    pub(crate) fn resolve_ids(&self, pat: &TriplePattern) -> Option<[Option<TermId>; 3]> {
        let resolve = |term: Term| -> Result<Option<TermId>, ()> {
            match term {
                Term::Var(_) => Ok(None),
                Term::Iri(i) => self.dict.lookup(i).map(Some).ok_or(()),
            }
        };
        Some([
            resolve(pat.s).ok()?,
            resolve(pat.p).ok()?,
            resolve(pat.o).ok()?,
        ])
    }

    /// The permutation whose sorted prefix covers every bound position —
    /// the **exact-run dispatch**: with four permutations every bound
    /// shape has one, so the matching rows always form contiguous runs
    /// (O(1) through the base offset table plus one binary search per
    /// pending segment), with no residual filtering and no candidate
    /// comparison. An exact run *is* the constant-match set, hence
    /// minimal — the adaptive comparison the pre-PSO layout needed would
    /// only re-derive this choice at three times the probe cost (the
    /// `sp?` / `s?o` / `enc_count` gap against `RdfGraph` in
    /// `BENCH_store.json` was exactly that overhead). `None` when no
    /// position is bound. `(? p ?)` prefers the subject-sorted PSO block
    /// (sort-free merge-join candidates), which exists only in the
    /// compacted base — with segments pending it uses POS.
    #[inline]
    fn exact_perm(&self, spo_ids: [Option<TermId>; 3]) -> Option<Perm> {
        match spo_ids.map(|id| id.is_some()) {
            [false, false, false] => None,
            [true, true, _] | [true, false, false] => Some(Perm::Spo),
            [true, false, true] | [false, false, true] => Some(Perm::Osp),
            [false, true, true] => Some(Perm::Pos),
            [false, true, false] => Some(if self.segments.is_empty() {
                Perm::Pso
            } else {
                Perm::Pos
            }),
        }
    }

    /// Base rows and leading-id offset table of a permutation.
    #[inline]
    fn perm_base(&self, perm: Perm) -> (&[Row], &[u32]) {
        match perm {
            Perm::Spo => (&self.spo, &self.spo_off),
            Perm::Pos => (&self.pos, &self.pos_off),
            Perm::Osp => (&self.osp, &self.osp_off),
            Perm::Pso => (&self.pso, &self.pso_off),
        }
    }

    /// The bound ids of `spo_ids` rotated into `perm`'s row positions.
    /// For a serving permutation they occupy a prefix.
    #[inline]
    fn prefix_keys(perm: Perm, spo_ids: [Option<TermId>; 3]) -> [Option<TermId>; 3] {
        let layout = perm.layout();
        let mut keys = [None; 3];
        for (component, id) in spo_ids.into_iter().enumerate() {
            keys[layout[component]] = id;
        }
        debug_assert!(
            keys.windows(2).all(|w| w[0].is_some() || w[1].is_none()),
            "bound ids must form a sorted prefix of {perm:?}"
        );
        keys
    }

    /// Narrows one already-lead-resolved run by the remaining prefix
    /// keys, binary search per bound position.
    #[inline]
    fn narrow_prefix<'a>(mut run: &'a [Row], keys: &[Option<TermId>; 3], from: usize) -> &'a [Row] {
        for (pos, key) in keys.iter().enumerate().skip(from) {
            match key {
                Some(k) => run = Self::narrow(run, pos, *k),
                None => break,
            }
        }
        run
    }

    /// The narrowed row runs of `perm` holding exactly the rows whose
    /// leading components equal the bound ids of `spo_ids`. The bound
    /// positions must form a prefix of `perm`'s layout (what
    /// [`EncodedGraph::exact_perm`] and the WCOJ trie planner both
    /// guarantee), and `perm` must not be the base-only PSO while
    /// segments are pending. Allocation-free when no segments are
    /// pending.
    pub(crate) fn pattern_runs(&self, perm: Perm, spo_ids: [Option<TermId>; 3]) -> PatternRuns<'_> {
        debug_assert!(perm != Perm::Pso || self.segments.is_empty());
        let keys = Self::prefix_keys(perm, spo_ids);
        let (rows, off) = self.perm_base(perm);
        let base = match keys[0] {
            Some(lead) => self.leading_range(rows, off, lead),
            None => rows,
        };
        let base = Self::narrow_prefix(base, &keys, 1);
        let deltas: Vec<&[Row]> = self
            .segments
            .iter()
            .map(|seg| Self::narrow_prefix(seg.rows(perm), &keys, 0))
            .filter(|run| !run.is_empty())
            .collect();
        PatternRuns { base, deltas }
    }

    #[inline]
    fn scan(&self, pat: &TriplePattern) -> Option<Scan<'_>> {
        let spo_ids = self.resolve_ids(pat)?;
        let Some(perm) = self.exact_perm(spo_ids) else {
            // No bound component: full scan over SPO, base + all deltas.
            return Some(Scan {
                perm: Perm::Spo,
                runs: PatternRuns {
                    base: &self.spo,
                    deltas: self.segments.iter().map(|s| s.rows(Perm::Spo)).collect(),
                },
                residual: None,
            });
        };
        // `(s ? o)` hybrid: both leading block lengths are two offset
        // loads away; when the subject's block is no bigger than the
        // object's, a linear scan of it with the object as a residual
        // filter beats binary-searching a hub object's block (a subject
        // emits a handful of triples; a type-like object collects
        // thousands).
        if perm == Perm::Osp && spo_ids[1].is_none() {
            if let (Some(s), Some(o)) = (spo_ids[0], spo_ids[2]) {
                let s_len = self.leading_range(&self.spo, &self.spo_off, s).len();
                let o_len = self.leading_range(&self.osp, &self.osp_off, o).len();
                if s_len <= o_len {
                    return Some(Scan {
                        perm: Perm::Spo,
                        runs: self.pattern_runs(Perm::Spo, [Some(s), None, None]),
                        residual: Some((2, o)),
                    });
                }
            }
        }
        Some(Scan {
            perm,
            runs: self.pattern_runs(perm, spo_ids),
            residual: None,
        })
    }

    /// Row-position pairs (in `perm`'s layout) that must hold equal ids
    /// because the pattern repeats a variable there.
    fn repeat_constraints(pat: &TriplePattern, perm: Perm) -> Vec<(usize, usize)> {
        let layout = perm.layout();
        let terms = pat.positions();
        let mut out = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                if let (Term::Var(a), Term::Var(b)) = (terms[i], terms[j]) {
                    if a == b {
                        out.push((layout[i], layout[j]));
                    }
                }
            }
        }
        out
    }

    /// The **exact** number of triples matching the pattern's constant
    /// positions: the bound-prefix run lengths of the exact permutation —
    /// two offset loads on the base plus one binary search per pending
    /// segment, cheap enough for the hom solver's per-node fail-first
    /// probes and the BGP planner's selectivity estimates. With the PSO
    /// permutation in place every bound shape resolves to an exact run
    /// (see [`EncodedGraph::exact_perm`]), so this is no longer merely an
    /// upper bound. Repeated variables are not constants: `(?x p ?x)`
    /// counts every `p`-triple.
    pub fn candidate_count(&self, pat: &TriplePattern) -> usize {
        let Some(spo_ids) = self.resolve_ids(pat) else {
            return 0;
        };
        let Some(perm) = self.exact_perm(spo_ids) else {
            return self.len();
        };
        // Inlined run arithmetic (no `PatternRuns` value): this is the
        // hom solver's per-node probe, called millions of times — it
        // must stay a handful of loads and binary searches with zero
        // allocation.
        let keys = Self::prefix_keys(perm, spo_ids);
        let (rows, off) = self.perm_base(perm);
        let base = match keys[0] {
            Some(lead) => self.leading_range(rows, off, lead),
            None => rows,
        };
        let mut count = Self::narrow_prefix(base, &keys, 1).len();
        for seg in &self.segments {
            count += Self::narrow_prefix(seg.rows(perm), &keys, 0).len();
        }
        count
    }

    /// All triples matching `pat`, honouring repeated variables.
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        let Some(scan) = self.scan(pat) else {
            return Vec::new();
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        // Bound positions already carry their IRI in the pattern — only
        // the variable positions go through the decode table.
        let fixed = pat.positions().map(Term::as_iri);
        let decode = |row: Row, out: &mut Vec<Triple>| {
            let [s, p, o] = scan.perm.spo_of(row);
            out.push(Triple::new(
                fixed[0].unwrap_or_else(|| self.dict.decode(s)),
                fixed[1].unwrap_or_else(|| self.dict.decode(p)),
                fixed[2].unwrap_or_else(|| self.dict.decode(o)),
            ));
        };
        let exact = eqs.is_empty() && scan.residual.is_none();
        let mut out = Vec::with_capacity(if exact { scan.runs.total() } else { 0 });
        if exact {
            for src in scan.runs.iter() {
                for &row in src {
                    decode(row, &mut out);
                }
            }
        } else {
            for src in scan.runs.iter() {
                for &row in src {
                    if scan.row_passes(&row) && eqs.iter().all(|&(i, j)| row[i] == row[j]) {
                        decode(row, &mut out);
                    }
                }
            }
        }
        out
    }

    /// All rows matching `pat` (honouring repeated variables), as
    /// `(s, p, o)` id triples — the input of the WCOJ's materialised
    /// fallback trie when no permutation fits a variable order.
    pub(crate) fn matching_rows(&self, pat: &TriplePattern) -> Vec<Row> {
        let Some(scan) = self.scan(pat) else {
            return Vec::new();
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let mut out = Vec::new();
        for src in scan.runs.iter() {
            for &row in src {
                if scan.row_passes(&row) && eqs.iter().all(|&(i, j)| row[i] == row[j]) {
                    out.push(scan.perm.spo_of(row));
                }
            }
        }
        out
    }

    /// Single-pattern solutions (Pérez et al., rule 1).
    pub fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        self.match_pattern(pat)
            .into_iter()
            .filter_map(|t| binding_of(pat, &t))
            .collect()
    }

    /// The sorted, deduplicated ids that variable `v` can take in a match
    /// of `pat` — the merge-join input. `None` when `v` does not occur in
    /// `pat`. When the scan lands on a run already sorted by `v`'s row
    /// position (PSO's subject-sorted predicate blocks, or any leading
    /// position), the comparison sort is skipped.
    pub fn candidate_ids(
        &self,
        pat: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let positions: Vec<usize> = pat
            .positions()
            .into_iter()
            .enumerate()
            .filter(|&(_, t)| t == Term::Var(v))
            .map(|(i, _)| i)
            .collect();
        if positions.is_empty() {
            return None;
        }
        let Some(scan) = self.scan(pat) else {
            return Some(Vec::new());
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let take = scan.perm.layout()[positions[0]];
        let mut ids: Vec<TermId> = Vec::new();
        for src in scan.runs.iter() {
            ids.extend(
                src.iter()
                    .filter(|row| {
                        scan.row_passes(row) && eqs.iter().all(|&(i, j)| row[i] == row[j])
                    })
                    .map(|row| row[take]),
            );
        }
        if !ids.is_sorted() {
            ids.sort_unstable();
        }
        ids.dedup();
        Some(ids)
    }

    /// As [`EncodedGraph::candidate_ids`], decoded back to IRIs and
    /// re-sorted in [`Iri`] order — the backend-independent semi-join
    /// input behind [`TripleIndex::candidate_values`] (local ids mean
    /// nothing outside this graph's dictionary, so cross-backend callers
    /// get values).
    pub fn candidate_values(
        &self,
        pat: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<Iri>> {
        let ids = self.candidate_ids(pat, v)?;
        let mut vals: Vec<Iri> = ids.into_iter().map(|id| self.dict.decode(id)).collect();
        vals.sort_unstable();
        Some(vals)
    }

    /// Sorted-merge intersection of the candidate id lists of a variable
    /// shared by two patterns — the classic merge join on one join
    /// variable. `None` when `v` is missing from either pattern.
    pub fn merge_join_ids(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let xs = self.candidate_ids(a, v)?;
        let ys = self.candidate_ids(b, v)?;
        Some(intersect_sorted(&xs, &ys))
    }

    /// As [`EncodedGraph::merge_join_ids`], decoded back to IRIs.
    pub fn merge_join_values(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<Iri>> {
        Some(
            self.merge_join_ids(a, b, v)?
                .into_iter()
                .map(|id| self.dict.decode(id))
                .collect(),
        )
    }

    /// Distinct predicates with their cardinalities, descending — the
    /// selectivity statistics behind the service's query planner. Base
    /// counts read off the POS offsets; pending segments are folded in.
    pub fn predicate_cardinalities(&self) -> Vec<(Iri, usize)> {
        let mut counts = vec![0usize; self.dict.len()];
        for (id, count) in counts
            .iter_mut()
            .enumerate()
            .take(self.pos_off.len().saturating_sub(1))
        {
            *count = (self.pos_off[id + 1] - self.pos_off[id]) as usize;
        }
        for seg in &self.segments {
            for row in seg.rows(Perm::Pos) {
                counts[row[0] as usize] += 1;
            }
        }
        let mut out: Vec<(Iri, usize)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(id, &n)| (self.dict.decode(id as TermId), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct terms occurring as subjects / predicates /
    /// objects: the base offset tables plus the pending segments.
    pub fn position_cardinalities(&self) -> (usize, usize, usize) {
        let distinct = |perm: Perm, off: &[u32]| {
            if self.segments.is_empty() {
                return off.windows(2).filter(|w| w[1] > w[0]).count();
            }
            let mut seen = vec![false; self.dict.len()];
            for (id, w) in off.windows(2).enumerate() {
                if w[1] > w[0] {
                    seen[id] = true;
                }
            }
            for seg in &self.segments {
                for row in seg.rows(perm) {
                    seen[row[0] as usize] = true;
                }
            }
            seen.into_iter().filter(|&b| b).count()
        };
        (
            distinct(Perm::Spo, &self.spo_off),
            distinct(Perm::Pos, &self.pos_off),
            distinct(Perm::Osp, &self.osp_off),
        )
    }

    /// All triples in SPO order — a lazy k-way merge of the base run and
    /// every pending segment.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        MergedRows::new(
            std::iter::once(self.spo.as_slice())
                .chain(self.segments.iter().map(|s| s.rows(Perm::Spo))),
        )
        .map(|row| self.decode_triple(row))
    }

    /// Decodes the whole store back into an [`RdfGraph`].
    pub fn to_rdf(&self) -> RdfGraph {
        self.iter().collect()
    }
}

impl TripleIndex for EncodedGraph {
    fn len(&self) -> usize {
        EncodedGraph::len(self)
    }

    fn contains(&self, t: &Triple) -> bool {
        EncodedGraph::contains(self, t)
    }

    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.iter())
    }

    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
        Box::new(self.dom_sorted.iter().copied())
    }

    fn dom_contains(&self, i: Iri) -> bool {
        self.dict.lookup(i).is_some()
    }

    fn candidate_count(&self, pat: &TriplePattern) -> usize {
        EncodedGraph::candidate_count(self, pat)
    }

    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        EncodedGraph::match_pattern(self, pat)
    }

    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        EncodedGraph::solutions(self, pat)
    }

    fn candidate_values(&self, pat: &TriplePattern, v: wdsparql_rdf::Variable) -> Option<Vec<Iri>> {
        EncodedGraph::candidate_values(self, pat, v)
    }

    /// The WCOJ trie view: zero-copy over the permutation whose prefix
    /// matches the pattern's bound positions and variable order (base +
    /// delta segment runs, dictionary ids as keys), falling back to a
    /// materialised projection when no permutation fits — see
    /// [`crate::wcoj`].
    fn trie_cursor<'a>(
        &'a self,
        pat: &TriplePattern,
        vars: &[wdsparql_rdf::Variable],
    ) -> Box<dyn wdsparql_rdf::TrieCursor + 'a> {
        crate::wcoj::encoded_trie(self, pat, vars)
    }
}

impl FromIterator<Triple> for EncodedGraph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> EncodedGraph {
        EncodedGraph::from_triples(iter)
    }
}

impl PartialEq for EncodedGraph {
    /// Set equality up to dictionary numbering and physical layout: both
    /// graphs hold the same ground triples (compacted or not).
    fn eq(&self, other: &EncodedGraph) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for EncodedGraph {}

/// Two-pointer intersection of sorted id lists.
fn intersect_sorted(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Variable};

    fn sample() -> EncodedGraph {
        EncodedGraph::from_triples(
            [
                ("a", "p", "b"),
                ("a", "p", "c"),
                ("b", "p", "c"),
                ("b", "q", "a"),
                ("c", "q", "a"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    #[test]
    fn build_deduplicates_and_sorts() {
        let g = EncodedGraph::from_triples([
            Triple::from_strs("x", "r", "y"),
            Triple::from_strs("x", "r", "y"),
        ]);
        assert_eq!(g.len(), 1);
        assert!(g.contains(&Triple::from_strs("x", "r", "y")));
        assert!(!g.contains(&Triple::from_strs("y", "r", "x")));
    }

    #[test]
    fn every_access_pattern_matches_the_rdf_graph() {
        let strs = [
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ];
        let r = RdfGraph::from_strs(strs);
        let pats = [
            tp(iri("a"), iri("p"), iri("b")),
            tp(iri("a"), iri("p"), var("y")),
            tp(iri("a"), var("x"), iri("b")),
            tp(iri("a"), var("x"), var("y")),
            tp(var("x"), iri("p"), iri("c")),
            tp(var("x"), iri("q"), var("y")),
            tp(var("x"), var("y"), iri("a")),
            tp(var("x"), var("y"), var("z")),
        ];
        // Once compacted (PSO live), once with every triple still in
        // delta segments, once half-and-half.
        let compacted = sample();
        let mut all_delta = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in strs {
            all_delta
                .insert_batch([Triple::from_strs(t.0, t.1, t.2)])
                .unwrap();
        }
        let mut half = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        half.insert_batch(strs[..3].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        half.compact();
        half.insert_batch(strs[3..].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        for (label, g) in [
            ("compacted", &compacted),
            ("all-delta", &all_delta),
            ("half", &half),
        ] {
            assert_eq!(g.len(), r.len(), "{label}");
            for pat in pats {
                let mut got = g.match_pattern(&pat);
                let mut want = r.match_pattern(&pat);
                got.sort();
                want.sort();
                assert_eq!(got, want, "{label}: pattern {pat}");
                assert!(g.candidate_count(&pat) >= got.len(), "{label}: {pat}");
                assert_eq!(g.solutions(&pat).len(), r.solutions(&pat).len());
            }
        }
    }

    #[test]
    fn repeated_variables_constrain_matches() {
        let mut g = sample();
        g.insert_batch([Triple::from_strs("d", "p", "d")]).unwrap();
        let loops = g.match_pattern(&tp(var("x"), iri("p"), var("x")));
        assert_eq!(loops, vec![Triple::from_strs("d", "p", "d")]);
        assert!(g
            .match_pattern(&tp(var("x"), var("x"), var("x")))
            .is_empty());
    }

    /// The exact-run dispatch counts the constant-match set exactly on
    /// **every** bound shape — with rows in the base, in pending
    /// segments, and split across both (the pre-PSO layout could only
    /// upper-bound the residual-filtered shapes).
    #[test]
    fn candidate_count_is_exact_on_every_bound_shape() {
        let strs = [
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ];
        let compacted =
            EncodedGraph::from_triples(strs.map(|(s, p, o)| Triple::from_strs(s, p, o)));
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in strs {
            staged
                .insert_batch([Triple::from_strs(t.0, t.1, t.2)])
                .unwrap();
        }
        let mut half = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        half.insert_batch(strs[..3].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        half.compact();
        half.insert_batch(strs[3..].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        // (bound shape, expected exact count) — every access path,
        // including the pair-bound shapes the old adaptive comparison
        // could only upper-bound.
        let exact = [
            (tp(iri("a"), var("x"), var("y")), 3),
            (tp(iri("a"), iri("p"), var("y")), 2),
            (tp(iri("a"), iri("p"), iri("c")), 1),
            (tp(var("x"), iri("q"), var("y")), 3),
            (tp(var("x"), var("w"), iri("a")), 2),
            (tp(var("x"), var("w"), var("y")), 6),
            (tp(var("x"), iri("q"), iri("a")), 2),
            (tp(iri("a"), var("w"), iri("b")), 2),
        ];
        for (label, g) in [
            ("compacted", &compacted),
            ("staged", &staged),
            ("half", &half),
        ] {
            for (pat, want) in &exact {
                assert_eq!(g.candidate_count(pat), *want, "{label}: {pat}");
                assert_eq!(
                    g.candidate_count(pat),
                    g.match_pattern(pat).len(),
                    "{label}: {pat} count must equal the match set"
                );
            }
        }
        // Unknown constants still count zero through the fast path.
        assert_eq!(
            compacted.candidate_count(&tp(iri("zz"), iri("p"), var("y"))),
            0
        );
    }

    #[test]
    fn capped_inserts_refuse_cleanly() {
        let mut g = EncodedGraph::new();
        g.insert_batch_capped([Triple::from_strs("a", "p", "b")], 2)
            .unwrap();
        let err = g
            .insert_batch_capped(
                [
                    Triple::from_strs("c", "p", "d"),
                    Triple::from_strs("e", "p", "f"),
                ],
                2,
            )
            .unwrap_err();
        assert_eq!((err.attempted, err.limit), (3, 2));
        assert_eq!(g.len(), 1, "refused batch leaves the graph unchanged");
        assert_eq!(g.term_count(), 3, "refused batch interns nothing");
        // Exactly at the limit is fine; duplicates never count twice.
        g.insert_batch_capped(
            [
                Triple::from_strs("a", "p", "b"),
                Triple::from_strs("c", "p", "d"),
            ],
            2,
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        // The plain insert path is uncapped (up to MAX_TRIPLES).
        g.insert_batch([Triple::from_strs("e", "p", "f")]).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn candidate_values_are_sorted_iris() {
        let g = sample();
        let pat = tp(var("s"), iri("q"), var("o"));
        let vals = g.candidate_values(&pat, Variable::new("s")).unwrap();
        assert!(vals.is_sorted());
        let mut names: Vec<&str> = vals.iter().map(|i| i.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert!(g.candidate_values(&pat, Variable::new("nope")).is_none());
        // The trait view serves the same list.
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.candidate_values(&pat, Variable::new("s")), Some(vals));
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(&tp(iri("zzz"), var("x"), var("y")))
            .is_empty());
        assert_eq!(g.candidate_count(&tp(var("x"), iri("zzz"), var("y"))), 0);
        assert!(!g.contains(&Triple::from_strs("a", "p", "zzz")));
    }

    #[test]
    fn incremental_batches_agree_with_one_shot_build() {
        let all: Vec<Triple> = (0..40)
            .map(|i| {
                Triple::from_strs(
                    &format!("s{}", i % 7),
                    &format!("p{}", i % 3),
                    &format!("o{i}"),
                )
            })
            .collect();
        let one_shot = EncodedGraph::from_triples(all.iter().copied());
        let mut incremental = EncodedGraph::new();
        for chunk in all.chunks(9) {
            incremental.insert_batch(chunk.iter().copied()).unwrap();
        }
        assert_eq!(one_shot, incremental);
        // Re-inserting is a no-op.
        assert_eq!(incremental.insert_batch(all).unwrap(), 0);
        // Compaction changes the layout, never the contents.
        incremental.compact();
        assert_eq!(incremental.segment_count(), 0);
        assert_eq!(one_shot, incremental);
    }

    #[test]
    fn segment_lifecycle_and_stats() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        assert_eq!(
            g.insert_batch([Triple::from_strs("a", "p", "b")]).unwrap(),
            1
        );
        assert_eq!(
            g.insert_batch([Triple::from_strs("c", "p", "d")]).unwrap(),
            1
        );
        assert_eq!((g.base_len(), g.delta_len(), g.segment_count()), (0, 2, 2));
        assert_eq!(g.compactions(), 0);
        // A batch of known triples adds no segment.
        assert_eq!(
            g.insert_batch([Triple::from_strs("a", "p", "b")]).unwrap(),
            0
        );
        assert_eq!(g.segment_count(), 2);
        assert!(g.compact());
        assert_eq!((g.base_len(), g.delta_len(), g.segment_count()), (2, 0, 0));
        assert_eq!(g.compactions(), 1);
        // A second compact is a no-op and does not count.
        assert!(!g.compact());
        assert_eq!(g.compactions(), 1);
    }

    #[test]
    fn every_batch_policy_keeps_the_base_compacted() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::EveryBatch);
        for i in 0..5 {
            g.insert_batch([Triple::from_strs(&format!("s{i}"), "p", "o")])
                .unwrap();
        }
        assert_eq!((g.base_len(), g.segment_count()), (5, 0));
        assert_eq!(g.compactions(), 5);
    }

    #[test]
    fn queries_agree_before_and_after_compaction() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for i in 0..30 {
            g.insert_batch((0..4).map(|j| {
                Triple::from_strs(
                    &format!("s{}", i % 5),
                    &format!("p{}", j % 2),
                    &format!("o{j}"),
                )
            }))
            .unwrap();
        }
        let pats = [
            tp(var("x"), iri("p0"), var("y")),
            tp(iri("s1"), var("q"), var("y")),
            tp(var("x"), iri("p1"), iri("o3")),
            tp(var("x"), var("q"), var("y")),
        ];
        let before: Vec<Vec<Triple>> = pats
            .iter()
            .map(|p| {
                let mut m = g.match_pattern(p);
                m.sort();
                m
            })
            .collect();
        assert!(g.segment_count() > 0, "deltas must be present before");
        g.compact();
        for (pat, want) in pats.iter().zip(before) {
            let mut got = g.match_pattern(pat);
            got.sort();
            assert_eq!(got, want, "pattern {pat}");
        }
    }

    #[test]
    fn merge_join_intersects_shared_variable() {
        let g = EncodedGraph::from_triples(
            [
                ("a", "p", "x"),
                ("b", "p", "x"),
                ("c", "p", "x"),
                ("b", "q", "y"),
                ("c", "q", "y"),
                ("d", "q", "y"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let p1 = tp(var("s"), iri("p"), var("o1"));
        let p2 = tp(var("s"), iri("q"), var("o2"));
        let shared = g.merge_join_values(&p1, &p2, Variable::new("s")).unwrap();
        let mut names: Vec<&str> = shared.iter().map(|i| i.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert!(g.merge_join_ids(&p1, &p2, Variable::new("nope")).is_none());
    }

    #[test]
    fn candidate_ids_are_sorted_with_and_without_deltas() {
        let triples: Vec<Triple> = (0..40)
            .map(|i| Triple::from_strs(&format!("s{}", (i * 7) % 13), "p", &format!("o{i}")))
            .collect();
        let compacted = EncodedGraph::from_triples(triples.iter().copied());
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for chunk in triples.chunks(11) {
            staged.insert_batch(chunk.iter().copied()).unwrap();
        }
        let pat = tp(var("s"), iri("p"), var("o"));
        let a = compacted.candidate_ids(&pat, Variable::new("s")).unwrap();
        let b = staged.candidate_ids(&pat, Variable::new("s")).unwrap();
        assert!(a.is_sorted() && b.is_sorted());
        // Same ids under both layouts (dictionaries agree: same insert
        // order of first occurrence is not guaranteed, so compare decoded).
        let decode = |g: &EncodedGraph, ids: &[TermId]| -> Vec<Iri> {
            let mut v: Vec<Iri> = ids.iter().map(|&i| g.dictionary().decode(i)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(decode(&compacted, &a), decode(&staged, &b));
    }

    #[test]
    fn stats_read_off_the_offsets() {
        let g = sample();
        let cards = g.predicate_cardinalities();
        assert_eq!(cards.len(), 2);
        assert_eq!(cards[0].1, 3); // p
        assert_eq!(cards[1].1, 2); // q
        let (s, p, o) = g.position_cardinalities();
        assert_eq!((s, p, o), (3, 2, 3)); // {a,b,c}, {p,q}, {a,b,c}

        // The same statistics hold with every row still in segments.
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in g.iter() {
            staged.insert_batch([t]).unwrap();
        }
        assert_eq!(staged.predicate_cardinalities(), cards);
        assert_eq!(staged.position_cardinalities(), (s, p, o));
    }

    #[test]
    fn trait_view_agrees_with_inherent_api() {
        let g = sample();
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.len(), 5);
        assert_eq!(ix.dom().count(), 5);
        assert!(ix.dom_contains(Iri::new("q")));
        assert_eq!(ix.triples().count(), 5);
        assert_eq!(ix.match_pattern(&tp(var("x"), iri("p"), var("y"))).len(), 3);
    }

    #[test]
    fn iter_is_sorted_even_with_segments() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for i in [5, 1, 9, 3, 7] {
            g.insert_batch([
                Triple::from_strs(&format!("s{i}"), "p", "o"),
                Triple::from_strs(&format!("s{}", i + 1), "q", "o"),
            ])
            .unwrap();
        }
        let rows: Vec<Triple> = g.iter().collect();
        assert_eq!(rows.len(), g.len());
        assert!(rows.is_sorted_by(|a, b| {
            let key = |t: &Triple| {
                let d = g.dictionary();
                [
                    d.lookup(t.s).unwrap(),
                    d.lookup(t.p).unwrap(),
                    d.lookup(t.o).unwrap(),
                ]
            };
            key(a) <= key(b)
        }));
    }

    #[test]
    fn round_trips_through_rdf() {
        let g = sample();
        assert_eq!(EncodedGraph::from_rdf(&g.to_rdf()), g);
    }
}
