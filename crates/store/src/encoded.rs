//! [`EncodedGraph`]: the triple set as sorted permutation arrays with a
//! log-structured write path.
//!
//! Every triple is dictionary-encoded into a `[TermId; 3]` row and stored
//! under several component rotations:
//!
//! ```text
//! SPO  rows are (s, p, o)   answers  (s ? ?) (s p ?) (s p o) (? ? ?)
//! POS  rows are (p, o, s)   answers  (? p ?) (? p o)
//! OSP  rows are (o, s, p)   answers  (? ? o) (s ? o)
//! PSO  rows are (p, s, o)   subject-sorted (? p ?) — merge-join inputs
//! ```
//!
//! The **base** arrays hold the compacted bulk: dictionary ids are dense,
//! so each base permutation carries an offset array indexed by leading
//! term id, and a bound *first* component resolves to its contiguous row
//! range in O(1). Writes are **log-structured**: `insert_batch` appends
//! one small sorted [`Segment`] per call instead of rewriting the base;
//! reads merge base + segments behind the same bounded-prefix narrowing
//! (segments are tiny, so their leading ranges come from binary search
//! instead of offsets). [`EncodedGraph::compact`] folds the segments
//! back into the base with one k-way merge of the SPO runs and re-derives
//! OSP, POS and the base-only PSO by stable counting scatters; a
//! [`CompactionPolicy`] decides when that happens automatically.

use crate::dict::{Dictionary, TermId};
use crate::segment::{
    check_capacity, merge_many, merge_sorted, offsets, scatter_by, MergedRows, Perm, Row, Segment,
};
pub use crate::segment::{CapacityError, MAX_TRIPLES};
use wdsparql_rdf::{binding_of, Iri, Mapping, RdfGraph, Term, Triple, TripleIndex, TriplePattern};

/// When [`EncodedGraph::insert_batch`] folds its delta segments back
/// into the base arrays on its own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Compact when the deltas exceed a quarter of the base (plus slack)
    /// or the segment count would degrade scans — amortised `O(log n)`
    /// rewrites per row instead of one per batch.
    #[default]
    Adaptive,
    /// Compact after every batch: the pre-log-structured full-rewrite
    /// write path, kept as the write-amplification bench baseline.
    EveryBatch,
    /// Never compact automatically; only [`EncodedGraph::compact`] folds.
    Manual,
}

/// Segment-count bound for [`CompactionPolicy::Adaptive`]: every scan
/// binary-searches each segment, so the fan-in stays small.
const MAX_SEGMENTS: usize = 48;
/// Delta slack for [`CompactionPolicy::Adaptive`], so tiny stores do not
/// compact on every batch.
const ADAPTIVE_SLACK: usize = 4096;

/// A dictionary-encoded, permutation-indexed set of ground triples.
#[derive(Clone, Debug, Default)]
pub struct EncodedGraph {
    dict: Dictionary,
    /// Compacted base permutations and their leading-id offset tables.
    spo: Vec<Row>,
    pos: Vec<Row>,
    osp: Vec<Row>,
    /// Base-only merge-join permutation, rebuilt by [`Self::compact`];
    /// consulted by `scan` only when no delta segments are pending.
    pso: Vec<Row>,
    spo_off: Vec<u32>,
    pos_off: Vec<u32>,
    osp_off: Vec<u32>,
    pso_off: Vec<u32>,
    /// Pending delta segments, oldest first; disjoint from the base and
    /// from each other.
    segments: Vec<Segment>,
    /// Total rows across `segments`.
    delta_rows: usize,
    policy: CompactionPolicy,
    /// Lifetime count of delta folds (not bumped by no-op compactions).
    compactions: u64,
    dom_sorted: Vec<Iri>,
}

/// The resolution of a pattern against the indexes: the row runs that
/// can match (one base range plus one per segment, all under the same
/// permutation), and any bound components that could not be narrowed by
/// sorted prefix and must be checked per row instead.
struct Scan<'a> {
    perm: Perm,
    base: &'a [Row],
    deltas: Vec<&'a [Row]>,
    /// Per row position: a required id the sort order could not enforce.
    residual: [Option<TermId>; 3],
}

/// One candidate permutation for a scan: the permutation, its (maybe
/// unbound) leading id, and its base rows + offset table.
type Candidate<'a> = (Perm, Option<TermId>, &'a [Row], &'a [u32]);

/// The outcome of prefix-narrowing a candidate: narrowed base run,
/// narrowed delta runs, residual filters, and total rows left to scan.
type NarrowedSources<'a> = (&'a [Row], Vec<&'a [Row]>, [Option<TermId>; 3], usize);

impl<'a> Scan<'a> {
    fn sources(&self) -> impl Iterator<Item = &'a [Row]> + '_ {
        std::iter::once(self.base).chain(self.deltas.iter().copied())
    }

    fn total(&self) -> usize {
        self.base.len() + self.deltas.iter().map(|d| d.len()).sum::<usize>()
    }

    fn row_matches(&self, row: &Row) -> bool {
        self.residual
            .iter()
            .zip(row)
            .all(|(req, &id)| req.is_none_or(|want| want == id))
    }

    fn is_exact(&self) -> bool {
        self.residual.iter().all(Option::is_none)
    }
}

impl EncodedGraph {
    pub fn new() -> EncodedGraph {
        EncodedGraph::default()
    }

    /// An empty graph with the given [`CompactionPolicy`].
    pub fn with_compaction_policy(policy: CompactionPolicy) -> EncodedGraph {
        EncodedGraph {
            policy,
            ..EncodedGraph::default()
        }
    }

    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// One-shot build: a single batch, compacted (so the PSO permutation
    /// is ready before the first query).
    pub fn from_triples<I>(triples: I) -> EncodedGraph
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut g = EncodedGraph::new();
        g.insert_batch(triples)
            .expect("one-shot build exceeds MAX_TRIPLES");
        g.compact();
        g
    }

    /// Re-encodes an [`RdfGraph`].
    pub fn from_rdf(g: &RdfGraph) -> EncodedGraph {
        EncodedGraph::from_triples(g.iter().copied())
    }

    /// Bulk insert: encodes and sorts `triples` into one new delta
    /// segment per call — `O(batch · log batch)` plus a containment probe
    /// per triple, never a base rewrite (unless the [`CompactionPolicy`]
    /// folds afterwards). Returns the number of triples that were not
    /// already present.
    ///
    /// Errors with [`CapacityError`] — leaving the graph (and its
    /// dictionary) untouched — when the insert would push the store past
    /// [`MAX_TRIPLES`] rows, the bound above which the `u32` offset
    /// tables would silently truncate.
    pub fn insert_batch<I>(&mut self, triples: I) -> Result<usize, CapacityError>
    where
        I: IntoIterator<Item = Triple>,
    {
        self.insert_batch_capped(triples, MAX_TRIPLES)
    }

    /// [`EncodedGraph::insert_batch`] under a row-count `limit` (clamped
    /// to [`MAX_TRIPLES`]) — the hook the service layer uses to enforce
    /// its configurable ingest cap. The limit is a parameter, not graph
    /// state, so configuring it never touches the copy-on-write payload.
    pub(crate) fn insert_batch_capped<I>(
        &mut self,
        triples: I,
        limit: usize,
    ) -> Result<usize, CapacityError>
    where
        I: IntoIterator<Item = Triple>,
    {
        // Phase 1, read-only: drop triples already present *before*
        // interning anything, so a refused batch cannot leave terms in
        // the dictionary that no triple uses. A triple with any unknown
        // term is fresh by definition; the rest are probed in sorted row
        // order — one two-pointer walk per segment and a block binary
        // search against the base, instead of per-triple searches of
        // every run.
        let mut fresh: Vec<Triple> = Vec::new();
        let mut known: Vec<(Row, Triple)> = Vec::new();
        for t in triples {
            match self.encode_triple(&t) {
                None => fresh.push(t),
                Some(row) => known.push((row, t)),
            }
        }
        known.sort_unstable_by_key(|&(row, _)| row);
        known.dedup_by_key(|&mut (row, _)| row);
        let mut present = vec![false; known.len()];
        for seg in &self.segments {
            let run = seg.rows(Perm::Spo);
            let mut i = 0;
            for ((row, _), present) in known.iter().zip(&mut present) {
                while i < run.len() && run[i] < *row {
                    i += 1;
                }
                if i == run.len() {
                    break;
                }
                if run[i] == *row {
                    *present = true;
                }
            }
        }
        for ((row, t), present) in known.into_iter().zip(present) {
            if !present && !self.base_contains(row) {
                fresh.push(t);
            }
        }
        if fresh.is_empty() {
            return Ok(0);
        }
        // `fresh` may still repeat triples whose terms are not all
        // interned yet (in-batch duplicates); those die in the row-level
        // dedup below, after interning — harmless, since a duplicate
        // brings no new terms. The capacity pre-check therefore uses the
        // conservative count, and only a batch failing it pays for an
        // exact triple-level dedup and a re-check.
        if check_capacity(self.len() + fresh.len(), limit).is_err() {
            fresh.sort_unstable();
            fresh.dedup();
            check_capacity(self.len() + fresh.len(), limit)?;
        }
        // Phase 2: intern, sort into one delta segment, fold the newly
        // interned terms into the sorted domain.
        let prev_terms = self.dict.len();
        let mut rows: Vec<Row> = fresh
            .into_iter()
            .map(|t| {
                [
                    self.dict.encode(t.s),
                    self.dict.encode(t.p),
                    self.dict.encode(t.o),
                ]
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let segment = Segment::from_sorted_spo(rows);
        let added = segment.len();
        self.delta_rows += added;
        self.segments.push(segment);
        if self.dict.len() > prev_terms {
            let mut new_terms: Vec<Iri> = (prev_terms..self.dict.len())
                .map(|id| self.dict.decode(id as TermId))
                .collect();
            new_terms.sort_unstable();
            self.dom_sorted = merge_sorted(&self.dom_sorted, &new_terms);
        }
        if self.auto_compact_due() {
            self.compact();
        }
        Ok(added)
    }

    fn auto_compact_due(&self) -> bool {
        match self.policy {
            CompactionPolicy::EveryBatch => true,
            CompactionPolicy::Manual => false,
            CompactionPolicy::Adaptive => {
                self.segments.len() >= MAX_SEGMENTS
                    || self.delta_rows * 4 > self.spo.len() + ADAPTIVE_SLACK
            }
        }
    }

    /// Folds every pending delta segment into the base arrays: one k-way
    /// merge of the SPO runs, then the OSP, POS and PSO permutations and
    /// all four offset tables are re-derived from the merged SPO by
    /// stable counting scatters (`O(rows + terms)` each, no comparison
    /// sorts — see [`scatter_by`]). Returns `false` when there was
    /// nothing to do. The triple set is unchanged — only its physical
    /// layout.
    pub fn compact(&mut self) -> bool {
        if self.segments.is_empty() && self.pso.len() == self.spo.len() {
            return false;
        }
        if !self.segments.is_empty() {
            self.compactions += 1;
            self.delta_rows = 0;
            let mut spo_runs = vec![std::mem::take(&mut self.spo)];
            for seg in std::mem::take(&mut self.segments) {
                spo_runs.push(seg.into_spo());
            }
            self.spo = merge_many(spo_runs);
        }
        let terms = self.dict.len();
        self.spo_off = offsets(&self.spo, terms);
        // Stability chains the sort keys: SPO scattered by o is OSP,
        // OSP scattered by p is POS, SPO scattered by p is PSO (whose
        // offset table equals POS's — both count rows per predicate).
        let (osp, osp_off) = scatter_by(&self.spo, 2, terms, |[s, p, o]| [o, s, p]);
        self.osp = osp;
        self.osp_off = osp_off;
        let (pos, pos_off) = scatter_by(&self.osp, 2, terms, |[o, s, p]| [p, o, s]);
        self.pos = pos;
        self.pos_off = pos_off;
        let (pso, pso_off) = scatter_by(&self.spo, 1, terms, |[s, p, o]| [p, s, o]);
        self.pso = pso;
        self.pso_off = pso_off;
        debug_assert!(self.osp.is_sorted() && self.pos.is_sorted() && self.pso.is_sorted());
        debug_assert_eq!(self.pso_off, self.pos_off);
        true
    }

    pub fn len(&self) -> usize {
        self.spo.len() + self.delta_rows
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in the compacted base arrays.
    pub fn base_len(&self) -> usize {
        self.spo.len()
    }

    /// Rows pending in delta segments (not yet compacted).
    pub fn delta_len(&self) -> usize {
        self.delta_rows
    }

    /// Pending delta segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// True when [`EncodedGraph::compact`] would have nothing to do: no
    /// pending segments and the PSO permutation is in sync with the base.
    pub fn is_compacted(&self) -> bool {
        self.segments.is_empty() && self.pso.len() == self.spo.len()
    }

    /// Lifetime count of delta folds.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of distinct terms (= `|dom(G)|`).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    pub fn contains(&self, t: &Triple) -> bool {
        let Some(row) = self.encode_triple(t) else {
            return false;
        };
        self.contains_ids(row)
    }

    fn encode_triple(&self, t: &Triple) -> Option<Row> {
        Some([
            self.dict.lookup(t.s)?,
            self.dict.lookup(t.p)?,
            self.dict.lookup(t.o)?,
        ])
    }

    fn base_contains(&self, row: Row) -> bool {
        self.leading_range(&self.spo, &self.spo_off, row[0])
            .binary_search(&row)
            .is_ok()
    }

    fn contains_ids(&self, row: Row) -> bool {
        self.base_contains(row)
            || self
                .segments
                .iter()
                .any(|s| s.rows(Perm::Spo).binary_search(&row).is_ok())
    }

    fn decode_triple(&self, row: Row) -> Triple {
        Triple::new(
            self.dict.decode(row[0]),
            self.dict.decode(row[1]),
            self.dict.decode(row[2]),
        )
    }

    /// The contiguous row range of base permutation `rows` whose leading
    /// component is `id` — O(1) through the offset array. Empty when the
    /// id is out of the table's range (terms interned after the last
    /// compaction have no base rows yet).
    #[inline]
    fn leading_range<'a>(&self, rows: &'a [Row], off: &[u32], id: TermId) -> &'a [Row] {
        let i = id as usize;
        if i + 1 >= off.len() {
            return &[];
        }
        &rows[off[i] as usize..off[i + 1] as usize]
    }

    /// Narrows a sorted row slice to the rows with `row[pos] == key` by
    /// binary search. Valid whenever the slice is sorted on `pos` (i.e.
    /// all earlier row positions are constant on the slice; for `pos ==
    /// 0` that holds on any sorted run, which is how segment runs resolve
    /// their leading component without an offset table).
    #[inline]
    fn narrow(slice: &[Row], pos: usize, key: TermId) -> &[Row] {
        let lo = slice.partition_point(|r| r[pos] < key);
        let hi = lo + slice[lo..].partition_point(|r| r[pos] <= key);
        &slice[lo..hi]
    }

    /// Prefix-narrows every source of a candidate permutation with the
    /// pattern's bound ids and splits the rest into residual filters.
    /// Returns the narrowed sources, the residuals, and the total row
    /// count left to scan.
    #[inline]
    fn narrow_sources<'a>(
        perm: Perm,
        mut base: &'a [Row],
        mut deltas: Vec<&'a [Row]>,
        spo_ids: [Option<TermId>; 3],
    ) -> NarrowedSources<'a> {
        let layout = perm.layout();
        let mut keys = [None; 3];
        for (component, id) in spo_ids.into_iter().enumerate() {
            keys[layout[component]] = id;
        }
        let mut residual = [None; 3];
        let mut prefix_sorted = true;
        for (row_pos, key) in keys.into_iter().enumerate().skip(1) {
            let Some(key) = key else {
                prefix_sorted = false;
                continue;
            };
            if prefix_sorted {
                base = Self::narrow(base, row_pos, key);
                for d in &mut deltas {
                    *d = Self::narrow(d, row_pos, key);
                }
            } else {
                residual[row_pos] = Some(key);
            }
        }
        deltas.retain(|d| !d.is_empty());
        let total = base.len() + deltas.iter().map(|d| d.len()).sum::<usize>();
        (base, deltas, residual, total)
    }

    /// Picks the permutation and row runs for the pattern's bound
    /// positions. `None` means a bound term is not in the dictionary, so
    /// nothing can match.
    ///
    /// The choice is adaptive. A candidate permutation whose *leading*
    /// component is bound resolves its base range through the offset
    /// table in O(1) and each segment run by binary search; a leading
    /// range small enough is taken on the spot. Otherwise every candidate
    /// is prefix-narrowed with the remaining bound components before
    /// comparing — which is what routes the pair-bound `(? p o)` to POS's
    /// exact `(p, o)` run instead of residual-filtering a hub object's
    /// whole OSP block. PSO joins the candidates only when the graph is
    /// fully compacted (segments carry no PSO run), listed before POS so
    /// a predicate-led tie lands on the subject-sorted block.
    /// Resolves the pattern's bound positions to dictionary ids. `None`
    /// when a bound term is not interned (nothing can match).
    #[inline]
    fn resolve_ids(&self, pat: &TriplePattern) -> Option<[Option<TermId>; 3]> {
        let resolve = |term: Term| -> Result<Option<TermId>, ()> {
            match term {
                Term::Var(_) => Ok(None),
                Term::Iri(i) => self.dict.lookup(i).map(Some).ok_or(()),
            }
        };
        Some([
            resolve(pat.s).ok()?,
            resolve(pat.p).ok()?,
            resolve(pat.o).ok()?,
        ])
    }

    /// The candidate permutations for a pattern with the given bound
    /// ids, in the fixed comparison order. PSO joins the candidates only
    /// when the graph is fully compacted (segments carry no PSO run),
    /// listed before POS so a predicate-led tie lands on the
    /// subject-sorted block.
    #[inline]
    fn scan_candidates(&self, spo_ids: [Option<TermId>; 3]) -> [Candidate<'_>; 4] {
        [
            (Perm::Spo, spo_ids[0], &self.spo, &self.spo_off),
            (Perm::Osp, spo_ids[2], &self.osp, &self.osp_off),
            (
                Perm::Pso,
                if self.segments.is_empty() {
                    spo_ids[1]
                } else {
                    None
                },
                &self.pso,
                &self.pso_off,
            ),
            (Perm::Pos, spo_ids[1], &self.pos, &self.pos_off),
        ]
    }

    #[inline]
    fn scan(&self, pat: &TriplePattern) -> Option<Scan<'_>> {
        let spo_ids = self.resolve_ids(pat)?;
        const SMALL_ENOUGH: usize = 16;
        let options = self.scan_candidates(spo_ids);
        let mut best: Option<Scan<'_>> = None;
        let mut best_total = usize::MAX;
        for (perm, lead, rows, off) in options {
            let Some(lead) = lead else { continue };
            let base = self.leading_range(rows, off, lead);
            let deltas: Vec<&[Row]> = self
                .segments
                .iter()
                .map(|s| Self::narrow(s.rows(perm), 0, lead))
                .filter(|d| !d.is_empty())
                .collect();
            let (base, deltas, residual, total) = Self::narrow_sources(perm, base, deltas, spo_ids);
            if total < best_total {
                best_total = total;
                best = Some(Scan {
                    perm,
                    base,
                    deltas,
                    residual,
                });
            }
            // A candidate this small is taken on the spot: probing the
            // remaining permutations (and binary-searching their huge
            // leading blocks) costs more than the few rows it might save.
            if total <= SMALL_ENOUGH {
                break;
            }
        }
        Some(best.unwrap_or_else(|| {
            // No bound component: full scan over SPO, base + all deltas.
            let (base, deltas, residual, _) = Self::narrow_sources(
                Perm::Spo,
                &self.spo,
                self.segments.iter().map(|s| s.rows(Perm::Spo)).collect(),
                spo_ids,
            );
            Scan {
                perm: Perm::Spo,
                base,
                deltas,
                residual,
            }
        }))
    }

    /// Row-position pairs (in `perm`'s layout) that must hold equal ids
    /// because the pattern repeats a variable there.
    fn repeat_constraints(pat: &TriplePattern, perm: Perm) -> Vec<(usize, usize)> {
        let layout = perm.layout();
        let terms = pat.positions();
        let mut out = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                if let (Term::Var(a), Term::Var(b)) = (terms[i], terms[j]) {
                    if a == b {
                        out.push((layout[i], layout[j]));
                    }
                }
            }
        }
        out
    }

    /// Upper bound on the triples matching the pattern's constant
    /// positions: the chosen bound-prefix run lengths, O(1)/O(log n).
    /// Exact whenever the access path needed no residual filter (every
    /// single-constant pattern and all sorted-prefix combinations).
    ///
    /// Counting takes a leading-range-only fast path: candidates are
    /// compared by their leading run alone (two offset loads each, plus
    /// one binary search per pending segment) and only the winner is
    /// prefix-narrowed. When that narrowing consumes every bound
    /// component the count is exact — the minimum any candidate could
    /// produce — so skipping the other candidates cannot change the
    /// result, only the cost (the hom solver's fail-first loop calls
    /// this per search node). Residual-filtered shapes (`(? p o)` on a
    /// hub object, `(s ? o)`) fall back to the full adaptive comparison
    /// of [`EncodedGraph::scan`], which is what keeps their estimates
    /// tight.
    pub fn candidate_count(&self, pat: &TriplePattern) -> usize {
        let Some(spo_ids) = self.resolve_ids(pat) else {
            return 0;
        };
        if spo_ids.iter().all(Option::is_none) {
            return self.len();
        }
        let mut best: Option<(Perm, TermId, &[Row], usize)> = None;
        for (perm, lead, rows, off) in self.scan_candidates(spo_ids) {
            let Some(lead) = lead else { continue };
            let base = self.leading_range(rows, off, lead);
            let mut total = base.len();
            for seg in &self.segments {
                total += Self::narrow(seg.rows(perm), 0, lead).len();
            }
            if best.as_ref().is_none_or(|&(.., t)| total < t) {
                best = Some((perm, lead, base, total));
            }
        }
        let Some((perm, lead, base, total)) = best else {
            // At least one component is bound, so some candidate leads
            // with it; this arm is unreachable but harmless.
            return self.scan(pat).map_or(0, |s| s.total());
        };
        if total == 0 {
            return 0;
        }
        // Would prefix-narrowing the winner consume every bound
        // component? A bound key after an unbound row position would be
        // a residual filter — the shapes where comparing the *other*
        // narrowed candidates can genuinely pick a smaller run.
        let layout = perm.layout();
        let mut keys = [None; 3];
        for (component, id) in spo_ids.into_iter().enumerate() {
            keys[layout[component]] = id;
        }
        let mut gap = false;
        for key in &keys[1..] {
            match key {
                Some(_) if gap => return self.scan(pat).map_or(0, |s| s.total()),
                Some(_) => {}
                None => gap = true,
            }
        }
        let narrowed = |mut run: &[Row]| {
            for (pos, key) in keys.iter().enumerate().skip(1) {
                match key {
                    Some(key) => run = Self::narrow(run, pos, *key),
                    None => break,
                }
            }
            run.len()
        };
        let mut count = narrowed(base);
        for seg in &self.segments {
            count += narrowed(Self::narrow(seg.rows(perm), 0, lead));
        }
        count
    }

    /// All triples matching `pat`, honouring repeated variables.
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        let Some(scan) = self.scan(pat) else {
            return Vec::new();
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let exact = scan.is_exact() && eqs.is_empty();
        // Bound positions already carry their IRI in the pattern — only
        // the variable positions go through the decode table.
        let fixed = pat.positions().map(Term::as_iri);
        let decode = |row: Row, out: &mut Vec<Triple>| {
            let [s, p, o] = scan.perm.spo_of(row);
            out.push(Triple::new(
                fixed[0].unwrap_or_else(|| self.dict.decode(s)),
                fixed[1].unwrap_or_else(|| self.dict.decode(p)),
                fixed[2].unwrap_or_else(|| self.dict.decode(o)),
            ));
        };
        let mut out = Vec::with_capacity(if exact { scan.total() } else { 0 });
        if exact {
            for src in scan.sources() {
                for &row in src {
                    decode(row, &mut out);
                }
            }
        } else {
            for src in scan.sources() {
                for &row in src {
                    if scan.row_matches(&row) && eqs.iter().all(|&(i, j)| row[i] == row[j]) {
                        decode(row, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Single-pattern solutions (Pérez et al., rule 1).
    pub fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        self.match_pattern(pat)
            .into_iter()
            .filter_map(|t| binding_of(pat, &t))
            .collect()
    }

    /// The sorted, deduplicated ids that variable `v` can take in a match
    /// of `pat` — the merge-join input. `None` when `v` does not occur in
    /// `pat`. When the scan lands on a run already sorted by `v`'s row
    /// position (PSO's subject-sorted predicate blocks, or any leading
    /// position), the comparison sort is skipped.
    pub fn candidate_ids(
        &self,
        pat: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let positions: Vec<usize> = pat
            .positions()
            .into_iter()
            .enumerate()
            .filter(|&(_, t)| t == Term::Var(v))
            .map(|(i, _)| i)
            .collect();
        if positions.is_empty() {
            return None;
        }
        let Some(scan) = self.scan(pat) else {
            return Some(Vec::new());
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let take = scan.perm.layout()[positions[0]];
        let mut ids: Vec<TermId> = Vec::new();
        for src in scan.sources() {
            ids.extend(
                src.iter()
                    .filter(|row| {
                        scan.row_matches(row) && eqs.iter().all(|&(i, j)| row[i] == row[j])
                    })
                    .map(|row| row[take]),
            );
        }
        if !ids.is_sorted() {
            ids.sort_unstable();
        }
        ids.dedup();
        Some(ids)
    }

    /// As [`EncodedGraph::candidate_ids`], decoded back to IRIs and
    /// re-sorted in [`Iri`] order — the backend-independent semi-join
    /// input behind [`TripleIndex::candidate_values`] (local ids mean
    /// nothing outside this graph's dictionary, so cross-backend callers
    /// get values).
    pub fn candidate_values(
        &self,
        pat: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<Iri>> {
        let ids = self.candidate_ids(pat, v)?;
        let mut vals: Vec<Iri> = ids.into_iter().map(|id| self.dict.decode(id)).collect();
        vals.sort_unstable();
        Some(vals)
    }

    /// Sorted-merge intersection of the candidate id lists of a variable
    /// shared by two patterns — the classic merge join on one join
    /// variable. `None` when `v` is missing from either pattern.
    pub fn merge_join_ids(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let xs = self.candidate_ids(a, v)?;
        let ys = self.candidate_ids(b, v)?;
        Some(intersect_sorted(&xs, &ys))
    }

    /// As [`EncodedGraph::merge_join_ids`], decoded back to IRIs.
    pub fn merge_join_values(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<Iri>> {
        Some(
            self.merge_join_ids(a, b, v)?
                .into_iter()
                .map(|id| self.dict.decode(id))
                .collect(),
        )
    }

    /// Distinct predicates with their cardinalities, descending — the
    /// selectivity statistics behind the service's query planner. Base
    /// counts read off the POS offsets; pending segments are folded in.
    pub fn predicate_cardinalities(&self) -> Vec<(Iri, usize)> {
        let mut counts = vec![0usize; self.dict.len()];
        for (id, count) in counts
            .iter_mut()
            .enumerate()
            .take(self.pos_off.len().saturating_sub(1))
        {
            *count = (self.pos_off[id + 1] - self.pos_off[id]) as usize;
        }
        for seg in &self.segments {
            for row in seg.rows(Perm::Pos) {
                counts[row[0] as usize] += 1;
            }
        }
        let mut out: Vec<(Iri, usize)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(id, &n)| (self.dict.decode(id as TermId), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct terms occurring as subjects / predicates /
    /// objects: the base offset tables plus the pending segments.
    pub fn position_cardinalities(&self) -> (usize, usize, usize) {
        let distinct = |perm: Perm, off: &[u32]| {
            if self.segments.is_empty() {
                return off.windows(2).filter(|w| w[1] > w[0]).count();
            }
            let mut seen = vec![false; self.dict.len()];
            for (id, w) in off.windows(2).enumerate() {
                if w[1] > w[0] {
                    seen[id] = true;
                }
            }
            for seg in &self.segments {
                for row in seg.rows(perm) {
                    seen[row[0] as usize] = true;
                }
            }
            seen.into_iter().filter(|&b| b).count()
        };
        (
            distinct(Perm::Spo, &self.spo_off),
            distinct(Perm::Pos, &self.pos_off),
            distinct(Perm::Osp, &self.osp_off),
        )
    }

    /// All triples in SPO order — a lazy k-way merge of the base run and
    /// every pending segment.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        MergedRows::new(
            std::iter::once(self.spo.as_slice())
                .chain(self.segments.iter().map(|s| s.rows(Perm::Spo))),
        )
        .map(|row| self.decode_triple(row))
    }

    /// Decodes the whole store back into an [`RdfGraph`].
    pub fn to_rdf(&self) -> RdfGraph {
        self.iter().collect()
    }
}

impl TripleIndex for EncodedGraph {
    fn len(&self) -> usize {
        EncodedGraph::len(self)
    }

    fn contains(&self, t: &Triple) -> bool {
        EncodedGraph::contains(self, t)
    }

    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.iter())
    }

    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
        Box::new(self.dom_sorted.iter().copied())
    }

    fn dom_contains(&self, i: Iri) -> bool {
        self.dict.lookup(i).is_some()
    }

    fn candidate_count(&self, pat: &TriplePattern) -> usize {
        EncodedGraph::candidate_count(self, pat)
    }

    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        EncodedGraph::match_pattern(self, pat)
    }

    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        EncodedGraph::solutions(self, pat)
    }

    fn candidate_values(&self, pat: &TriplePattern, v: wdsparql_rdf::Variable) -> Option<Vec<Iri>> {
        EncodedGraph::candidate_values(self, pat, v)
    }
}

impl FromIterator<Triple> for EncodedGraph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> EncodedGraph {
        EncodedGraph::from_triples(iter)
    }
}

impl PartialEq for EncodedGraph {
    /// Set equality up to dictionary numbering and physical layout: both
    /// graphs hold the same ground triples (compacted or not).
    fn eq(&self, other: &EncodedGraph) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for EncodedGraph {}

/// Two-pointer intersection of sorted id lists.
fn intersect_sorted(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Variable};

    fn sample() -> EncodedGraph {
        EncodedGraph::from_triples(
            [
                ("a", "p", "b"),
                ("a", "p", "c"),
                ("b", "p", "c"),
                ("b", "q", "a"),
                ("c", "q", "a"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    #[test]
    fn build_deduplicates_and_sorts() {
        let g = EncodedGraph::from_triples([
            Triple::from_strs("x", "r", "y"),
            Triple::from_strs("x", "r", "y"),
        ]);
        assert_eq!(g.len(), 1);
        assert!(g.contains(&Triple::from_strs("x", "r", "y")));
        assert!(!g.contains(&Triple::from_strs("y", "r", "x")));
    }

    #[test]
    fn every_access_pattern_matches_the_rdf_graph() {
        let strs = [
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ];
        let r = RdfGraph::from_strs(strs);
        let pats = [
            tp(iri("a"), iri("p"), iri("b")),
            tp(iri("a"), iri("p"), var("y")),
            tp(iri("a"), var("x"), iri("b")),
            tp(iri("a"), var("x"), var("y")),
            tp(var("x"), iri("p"), iri("c")),
            tp(var("x"), iri("q"), var("y")),
            tp(var("x"), var("y"), iri("a")),
            tp(var("x"), var("y"), var("z")),
        ];
        // Once compacted (PSO live), once with every triple still in
        // delta segments, once half-and-half.
        let compacted = sample();
        let mut all_delta = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in strs {
            all_delta
                .insert_batch([Triple::from_strs(t.0, t.1, t.2)])
                .unwrap();
        }
        let mut half = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        half.insert_batch(strs[..3].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        half.compact();
        half.insert_batch(strs[3..].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        for (label, g) in [
            ("compacted", &compacted),
            ("all-delta", &all_delta),
            ("half", &half),
        ] {
            assert_eq!(g.len(), r.len(), "{label}");
            for pat in pats {
                let mut got = g.match_pattern(&pat);
                let mut want = r.match_pattern(&pat);
                got.sort();
                want.sort();
                assert_eq!(got, want, "{label}: pattern {pat}");
                assert!(g.candidate_count(&pat) >= got.len(), "{label}: {pat}");
                assert_eq!(g.solutions(&pat).len(), r.solutions(&pat).len());
            }
        }
    }

    #[test]
    fn repeated_variables_constrain_matches() {
        let mut g = sample();
        g.insert_batch([Triple::from_strs("d", "p", "d")]).unwrap();
        let loops = g.match_pattern(&tp(var("x"), iri("p"), var("x")));
        assert_eq!(loops, vec![Triple::from_strs("d", "p", "d")]);
        assert!(g
            .match_pattern(&tp(var("x"), var("x"), var("x")))
            .is_empty());
    }

    /// The leading-range-only counting fast path returns the exact
    /// constant-match count on every sorted-prefix shape — with rows in
    /// the base, in pending segments, and split across both — and stays
    /// an upper bound on the residual-filtered shapes it falls back on.
    #[test]
    fn candidate_count_fast_path_is_exact_on_prefix_shapes() {
        let strs = [
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ];
        let compacted =
            EncodedGraph::from_triples(strs.map(|(s, p, o)| Triple::from_strs(s, p, o)));
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in strs {
            staged
                .insert_batch([Triple::from_strs(t.0, t.1, t.2)])
                .unwrap();
        }
        let mut half = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        half.insert_batch(strs[..3].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        half.compact();
        half.insert_batch(strs[3..].iter().map(|t| Triple::from_strs(t.0, t.1, t.2)))
            .unwrap();
        // (constant prefix shapes, expected exact counts)
        let exact = [
            (tp(iri("a"), var("x"), var("y")), 3),
            (tp(iri("a"), iri("p"), var("y")), 2),
            (tp(iri("a"), iri("p"), iri("c")), 1),
            (tp(var("x"), iri("q"), var("y")), 3),
            (tp(var("x"), var("w"), iri("a")), 2),
            (tp(var("x"), var("w"), var("y")), 6),
        ];
        for (label, g) in [
            ("compacted", &compacted),
            ("staged", &staged),
            ("half", &half),
        ] {
            for (pat, want) in &exact {
                assert_eq!(g.candidate_count(pat), *want, "{label}: {pat}");
            }
            // Fallback shapes: an upper bound that still dominates the
            // true match count.
            for pat in [
                tp(var("x"), iri("q"), iri("a")),
                tp(iri("a"), var("w"), iri("b")),
            ] {
                assert!(
                    g.candidate_count(&pat) >= g.match_pattern(&pat).len(),
                    "{label}: {pat}"
                );
            }
        }
        // Unknown constants still count zero through the fast path.
        assert_eq!(
            compacted.candidate_count(&tp(iri("zz"), iri("p"), var("y"))),
            0
        );
    }

    #[test]
    fn capped_inserts_refuse_cleanly() {
        let mut g = EncodedGraph::new();
        g.insert_batch_capped([Triple::from_strs("a", "p", "b")], 2)
            .unwrap();
        let err = g
            .insert_batch_capped(
                [
                    Triple::from_strs("c", "p", "d"),
                    Triple::from_strs("e", "p", "f"),
                ],
                2,
            )
            .unwrap_err();
        assert_eq!((err.attempted, err.limit), (3, 2));
        assert_eq!(g.len(), 1, "refused batch leaves the graph unchanged");
        assert_eq!(g.term_count(), 3, "refused batch interns nothing");
        // Exactly at the limit is fine; duplicates never count twice.
        g.insert_batch_capped(
            [
                Triple::from_strs("a", "p", "b"),
                Triple::from_strs("c", "p", "d"),
            ],
            2,
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        // The plain insert path is uncapped (up to MAX_TRIPLES).
        g.insert_batch([Triple::from_strs("e", "p", "f")]).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn candidate_values_are_sorted_iris() {
        let g = sample();
        let pat = tp(var("s"), iri("q"), var("o"));
        let vals = g.candidate_values(&pat, Variable::new("s")).unwrap();
        assert!(vals.is_sorted());
        let mut names: Vec<&str> = vals.iter().map(|i| i.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert!(g.candidate_values(&pat, Variable::new("nope")).is_none());
        // The trait view serves the same list.
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.candidate_values(&pat, Variable::new("s")), Some(vals));
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(&tp(iri("zzz"), var("x"), var("y")))
            .is_empty());
        assert_eq!(g.candidate_count(&tp(var("x"), iri("zzz"), var("y"))), 0);
        assert!(!g.contains(&Triple::from_strs("a", "p", "zzz")));
    }

    #[test]
    fn incremental_batches_agree_with_one_shot_build() {
        let all: Vec<Triple> = (0..40)
            .map(|i| {
                Triple::from_strs(
                    &format!("s{}", i % 7),
                    &format!("p{}", i % 3),
                    &format!("o{i}"),
                )
            })
            .collect();
        let one_shot = EncodedGraph::from_triples(all.iter().copied());
        let mut incremental = EncodedGraph::new();
        for chunk in all.chunks(9) {
            incremental.insert_batch(chunk.iter().copied()).unwrap();
        }
        assert_eq!(one_shot, incremental);
        // Re-inserting is a no-op.
        assert_eq!(incremental.insert_batch(all).unwrap(), 0);
        // Compaction changes the layout, never the contents.
        incremental.compact();
        assert_eq!(incremental.segment_count(), 0);
        assert_eq!(one_shot, incremental);
    }

    #[test]
    fn segment_lifecycle_and_stats() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        assert_eq!(
            g.insert_batch([Triple::from_strs("a", "p", "b")]).unwrap(),
            1
        );
        assert_eq!(
            g.insert_batch([Triple::from_strs("c", "p", "d")]).unwrap(),
            1
        );
        assert_eq!((g.base_len(), g.delta_len(), g.segment_count()), (0, 2, 2));
        assert_eq!(g.compactions(), 0);
        // A batch of known triples adds no segment.
        assert_eq!(
            g.insert_batch([Triple::from_strs("a", "p", "b")]).unwrap(),
            0
        );
        assert_eq!(g.segment_count(), 2);
        assert!(g.compact());
        assert_eq!((g.base_len(), g.delta_len(), g.segment_count()), (2, 0, 0));
        assert_eq!(g.compactions(), 1);
        // A second compact is a no-op and does not count.
        assert!(!g.compact());
        assert_eq!(g.compactions(), 1);
    }

    #[test]
    fn every_batch_policy_keeps_the_base_compacted() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::EveryBatch);
        for i in 0..5 {
            g.insert_batch([Triple::from_strs(&format!("s{i}"), "p", "o")])
                .unwrap();
        }
        assert_eq!((g.base_len(), g.segment_count()), (5, 0));
        assert_eq!(g.compactions(), 5);
    }

    #[test]
    fn queries_agree_before_and_after_compaction() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for i in 0..30 {
            g.insert_batch((0..4).map(|j| {
                Triple::from_strs(
                    &format!("s{}", i % 5),
                    &format!("p{}", j % 2),
                    &format!("o{j}"),
                )
            }))
            .unwrap();
        }
        let pats = [
            tp(var("x"), iri("p0"), var("y")),
            tp(iri("s1"), var("q"), var("y")),
            tp(var("x"), iri("p1"), iri("o3")),
            tp(var("x"), var("q"), var("y")),
        ];
        let before: Vec<Vec<Triple>> = pats
            .iter()
            .map(|p| {
                let mut m = g.match_pattern(p);
                m.sort();
                m
            })
            .collect();
        assert!(g.segment_count() > 0, "deltas must be present before");
        g.compact();
        for (pat, want) in pats.iter().zip(before) {
            let mut got = g.match_pattern(pat);
            got.sort();
            assert_eq!(got, want, "pattern {pat}");
        }
    }

    #[test]
    fn merge_join_intersects_shared_variable() {
        let g = EncodedGraph::from_triples(
            [
                ("a", "p", "x"),
                ("b", "p", "x"),
                ("c", "p", "x"),
                ("b", "q", "y"),
                ("c", "q", "y"),
                ("d", "q", "y"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let p1 = tp(var("s"), iri("p"), var("o1"));
        let p2 = tp(var("s"), iri("q"), var("o2"));
        let shared = g.merge_join_values(&p1, &p2, Variable::new("s")).unwrap();
        let mut names: Vec<&str> = shared.iter().map(|i| i.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert!(g.merge_join_ids(&p1, &p2, Variable::new("nope")).is_none());
    }

    #[test]
    fn candidate_ids_are_sorted_with_and_without_deltas() {
        let triples: Vec<Triple> = (0..40)
            .map(|i| Triple::from_strs(&format!("s{}", (i * 7) % 13), "p", &format!("o{i}")))
            .collect();
        let compacted = EncodedGraph::from_triples(triples.iter().copied());
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for chunk in triples.chunks(11) {
            staged.insert_batch(chunk.iter().copied()).unwrap();
        }
        let pat = tp(var("s"), iri("p"), var("o"));
        let a = compacted.candidate_ids(&pat, Variable::new("s")).unwrap();
        let b = staged.candidate_ids(&pat, Variable::new("s")).unwrap();
        assert!(a.is_sorted() && b.is_sorted());
        // Same ids under both layouts (dictionaries agree: same insert
        // order of first occurrence is not guaranteed, so compare decoded).
        let decode = |g: &EncodedGraph, ids: &[TermId]| -> Vec<Iri> {
            let mut v: Vec<Iri> = ids.iter().map(|&i| g.dictionary().decode(i)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(decode(&compacted, &a), decode(&staged, &b));
    }

    #[test]
    fn stats_read_off_the_offsets() {
        let g = sample();
        let cards = g.predicate_cardinalities();
        assert_eq!(cards.len(), 2);
        assert_eq!(cards[0].1, 3); // p
        assert_eq!(cards[1].1, 2); // q
        let (s, p, o) = g.position_cardinalities();
        assert_eq!((s, p, o), (3, 2, 3)); // {a,b,c}, {p,q}, {a,b,c}

        // The same statistics hold with every row still in segments.
        let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for t in g.iter() {
            staged.insert_batch([t]).unwrap();
        }
        assert_eq!(staged.predicate_cardinalities(), cards);
        assert_eq!(staged.position_cardinalities(), (s, p, o));
    }

    #[test]
    fn trait_view_agrees_with_inherent_api() {
        let g = sample();
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.len(), 5);
        assert_eq!(ix.dom().count(), 5);
        assert!(ix.dom_contains(Iri::new("q")));
        assert_eq!(ix.triples().count(), 5);
        assert_eq!(ix.match_pattern(&tp(var("x"), iri("p"), var("y"))).len(), 3);
    }

    #[test]
    fn iter_is_sorted_even_with_segments() {
        let mut g = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for i in [5, 1, 9, 3, 7] {
            g.insert_batch([
                Triple::from_strs(&format!("s{i}"), "p", "o"),
                Triple::from_strs(&format!("s{}", i + 1), "q", "o"),
            ])
            .unwrap();
        }
        let rows: Vec<Triple> = g.iter().collect();
        assert_eq!(rows.len(), g.len());
        assert!(rows.is_sorted_by(|a, b| {
            let key = |t: &Triple| {
                let d = g.dictionary();
                [
                    d.lookup(t.s).unwrap(),
                    d.lookup(t.p).unwrap(),
                    d.lookup(t.o).unwrap(),
                ]
            };
            key(a) <= key(b)
        }));
    }

    #[test]
    fn round_trips_through_rdf() {
        let g = sample();
        assert_eq!(EncodedGraph::from_rdf(&g.to_rdf()), g);
    }
}
