//! [`EncodedGraph`]: the triple set as three sorted permutation arrays.
//!
//! Every triple is dictionary-encoded into a `[TermId; 3]` row and stored
//! three times, each copy sorted lexicographically under a different
//! component rotation:
//!
//! ```text
//! SPO  rows are (s, p, o)   answers  (s ? ?) (s p ?) (s p o) (? ? ?)
//! POS  rows are (p, o, s)   answers  (? p ?) (? p o)
//! OSP  rows are (o, s, p)   answers  (? ? o) (s ? o)
//! ```
//!
//! Because dictionary ids are dense, each permutation also carries an
//! offset array indexed by leading term id, so a bound *first* component
//! resolves to its contiguous row range in O(1); further bound components
//! narrow the range by binary search (O(log n)). Every bound-prefix
//! access pattern therefore reads one contiguous slice — no hashing, no
//! per-triple pointer chasing.

use crate::dict::{Dictionary, TermId};
use wdsparql_rdf::{binding_of, Iri, Mapping, RdfGraph, Term, Triple, TripleIndex, TriplePattern};

/// Which permutation a row slice came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Perm {
    Spo,
    Pos,
    Osp,
}

impl Perm {
    /// Row position of each original component (s, p, o) in this
    /// permutation's rows.
    fn layout(self) -> [usize; 3] {
        match self {
            Perm::Spo => [0, 1, 2],
            Perm::Pos => [2, 0, 1],
            Perm::Osp => [1, 2, 0],
        }
    }

    /// Reassembles a row of this permutation into (s, p, o) ids.
    fn spo_of(self, row: [TermId; 3]) -> [TermId; 3] {
        let [s, p, o] = self.layout();
        [row[s], row[p], row[o]]
    }
}

/// A dictionary-encoded, permutation-indexed set of ground triples.
#[derive(Clone, Debug, Default)]
pub struct EncodedGraph {
    dict: Dictionary,
    spo: Vec<[TermId; 3]>,
    pos: Vec<[TermId; 3]>,
    osp: Vec<[TermId; 3]>,
    spo_off: Vec<u32>,
    pos_off: Vec<u32>,
    osp_off: Vec<u32>,
    dom_sorted: Vec<Iri>,
}

/// The resolution of a pattern against the indexes: the rows that can
/// match, how they are permuted, and any bound components that could not
/// be narrowed by sorted prefix and must be checked per row instead.
struct Scan<'a> {
    perm: Perm,
    rows: &'a [[TermId; 3]],
    /// Per row position: a required id the sort order could not enforce.
    residual: [Option<TermId>; 3],
}

impl Scan<'_> {
    fn row_matches(&self, row: &[TermId; 3]) -> bool {
        self.residual
            .iter()
            .zip(row)
            .all(|(req, &id)| req.is_none_or(|want| want == id))
    }

    fn is_exact(&self) -> bool {
        self.residual.iter().all(Option::is_none)
    }
}

impl EncodedGraph {
    pub fn new() -> EncodedGraph {
        EncodedGraph::default()
    }

    pub fn from_triples<I>(triples: I) -> EncodedGraph
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut g = EncodedGraph::new();
        g.insert_batch(triples);
        g
    }

    /// Re-encodes an [`RdfGraph`].
    pub fn from_rdf(g: &RdfGraph) -> EncodedGraph {
        EncodedGraph::from_triples(g.iter().copied())
    }

    /// Bulk insert: encodes, sorts and merges `triples` into all three
    /// permutations in one pass each. Returns the number of triples that
    /// were not already present. This is the only mutation path — the
    /// store favours batched loads over per-triple inserts.
    pub fn insert_batch<I>(&mut self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut batch: Vec<[TermId; 3]> = triples
            .into_iter()
            .map(|t| {
                [
                    self.dict.encode(t.s),
                    self.dict.encode(t.p),
                    self.dict.encode(t.o),
                ]
            })
            .collect();
        batch.sort_unstable();
        batch.dedup();
        batch.retain(|row| !self.contains_ids(*row));
        let added = batch.len();
        if added == 0 && !self.spo_off.is_empty() {
            // Every batch triple was already present, so every term it
            // interned was already in the dictionary: the permutations
            // and offsets are unchanged, and the (built) derived arrays
            // can be kept as-is.
            return 0;
        }
        if added > 0 {
            self.spo = merge_sorted(&self.spo, &batch);
            let mut rot: Vec<[TermId; 3]> = batch.iter().map(|&[s, p, o]| [p, o, s]).collect();
            rot.sort_unstable();
            self.pos = merge_sorted(&self.pos, &rot);
            rot = batch.iter().map(|&[s, p, o]| [o, s, p]).collect();
            rot.sort_unstable();
            self.osp = merge_sorted(&self.osp, &rot);
        }
        let terms = self.dict.len();
        self.spo_off = offsets(&self.spo, terms);
        self.pos_off = offsets(&self.pos, terms);
        self.osp_off = offsets(&self.osp, terms);
        self.dom_sorted = self.dict.iter().collect();
        self.dom_sorted.sort_unstable();
        added
    }

    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms (= `|dom(G)|`).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    pub fn contains(&self, t: &Triple) -> bool {
        let Some(row) = self.encode_triple(t) else {
            return false;
        };
        self.contains_ids(row)
    }

    fn encode_triple(&self, t: &Triple) -> Option<[TermId; 3]> {
        Some([
            self.dict.lookup(t.s)?,
            self.dict.lookup(t.p)?,
            self.dict.lookup(t.o)?,
        ])
    }

    fn contains_ids(&self, row: [TermId; 3]) -> bool {
        self.leading_range(&self.spo, &self.spo_off, row[0])
            .binary_search(&row)
            .is_ok()
    }

    fn decode_triple(&self, row: [TermId; 3]) -> Triple {
        Triple::new(
            self.dict.decode(row[0]),
            self.dict.decode(row[1]),
            self.dict.decode(row[2]),
        )
    }

    /// The contiguous row range of permutation `rows` whose leading
    /// component is `id` — O(1) through the offset array. Empty when the
    /// id is out of range (the offsets always cover the dictionary, so
    /// this is purely defensive).
    fn leading_range<'a>(
        &self,
        rows: &'a [[TermId; 3]],
        off: &[u32],
        id: TermId,
    ) -> &'a [[TermId; 3]] {
        let i = id as usize;
        if i + 1 >= off.len() {
            return &[];
        }
        &rows[off[i] as usize..off[i + 1] as usize]
    }

    /// Narrows a sorted row slice to the rows with `row[pos] == key` by
    /// binary search. Valid whenever the slice is sorted on `pos` (i.e.
    /// all earlier row positions are constant on the slice).
    fn narrow(slice: &[[TermId; 3]], pos: usize, key: TermId) -> &[[TermId; 3]] {
        let lo = slice.partition_point(|r| r[pos] < key);
        let hi = slice.partition_point(|r| r[pos] <= key);
        &slice[lo..hi]
    }

    /// Picks the permutation and row range for the pattern's bound
    /// positions. `None` means a bound term is not in the dictionary, so
    /// nothing can match.
    ///
    /// The choice is adaptive: among the permutations whose *leading*
    /// component is bound, the smallest O(1) leading range wins (all
    /// range lengths are two offset loads each). Further bound
    /// components narrow that range by binary search while they form a
    /// sorted prefix, and become per-row residual filters otherwise —
    /// on real data the chosen leading range is already tiny, so a
    /// linear residual check beats binary-searching a huge block.
    fn scan(&self, pat: &TriplePattern) -> Option<Scan<'_>> {
        let resolve = |term: Term| -> Result<Option<TermId>, ()> {
            match term {
                Term::Var(_) => Ok(None),
                Term::Iri(i) => self.dict.lookup(i).map(Some).ok_or(()),
            }
        };
        let spo = [
            resolve(pat.s).ok()?,
            resolve(pat.p).ok()?,
            resolve(pat.o).ok()?,
        ];
        // Candidate leading ranges: one per permutation with a bound
        // leading component. A range this small is taken immediately —
        // probing the remaining offset arrays costs more than scanning
        // the few extra rows it might save.
        const SMALL_ENOUGH: usize = 16;
        let options = [
            (Perm::Spo, spo[0], &self.spo, &self.spo_off),
            (Perm::Osp, spo[2], &self.osp, &self.osp_off),
            (Perm::Pos, spo[1], &self.pos, &self.pos_off),
        ];
        let mut best: Option<(Perm, &[[TermId; 3]])> = None;
        for (perm, lead, rows, off) in options {
            let Some(lead) = lead else { continue };
            let range = self.leading_range(rows, off, lead);
            if range.len() <= SMALL_ENOUGH {
                best = Some((perm, range));
                break;
            }
            if best.is_none_or(|(_, b)| range.len() < b.len()) {
                best = Some((perm, range));
            }
        }
        let (perm, mut rows) = best.unwrap_or((Perm::Spo, &self.spo));
        // Bound components in the chosen permutation's row order: narrow
        // while the prefix stays sorted, filter residually afterwards.
        let layout = perm.layout();
        let mut keys = [None; 3];
        for (component, id) in spo.into_iter().enumerate() {
            keys[layout[component]] = id;
        }
        let mut residual = [None; 3];
        let mut prefix_sorted = true;
        for (row_pos, key) in keys.into_iter().enumerate().skip(1) {
            let Some(key) = key else {
                prefix_sorted = false;
                continue;
            };
            if prefix_sorted {
                rows = Self::narrow(rows, row_pos, key);
            } else {
                residual[row_pos] = Some(key);
            }
        }
        Some(Scan {
            perm,
            rows,
            residual,
        })
    }

    /// Row-position pairs (in `perm`'s layout) that must hold equal ids
    /// because the pattern repeats a variable there.
    fn repeat_constraints(pat: &TriplePattern, perm: Perm) -> Vec<(usize, usize)> {
        let layout = perm.layout();
        let terms = pat.positions();
        let mut out = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                if let (Term::Var(a), Term::Var(b)) = (terms[i], terms[j]) {
                    if a == b {
                        out.push((layout[i], layout[j]));
                    }
                }
            }
        }
        out
    }

    /// Upper bound on the triples matching the pattern's constant
    /// positions: the chosen bound-prefix range length, O(1)/O(log n).
    /// Exact whenever the access path needed no residual filter (every
    /// single-constant pattern and all sorted-prefix combinations).
    pub fn candidate_count(&self, pat: &TriplePattern) -> usize {
        self.scan(pat).map_or(0, |s| s.rows.len())
    }

    /// All triples matching `pat`, honouring repeated variables.
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        let Some(scan) = self.scan(pat) else {
            return Vec::new();
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let exact = scan.is_exact() && eqs.is_empty();
        // Bound positions already carry their IRI in the pattern — only
        // the variable positions go through the decode table.
        let fixed = pat.positions().map(Term::as_iri);
        let mut out = Vec::with_capacity(if exact { scan.rows.len() } else { 0 });
        for &row in scan.rows {
            if scan.row_matches(&row) && eqs.iter().all(|&(i, j)| row[i] == row[j]) {
                let [s, p, o] = scan.perm.spo_of(row);
                out.push(Triple::new(
                    fixed[0].unwrap_or_else(|| self.dict.decode(s)),
                    fixed[1].unwrap_or_else(|| self.dict.decode(p)),
                    fixed[2].unwrap_or_else(|| self.dict.decode(o)),
                ));
            }
        }
        out
    }

    /// Single-pattern solutions (Pérez et al., rule 1).
    pub fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        self.match_pattern(pat)
            .into_iter()
            .filter_map(|t| binding_of(pat, &t))
            .collect()
    }

    /// The sorted, deduplicated ids that variable `v` can take in a match
    /// of `pat` — the merge-join input. `None` when `v` does not occur in
    /// `pat`.
    pub fn candidate_ids(
        &self,
        pat: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let positions: Vec<usize> = pat
            .positions()
            .into_iter()
            .enumerate()
            .filter(|&(_, t)| t == Term::Var(v))
            .map(|(i, _)| i)
            .collect();
        if positions.is_empty() {
            return None;
        }
        let Some(scan) = self.scan(pat) else {
            return Some(Vec::new());
        };
        let eqs = Self::repeat_constraints(pat, scan.perm);
        let take = scan.perm.layout()[positions[0]];
        let mut ids: Vec<TermId> = scan
            .rows
            .iter()
            .filter(|row| scan.row_matches(row) && eqs.iter().all(|&(i, j)| row[i] == row[j]))
            .map(|row| row[take])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    /// Sorted-merge intersection of the candidate id lists of a variable
    /// shared by two patterns — the classic merge join on one join
    /// variable. `None` when `v` is missing from either pattern.
    pub fn merge_join_ids(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<TermId>> {
        let xs = self.candidate_ids(a, v)?;
        let ys = self.candidate_ids(b, v)?;
        Some(intersect_sorted(&xs, &ys))
    }

    /// As [`EncodedGraph::merge_join_ids`], decoded back to IRIs.
    pub fn merge_join_values(
        &self,
        a: &TriplePattern,
        b: &TriplePattern,
        v: wdsparql_rdf::Variable,
    ) -> Option<Vec<Iri>> {
        Some(
            self.merge_join_ids(a, b, v)?
                .into_iter()
                .map(|id| self.dict.decode(id))
                .collect(),
        )
    }

    /// Distinct predicates with their cardinalities, descending — the
    /// selectivity statistics behind the service's query planner.
    pub fn predicate_cardinalities(&self) -> Vec<(Iri, usize)> {
        let mut out: Vec<(Iri, usize)> = (0..self.dict.len())
            .filter_map(|id| {
                let (lo, hi) = (self.pos_off[id] as usize, self.pos_off[id + 1] as usize);
                (hi > lo).then(|| (self.dict.decode(id as TermId), hi - lo))
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct terms occurring as subjects / predicates /
    /// objects, read off the offset arrays.
    pub fn position_cardinalities(&self) -> (usize, usize, usize) {
        let distinct = |off: &[u32]| off.windows(2).filter(|w| w[1] > w[0]).count();
        (
            distinct(&self.spo_off),
            distinct(&self.pos_off),
            distinct(&self.osp_off),
        )
    }

    /// All triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&row| self.decode_triple(row))
    }

    /// Decodes the whole store back into an [`RdfGraph`].
    pub fn to_rdf(&self) -> RdfGraph {
        self.iter().collect()
    }
}

impl TripleIndex for EncodedGraph {
    fn len(&self) -> usize {
        EncodedGraph::len(self)
    }

    fn contains(&self, t: &Triple) -> bool {
        EncodedGraph::contains(self, t)
    }

    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.iter())
    }

    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
        Box::new(self.dom_sorted.iter().copied())
    }

    fn dom_contains(&self, i: Iri) -> bool {
        self.dict.lookup(i).is_some()
    }

    fn candidate_count(&self, pat: &TriplePattern) -> usize {
        EncodedGraph::candidate_count(self, pat)
    }

    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        EncodedGraph::match_pattern(self, pat)
    }

    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        EncodedGraph::solutions(self, pat)
    }
}

impl FromIterator<Triple> for EncodedGraph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> EncodedGraph {
        EncodedGraph::from_triples(iter)
    }
}

impl PartialEq for EncodedGraph {
    /// Set equality up to dictionary numbering: both graphs hold the same
    /// ground triples.
    fn eq(&self, other: &EncodedGraph) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for EncodedGraph {}

/// Merges two sorted, disjoint row runs into one sorted vector.
fn merge_sorted(a: &[[TermId; 3]], b: &[[TermId; 3]]) -> Vec<[TermId; 3]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Leading-component offsets: `off[id]..off[id+1]` is the row range whose
/// first component is `id`.
fn offsets(rows: &[[TermId; 3]], terms: usize) -> Vec<u32> {
    u32::try_from(rows.len()).expect("store too large: triple count exceeds u32 offsets");
    let mut off = vec![0u32; terms + 1];
    for row in rows {
        off[row[0] as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    off
}

/// Two-pointer intersection of sorted id lists.
fn intersect_sorted(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Variable};

    fn sample() -> EncodedGraph {
        EncodedGraph::from_triples(
            [
                ("a", "p", "b"),
                ("a", "p", "c"),
                ("b", "p", "c"),
                ("b", "q", "a"),
                ("c", "q", "a"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    #[test]
    fn build_deduplicates_and_sorts() {
        let g = EncodedGraph::from_triples([
            Triple::from_strs("x", "r", "y"),
            Triple::from_strs("x", "r", "y"),
        ]);
        assert_eq!(g.len(), 1);
        assert!(g.contains(&Triple::from_strs("x", "r", "y")));
        assert!(!g.contains(&Triple::from_strs("y", "r", "x")));
    }

    #[test]
    fn every_access_pattern_matches_the_rdf_graph() {
        let g = sample();
        let r = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ]);
        let pats = [
            tp(iri("a"), iri("p"), iri("b")),
            tp(iri("a"), iri("p"), var("y")),
            tp(iri("a"), var("x"), iri("b")),
            tp(iri("a"), var("x"), var("y")),
            tp(var("x"), iri("p"), iri("c")),
            tp(var("x"), iri("q"), var("y")),
            tp(var("x"), var("y"), iri("a")),
            tp(var("x"), var("y"), var("z")),
        ];
        for pat in pats {
            let mut got = g.match_pattern(&pat);
            let mut want = r.match_pattern(&pat);
            got.sort();
            want.sort();
            assert_eq!(got, want, "pattern {pat}");
            assert!(g.candidate_count(&pat) >= got.len());
            assert_eq!(g.solutions(&pat).len(), r.solutions(&pat).len());
        }
    }

    #[test]
    fn repeated_variables_constrain_matches() {
        let mut g = sample();
        g.insert_batch([Triple::from_strs("d", "p", "d")]);
        let loops = g.match_pattern(&tp(var("x"), iri("p"), var("x")));
        assert_eq!(loops, vec![Triple::from_strs("d", "p", "d")]);
        assert!(g
            .match_pattern(&tp(var("x"), var("x"), var("x")))
            .is_empty());
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(&tp(iri("zzz"), var("x"), var("y")))
            .is_empty());
        assert_eq!(g.candidate_count(&tp(var("x"), iri("zzz"), var("y"))), 0);
        assert!(!g.contains(&Triple::from_strs("a", "p", "zzz")));
    }

    #[test]
    fn incremental_batches_agree_with_one_shot_build() {
        let all: Vec<Triple> = (0..40)
            .map(|i| {
                Triple::from_strs(
                    &format!("s{}", i % 7),
                    &format!("p{}", i % 3),
                    &format!("o{i}"),
                )
            })
            .collect();
        let one_shot = EncodedGraph::from_triples(all.iter().copied());
        let mut incremental = EncodedGraph::new();
        for chunk in all.chunks(9) {
            incremental.insert_batch(chunk.iter().copied());
        }
        assert_eq!(one_shot, incremental);
        // Re-inserting is a no-op.
        assert_eq!(incremental.insert_batch(all), 0);
    }

    #[test]
    fn merge_join_intersects_shared_variable() {
        let g = EncodedGraph::from_triples(
            [
                ("a", "p", "x"),
                ("b", "p", "x"),
                ("c", "p", "x"),
                ("b", "q", "y"),
                ("c", "q", "y"),
                ("d", "q", "y"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        );
        let p1 = tp(var("s"), iri("p"), var("o1"));
        let p2 = tp(var("s"), iri("q"), var("o2"));
        let shared = g.merge_join_values(&p1, &p2, Variable::new("s")).unwrap();
        let mut names: Vec<&str> = shared.iter().map(|i| i.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert!(g.merge_join_ids(&p1, &p2, Variable::new("nope")).is_none());
    }

    #[test]
    fn stats_read_off_the_offsets() {
        let g = sample();
        let cards = g.predicate_cardinalities();
        assert_eq!(cards.len(), 2);
        assert_eq!(cards[0].1, 3); // p
        assert_eq!(cards[1].1, 2); // q
        let (s, p, o) = g.position_cardinalities();
        assert_eq!((s, p, o), (3, 2, 3)); // {a,b,c}, {p,q}, {a,b,c}
    }

    #[test]
    fn trait_view_agrees_with_inherent_api() {
        let g = sample();
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.len(), 5);
        assert_eq!(ix.dom().count(), 5);
        assert!(ix.dom_contains(Iri::new("q")));
        assert_eq!(ix.triples().count(), 5);
        assert_eq!(ix.match_pattern(&tp(var("x"), iri("p"), var("y"))).len(), 3);
    }

    #[test]
    fn round_trips_through_rdf() {
        let g = sample();
        assert_eq!(EncodedGraph::from_rdf(&g.to_rdf()), g);
    }
}
