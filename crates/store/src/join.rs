//! The pairwise join pipeline as a pull-based stream: the
//! most-selective-first plan of [`crate::service::plan_order`] executed
//! as a semi-join-pruned seed scan plus index-nested-loop (bind) joins,
//! producing solutions one pull at a time ([`PairwiseStream`]) instead
//! of materialising every intermediate.
//!
//! ## Order equivalence
//!
//! The old breadth-first materialisation expanded every intermediate row
//! before moving to the next plan step; the stream runs the same plan
//! depth-first, one root-to-leaf path at a time. Both orders enumerate
//! the same tuples `(seed index, step-1 match index, step-2 match
//! index, …)` lexicographically — breadth-first keeps parents in order
//! with contiguous children, depth-first walks exactly that tree — so
//! the streamed sequence *equals* the materialised vector, prefix by
//! prefix. The equivalence is what lets `LIMIT k` stop after `k` pulls
//! and still agree with the first `k` rows of a full run (pinned by the
//! `streaming_matches_materialized` proptest).
//!
//! ## Checkpoints
//!
//! The pull loop checks the [`QueryBudget`] once per iteration — one
//! bind-join probe or one emitted row per check — so a deadline or a
//! cancellation interrupts the pipeline within one bound
//! `match_pattern` scan.

use crate::service::{plan_order, PairwiseStepStats};
use crate::wcoj::{resolve_with_order, JoinStrategy, WcoStream};
use wdsparql_rdf::{
    binding_of, ExecError, Mapping, QueryBudget, SolutionStream, Triple, TripleIndex, TriplePattern,
};

/// One suspended bind-join level of a depth-first pairwise walk: the
/// parent row, the pattern bound under it, and the cursor into its
/// matches.
struct LevelState {
    parent: Mapping,
    bound: TriplePattern,
    matches: Vec<Triple>,
    pos: usize,
}

/// The pairwise pipeline (seed scan + semi-join prune + bind joins) as
/// a resumable depth-first cursor over the plan's join tree. Each
/// [`SolutionStream::next`] pull advances to the next full row and
/// suspends; the seed scan itself is deferred to the first pull, so a
/// zero deadline fails before any index work happens.
pub struct PairwiseStream<'a> {
    ix: &'a dyn TripleIndex,
    patterns: &'a [TriplePattern],
    order: Vec<usize>,
    /// The pruned seed rows; `None` until the first pull computes them.
    seed: Option<Vec<Mapping>>,
    seed_pos: usize,
    /// `levels[s - 1]` is the suspended state of plan step `s`.
    levels: Vec<LevelState>,
    /// The plan step the walk is currently at (0 = pulling seed rows).
    step: usize,
    done: bool,
    /// The single empty-mapping solution of an empty BGP.
    pending_empty: bool,
    stats: Option<Vec<PairwiseStepStats>>,
    budget: &'a QueryBudget,
}

impl<'a> PairwiseStream<'a> {
    /// Opens the pipeline over `ix` with the evaluation `order` already
    /// planned (callers that must not re-plan pass the plan in; see
    /// [`crate::service::plan_order`]). With `profiled`, per-step
    /// counters accumulate for [`PairwiseStream::step_stats`].
    pub fn new(
        ix: &'a dyn TripleIndex,
        patterns: &'a [TriplePattern],
        order: Vec<usize>,
        budget: &'a QueryBudget,
        profiled: bool,
    ) -> PairwiseStream<'a> {
        debug_assert_eq!(order.len(), patterns.len());
        let stats = profiled.then(|| {
            order
                .iter()
                .map(|&i| PairwiseStepStats {
                    pattern: i,
                    scans: 0,
                    rows: 0,
                })
                .collect()
        });
        PairwiseStream {
            ix,
            patterns,
            order,
            seed: None,
            seed_pos: 0,
            levels: Vec::new(),
            step: 0,
            done: false,
            pending_empty: patterns.is_empty(),
            stats,
            budget,
        }
    }

    /// Per-step execution counters, one entry per plan position in
    /// execution order (empty unless built `profiled`). Totals match
    /// the materialised pipeline's once the stream is exhausted;
    /// partial on an early stop.
    pub fn step_stats(&self) -> Vec<PairwiseStepStats> {
        self.stats.clone().unwrap_or_default()
    }

    /// Computes the seed rows: the most selective pattern's solutions,
    /// semi-join pruned against the second pattern's candidate values
    /// on their first shared variable (the first pattern's side is
    /// already in hand, so only the second's sorted values are
    /// scanned).
    fn compute_seed(&mut self) {
        let first = &self.patterns[self.order[0]];
        let mut sols = self.ix.solutions(first);
        if let Some(&second) = self.order.get(1) {
            let shared = first
                .vars()
                .intersection(&self.patterns[second].vars())
                .copied()
                .next();
            if let Some(v) = shared {
                if let Some(vals) = self.ix.candidate_values(&self.patterns[second], v) {
                    sols.retain(|mu| {
                        mu.get(v)
                            .is_some_and(|val| vals.binary_search(&val).is_ok())
                    });
                }
            }
        }
        if let Some(s) = self.stats.as_deref_mut() {
            s[0].scans = 1;
            s[0].rows = sols.len() as u64;
        }
        self.seed = Some(sols);
    }

    /// Suspends plan step `s` under parent row `mu`: binds the step's
    /// pattern and scans its matches (one index probe).
    fn open(&mut self, s: usize, mu: Mapping) {
        let bound = self.patterns[self.order[s]].apply_partial(&mu);
        let matches = self.ix.match_pattern(&bound);
        if let Some(stats) = self.stats.as_deref_mut() {
            stats[s].scans += 1;
        }
        let state = LevelState {
            parent: mu,
            bound,
            matches,
            pos: 0,
        };
        if let Some(slot) = self.levels.get_mut(s - 1) {
            *slot = state;
        } else {
            debug_assert_eq!(self.levels.len(), s - 1);
            self.levels.push(state);
        }
        self.step = s;
    }

    /// Resumes the depth-first walk until the next full row, the end of
    /// the seed, or a failed checkpoint.
    fn pull(&mut self) -> Result<Option<Mapping>, ExecError> {
        if self.pending_empty {
            self.budget.check()?;
            self.pending_empty = false;
            self.done = true;
            return Ok(Some(Mapping::new()));
        }
        loop {
            self.budget.check()?;
            if self.seed.is_none() {
                self.compute_seed();
            }
            if self.step == 0 {
                // analyzer-allow: no-unwrap-in-service compute_seed just
                // above fills the slot on the first pull.
                let seed = self.seed.as_ref().expect("seed computed above");
                if self.seed_pos >= seed.len() {
                    self.done = true;
                    return Ok(None);
                }
                let mu = seed[self.seed_pos].clone();
                self.seed_pos += 1;
                if self.order.len() == 1 {
                    return Ok(Some(mu));
                }
                self.open(1, mu);
            } else {
                let ls = &mut self.levels[self.step - 1];
                if ls.pos < ls.matches.len() {
                    let t = ls.matches[ls.pos];
                    ls.pos += 1;
                    // analyzer-allow: no-unwrap-in-service match_pattern
                    // yields exactly the triples the bound pattern
                    // matches, so a binding always exists; a None here is
                    // index corruption.
                    let nu = binding_of(&ls.bound, &t)
                        .expect("match_pattern returns only matching triples");
                    // analyzer-allow: no-unwrap-in-service nu binds only
                    // the pattern's free variables, which are disjoint
                    // from the parent's by construction of apply_partial.
                    let merged = ls
                        .parent
                        .union(&nu)
                        .expect("bound pattern cannot rebind branch variables");
                    if let Some(stats) = self.stats.as_deref_mut() {
                        stats[self.step].rows += 1;
                    }
                    if self.step + 1 == self.order.len() {
                        return Ok(Some(merged));
                    }
                    self.open(self.step + 1, merged);
                } else {
                    // This level's matches are spent: resume the parent
                    // step (back to the seed at step 0).
                    self.step -= 1;
                }
            }
        }
    }
}

impl SolutionStream for PairwiseStream<'_> {
    fn next(&mut self) -> Result<Option<Mapping>, ExecError> {
        if self.done {
            return Ok(None);
        }
        match self.pull() {
            Ok(v) => Ok(v),
            Err(e) => {
                // Budget errors are sticky: a failed stream stays
                // failed instead of resuming mid-walk.
                self.done = true;
                Err(e)
            }
        }
    }
}

/// Evaluates the conjunction of `patterns` in the given `order` with a
/// sorted semi-join on the first shared variable and index-nested-loop
/// (bind) joins for the rest. Does **not** re-plan: `order` is the
/// plan. A thin collect() over [`PairwiseStream`] — the streamed and
/// materialised row orders coincide (see the module docs).
pub(crate) fn eval_bgp_planned(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    order: &[usize],
) -> Vec<Mapping> {
    let budget = QueryBudget::unlimited();
    // analyzer-allow: no-unwrap-in-service an unlimited budget never
    // fails a checkpoint, so the materialised collect always arrives.
    PairwiseStream::new(ix, patterns, order.to_vec(), &budget, false)
        .collect_limit(None)
        .expect("an unlimited budget never fails a checkpoint")
}

/// As [`eval_bgp_planned`], additionally reporting per-step counters —
/// scan probes and intermediate cardinalities, one entry per plan
/// position.
pub(crate) fn eval_bgp_planned_profiled(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    order: &[usize],
) -> (Vec<Mapping>, Vec<PairwiseStepStats>) {
    let budget = QueryBudget::unlimited();
    let mut stream = PairwiseStream::new(ix, patterns, order.to_vec(), &budget, true);
    // analyzer-allow: no-unwrap-in-service an unlimited budget never
    // fails a checkpoint, so the materialised collect always arrives.
    let sols = stream
        .collect_limit(None)
        .expect("an unlimited budget never fails a checkpoint");
    (sols, stream.step_stats())
}

/// Opens the streaming evaluation of a BGP under `strategy` and
/// `budget`: resolves [`JoinStrategy::Auto`] on this snapshot exactly
/// as [`crate::wcoj::eval_bgp_with_strategy`] does, then returns the
/// matching stream — [`WcoStream`] or [`PairwiseStream`]. The single
/// entry point behind `query_budgeted` / `solutions_limit` on both
/// stores and the CLI's `--limit`/`--deadline-ms`.
pub fn open_bgp_stream<'a>(
    ix: &'a dyn TripleIndex,
    patterns: &'a [TriplePattern],
    strategy: JoinStrategy,
    budget: &'a QueryBudget,
) -> Box<dyn SolutionStream + 'a> {
    match strategy {
        JoinStrategy::Wco => Box::new(WcoStream::new(ix, patterns, budget, false)),
        JoinStrategy::Pairwise => {
            let order = plan_order(ix, patterns);
            Box::new(PairwiseStream::new(ix, patterns, order, budget, false))
        }
        JoinStrategy::Auto => {
            let order = plan_order(ix, patterns);
            match resolve_with_order(ix, patterns, strategy, &order) {
                JoinStrategy::Wco => Box::new(WcoStream::new(ix, patterns, budget, false)),
                _ => Box::new(PairwiseStream::new(ix, patterns, order, budget, false)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Triple};

    fn graph() -> crate::EncodedGraph {
        crate::EncodedGraph::from_triples(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("a", "p", "c"),
                ("c", "p", "d"),
                ("b", "p", "d"),
                ("b", "q", "x"),
                ("c", "q", "x"),
            ]
            .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    fn chain() -> [TriplePattern; 2] {
        [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ]
    }

    #[test]
    fn streamed_rows_equal_the_materialised_vector() {
        let g = graph();
        let pats = chain();
        let order = plan_order(&g, &pats);
        let want = eval_bgp_planned(&g, &pats, &order);
        assert!(!want.is_empty());
        let budget = QueryBudget::unlimited();
        let mut stream = PairwiseStream::new(&g, &pats, order.clone(), &budget, false);
        let mut got = Vec::new();
        while let Some(mu) = stream.next().expect("unlimited") {
            got.push(mu);
        }
        assert_eq!(got, want, "stream order must equal materialised order");
        // And every k-prefix of the stream is the k-prefix of the run.
        for k in 0..=want.len() {
            let mut s = PairwiseStream::new(&g, &pats, order.clone(), &budget, false);
            assert_eq!(s.collect_limit(Some(k)).expect("unlimited"), want[..k]);
        }
    }

    #[test]
    fn limit_pushdown_stops_probing_early() {
        let g = graph();
        let pats = chain();
        let order = plan_order(&g, &pats);
        let budget = QueryBudget::unlimited();
        let mut full = PairwiseStream::new(&g, &pats, order.clone(), &budget, true);
        let all = full.collect_limit(None).expect("unlimited");
        let full_scans: u64 = full.step_stats().iter().map(|s| s.scans).sum();
        let mut limited = PairwiseStream::new(&g, &pats, order, &budget, true);
        let one = limited.collect_limit(Some(1)).expect("unlimited");
        assert_eq!(one.as_slice(), &all[..1]);
        let limited_scans: u64 = limited.step_stats().iter().map(|s| s.scans).sum();
        assert!(
            limited_scans < full_scans,
            "LIMIT 1 must probe less: {limited_scans} vs {full_scans}"
        );
    }

    #[test]
    fn zero_deadline_fails_before_any_index_work() {
        let g = graph();
        let pats = chain();
        let order = plan_order(&g, &pats);
        let budget = QueryBudget::with_deadline(Duration::ZERO);
        let mut stream = PairwiseStream::new(&g, &pats, order, &budget, false);
        assert_eq!(stream.next(), Err(ExecError::DeadlineExceeded));
        // Sticky: a failed stream stays failed.
        assert_eq!(stream.next(), Ok(None));
        // The empty BGP also checkpoints before its one row (fresh
        // budget: op 0 is the one call guaranteed to consult the clock).
        let fresh = QueryBudget::with_deadline(Duration::ZERO);
        let mut empty = PairwiseStream::new(&g, &[], Vec::new(), &fresh, false);
        assert_eq!(empty.next(), Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn open_bgp_stream_routes_by_strategy_and_agrees() {
        let g = graph();
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        let budget = QueryBudget::unlimited();
        let sorted = |mut v: Vec<Mapping>| {
            v.sort();
            v
        };
        let want = sorted(crate::wcoj::eval_bgp_with_strategy(
            &g,
            &triangle,
            JoinStrategy::Pairwise,
        ));
        assert!(!want.is_empty());
        for strategy in [
            JoinStrategy::Pairwise,
            JoinStrategy::Wco,
            JoinStrategy::Auto,
        ] {
            let mut stream = open_bgp_stream(&g, &triangle, strategy, &budget);
            let got = stream.collect_limit(None).expect("unlimited");
            assert_eq!(sorted(got), want, "{strategy} stream diverged");
        }
    }
}
