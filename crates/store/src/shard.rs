//! [`ShardedStore`]: N hash-partitioned [`TripleStore`] shards behind
//! one facade — write scaling past a single write lock.
//!
//! ## Partitioning
//!
//! Every triple lives in exactly one shard, chosen by an FNV-1a hash of
//! its **subject's spelling** (stable across processes and independent
//! of interner order). Subject-bound patterns therefore route to exactly
//! one shard; unbound ones scatter to all shards and gather. Each shard
//! is a full [`TripleStore`]: its own reader-writer lock, its own
//! epoch, its own log-structured [`EncodedGraph`] — so bulk loads
//! scatter their batch and the per-shard inserts proceed under
//! *independent* write locks (in parallel on multi-core hosts), and a
//! snapshot-isolated reader pins one shard's graph instead of the whole
//! store: the copy-on-write a concurrent load pays is bounded by the
//! shard, not the dataset.
//!
//! ## Scatter-gather reads
//!
//! [`ShardedSnapshot`] implements [`TripleIndex`] — subject-bound
//! lookups route; everything else scatters to every shard (on scoped
//! threads when the host has spare cores and the candidate runs are big
//! enough to amortise the spawns) and concatenates the disjoint
//! per-shard runs lazily, in shard order — so every evaluator in the
//! workspace (the engine, hom solver, algebra, pebble game) runs
//! unchanged on the sharded layout, exactly as the delta segments of
//! PR 3 hid behind the same trait. Only `candidate_values` still merges:
//! its trait contract demands one ascending list.
//!
//! ## Caching
//!
//! The facade's result cache is keyed by the query plus the **epoch
//! vector of the shards the query read**: a routed query is keyed by one
//! `(shard, epoch)` pair and survives bulk loads that only touch other
//! shards; a fan-out query is keyed by every shard's epoch and
//! invalidates on any write. A load purges exactly the entries whose
//! epochs it bumped.
//!
//! ## Consistency
//!
//! A [`ShardedSnapshot`] is assembled shard by shard: each shard's view
//! is an atomic epoch snapshot, but a bulk load may land between two
//! shard acquisitions (the standard relaxation of partitioned stores).
//! Single-writer or externally-ordered workloads — and everything
//! single-threaded, like the equivalence proptests — observe exactly
//! the single-store semantics.

use crate::cache::{CacheStats, ResultCache};
use crate::encoded::EncodedGraph;
use crate::join::open_bgp_stream;
use crate::persist::{PersistError, PersistOpts, StoreDir};
use crate::service::{
    eval_bgp_planned, eval_bgp_planned_profiled, pairwise_step_spans, plan_order, plan_span,
    wco_level_spans, StoreError, StoreSnapshot, StoreStats, TripleStore,
};
use crate::wcoj::{
    eval_bgp_wco, eval_bgp_wco_profiled, eval_bgp_with_strategy, resolve_with_order, JoinStrategy,
};
use parking_lot::RwLock;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use wdsparql_obs::{QueryProfile, Span};
use wdsparql_rdf::{
    ExecError, Iri, Mapping, QueryBudget, RdfGraph, SolutionStream, Term, Triple, TripleIndex,
    TriplePattern, Variable,
};

/// Facade cache key: the BGP key plus the `(shard, epoch)` pairs the
/// query read. Routing is a pure function of the query text, so equal
/// keys always name the same shard subset.
type ShardedKey = (String, Vec<(usize, u64)>);

/// Stable shard routing: FNV-1a over the subject's spelling, reduced
/// modulo the shard count. Spelling (not interner id) keeps the
/// partition reproducible across processes and restarts.
fn shard_of_name(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Worker threads the host can actually run in parallel, probed once.
fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Candidate-row threshold below which a fan-out read stays sequential:
/// spawning scoped threads costs tens of microseconds, which only a scan
/// of some size amortises.
const PARALLEL_FANOUT_ROWS: usize = 4096;

/// Runs the per-shard jobs, on scoped threads when `parallel` (callers
/// gate on shard count and [`std::thread::available_parallelism`]), in
/// order otherwise. Results come back in job order either way.
fn run_jobs<T, F>(jobs: Vec<F>, parallel: bool) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if !parallel || jobs.len() <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs.into_iter().map(|f| s.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's own panic on the caller: the
                // original message and location survive, instead of a
                // generic join-failure panic swallowing them.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Merges two sorted runs into one sorted run (stable: ties take the
/// left run first), checkpointing `budget` once per emitted item so a
/// deadline interrupts the merge within one comparison step.
fn merge_two<T: Ord>(a: Vec<T>, b: Vec<T>, budget: &QueryBudget) -> Result<Vec<T>, ExecError> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter();
    let mut b = b.into_iter();
    let mut next_a = a.next();
    let mut next_b = b.next();
    loop {
        budget.check()?;
        match (next_a.take(), next_b.take()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(x);
                    next_a = a.next();
                    next_b = Some(y);
                } else {
                    out.push(y);
                    next_a = Some(x);
                    next_b = b.next();
                }
            }
            (Some(x), None) => {
                out.push(x);
                out.extend(a);
                break;
            }
            (None, Some(y)) => {
                out.push(y);
                out.extend(b);
                break;
            }
            (None, None) => break,
        }
    }
    Ok(out)
}

/// K-way merge of sorted runs, tournament-style (pairwise rounds), so
/// total work is `O(items · log runs)`. The budget threads into every
/// pairwise merge, so the whole tournament stays interruptible.
fn merge_many_sorted<T: Ord>(
    mut runs: Vec<Vec<T>>,
    budget: &QueryBudget,
) -> Result<Vec<T>, ExecError> {
    runs.retain(|r| !r.is_empty());
    runs.sort_by_key(Vec::len);
    while runs.len() > 1 {
        budget.check()?;
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            budget.check()?;
            match iter.next() {
                Some(b) => next.push(merge_two(a, b, budget)?),
                None => next.push(a),
            }
        }
        runs = next;
    }
    Ok(runs.pop().unwrap_or_default())
}

/// An owned, per-shard-consistent view of every shard at one epoch
/// vector: the scatter-gather [`TripleIndex`] the evaluators run on.
#[derive(Clone)]
#[must_use = "a sharded snapshot pins every shard's graph version; dropping it unused pins nothing"]
pub struct ShardedSnapshot {
    shards: Vec<StoreSnapshot>,
}

impl ShardedSnapshot {
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The epoch vector this snapshot was taken at, shard by shard.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(StoreSnapshot::epoch).collect()
    }

    /// The graph of shard `i`.
    pub fn shard(&self, i: usize) -> &EncodedGraph {
        self.shards[i].graph()
    }

    /// The shard holding subject `s`.
    pub fn shard_of(&self, s: Iri) -> usize {
        shard_of_name(s.as_str(), self.shards.len())
    }

    /// The single shard a pattern can match in, when its subject is
    /// bound; `None` means the pattern fans out to every shard.
    fn route(&self, pat: &TriplePattern) -> Option<usize> {
        match pat.s {
            Term::Iri(s) => Some(self.shard_of(s)),
            Term::Var(_) => None,
        }
    }

    fn graphs(&self) -> impl Iterator<Item = &EncodedGraph> {
        self.shards.iter().map(StoreSnapshot::graph)
    }

    /// Should this fan-out read scatter to scoped threads? Only with
    /// several shards, spare cores, and enough candidate rows to
    /// amortise the spawns (`est` is the summed O(1) bound-prefix
    /// count — also a fine capacity reservation for the gathered run).
    fn parallel_fanout(&self, est: usize) -> bool {
        self.shards.len() > 1 && host_cores() > 1 && est >= PARALLEL_FANOUT_ROWS
    }

    /// Candidate rows across every shard — the fan-out sizing estimate.
    fn fanout_estimate(&self, pat: &TriplePattern) -> usize {
        self.graphs().map(|g| g.candidate_count(pat)).sum()
    }

    /// Runs `per_shard` on every shard (scoped threads when `parallel`)
    /// and concatenates the runs in shard order — subjects partition the
    /// shards, so the runs are disjoint and no merge is owed. The
    /// closure receives the shard index so read paths can attribute
    /// their per-shard load ([`crate::obs::on_shard_read`]).
    fn gather<T: Send>(
        &self,
        parallel: bool,
        per_shard: impl Fn(usize, &EncodedGraph) -> Vec<T> + Sync,
    ) -> Vec<T> {
        let per_shard = &per_shard;
        let jobs: Vec<_> = self
            .graphs()
            .enumerate()
            .map(|(i, g)| move || per_shard(i, g))
            .collect();
        let runs = run_jobs(jobs, parallel);
        let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        for run in runs {
            out.extend(run);
        }
        out
    }
}

impl TripleIndex for ShardedSnapshot {
    fn len(&self) -> usize {
        // Subjects partition the shards, so per-shard counts are
        // disjoint.
        self.graphs().map(EncodedGraph::len).sum()
    }

    fn contains(&self, t: &Triple) -> bool {
        self.shard(self.shard_of(t.s)).contains(t)
    }

    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.graphs().flat_map(EncodedGraph::iter))
    }

    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
        // Terms (unlike triples) repeat across shards — a predicate or
        // object lands wherever some subject hashes — so the per-shard
        // sorted domains k-way merge with dedup.
        Box::new(MergeDedup {
            heads: self
                .graphs()
                .map(|g| TripleIndex::dom(g).peekable())
                .collect(),
        })
    }

    fn dom_contains(&self, i: Iri) -> bool {
        self.graphs().any(|g| TripleIndex::dom_contains(g, i))
    }

    fn candidate_count(&self, pat: &TriplePattern) -> usize {
        match self.route(pat) {
            Some(i) => self.shard(i).candidate_count(pat),
            None => self.graphs().map(|g| g.candidate_count(pat)).sum(),
        }
    }

    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        match self.route(pat) {
            Some(i) => {
                crate::obs::on_routed_read();
                let start = Instant::now();
                let out = self.shard(i).match_pattern(pat);
                crate::obs::on_shard_read(i, out.len() as u64, start.elapsed());
                out
            }
            None => {
                // Scatter (to threads when the host and the run sizes
                // warrant it) and concatenate lazily in shard order.
                let start = Instant::now();
                let est = self.fanout_estimate(pat);
                let out = self.gather(self.parallel_fanout(est), |i, g| {
                    let shard_start = Instant::now();
                    let run = g.match_pattern(pat);
                    crate::obs::on_shard_read(i, run.len() as u64, shard_start.elapsed());
                    run
                });
                crate::obs::on_fanout(start.elapsed());
                out
            }
        }
    }

    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        match self.route(pat) {
            Some(i) => {
                crate::obs::on_routed_read();
                let start = Instant::now();
                let out = self.shard(i).solutions(pat);
                crate::obs::on_shard_read(i, out.len() as u64, start.elapsed());
                out
            }
            None => {
                // Scatter and concatenate in shard order. (This used to
                // sort every shard's run and k-way merge them — an
                // O(n log n) bill per fan-out that made 4-shard reads
                // 3.5× slower than one shard, purchasing a global order
                // no caller relies on. Shard order is deterministic,
                // which is all the caches and tests need.)
                let start = Instant::now();
                let est = self.fanout_estimate(pat);
                let out = if self.parallel_fanout(est) {
                    self.gather(true, |i, g| {
                        let shard_start = Instant::now();
                        let run = g.solutions(pat);
                        crate::obs::on_shard_read(i, run.len() as u64, shard_start.elapsed());
                        run
                    })
                } else {
                    // Sequential: bind each shard's matches straight
                    // into the gathered run — no per-shard mapping
                    // vectors.
                    let mut out = Vec::with_capacity(est);
                    for (i, g) in self.graphs().enumerate() {
                        let shard_start = Instant::now();
                        let before = out.len();
                        out.extend(
                            g.match_pattern(pat)
                                .into_iter()
                                .filter_map(|t| wdsparql_rdf::binding_of(pat, &t)),
                        );
                        crate::obs::on_shard_read(
                            i,
                            (out.len() - before) as u64,
                            shard_start.elapsed(),
                        );
                    }
                    out
                };
                crate::obs::on_fanout(start.elapsed());
                out
            }
        }
    }

    fn candidate_values(&self, pat: &TriplePattern, v: Variable) -> Option<Vec<Iri>> {
        match self.route(pat) {
            Some(i) => self.shard(i).candidate_values(pat, v),
            None => {
                // The trait contract demands one ascending list, so this
                // fan-out still merges — but the per-shard lists are
                // computed in parallel when it pays.
                let est = self.fanout_estimate(pat);
                let runs: Option<Vec<Vec<Iri>>> = self
                    .gather(self.parallel_fanout(est), |_, g| {
                        vec![g.candidate_values(pat, v)]
                    })
                    .into_iter()
                    .collect();
                // analyzer-allow: no-unwrap-in-service the trait's
                // budget-less signature merges under an unlimited budget,
                // which never fails a checkpoint.
                let mut merged = merge_many_sorted(runs?, &QueryBudget::unlimited())
                    .expect("an unlimited budget never fails a checkpoint");
                merged.dedup();
                Some(merged)
            }
        }
    }
}

/// Lazy k-way merge with dedup over sorted [`Iri`] streams (the shard
/// domains). Each `next` advances every head equal to the minimum, so
/// duplicates across shards collapse.
struct MergeDedup<'a> {
    heads: Vec<std::iter::Peekable<Box<dyn Iterator<Item = Iri> + 'a>>>,
}

impl Iterator for MergeDedup<'_> {
    type Item = Iri;

    fn next(&mut self) -> Option<Iri> {
        let min = self
            .heads
            .iter_mut()
            .filter_map(|h| h.peek().copied())
            .min()?;
        for h in &mut self.heads {
            if h.peek() == Some(&min) {
                h.next();
            }
        }
        Some(min)
    }
}

/// Aggregate statistics of a [`ShardedStore`]: totals plus the
/// per-shard [`StoreStats`] (one consistent snapshot per shard).
#[derive(Clone, Debug)]
pub struct ShardedStats {
    /// Triples across all shards (disjoint by subject).
    pub triples: usize,
    /// Distinct terms across all shards (shared terms counted once).
    pub terms: usize,
    /// The epoch vector, shard by shard.
    pub epochs: Vec<u64>,
    /// Per-shard statistics.
    pub shards: Vec<StoreStats>,
}

impl fmt::Display for ShardedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} triple(s) over {} distinct term(s) in {} shard(s) | epochs {:?}",
            self.triples,
            self.terms,
            self.shards.len(),
            self.epochs
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "shard {i}: {} triple(s), {} base + {} delta row(s) in {} segment(s), {} compaction(s)",
                s.triples, s.base_rows, s.delta_rows, s.segments, s.compactions
            )?;
        }
        Ok(())
    }
}

/// A BGP answered by the sharded facade together with its plan and its
/// read provenance (the sharded analogue of [`crate::PlannedQuery`]).
#[derive(Clone, Debug)]
#[must_use = "a dropped ShardedPlannedQuery is a scatter-gather query that ran for nothing"]
pub struct ShardedPlannedQuery {
    /// Pattern indexes in selectivity order (the pairwise evaluation
    /// order; the WCOJ consumes it only as a selectivity signal).
    pub plan: Vec<usize>,
    /// The solution mappings.
    pub solutions: Arc<Vec<Mapping>>,
    /// The `(shard, epoch)` pairs the query read — exactly the shards
    /// whose writes can invalidate this result (a fully subject-routed
    /// query lists only its routed shards; a fan-out lists every shard).
    pub read: Vec<(usize, u64)>,
    /// The join strategy that actually ran (`Auto` already resolved).
    pub strategy: JoinStrategy,
    /// The execution profile, when requested through
    /// [`ShardedStore::query_with_profile`] (`None` from
    /// [`ShardedStore::query_with_plan`]).
    pub profile: Option<QueryProfile>,
}

/// N hash-partitioned-by-subject [`TripleStore`] shards behind one
/// facade: scattered parallel bulk loads under per-shard write locks,
/// scatter-gather queries through the shared BGP planner, and a result
/// cache keyed by the epoch vector of the shards each query read. See
/// the module docs for the design.
pub struct ShardedStore {
    shards: Vec<TripleStore>,
    cache: ResultCache<ShardedKey>,
    /// How facade BGPs are joined (see [`JoinStrategy`]).
    strategy: RwLock<JoinStrategy>,
}

impl ShardedStore {
    /// An empty store with `shards` partitions and the default facade
    /// cache capacity (128 queries).
    pub fn new(shards: usize) -> ShardedStore {
        ShardedStore::with_cache_capacity(shards, 128)
    }

    /// As [`ShardedStore::new`] with an explicit facade cache capacity.
    /// The per-shard [`TripleStore`] caches are disabled — results are
    /// cached once, at the facade, under the epoch-vector key.
    pub fn with_cache_capacity(shards: usize, capacity: usize) -> ShardedStore {
        assert!(shards >= 1, "a sharded store needs at least one shard");
        ShardedStore {
            shards: (0..shards)
                .map(|_| TripleStore::with_cache_capacity(0))
                .collect(),
            cache: ResultCache::new(capacity),
            strategy: RwLock::new(JoinStrategy::default()),
        }
    }

    /// The configured [`JoinStrategy`] ([`JoinStrategy::Auto`] by
    /// default).
    pub fn join_strategy(&self) -> JoinStrategy {
        *self.strategy.read()
    }

    /// Sets how facade BGPs are joined; clears the facade cache (see
    /// [`TripleStore::set_join_strategy`]).
    pub fn set_join_strategy(&self, strategy: JoinStrategy) {
        *self.strategy.write() = strategy;
        self.cache.clear();
    }

    pub fn from_triples<I>(shards: usize, triples: I) -> ShardedStore
    where
        I: IntoIterator<Item = Triple>,
    {
        let store = ShardedStore::new(shards);
        store.bulk_load(triples);
        store.compact();
        store
    }

    pub fn from_rdf(shards: usize, g: &RdfGraph) -> ShardedStore {
        ShardedStore::from_triples(shards, g.iter().copied())
    }

    /// Opens a durable sharded store rooted at `dir`: one `shard-<i>`
    /// subdirectory per shard, each an independent [`TripleStore`]
    /// store directory with its own manifest, log, and recovery. The
    /// shard count is discovered from the contiguous `shard-0 ..
    /// shard-(n-1)` subdirectories present on disk.
    pub fn open(dir: impl AsRef<Path>) -> Result<ShardedStore, StoreError> {
        ShardedStore::open_with_opts(dir, PersistOpts::default())
    }

    /// [`ShardedStore::open`] with explicit persistence settings.
    pub fn open_with_opts(
        dir: impl AsRef<Path>,
        opts: PersistOpts,
    ) -> Result<ShardedStore, StoreError> {
        let dir = dir.as_ref();
        let mut shards = Vec::new();
        // analyzer-allow: budget-checkpoint bounded by the shard
        // directories present on disk — an open-time discovery loop,
        // not a query loop.
        loop {
            let shard_dir = dir.join(format!("shard-{}", shards.len()));
            if !shard_dir.is_dir() {
                break;
            }
            let sd = StoreDir::real(shard_dir, opts.clone())?;
            shards.push(TripleStore::open_dir(sd, 0)?);
        }
        if shards.is_empty() {
            return Err(StoreError::Persist(PersistError::Corrupt(format!(
                "no shard directories (shard-0, shard-1, …) under {}",
                dir.display()
            ))));
        }
        Ok(ShardedStore {
            shards,
            cache: ResultCache::new(128),
            strategy: RwLock::new(JoinStrategy::default()),
        })
    }

    /// Attaches durable storage at `dir` to this (so far volatile)
    /// sharded store: one freshly formatted `shard-<i>` subdirectory
    /// per shard, current contents checkpointed into each. Later loads
    /// commit durably shard by shard.
    pub fn persist_to(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        self.persist_to_opts(dir, PersistOpts::default())
    }

    /// [`ShardedStore::persist_to`] with explicit settings.
    pub fn persist_to_opts(
        &self,
        dir: impl AsRef<Path>,
        opts: PersistOpts,
    ) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        for (i, shard) in self.shards.iter().enumerate() {
            let sd = StoreDir::real(dir.join(format!("shard-{i}")), opts.clone())?;
            shard.attach(sd)?;
        }
        Ok(())
    }

    /// Whether the shards are backed by durable directories.
    pub fn is_durable(&self) -> bool {
        self.shards.iter().any(TripleStore::is_durable)
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding subject `s`.
    pub fn shard_of(&self, s: Iri) -> usize {
        shard_of_name(s.as_str(), self.shards.len())
    }

    /// The underlying shards, for per-shard operations (targeted
    /// compaction, stats) and tests. Writing through a shard directly is
    /// safe — its epoch bump makes any facade-cached result that read it
    /// unreachable — but misroutes triples unless the caller partitions
    /// by [`ShardedStore::shard_of`].
    pub fn shards(&self) -> &[TripleStore] {
        &self.shards
    }

    /// Caps every shard at `limit` rows — see
    /// [`TripleStore::set_capacity_limit`]. The limit is per shard: the
    /// facade refuses a load when any single shard would exceed it.
    pub fn set_capacity_limit(&self, limit: Option<usize>) {
        for s in &self.shards {
            s.set_capacity_limit(limit);
        }
    }

    /// True when scattering to threads can help: more than one shard and
    /// more than one core.
    fn parallel_writes(&self) -> bool {
        self.shards.len() > 1 && host_cores() > 1
    }

    /// Scatters a batch to its shards and loads them — in parallel when
    /// the host has the cores for it. Returns the number of new triples;
    /// bumps the epochs of the shards that changed.
    ///
    /// Panics on capacity exhaustion — use
    /// [`ShardedStore::try_bulk_load`] to handle that case.
    pub fn bulk_load<I>(&self, triples: I) -> usize
    where
        I: IntoIterator<Item = Triple>,
    {
        // analyzer-allow: no-unwrap-in-service bulk_load is documented as
        // the panicking facade over try_bulk_load; capacity-sensitive
        // callers use the fallible form.
        self.try_bulk_load(triples)
            .expect("bulk_load exceeds a shard's capacity")
    }

    /// As [`ShardedStore::bulk_load`], but surfaces capacity exhaustion
    /// (and, on a durable store, persistence failures) as an error. Each
    /// shard's insert is atomic (a refused shard is unchanged), but
    /// shards that fit have already committed when the error returns —
    /// the idempotent retry semantics of [`TripleStore::try_bulk_load`]
    /// make re-submitting the same batch after resolving the failure
    /// safe.
    pub fn try_bulk_load<I>(&self, triples: I) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = Triple>,
    {
        self.try_bulk_load_impl(triples, self.parallel_writes())
    }

    fn try_bulk_load_impl<I>(&self, triples: I, parallel: bool) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut parts: Vec<Vec<Triple>> = vec![Vec::new(); self.shards.len()];
        for t in triples {
            parts[self.shard_of(t.s)].push(t);
        }
        let jobs: Vec<_> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, batch)| {
                let shard = &self.shards[i];
                move || (i, shard.try_bulk_load(batch))
            })
            .collect();
        let results = run_jobs(jobs, parallel);
        // Epochs moved: purge exactly the cache entries that read a
        // bumped shard. (Entries keyed to stale epochs are already
        // unreachable — this frees their memory.)
        self.retain_current_cache();
        let mut added = 0;
        let mut first_err = None;
        for (i, r) in results {
            match r {
                Ok(n) => {
                    added += n;
                    if n > 0 {
                        crate::obs::on_shard_rows(i, n as u64);
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(added),
            Some(e) => Err(e),
        }
    }

    fn retain_current_cache(&self) {
        let epochs = self.epochs();
        self.cache
            .retain(|(_, read)| read.iter().all(|&(i, e)| epochs[i] == e));
    }

    /// Folds every shard's pending delta segments (epoch- and
    /// cache-preserving, like [`TripleStore::compact`]). Returns `true`
    /// when any shard had something to fold.
    pub fn compact(&self) -> bool {
        let parallel = self.parallel_writes();
        let jobs: Vec<_> = self
            .shards
            .iter()
            .map(|shard| move || shard.compact())
            .collect();
        run_jobs(jobs, parallel).into_iter().any(|folded| folded)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(TripleStore::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current epoch vector, shard by shard.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(TripleStore::epoch).collect()
    }

    /// An owned scatter-gather snapshot of every shard. Per-shard
    /// consistent; see the module docs for the cross-shard relaxation.
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            shards: self.shards.iter().map(TripleStore::read_snapshot).collect(),
        }
    }

    /// A snapshot of the single shard holding subject `s` — the routed
    /// read: holding it pins one shard's graph, so concurrent loads to
    /// the other shards pay no copy-on-write for this reader.
    pub fn subject_snapshot(&self, s: Iri) -> StoreSnapshot {
        self.shards[self.shard_of(s)].read_snapshot()
    }

    /// Runs `f` against a scatter-gather snapshot — the hook
    /// `Engine::from_sharded_store` uses to borrow the facade as a
    /// [`TripleIndex`]. `f` runs lock-free on the snapshot.
    pub fn with_index<R>(&self, f: impl FnOnce(&ShardedSnapshot) -> R) -> R {
        f(&self.snapshot())
    }

    /// Aggregate + per-shard statistics from one scatter-gather
    /// snapshot.
    pub fn stats(&self) -> ShardedStats {
        let snap = self.snapshot();
        let shards: Vec<StoreStats> = snap
            .shards
            .iter()
            .map(|s| crate::service::stats_of(s.graph(), s.epoch()))
            .collect();
        let stats = ShardedStats {
            triples: TripleIndex::len(&snap),
            terms: TripleIndex::dom(&snap).count(),
            epochs: snap.epochs(),
            shards,
        };
        crate::obs::publish_store_gauges(
            stats.triples as u64,
            stats.terms as u64,
            stats.shards.iter().map(|s| s.base_rows as u64).sum(),
            stats.shards.iter().map(|s| s.delta_rows as u64).sum(),
            stats.shards.iter().map(|s| s.segments as u64).sum(),
            stats.epochs.iter().sum(),
            stats.shards.len() as u64,
        );
        stats
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shards a BGP can read: the routed subset when every pattern's
    /// subject is bound, all shards otherwise. Sorted and deduplicated.
    fn read_set(&self, patterns: &[TriplePattern]) -> Vec<usize> {
        let mut routed = Vec::with_capacity(patterns.len());
        for pat in patterns {
            match pat.s {
                Term::Iri(s) => routed.push(self.shard_of(s)),
                Term::Var(_) => return (0..self.shards.len()).collect(),
            }
        }
        routed.sort_unstable();
        routed.dedup();
        routed
    }

    /// A snapshot pinning only the shards in `read` (sorted): every
    /// other slot holds the shared empty placeholder, so concurrent
    /// loads to unrouted shards pay no copy-on-write for this reader.
    /// Sound for fully subject-routed BGPs by construction — every
    /// access path of the evaluation (candidate counts, solutions,
    /// semi-join values, bind-join probes) routes by a bound subject in
    /// `read`; nothing ever dereferences an unrouted slot.
    fn read_snapshot_for(&self, read: &[usize]) -> ShardedSnapshot {
        if read.len() == self.shards.len() {
            return self.snapshot();
        }
        let mut next = read.iter().peekable();
        ShardedSnapshot {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    if next.peek() == Some(&&i) {
                        next.next();
                        // analyzer-allow: one-snapshot-per-path disjoint
                        // branches: either the full-facade snapshot above
                        // returns early or the routed slots are pinned
                        // here — no query path acquires twice.
                        shard.read_snapshot()
                    } else {
                        StoreSnapshot::empty()
                    }
                })
                .collect(),
        }
    }

    fn key_for(
        &self,
        patterns: &[TriplePattern],
        strategy: JoinStrategy,
        read: &[usize],
        snap: &ShardedSnapshot,
    ) -> ShardedKey {
        let read: Vec<(usize, u64)> = read.iter().map(|&i| (i, snap.shards[i].epoch())).collect();
        // Keyed by the configured strategy too, so entries produced
        // under different knob settings never serve each other (see
        // `strategy_cache_key`).
        (
            crate::service::strategy_cache_key(patterns, Some(strategy)),
            read,
        )
    }

    fn key_still_current(&self, key: &ShardedKey) -> bool {
        key.1.iter().all(|&(i, e)| self.shards[i].epoch() == e)
    }

    /// Cached single-pattern solutions: routed to one shard when the
    /// subject is bound (and then keyed by — and invalidated with —
    /// that shard's epoch alone), k-way merged across shards otherwise.
    pub fn solutions(&self, pat: &TriplePattern) -> Arc<Vec<Mapping>> {
        self.query(std::slice::from_ref(pat))
    }

    /// Evaluates a BGP over the sharded layout under the configured
    /// [`JoinStrategy`]: the shared planner and pairwise pipeline of
    /// [`TripleStore::query`], or the worst-case-optimal leapfrog join,
    /// running on a [`ShardedSnapshot`] — each pattern match (or trie)
    /// routes or fans out on its own. Results are cached under the
    /// epoch vector of the shards the query read.
    pub fn query(&self, patterns: &[TriplePattern]) -> Arc<Vec<Mapping>> {
        let read = self.read_set(patterns);
        let snap = self.read_snapshot_for(&read);
        let strategy = self.join_strategy();
        let key = self.key_for(patterns, strategy, &read, &snap);
        self.cache.get_or_compute(
            key.clone(),
            || self.key_still_current(&key),
            || eval_bgp_with_strategy(&snap, patterns, strategy),
        )
    }

    /// As [`ShardedStore::query`], evaluated under `budget`: the
    /// streaming evaluators run over the scatter-gather snapshot and
    /// checkpoint the deadline/cancellation token at every pull and
    /// inside the WCOJ/merge inner loops, so a failed budget surfaces
    /// as a typed [`ExecError`]. Complete results are cached under the
    /// usual epoch-vector key; failures never are.
    pub fn query_budgeted(
        &self,
        patterns: &[TriplePattern],
        budget: &QueryBudget,
    ) -> Result<Arc<Vec<Mapping>>, ExecError> {
        // Checkpoint before even consulting the cache: an already-dead
        // budget fails here, independent of what happens to be cached.
        budget.check()?;
        let read = self.read_set(patterns);
        let snap = self.read_snapshot_for(&read);
        let strategy = self.join_strategy();
        let key = self.key_for(patterns, strategy, &read, &snap);
        let out = self.cache.get_or_try_compute(
            key.clone(),
            || self.key_still_current(&key),
            || open_bgp_stream(&snap, patterns, strategy, budget).collect_limit(None),
        );
        match &out {
            Ok(rows) => crate::obs::on_rows_streamed(rows.len() as u64),
            Err(ExecError::DeadlineExceeded) => crate::obs::on_deadline_exceeded(),
            Err(ExecError::Cancelled) => {}
        }
        out
    }

    /// Streams the first `limit` solutions over the sharded layout
    /// under `budget` — LIMIT pushdown across the scatter-gather path;
    /// see [`TripleStore::query_limited`] for the contract. Uncached:
    /// a k-prefix is a partial result.
    pub fn query_limited(
        &self,
        patterns: &[TriplePattern],
        limit: usize,
        budget: &QueryBudget,
    ) -> Result<Vec<Mapping>, ExecError> {
        // Checkpoint before any snapshot work: an already-dead budget
        // fails here, before the store spends effort on its behalf.
        budget.check()?;
        let read = self.read_set(patterns);
        let snap = self.read_snapshot_for(&read);
        let strategy = self.join_strategy();
        let out = open_bgp_stream(&snap, patterns, strategy, budget).collect_limit(Some(limit));
        match &out {
            Ok(rows) => crate::obs::on_rows_streamed(rows.len() as u64),
            Err(ExecError::DeadlineExceeded) => crate::obs::on_deadline_exceeded(),
            Err(ExecError::Cancelled) => {}
        }
        out
    }

    /// The infallible facade over [`ShardedStore::query_limited`]: the
    /// first `limit` solutions under an unlimited budget.
    pub fn solutions_limit(&self, patterns: &[TriplePattern], limit: usize) -> Vec<Mapping> {
        // analyzer-allow: no-unwrap-in-service an unlimited budget never
        // fails a checkpoint, so the streamed prefix always arrives.
        self.query_limited(patterns, limit, &QueryBudget::unlimited())
            .expect("an unlimited budget never fails a checkpoint")
    }

    /// As [`ShardedStore::query`], but also returns the evaluation
    /// order, the resolved strategy and the query's read provenance —
    /// plan and solutions from one snapshot, the plan computed exactly
    /// once.
    pub fn query_with_plan(&self, patterns: &[TriplePattern]) -> ShardedPlannedQuery {
        let start = Instant::now();
        let read = self.read_set(patterns);
        let snap = self.read_snapshot_for(&read);
        let configured = self.join_strategy();
        let key = self.key_for(patterns, configured, &read, &snap);
        let plan_start = Instant::now();
        let plan = plan_order(&snap, patterns);
        let strategy = resolve_with_order(&snap, patterns, configured, &plan);
        let plan_elapsed = plan_start.elapsed();
        let solutions = self.cache.get_or_compute(
            key.clone(),
            || self.key_still_current(&key),
            || match strategy {
                JoinStrategy::Wco => eval_bgp_wco(&snap, patterns),
                _ => eval_bgp_planned(&snap, patterns, &plan),
            },
        );
        crate::obs::on_query(strategy == JoinStrategy::Wco, start.elapsed(), plan_elapsed);
        ShardedPlannedQuery {
            plan,
            solutions,
            read: key.1,
            strategy,
            profile: None,
        }
    }

    /// As [`ShardedStore::query_with_plan`], additionally building an
    /// execution profile (the sharded analogue of
    /// [`TripleStore::query_with_profile`]): the root span carries the
    /// read provenance — which shards the query pinned, at which
    /// epochs, and whether it was fully subject-routed or a fan-out —
    /// on top of the plan timing, strategy, cache outcome and (on a
    /// cache miss) per-level WCOJ or per-step pairwise counters.
    pub fn query_with_profile(&self, patterns: &[TriplePattern]) -> ShardedPlannedQuery {
        let start = Instant::now();
        let read = self.read_set(patterns);
        let snap = self.read_snapshot_for(&read);
        let configured = self.join_strategy();
        let key = self.key_for(patterns, configured, &read, &snap);
        let plan_start = Instant::now();
        let plan = plan_order(&snap, patterns);
        let strategy = resolve_with_order(&snap, patterns, configured, &plan);
        let plan_elapsed = plan_start.elapsed();
        let mut execute: Option<Span> = None;
        let solutions = self.cache.get_or_compute(
            key.clone(),
            || self.key_still_current(&key),
            || {
                let exec_start = Instant::now();
                let (sols, detail) = match strategy {
                    JoinStrategy::Wco => {
                        let (sols, levels) = eval_bgp_wco_profiled(&snap, patterns);
                        (sols, wco_level_spans(&levels))
                    }
                    _ => {
                        let (sols, steps) = eval_bgp_planned_profiled(&snap, patterns, &plan);
                        (sols, pairwise_step_spans(patterns, &steps))
                    }
                };
                let mut span = Span::new("execute").timed(exec_start.elapsed());
                for child in detail {
                    span.push(child);
                }
                execute = Some(span);
                sols
            },
        );
        let total = start.elapsed();
        crate::obs::on_query(strategy == JoinStrategy::Wco, total, plan_elapsed);
        let computed_here = execute.is_some();
        let routed = key.1.len() < self.shards.len();
        let shards_read = key
            .1
            .iter()
            .map(|&(i, e)| format!("{i}@{e}"))
            .collect::<Vec<_>>()
            .join(",");
        let mut root = Span::new("query")
            .timed(total)
            .field("strategy", strategy)
            .field("routing", if routed { "routed" } else { "fan-out" })
            .field("shards_read", shards_read)
            .field("patterns", patterns.len())
            .field("rows", solutions.len())
            .field("cache", if computed_here { "miss" } else { "hit" });
        root.push(plan_span(&plan, plan_elapsed));
        if let Some(span) = execute {
            root.push(span);
        }
        ShardedPlannedQuery {
            plan,
            solutions,
            read: key.1,
            strategy,
            profile: Some(QueryProfile::new(root)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn fixture() -> Vec<Triple> {
        [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
            ("d", "p", "a"),
            ("b", "q", "x"),
            ("c", "q", "x"),
            ("x", "q", "a"),
        ]
        .map(|(s, p, o)| Triple::from_strs(s, p, o))
        .to_vec()
    }

    /// Two subject names guaranteed to live in different shards of a
    /// `shards`-way store (probed; plenty of names to choose from).
    fn split_subjects(store: &ShardedStore) -> (Iri, Iri) {
        let a = Iri::new("probe0");
        for i in 1..1000 {
            let b = Iri::new(&format!("probe{i}"));
            if store.shard_of(b) != store.shard_of(a) {
                return (a, b);
            }
        }
        panic!("hash sends every probe to one shard");
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let store = ShardedStore::new(4);
        for i in 0..64 {
            let s = Iri::new(&format!("subject{i}"));
            let shard = store.shard_of(s);
            assert!(shard < 4);
            assert_eq!(shard, store.shard_of(s), "routing must be stable");
        }
        // With enough distinct names every shard receives some subject.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[store.shard_of(Iri::new(&format!("subject{i}")))] = true;
        }
        assert!(hit.iter().all(|&b| b), "partition must be total: {hit:?}");
    }

    #[test]
    fn triples_partition_by_subject() {
        let store = ShardedStore::from_triples(3, fixture());
        assert_eq!(store.len(), fixture().len());
        let snap = store.snapshot();
        for (i, shard) in store.shards().iter().enumerate() {
            shard.with_index(|g| {
                for t in g.iter() {
                    assert_eq!(store.shard_of(t.s), i, "{t} misrouted");
                }
            });
            assert_eq!(snap.shard(i).len(), shard.len());
        }
    }

    #[test]
    fn sharded_snapshot_matches_single_store() {
        let single = TripleStore::from_triples(fixture());
        for shards in 1..5 {
            let sharded = ShardedStore::from_triples(shards, fixture());
            let snap = sharded.snapshot();
            let sref = single.read_snapshot();
            assert_eq!(TripleIndex::len(&snap), sref.len());
            assert_eq!(
                TripleIndex::dom(&snap).collect::<Vec<_>>(),
                TripleIndex::dom(sref.graph()).collect::<Vec<_>>(),
                "{shards}-shard dom"
            );
            for t in fixture() {
                assert!(TripleIndex::contains(&snap, &t));
            }
            assert!(!TripleIndex::contains(
                &snap,
                &Triple::from_strs("q", "q", "q")
            ));
            let pats = [
                tp(var("x"), iri("p"), var("y")),
                tp(iri("b"), var("w"), var("y")),
                tp(var("x"), iri("q"), iri("x")),
                tp(iri("c"), iri("p"), iri("d")),
                tp(var("x"), var("w"), var("y")),
                tp(var("x"), iri("p"), var("x")),
            ];
            for pat in pats {
                let mut got = TripleIndex::match_pattern(&snap, &pat);
                let mut want = sref.match_pattern(&pat);
                got.sort();
                want.sort();
                assert_eq!(got, want, "{shards}-shard pattern {pat}");
                assert!(TripleIndex::candidate_count(&snap, &pat) >= got.len());
                let mut gs = TripleIndex::solutions(&snap, &pat);
                let mut ws = sref.solutions(&pat);
                gs.sort();
                ws.sort();
                assert_eq!(gs, ws, "{shards}-shard solutions {pat}");
            }
        }
    }

    #[test]
    fn facade_query_agrees_with_single_store() {
        let single = TripleStore::from_triples(fixture());
        let sharded = ShardedStore::from_triples(3, fixture());
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
        ];
        let mut got: Vec<Mapping> = sharded.query(&pats).iter().cloned().collect();
        let mut want: Vec<Mapping> = single.query(&pats).iter().cloned().collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        // The planned variant returns the same solutions plus its read
        // provenance — a fan-out reads every shard at its current epoch.
        let planned = sharded.query_with_plan(&pats);
        assert_eq!(planned.solutions.len(), want.len());
        assert_eq!(planned.plan.len(), pats.len());
        let epochs = sharded.epochs();
        assert_eq!(
            planned.read,
            (0..sharded.shard_count())
                .map(|i| (i, epochs[i]))
                .collect::<Vec<_>>()
        );
        // Cached on repeat.
        let before = sharded.cache_stats();
        sharded.query(&pats);
        assert_eq!(sharded.cache_stats().hits, before.hits + 1);
    }

    #[test]
    fn routed_cache_survives_unrelated_writes() {
        let store = ShardedStore::new(2);
        let (a, b) = split_subjects(&store);
        store.bulk_load([
            Triple::new(a, Iri::new("p"), Iri::new("o1")),
            Triple::new(b, Iri::new("p"), Iri::new("o2")),
        ]);
        let routed = [tp(a, iri("p"), var("y"))];
        let fanout = [tp(var("x"), iri("p"), var("y"))];
        assert_eq!(store.query(&routed).len(), 1);
        assert_eq!(store.query(&fanout).len(), 2);
        assert_eq!(store.cache_stats().entries, 2);
        // A write to b's shard: the fan-out entry dies, the routed one
        // survives and still hits.
        store.bulk_load([Triple::new(b, Iri::new("p"), Iri::new("o3"))]);
        assert_eq!(store.cache_stats().entries, 1);
        let hits = store.cache_stats().hits;
        assert_eq!(store.query(&routed).len(), 1);
        assert_eq!(store.cache_stats().hits, hits + 1, "routed entry survived");
        assert_eq!(store.query(&fanout).len(), 3, "fan-out recomputed fresh");
        // A write to a's shard invalidates the routed entry too.
        store.bulk_load([Triple::new(a, Iri::new("p"), Iri::new("o4"))]);
        let misses = store.cache_stats().misses;
        assert_eq!(store.query(&routed).len(), 2);
        assert_eq!(store.cache_stats().misses, misses + 1);
    }

    #[test]
    fn epochs_bump_only_written_shards() {
        let store = ShardedStore::new(2);
        let (a, b) = split_subjects(&store);
        let base = store.epochs();
        store.bulk_load([Triple::new(a, Iri::new("p"), Iri::new("o"))]);
        let after_a = store.epochs();
        let sa = store.shard_of(a);
        let sb = store.shard_of(b);
        assert_eq!(after_a[sa], base[sa] + 1);
        assert_eq!(after_a[sb], base[sb], "unwritten shard keeps its epoch");
        store.bulk_load([Triple::new(b, Iri::new("p"), Iri::new("o"))]);
        assert_eq!(store.epochs()[sb], base[sb] + 1);
    }

    #[test]
    fn parallel_scatter_path_loads_correctly() {
        // Forced through the scoped-thread path even on one core.
        let store = ShardedStore::new(4);
        let batch: Vec<Triple> = (0..64)
            .map(|i| Triple::from_strs(&format!("s{i}"), "p", &format!("o{i}")))
            .collect();
        assert_eq!(store.try_bulk_load_impl(batch.clone(), true).unwrap(), 64);
        assert_eq!(store.len(), 64);
        let snap = store.snapshot();
        for t in &batch {
            assert!(TripleIndex::contains(&snap, t));
        }
        // Idempotent retry through the same path.
        assert_eq!(store.try_bulk_load_impl(batch, true).unwrap(), 0);
    }

    #[test]
    fn capacity_errors_propagate_per_shard() {
        let store = ShardedStore::new(2);
        store.set_capacity_limit(Some(1));
        let (a, b) = split_subjects(&store);
        // One triple per shard fits.
        assert_eq!(
            store.bulk_load([
                Triple::new(a, Iri::new("p"), Iri::new("o")),
                Triple::new(b, Iri::new("p"), Iri::new("o")),
            ]),
            2
        );
        // A second triple for a's shard trips its limit; b's shard is
        // untouched by the refused sub-batch.
        let err = store
            .try_bulk_load([Triple::new(a, Iri::new("q"), Iri::new("o"))])
            .unwrap_err();
        let StoreError::Capacity(err) = err else {
            panic!("expected a capacity error, got {err}");
        };
        assert_eq!(err.limit, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn routed_queries_pin_only_their_shards() {
        let store = ShardedStore::new(2);
        let (a, b) = split_subjects(&store);
        store.bulk_load([
            Triple::new(a, Iri::new("p"), Iri::new("o")),
            Triple::new(b, Iri::new("p"), Iri::new("o")),
        ]);
        let (sa, sb) = (store.shard_of(a), store.shard_of(b));
        // The partial snapshot a routed query evaluates on holds the
        // shared empty placeholder in every unrouted slot — nothing of
        // shard b is pinned while a's query runs.
        let snap = store.read_snapshot_for(&[sa]);
        assert_eq!(snap.shard(sa).len(), 1);
        assert_eq!(snap.shard(sb).len(), 0, "unrouted slot must be empty");
        assert_eq!(snap.epochs()[sb], 0, "placeholder epoch");
        // And the routed facade path stays correct through it, with
        // single-pair provenance.
        let planned = store.query_with_plan(&[tp(a, iri("p"), var("y"))]);
        assert_eq!(planned.solutions.len(), 1);
        assert_eq!(planned.read, vec![(sa, store.epochs()[sa])]);
    }

    #[test]
    fn subject_snapshot_pins_one_shard_only() {
        let store = ShardedStore::new(2);
        let (a, b) = split_subjects(&store);
        store.bulk_load([Triple::new(a, Iri::new("p"), Iri::new("o"))]);
        let pinned = store.subject_snapshot(a);
        let len_before = pinned.len();
        // Writes to both shards land; the pinned snapshot still answers
        // from a's old graph.
        store.bulk_load([
            Triple::new(a, Iri::new("p"), Iri::new("o2")),
            Triple::new(b, Iri::new("p"), Iri::new("o2")),
        ]);
        assert_eq!(pinned.len(), len_before);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn empty_query_yields_the_empty_mapping_and_never_invalidates() {
        let store = ShardedStore::from_triples(2, fixture());
        assert_eq!(store.query(&[]).as_slice(), &[Mapping::new()]);
        store.bulk_load([Triple::from_strs("zz", "p", "zz")]);
        // The empty BGP reads no shard, so its entry survives any write.
        let hits = store.cache_stats().hits;
        assert_eq!(store.query(&[]).as_slice(), &[Mapping::new()]);
        assert_eq!(store.cache_stats().hits, hits + 1);
    }

    #[test]
    fn facade_join_strategies_agree_on_cyclic_cores() {
        let mut triples = fixture();
        triples.push(Triple::from_strs("a", "p", "c")); // close a triangle
        let single = TripleStore::from_triples(triples.clone());
        let sharded = ShardedStore::from_triples(3, triples);
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        // Auto resolves the cyclic core to the WCOJ on the facade.
        let planned = sharded.query_with_plan(&triangle);
        assert_eq!(planned.strategy, JoinStrategy::Wco);
        assert!(!planned.solutions.is_empty());
        // All strategies × both layouts: one solution set.
        let sorted = |sols: &Arc<Vec<Mapping>>| {
            let mut v: Vec<Mapping> = sols.iter().cloned().collect();
            v.sort();
            v
        };
        let want = sorted(&single.query(&triangle));
        for strategy in [
            JoinStrategy::Pairwise,
            JoinStrategy::Wco,
            JoinStrategy::Auto,
        ] {
            sharded.set_join_strategy(strategy);
            assert_eq!(
                sorted(&sharded.query(&triangle)),
                want,
                "{strategy} diverged on the sharded facade"
            );
        }
    }

    #[test]
    fn facade_budgeted_and_limited_queries_stream_consistently() {
        use std::time::Duration;
        let mut triples = fixture();
        triples.push(Triple::from_strs("a", "p", "c")); // close a triangle
        let sharded = ShardedStore::from_triples(3, triples);
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        for strategy in [
            JoinStrategy::Pairwise,
            JoinStrategy::Wco,
            JoinStrategy::Auto,
        ] {
            sharded.set_join_strategy(strategy);
            let full = sharded
                .query_budgeted(&triangle, &QueryBudget::unlimited())
                .expect("unlimited");
            assert_eq!(
                full,
                sharded.query(&triangle),
                "{strategy}: budgeted and materialised paths share the cache"
            );
            for k in 0..=full.len() {
                assert_eq!(
                    sharded.solutions_limit(&triangle, k),
                    full[..k],
                    "{strategy}: LIMIT {k} must be the exact k-prefix"
                );
            }
            assert_eq!(
                sharded.query_budgeted(&triangle, &QueryBudget::with_deadline(Duration::ZERO)),
                Err(ExecError::DeadlineExceeded),
                "{strategy}: a dead budget fails typed, not by panicking"
            );
        }
    }

    #[test]
    fn fanout_reads_concatenate_disjoint_shard_runs() {
        // The lazy fan-out must return every shard's solutions exactly
        // once, in deterministic shard order — and agree with the
        // single store as a set.
        let single = TripleStore::from_triples(fixture());
        let sharded = ShardedStore::from_triples(4, fixture());
        let snap = sharded.snapshot();
        let pat = tp(var("x"), iri("p"), var("y"));
        let got = TripleIndex::solutions(&snap, &pat);
        let again = TripleIndex::solutions(&snap, &pat);
        assert_eq!(got, again, "fan-out order must be deterministic");
        let mut sorted_got = got;
        sorted_got.sort();
        let mut want = single.read_snapshot().solutions(&pat);
        want.sort();
        assert_eq!(sorted_got, want);
    }

    #[test]
    fn sharded_query_with_profile_builds_a_span_tree() {
        let mut triples = fixture();
        triples.push(Triple::from_strs("a", "p", "c")); // close a triangle
        let sharded = ShardedStore::from_triples(3, triples);
        let triangle = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ];
        // Unbound subjects: a fan-out over every shard, WCO under Auto.
        let planned = sharded.query_with_profile(&triangle);
        assert_eq!(planned.strategy, JoinStrategy::Wco);
        let profile = planned.profile.as_ref().expect("profile requested");
        let root = &profile.root;
        assert_eq!(root.name(), "query");
        assert_eq!(root.get("strategy"), Some("wco"));
        assert_eq!(root.get("routing"), Some("fan-out"));
        assert_eq!(root.get("cache"), Some("miss"));
        let shards_read = root.get("shards_read").expect("read provenance");
        assert_eq!(shards_read.split(',').count(), 3, "{shards_read}");
        let execute = root
            .children()
            .iter()
            .find(|s| s.name() == "execute")
            .expect("cache miss must carry an execute span");
        let levels: Vec<_> = execute
            .children()
            .iter()
            .filter(|s| s.name().starts_with("level "))
            .collect();
        assert_eq!(levels.len(), 3, "one span per WCOJ variable level");
        assert!(levels.iter().all(|s| s.get("rows").is_some()));
        // Same query again: served from the facade cache, no execution.
        let again = sharded.query_with_profile(&triangle);
        let root = &again.profile.as_ref().unwrap().root;
        assert_eq!(root.get("cache"), Some("hit"));
        assert!(root.children().iter().all(|s| s.name() != "execute"));
        assert_eq!(again.solutions, planned.solutions);
        // A fully subject-routed query reports routed provenance.
        let routed = sharded.query_with_profile(&[tp(iri("b"), iri("p"), var("y"))]);
        let root = &routed.profile.as_ref().unwrap().root;
        assert_eq!(root.get("routing"), Some("routed"));
        assert_eq!(
            root.get("shards_read").unwrap().split(',').count(),
            1,
            "one routed shard"
        );
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = ShardedStore::from_triples(3, fixture());
        let stats = store.stats();
        assert_eq!(stats.triples, 7);
        assert_eq!(stats.shards.len(), 3);
        assert_eq!(stats.epochs.len(), 3);
        // Distinct terms, not the per-shard sum (predicates repeat).
        let single = TripleStore::from_triples(fixture());
        assert_eq!(stats.terms, single.stats().terms);
        let text = stats.to_string();
        assert!(text.contains("3 shard(s)"), "{text}");
        assert!(text.contains("shard 2:"), "{text}");
    }
}
