//! # wdsparql-store
//!
//! A dictionary-encoded triple store with sorted permutation indexes, a
//! log-structured write path and a concurrent query service — the
//! production-path substrate behind the evaluation engine, replacing
//! [`RdfGraph`](wdsparql_rdf::RdfGraph)'s string-interned hash indexes
//! on the hot path.
//!
//! ## Index layout
//!
//! Triples are interned through a [`Dictionary`] into dense `u32` ids and
//! stored as sorted arrays of `[TermId; 3]` rows — the SPO, POS and OSP
//! component rotations, plus a base-only PSO rotation for subject-sorted
//! merge-join inputs — each base array with an offset table indexed by
//! leading id, so every bound-prefix lookup lands on one contiguous
//! slice and the sorted blocks double as merge-join inputs
//! ([`EncodedGraph::merge_join_ids`]). Writes append small sorted delta
//! segments instead of rewriting the base; reads merge base + deltas
//! behind the same bounded-prefix narrowing, and a [`CompactionPolicy`]
//! (or an explicit [`TripleStore::compact`]) folds the deltas back. The
//! layout diagram, the per-access-pattern index-choice table and the
//! segment lifecycle live in this crate's `README.md` (the single copy,
//! so the two cannot drift).
//!
//! ## Layers
//!
//! * [`Dictionary`] — dense two-way term interning;
//! * [`EncodedGraph`] — the permutation arrays and segments; implements
//!   [`wdsparql_rdf::TripleIndex`], so every evaluation algorithm in the
//!   workspace (naive, pebble, enumeration, reference semantics) runs
//!   against it unchanged;
//! * [`TripleStore`] — the service: queries run lock-free on `Arc`
//!   snapshots of the graph, batched
//!   [`bulk_load`](TripleStore::bulk_load) appends delta segments
//!   copy-on-write under the write lock with epoch bumping, an LRU
//!   result cache keyed by `(query, epoch)` deduplicates concurrent
//!   misses in flight, and [`StoreStats`] selectivity statistics drive
//!   most-selective-first, connectivity-aware BGP planning —
//!   [`TripleStore::query_with_plan`] returns the executed plan from the
//!   same snapshot as the answers, planned exactly once;
//! * [`ShardedStore`] — write scaling: N hash-partitioned-by-subject
//!   [`TripleStore`] shards behind one facade. Bulk loads scatter to
//!   per-shard write locks (parallel on multi-core hosts, and a reader's
//!   snapshot pins one shard, not the dataset), subject-bound patterns
//!   route to exactly one shard, unbound ones scatter (on scoped threads
//!   when the host and the run sizes warrant it) and concatenate the
//!   disjoint per-shard runs lazily, and the facade's result cache is
//!   keyed by the epoch vector of the shards each query read — so routed
//!   results survive writes to other shards. [`ShardedSnapshot`]
//!   implements [`wdsparql_rdf::TripleIndex`], so every evaluator runs
//!   unchanged on the sharded layout;
//! * [`wcoj`] — worst-case-optimal multiway joins: a leapfrog triejoin
//!   over seekable tries ([`wdsparql_rdf::TrieCursor`]) served zero-copy
//!   from the sorted permutations, behind the
//!   [`JoinStrategy`]`::{Pairwise, Wco, Auto}` knob on both services and
//!   the engine — under `Auto`, cyclic query cores (triangles,
//!   k-cliques) route to the WCOJ instead of blowing up the pairwise
//!   pipeline's intermediates;
//! * [`persist`] — durable storage behind a fault-injectable [`Vfs`]:
//!   checksummed paged segments, a length-prefixed manifest and a
//!   commit log, with crash-safe tmp→fsync→rename→dir-sync publishes
//!   and defensive recovery (torn log tails truncated, corrupt
//!   referenced segments quarantined). [`TripleStore::open`] /
//!   [`TripleStore::persist_to`] (and the [`ShardedStore`]
//!   equivalents, one subdirectory per shard) wire it into the
//!   services; every durable `bulk_load` is fsynced before it is
//!   acknowledged.

#![forbid(unsafe_code)]

mod cache;
pub mod dict;
pub mod encoded;
pub mod join;
pub mod obs;
pub mod persist;
mod segment;
pub mod service;
pub mod shard;
pub mod wcoj;

pub use cache::CacheStats;
pub use dict::{Dictionary, TermId};
pub use encoded::{CompactionPolicy, EncodedGraph};
pub use join::{open_bgp_stream, PairwiseStream};
pub use obs::metrics_json;
pub use persist::vfs::{Fault, FaultFs, FaultKind, RealFs, Vfs, VfsError};
pub use persist::{PersistError, PersistOpts, Recovered, StoreDir};
pub use segment::{CapacityError, MAX_TRIPLES};
pub use service::{
    eval_bgp_pairwise, PairwiseStepStats, PlannedQuery, StoreError, StoreSnapshot, StoreStats,
    TripleStore,
};
pub use shard::{ShardedPlannedQuery, ShardedSnapshot, ShardedStats, ShardedStore};
pub use wcoj::{
    bgp_is_cyclic, eval_bgp_wco, eval_bgp_wco_profiled, eval_bgp_with_strategy, resolve_strategy,
    wco_variable_order, JoinStrategy, WcoLevelStats, WcoStream,
};
