//! # wdsparql-store
//!
//! A dictionary-encoded triple store with sorted permutation indexes and
//! a concurrent query service — the production-path substrate behind the
//! evaluation engine, replacing [`RdfGraph`](wdsparql_rdf::RdfGraph)'s
//! string-interned hash indexes on the hot path.
//!
//! ## Index layout
//!
//! Triples are interned through a [`Dictionary`] into dense `u32` ids and
//! stored as three sorted arrays of `[TermId; 3]` rows — the SPO, POS and
//! OSP component rotations — each with an offset array indexed by leading
//! id, so every bound-prefix lookup lands on one contiguous slice and the
//! sorted blocks double as merge-join inputs
//! ([`EncodedGraph::merge_join_ids`]). The layout diagram and the
//! per-access-pattern index-choice table live in this crate's
//! `README.md` (the single copy, so the two cannot drift).
//!
//! ## Layers
//!
//! * [`Dictionary`] — dense two-way term interning;
//! * [`EncodedGraph`] — the permutation arrays; implements
//!   [`wdsparql_rdf::TripleIndex`], so every evaluation algorithm in the
//!   workspace (naive, pebble, enumeration, reference semantics) runs
//!   against it unchanged;
//! * [`TripleStore`] — the service: queries run lock-free on `Arc`
//!   snapshots of the graph, batched
//!   [`bulk_load`](TripleStore::bulk_load) mutates copy-on-write under
//!   the write lock with epoch bumping, an LRU result cache is keyed by
//!   `(query, epoch)`, and [`StoreStats`] selectivity statistics drive
//!   most-selective-first, connectivity-aware BGP planning.

pub mod dict;
pub mod encoded;
pub mod service;

pub use dict::{Dictionary, TermId};
pub use encoded::EncodedGraph;
pub use service::{CacheStats, StoreStats, TripleStore};
