//! The on-disk byte format: paged container files with per-page
//! checksums, the triple-block payload codec, the length-prefixed
//! manifest payload and the fixed-size commit-log records.
//!
//! Layout of a paged file (`base-<n>` checkpoints and `seg-<n>` delta
//! segments):
//!
//! ```text
//! page 0:  magic u32 | version u16 | kind u8 | flags u8 | page_size u32
//!          | epoch u64 | payload_len u64 | header checksum u64
//!          | zero padding to page_size
//! page i:  (page_size - 8) payload bytes (last page zero-padded)
//!          | checksum u64 over [page index ++ padded chunk]
//! ```
//!
//! Every checksum is [`checksum64`], an XXH64-style rotate-multiply
//! hash; data-page checksums are salted with the page index so swapped
//! or relocated pages fail verification, not just flipped bits. All
//! integers are little-endian. Decoding never panics: every length,
//! index and checksum is validated and a mismatch is a typed
//! [`FormatError`] naming what disagreed.

use std::fmt;

/// File kind tags carried in the paged header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// A full checkpoint image (`base-<n>`).
    Checkpoint,
    /// One committed batch (`seg-<n>`).
    Segment,
    /// The manifest.
    Manifest,
}

impl PageKind {
    fn code(self) -> u8 {
        match self {
            PageKind::Checkpoint => 1,
            PageKind::Segment => 2,
            PageKind::Manifest => 3,
        }
    }

    fn from_code(code: u8) -> Option<PageKind> {
        match code {
            1 => Some(PageKind::Checkpoint),
            2 => Some(PageKind::Segment),
            3 => Some(PageKind::Manifest),
            _ => None,
        }
    }
}

/// A decode failure: what field disagreed and how.
#[derive(Debug, Clone)]
pub struct FormatError(pub String);

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError(msg.into()))
}

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// XXH64-style checksum: 8-byte lanes folded with rotate-multiply
/// rounds and an avalanche finish. Hand-rolled (the container has no
/// crates.io) but keeps the shape — and the diffusion — of the real
/// thing.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut acc = P5 ^ (bytes.len() as u64).wrapping_mul(P1);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut lane = [0u8; 8];
        lane.copy_from_slice(chunk);
        let lane = u64::from_le_bytes(lane).wrapping_mul(P2);
        acc = (acc ^ lane.rotate_left(31).wrapping_mul(P1))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
    }
    for &b in chunks.remainder() {
        acc = (acc ^ u64::from(b).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(P2);
    acc ^= acc >> 29;
    acc = acc.wrapping_mul(P3);
    acc ^= acc >> 32;
    acc
}

// ---------------------------------------------------------------------
// Paged container
// ---------------------------------------------------------------------

const MAGIC: u32 = 0x5744_5347; // "WDSG"
const VERSION: u16 = 1;
const HEADER_LEN: usize = 4 + 2 + 1 + 1 + 4 + 8 + 8 + 8;

/// The smallest page size the header (and a useful data page) fits in.
pub const MIN_PAGE_SIZE: usize = 64;
/// Production page size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;
const MAX_PAGE_SIZE: usize = 1 << 20;
/// Decoded payloads are refused past this size — a corrupt length
/// prefix must not become a giant allocation.
const MAX_PAYLOAD: u64 = 1 << 40;

/// A decoded paged file.
pub struct Paged {
    pub kind: PageKind,
    pub epoch: u64,
    pub payload: Vec<u8>,
}

/// Frames `payload` into the paged container format.
///
/// `page_size` must be in `MIN_PAGE_SIZE..=MAX_PAGE_SIZE`; it is
/// recorded in the header, so readers do not need to be configured to
/// match.
pub fn encode_paged(kind: PageKind, epoch: u64, payload: &[u8], page_size: usize) -> Vec<u8> {
    let page_size = page_size.clamp(MIN_PAGE_SIZE, MAX_PAGE_SIZE);
    let data_per_page = page_size - 8;
    let pages = payload.len().div_ceil(data_per_page);
    let mut out = Vec::with_capacity((1 + pages) * page_size);

    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.code());
    out.push(0); // flags
    out.extend_from_slice(&(page_size as u32).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let hck = checksum64(&out[..HEADER_LEN - 8]);
    out.extend_from_slice(&hck.to_le_bytes());
    out.resize(page_size, 0);

    let mut chunk = vec![0u8; data_per_page];
    for (i, data) in payload.chunks(data_per_page).enumerate() {
        chunk[..data.len()].copy_from_slice(data);
        chunk[data.len()..].fill(0);
        out.extend_from_slice(&chunk);
        let mut salted = Vec::with_capacity(8 + data_per_page);
        salted.extend_from_slice(&(i as u64).to_le_bytes());
        salted.extend_from_slice(&chunk);
        out.extend_from_slice(&checksum64(&salted).to_le_bytes());
    }
    out
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(buf)
}

/// Validates and unpacks a paged file: header magic/version/checksum,
/// page count vs payload length, and every page checksum.
pub fn decode_paged(bytes: &[u8], expect: PageKind) -> Result<Paged, FormatError> {
    if bytes.len() < MIN_PAGE_SIZE {
        return err(format!(
            "file too short for a header: {} bytes",
            bytes.len()
        ));
    }
    if read_u32(bytes, 0) != MAGIC {
        return err("bad magic");
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return err(format!("unsupported version {version}"));
    }
    let hck = read_u64(bytes, HEADER_LEN - 8);
    if checksum64(&bytes[..HEADER_LEN - 8]) != hck {
        return err("header checksum mismatch");
    }
    let Some(kind) = PageKind::from_code(bytes[6]) else {
        return err(format!("unknown file kind {}", bytes[6]));
    };
    if kind != expect {
        return err(format!("expected a {expect:?} file, found {kind:?}"));
    }
    let page_size = read_u32(bytes, 8) as usize;
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return err(format!("implausible page size {page_size}"));
    }
    let epoch = read_u64(bytes, 12);
    let payload_len = read_u64(bytes, 20);
    if payload_len > MAX_PAYLOAD {
        return err(format!("implausible payload length {payload_len}"));
    }
    let payload_len = payload_len as usize;
    let data_per_page = page_size - 8;
    let pages = payload_len.div_ceil(data_per_page);
    let want = (1 + pages) * page_size;
    if bytes.len() < want {
        return err(format!(
            "truncated: {} bytes on disk, {want} framed",
            bytes.len()
        ));
    }

    let mut payload = Vec::with_capacity(payload_len);
    for i in 0..pages {
        let start = (1 + i) * page_size;
        let chunk = &bytes[start..start + data_per_page];
        let stored = read_u64(bytes, start + data_per_page);
        let mut salted = Vec::with_capacity(8 + data_per_page);
        salted.extend_from_slice(&(i as u64).to_le_bytes());
        salted.extend_from_slice(chunk);
        if checksum64(&salted) != stored {
            return err(format!("page {i} checksum mismatch"));
        }
        let take = data_per_page.min(payload_len - payload.len());
        payload.extend_from_slice(&chunk[..take]);
    }
    Ok(Paged {
        kind,
        epoch,
        payload,
    })
}

// ---------------------------------------------------------------------
// Triple block payload
// ---------------------------------------------------------------------

/// A decoded triple block: the local term table and rows indexing it.
pub struct TripleBlock {
    pub terms: Vec<String>,
    pub rows: Vec<[u32; 3]>,
}

/// Serializes triples as a local term table (length-prefixed UTF-8
/// spellings) plus `[s, p, o]` index rows — the same
/// dictionary-plus-sorted-rows shape the in-memory graph uses, just
/// self-contained per file.
pub fn encode_triple_block(terms: &[&str], rows: &[[u32; 3]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for t in terms {
        out.extend_from_slice(&(t.len() as u32).to_le_bytes());
        out.extend_from_slice(t.as_bytes());
    }
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        for id in row {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

/// Decodes and validates a triple block: every length in bounds, every
/// spelling UTF-8, every row index inside the term table.
pub fn decode_triple_block(payload: &[u8]) -> Result<TripleBlock, FormatError> {
    let mut at = 0usize;
    let need = |at: usize, n: usize, what: &str| -> Result<(), FormatError> {
        if at + n > payload.len() {
            return err(format!("triple block truncated reading {what}"));
        }
        Ok(())
    };
    need(at, 4, "term count")?;
    let term_count = read_u32(payload, at) as usize;
    at += 4;
    if term_count > payload.len() {
        return err(format!("implausible term count {term_count}"));
    }
    let mut terms = Vec::with_capacity(term_count);
    for i in 0..term_count {
        need(at, 4, "term length")?;
        let len = read_u32(payload, at) as usize;
        at += 4;
        need(at, len, "term bytes")?;
        match std::str::from_utf8(&payload[at..at + len]) {
            Ok(s) => terms.push(s.to_string()),
            Err(_) => return err(format!("term {i} is not UTF-8")),
        }
        at += len;
    }
    need(at, 8, "row count")?;
    let row_count = read_u64(payload, at);
    at += 8;
    if row_count > (payload.len() as u64) / 12 + 1 {
        return err(format!("implausible row count {row_count}"));
    }
    let row_count = row_count as usize;
    let mut rows = Vec::with_capacity(row_count);
    for _ in 0..row_count {
        need(at, 12, "row")?;
        let row = [
            read_u32(payload, at),
            read_u32(payload, at + 4),
            read_u32(payload, at + 8),
        ];
        at += 12;
        for id in row {
            if id as usize >= term_count {
                return err(format!("row index {id} out of term table ({term_count})"));
            }
        }
        rows.push(row);
    }
    if at != payload.len() {
        return err(format!(
            "{} trailing bytes after the last row",
            payload.len() - at
        ));
    }
    Ok(TripleBlock { terms, rows })
}

// ---------------------------------------------------------------------
// Manifest payload
// ---------------------------------------------------------------------

/// The decoded manifest: the store's durable root pointer.
pub struct Manifest {
    /// Epoch covered by the checkpoint (0 with no checkpoint).
    pub epoch: u64,
    /// Checkpoint file name; `None` before the first checkpoint.
    pub checkpoint: Option<String>,
    /// [`checksum64`] of the checkpoint file's *payload*, cross-checked
    /// at recovery so the manifest and checkpoint cannot drift apart.
    pub checkpoint_sum: u64,
}

/// Encodes the manifest payload: length-prefixed checkpoint name, its
/// payload checksum, the covered epoch.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let name = m.checkpoint.as_deref().unwrap_or("");
    let mut out = Vec::with_capacity(4 + name.len() + 16);
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&m.checkpoint_sum.to_le_bytes());
    out.extend_from_slice(&m.epoch.to_le_bytes());
    out
}

pub fn decode_manifest(payload: &[u8]) -> Result<Manifest, FormatError> {
    if payload.len() < 4 {
        return err("manifest payload shorter than its name prefix");
    }
    let name_len = read_u32(payload, 0) as usize;
    if payload.len() != 4 + name_len + 16 {
        return err(format!(
            "manifest payload is {} bytes, framed for {}",
            payload.len(),
            4 + name_len + 16
        ));
    }
    let name = match std::str::from_utf8(&payload[4..4 + name_len]) {
        Ok(s) => s,
        Err(_) => return err("manifest checkpoint name is not UTF-8"),
    };
    let checkpoint_sum = read_u64(payload, 4 + name_len);
    let epoch = read_u64(payload, 4 + name_len + 8);
    Ok(Manifest {
        epoch,
        checkpoint: (!name.is_empty()).then(|| name.to_string()),
        checkpoint_sum,
    })
}

// ---------------------------------------------------------------------
// Commit-log records
// ---------------------------------------------------------------------

const REC_MAGIC: u32 = 0x5744_4C47; // "WDLG"
/// Fixed record size: magic, epoch, segment id, payload length,
/// payload checksum, record checksum.
pub const RECORD_LEN: usize = 4 + 8 + 4 + 8 + 8 + 8;

/// One commit-log record: epoch `epoch` lives in segment `seg_id`,
/// whose payload must be `payload_len` bytes hashing to `payload_sum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    pub epoch: u64,
    pub seg_id: u32,
    pub payload_len: u64,
    pub payload_sum: u64,
}

pub fn encode_record(rec: &LogRecord) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    out[0..4].copy_from_slice(&REC_MAGIC.to_le_bytes());
    out[4..12].copy_from_slice(&rec.epoch.to_le_bytes());
    out[12..16].copy_from_slice(&rec.seg_id.to_le_bytes());
    out[16..24].copy_from_slice(&rec.payload_len.to_le_bytes());
    out[24..32].copy_from_slice(&rec.payload_sum.to_le_bytes());
    let sum = checksum64(&out[..RECORD_LEN - 8]);
    out[RECORD_LEN - 8..].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Parses the commit log, stopping at the first record that fails its
/// magic or checksum. Returns the valid records and the byte length of
/// the valid prefix — everything past it is a torn tail to truncate.
pub fn parse_log(bytes: &[u8]) -> (Vec<LogRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at + RECORD_LEN <= bytes.len() {
        let rec = &bytes[at..at + RECORD_LEN];
        if read_u32(rec, 0) != REC_MAGIC
            || checksum64(&rec[..RECORD_LEN - 8]) != read_u64(rec, RECORD_LEN - 8)
        {
            break;
        }
        records.push(LogRecord {
            epoch: read_u64(rec, 4),
            seg_id: read_u32(rec, 12),
            payload_len: read_u64(rec, 16),
            payload_sum: read_u64(rec, 24),
        });
        at += RECORD_LEN;
    }
    (records, at as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_differs_on_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let sum = checksum64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), sum, "byte {byte} bit {bit}");
            }
        }
        assert_ne!(checksum64(b""), checksum64(&[0]));
    }

    #[test]
    fn paged_roundtrip_across_sizes_and_kinds() {
        for size in [MIN_PAGE_SIZE, 128, DEFAULT_PAGE_SIZE] {
            for len in [0usize, 1, 55, 56, 57, 500, 5000] {
                let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
                let framed = encode_paged(PageKind::Segment, 42, &payload, size);
                assert_eq!(framed.len() % size, 0);
                let back = decode_paged(&framed, PageKind::Segment).expect("roundtrip");
                assert_eq!(back.payload, payload, "size {size} len {len}");
                assert_eq!(back.epoch, 42);
            }
        }
    }

    #[test]
    fn paged_decode_rejects_every_corruption() {
        let payload: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let framed = encode_paged(PageKind::Checkpoint, 7, &payload, MIN_PAGE_SIZE);
        // Truncation at any page boundary or mid-page fails.
        for cut in [framed.len() - 1, framed.len() - MIN_PAGE_SIZE, 10] {
            assert!(decode_paged(&framed[..cut], PageKind::Checkpoint).is_err());
        }
        // A flipped bit anywhere fails (header, page data or page sum).
        for at in [0, 5, 20, MIN_PAGE_SIZE + 3, framed.len() - 2] {
            let mut bad = framed.clone();
            bad[at] ^= 0x10;
            assert!(
                decode_paged(&bad, PageKind::Checkpoint).is_err(),
                "flip at {at} undetected"
            );
        }
        // Swapping two data pages fails despite both having valid sums.
        let mut swapped = framed.clone();
        let (a, b) = (MIN_PAGE_SIZE, 2 * MIN_PAGE_SIZE);
        let first: Vec<u8> = swapped[a..a + MIN_PAGE_SIZE].to_vec();
        let second: Vec<u8> = swapped[b..b + MIN_PAGE_SIZE].to_vec();
        swapped[a..a + MIN_PAGE_SIZE].copy_from_slice(&second);
        swapped[b..b + MIN_PAGE_SIZE].copy_from_slice(&first);
        assert!(decode_paged(&swapped, PageKind::Checkpoint).is_err());
        // Wrong kind tag is refused even when the file is intact.
        assert!(decode_paged(&framed, PageKind::Segment).is_err());
    }

    #[test]
    fn triple_block_roundtrip_and_validation() {
        let terms = ["alice", "knows", "bob", ""];
        let rows = [[0, 1, 2], [2, 1, 0], [3, 3, 3]];
        let payload = encode_triple_block(&terms, &rows);
        let block = decode_triple_block(&payload).expect("roundtrip");
        assert_eq!(block.terms, terms);
        assert_eq!(block.rows, rows);

        // An out-of-table row index is refused.
        let bad = encode_triple_block(&terms, &[[0, 1, 4]]);
        assert!(decode_triple_block(&bad).is_err());
        // Truncations at every prefix are refused, never panic.
        for cut in 0..payload.len() {
            assert!(decode_triple_block(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn manifest_roundtrip_with_and_without_checkpoint() {
        for checkpoint in [None, Some("base-3".to_string())] {
            let m = Manifest {
                epoch: 9,
                checkpoint: checkpoint.clone(),
                checkpoint_sum: 0xDEAD_BEEF,
            };
            let back = decode_manifest(&encode_manifest(&m)).expect("roundtrip");
            assert_eq!(back.epoch, 9);
            assert_eq!(back.checkpoint, checkpoint);
            assert_eq!(back.checkpoint_sum, 0xDEAD_BEEF);
        }
        assert!(decode_manifest(&[1, 2]).is_err());
    }

    #[test]
    fn log_parse_stops_at_torn_tail() {
        let recs = [
            LogRecord {
                epoch: 1,
                seg_id: 0,
                payload_len: 10,
                payload_sum: 111,
            },
            LogRecord {
                epoch: 2,
                seg_id: 1,
                payload_len: 20,
                payload_sum: 222,
            },
        ];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        let full = bytes.clone();
        let (parsed, len) = parse_log(&full);
        assert_eq!(parsed, recs);
        assert_eq!(len as usize, full.len());

        // A half-written third record parses as exactly the first two.
        bytes.extend_from_slice(&encode_record(&recs[0])[..RECORD_LEN / 2]);
        let (parsed, len) = parse_log(&bytes);
        assert_eq!(parsed, recs);
        assert_eq!(len as usize, full.len());

        // A corrupt *first* record hides everything after it.
        let mut bad = full.clone();
        bad[6] ^= 1;
        let (parsed, len) = parse_log(&bad);
        assert!(parsed.is_empty());
        assert_eq!(len, 0);
    }
}
