//! Durable segment storage: the crash-verified commit protocol from
//! `wdsparql_analyzer::fsim::proto`, implemented for real.
//!
//! A store directory holds:
//!
//! * `manifest` — the root pointer: a paged [`format`] file naming the
//!   current checkpoint (`base-<n>`), its payload checksum and the
//!   epoch it covers;
//! * `base-<n>` — the checkpoint: every triple as of its epoch, one
//!   paged triple block;
//! * `seg-<n>` — immutable delta segments, one per committed batch;
//! * `commit.log` — fixed-size records, one per committed batch:
//!   `(epoch, segment id, payload length, payload checksum)`.
//!
//! **Commit** follows the proven op sequence: write `seg-<n>.tmp`,
//! `fsync` it, `rename` into place, `dir_sync`, append the log record,
//! `fsync` the log — only then is the batch acknowledged. **Checkpoint**
//! publishes a new `base-<n>` and a new manifest the same way, then
//! truncates the log. **Recovery** trusts nothing: tmp files are
//! removed, the manifest and checkpoint are checksum-verified against
//! each other, a torn log tail is truncated, and every referenced
//! segment is verified against its log record. A segment that fails —
//! checksum mismatch, wrong epoch, truncation — is *quarantined*
//! (renamed to `seg-<n>.quarantined`, counted in metrics) and the store
//! degrades to the last consistent epoch instead of panicking; a
//! corrupt manifest or checkpoint is a typed error, never a crash.
//!
//! Invariants (D1–D4, replayed against this exact code by the crash
//! matrix in `tests/persist_crash_matrix.rs`): acknowledged epochs are
//! durable with their exact payload; an interrupted load is invisible;
//! recovery never errors on a crash image and never leaves a missing or
//! torn referenced segment; recovery is idempotent.

pub mod format;
pub mod vfs;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use wdsparql_rdf::{Iri, Triple};

use format::{
    checksum64, decode_manifest, decode_paged, decode_triple_block, encode_manifest, encode_paged,
    encode_record, encode_triple_block, parse_log, LogRecord, Manifest, PageKind, TripleBlock,
    RECORD_LEN,
};
use vfs::{FaultKind, RealFs, Vfs, VfsError};

/// The manifest file name.
pub const MANIFEST: &str = "manifest";
/// The commit-log file name.
pub const LOG: &str = "commit.log";
const TMP_SUFFIX: &str = ".tmp";
const QUARANTINE_SUFFIX: &str = ".quarantined";

fn seg_name(id: u32) -> String {
    format!("seg-{id:08}")
}

fn base_name(id: u32) -> String {
    format!("base-{id:08}")
}

fn parse_id(name: &str, prefix: &str) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?;
    let rest = rest.strip_suffix(QUARANTINE_SUFFIX).unwrap_or(rest);
    rest.parse().ok()
}

// ---------------------------------------------------------------------
// Errors and options
// ---------------------------------------------------------------------

/// A persistence failure, typed by what the caller can do about it.
#[derive(Debug, Clone)]
pub enum PersistError {
    /// An I/O operation failed past the retry budget (or finally).
    Io { op: String, kind: FaultKind },
    /// The manifest is unreadable: missing with store files present,
    /// bad checksum, or malformed. The directory needs operator
    /// attention; nothing was modified.
    CorruptManifest(String),
    /// The checkpoint the manifest references is missing, fails its
    /// cross-checked checksum, or is malformed.
    CorruptCheckpoint(String),
    /// Any other validation failure (e.g. a replayed batch that cannot
    /// fit the in-memory graph).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, kind } => {
                let kind = match kind {
                    FaultKind::Transient => "transient (retries exhausted)",
                    FaultKind::Permanent => "permanent",
                    FaultKind::Crashed => "crashed",
                };
                write!(f, "{kind} i/o failure during {op}")
            }
            PersistError::CorruptManifest(why) => write!(f, "corrupt manifest: {why}"),
            PersistError::CorruptCheckpoint(why) => write!(f, "corrupt checkpoint: {why}"),
            PersistError::Corrupt(why) => write!(f, "corrupt store: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<VfsError> for PersistError {
    fn from(e: VfsError) -> PersistError {
        PersistError::Io {
            op: e.op,
            kind: e.kind,
        }
    }
}

/// Tuning knobs for the persistence layer.
#[derive(Debug, Clone)]
pub struct PersistOpts {
    /// Page size of written files (readers use the header, so any
    /// mix of page sizes coexists in one directory).
    pub page_size: usize,
    /// Transient-failure retries per operation.
    pub max_retries: u32,
    /// Base backoff between retries, doubled per attempt.
    pub backoff: Duration,
}

impl Default for PersistOpts {
    fn default() -> PersistOpts {
        PersistOpts {
            page_size: format::DEFAULT_PAGE_SIZE,
            max_retries: 3,
            backoff: Duration::from_micros(500),
        }
    }
}

/// Runs `f`, retrying transient failures with exponential backoff.
fn retried<T>(
    opts: &PersistOpts,
    mut f: impl FnMut() -> Result<T, VfsError>,
) -> Result<T, PersistError> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < opts.max_retries => {
                attempt += 1;
                crate::obs::on_commit_retry();
                let wait = opts.backoff * (1u32 << (attempt - 1).min(8));
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
            Err(e) => return Err(PersistError::from(e)),
        }
    }
}

// ---------------------------------------------------------------------
// Directory state and the protocol
// ---------------------------------------------------------------------

/// In-memory bookkeeping for an open store directory. Rebuilt by
/// [`recover`]; advanced by [`commit_batch`] and [`checkpoint`].
#[derive(Debug, Clone, Default)]
pub struct DirState {
    /// Live length of `commit.log`, for rollback truncation.
    pub log_len: u64,
    /// Next segment id to allocate.
    pub next_seg_id: u32,
    /// Next checkpoint id to allocate.
    pub next_base_id: u32,
    /// Set when a failed commit could not be rolled back; the
    /// directory is no longer writable until reopened (reads and the
    /// in-memory store are unaffected).
    pub wedged: bool,
}

/// What recovery reconstructed from disk.
pub struct Recovered {
    /// The last consistent epoch.
    pub epoch: u64,
    /// The checkpoint image (empty without a checkpoint).
    pub checkpoint: Vec<Triple>,
    /// Committed batches after the checkpoint, in epoch order.
    pub deltas: Vec<(u64, Vec<Triple>)>,
    /// Segments renamed aside because they failed verification.
    pub quarantined: usize,
    /// True when corruption forced the store back to an earlier epoch
    /// than the log claimed.
    pub degraded: bool,
}

fn wedged_err() -> PersistError {
    PersistError::Io {
        op: "commit (directory wedged by an earlier failed rollback; reopen to recover)"
            .to_string(),
        kind: FaultKind::Permanent,
    }
}

/// True if the directory already holds a (possibly partial) store.
pub fn is_formatted(fs: &dyn Vfs, opts: &PersistOpts) -> Result<bool, PersistError> {
    Ok(retried(opts, || fs.read_at(MANIFEST, 0, 1))?.is_some())
}

/// Writes `bytes` as `tmp` and atomically publishes it as `dst` — the
/// proven tmp → fsync → rename → dir_sync sequence. The rename is
/// durable only after the data it points to is.
fn publish_file(
    fs: &dyn Vfs,
    opts: &PersistOpts,
    tmp: &str,
    dst: &str,
    bytes: &[u8],
) -> Result<(), PersistError> {
    retried(opts, || fs.create(tmp))?;
    retried(opts, || fs.append(tmp, bytes))?;
    retried(opts, || fs.fsync(tmp))?;
    crate::obs::on_fsync();
    retried(opts, || fs.rename(tmp, dst))?;
    retried(opts, || fs.dir_sync())?;
    crate::obs::on_fsync();
    Ok(())
}

/// Formats an empty store: an empty manifest published atomically,
/// then an empty commit log. Leftover tmp files from an interrupted
/// earlier format are cleared first, so formatting is idempotent.
pub fn format_store(fs: &dyn Vfs, opts: &PersistOpts) -> Result<DirState, PersistError> {
    for name in retried(opts, || fs.list())? {
        if name.ends_with(TMP_SUFFIX) {
            retried(opts, || fs.remove(&name))?;
        }
    }
    let manifest = Manifest {
        epoch: 0,
        checkpoint: None,
        checkpoint_sum: 0,
    };
    let framed = encode_paged(
        PageKind::Manifest,
        0,
        &encode_manifest(&manifest),
        opts.page_size,
    );
    let tmp = format!("{MANIFEST}{TMP_SUFFIX}");
    publish_file(fs, opts, &tmp, MANIFEST, &framed)?;
    if retried(opts, || fs.read_at(LOG, 0, 1))?.is_none() {
        retried(opts, || fs.create(LOG))?;
        retried(opts, || fs.dir_sync())?;
        crate::obs::on_fsync();
    }
    Ok(DirState::default())
}

/// Builds the self-contained term table + rows image of `triples`.
pub(crate) fn batch_image(triples: &[Triple]) -> (Vec<&'static str>, Vec<[u32; 3]>) {
    let mut table: BTreeMap<&'static str, u32> = BTreeMap::new();
    for t in triples {
        for iri in [t.s, t.p, t.o] {
            let next = table.len() as u32;
            table.entry(iri.as_str()).or_insert(next);
        }
    }
    let mut terms = vec![""; table.len()];
    for (name, &id) in &table {
        terms[id as usize] = name;
    }
    let mut rows: Vec<[u32; 3]> = triples
        .iter()
        .map(|t| {
            [
                table[t.s.as_str()],
                table[t.p.as_str()],
                table[t.o.as_str()],
            ]
        })
        .collect();
    rows.sort_unstable();
    rows.dedup();
    (terms, rows)
}

fn materialize(block: &TripleBlock) -> Vec<Triple> {
    block
        .rows
        .iter()
        .map(|r| {
            Triple::new(
                Iri::new(&block.terms[r[0] as usize]),
                Iri::new(&block.terms[r[1] as usize]),
                Iri::new(&block.terms[r[2] as usize]),
            )
        })
        .collect()
}

/// Durably commits one batch as epoch `epoch`: segment published
/// first, then the log record that makes it real. On any failure the
/// commit rolls back — the log is truncated to its prior length and
/// the segment files removed — so an interrupted load is invisible
/// (D2) and the caller's in-memory state needs no change.
pub fn commit_batch(
    fs: &dyn Vfs,
    opts: &PersistOpts,
    st: &mut DirState,
    epoch: u64,
    triples: &[Triple],
) -> Result<(), PersistError> {
    if st.wedged {
        return Err(wedged_err());
    }
    let (terms, rows) = batch_image(triples);
    let payload = encode_triple_block(&terms, &rows);
    let framed = encode_paged(PageKind::Segment, epoch, &payload, opts.page_size);
    let seg_id = st.next_seg_id;
    let seg = seg_name(seg_id);
    let tmp = format!("{seg}{TMP_SUFFIX}");
    let record = encode_record(&LogRecord {
        epoch,
        seg_id,
        payload_len: payload.len() as u64,
        payload_sum: checksum64(&payload),
    });

    let outcome = (|| -> Result<(), PersistError> {
        publish_file(fs, opts, &tmp, &seg, &framed)?;
        retried(opts, || fs.append(LOG, &record))?;
        retried(opts, || fs.fsync(LOG))?;
        crate::obs::on_fsync();
        Ok(())
    })();

    match outcome {
        Ok(()) => {
            st.log_len += RECORD_LEN as u64;
            st.next_seg_id += 1;
            Ok(())
        }
        Err(e) => {
            // Roll back in reverse publish order: un-publish the log
            // record first (it is what makes the segment real), then
            // sweep the segment files. If even the truncate fails the
            // directory is wedged — no further commits until a reopen
            // re-establishes a consistent picture.
            let log_len = st.log_len;
            if retried(opts, || fs.truncate(LOG, log_len)).is_ok() {
                let _ = fs.fsync(LOG);
            } else {
                st.wedged = true;
            }
            let _ = fs.remove(&tmp);
            let _ = fs.remove(&seg);
            let _ = fs.dir_sync();
            // The id is burned either way: a half-published segment
            // name must never be reused for different bytes.
            st.next_seg_id += 1;
            Err(e)
        }
    }
}

/// Publishes a full checkpoint of `triples` at `epoch`: new `base-<n>`,
/// then a new manifest pointing at it (both via tmp → fsync → rename →
/// dir_sync), then the log is truncated and obsolete files swept.
///
/// Failure before the manifest publish leaves the old manifest, log
/// and segments fully intact — the caller may simply carry on; the
/// orphaned tmp or base file is swept by the next recovery. Failures
/// *after* the manifest publish (log truncate, file sweep) are
/// harmless garbage, not inconsistency — stale log records are skipped
/// at recovery because their epochs precede the manifest's — so they
/// are deliberately ignored.
pub fn checkpoint(
    fs: &dyn Vfs,
    opts: &PersistOpts,
    st: &mut DirState,
    epoch: u64,
    triples: &[Triple],
) -> Result<(), PersistError> {
    if st.wedged {
        return Err(wedged_err());
    }
    let (terms, rows) = batch_image(triples);
    let payload = encode_triple_block(&terms, &rows);
    let framed = encode_paged(PageKind::Checkpoint, epoch, &payload, opts.page_size);
    let base_id = st.next_base_id;
    let base = base_name(base_id);
    let base_tmp = format!("{base}{TMP_SUFFIX}");
    publish_file(fs, opts, &base_tmp, &base, &framed)?;

    let manifest = Manifest {
        epoch,
        checkpoint: Some(base.clone()),
        checkpoint_sum: checksum64(&payload),
    };
    let mframed = encode_paged(
        PageKind::Manifest,
        epoch,
        &encode_manifest(&manifest),
        opts.page_size,
    );
    let mtmp = format!("{MANIFEST}{TMP_SUFFIX}");
    publish_file(fs, opts, &mtmp, MANIFEST, &mframed)?;
    st.next_base_id = base_id + 1;

    // Point of no return passed: everything below is cleanup.
    if retried(opts, || fs.truncate(LOG, 0)).is_ok() {
        st.log_len = 0;
        if fs.fsync(LOG).is_ok() {
            crate::obs::on_fsync();
        }
    }
    if let Ok(names) = fs.list() {
        let mut swept = false;
        for name in names {
            let stale_seg = parse_id(&name, "seg-").is_some() && !name.ends_with(QUARANTINE_SUFFIX);
            let stale_base = parse_id(&name, "base-").is_some()
                && !name.ends_with(QUARANTINE_SUFFIX)
                && name != base;
            if stale_seg || stale_base {
                swept |= fs.remove(&name).is_ok();
            }
        }
        if swept {
            let _ = fs.dir_sync();
        }
    }
    Ok(())
}

/// Truncates the log to `len` and syncs it, updating the state.
fn cut_log(
    fs: &dyn Vfs,
    opts: &PersistOpts,
    st: &mut DirState,
    len: u64,
) -> Result<(), PersistError> {
    retried(opts, || fs.truncate(LOG, len))?;
    retried(opts, || fs.fsync(LOG))?;
    crate::obs::on_fsync();
    st.log_len = len;
    Ok(())
}

/// Renames a segment that failed verification aside, out of every
/// future scan, preserving the evidence for operators.
fn quarantine_segment(fs: &dyn Vfs, opts: &PersistOpts, seg: &str) -> Result<(), PersistError> {
    let aside = format!("{seg}{QUARANTINE_SUFFIX}");
    // analyzer-allow: io-ordering this rename publishes nothing — it retires a corrupt segment from the namespace; recovery dir_syncs before returning
    retried(opts, || fs.rename(seg, &aside))?;
    crate::obs::on_quarantine(1);
    Ok(())
}

/// Rebuilds the store from disk, trusting nothing.
///
/// Leftover tmp files are removed; the manifest and its checkpoint are
/// decoded and cross-checked (failures are typed errors — the caller
/// gets a diagnosis, not a panic); a torn log tail is truncated; each
/// referenced segment is verified byte-for-byte against its log
/// record. The first segment that fails is quarantined (missing ones
/// have nothing to rename), the log is cut at its record, and the
/// store degrades to the epochs before it. Unreferenced segment and
/// checkpoint files are swept. Running recovery twice is a no-op (D4).
pub fn recover(fs: &dyn Vfs, opts: &PersistOpts) -> Result<(Recovered, DirState), PersistError> {
    let names = retried(opts, || fs.list())?;
    for name in &names {
        if name.ends_with(TMP_SUFFIX) {
            retried(opts, || fs.remove(name))?;
        }
    }

    // The root pointer. A directory with store files but no manifest
    // is not "empty", it is damaged — surface that, touch nothing.
    let Some(mbytes) = retried(opts, || fs.read(MANIFEST))? else {
        return Err(PersistError::CorruptManifest(
            "manifest missing from a non-empty store directory".to_string(),
        ));
    };
    let manifest = decode_paged(&mbytes, PageKind::Manifest)
        .and_then(|p| decode_manifest(&p.payload))
        .map_err(|e| PersistError::CorruptManifest(e.0))?;

    // The checkpoint, cross-checked against the manifest's checksum.
    let mut checkpoint_triples = Vec::new();
    if let Some(base) = &manifest.checkpoint {
        let Some(bytes) = retried(opts, || fs.read(base))? else {
            return Err(PersistError::CorruptCheckpoint(format!(
                "manifest references {base}, which is missing"
            )));
        };
        let paged = decode_paged(&bytes, PageKind::Checkpoint)
            .map_err(|e| PersistError::CorruptCheckpoint(e.0))?;
        if paged.epoch != manifest.epoch {
            return Err(PersistError::CorruptCheckpoint(format!(
                "{base} is epoch {}, manifest says {}",
                paged.epoch, manifest.epoch
            )));
        }
        if checksum64(&paged.payload) != manifest.checkpoint_sum {
            return Err(PersistError::CorruptCheckpoint(format!(
                "{base} payload checksum does not match the manifest"
            )));
        }
        let block = decode_triple_block(&paged.payload)
            .map_err(|e| PersistError::CorruptCheckpoint(e.0))?;
        checkpoint_triples = materialize(&block);
    }

    let mut st = DirState::default();
    let log_bytes = retried(opts, || fs.read(LOG))?;
    let log_missing = log_bytes.is_none();
    let log_bytes = log_bytes.unwrap_or_default();
    let (records, valid_len) = parse_log(&log_bytes);
    st.log_len = log_bytes.len() as u64;
    if !log_missing && valid_len < st.log_len {
        // Torn tail from a crash mid-append: cut it.
        cut_log(fs, opts, &mut st, valid_len)?;
    }

    // Replay: verify each referenced segment against its record.
    let mut epoch = manifest.epoch;
    let mut deltas: Vec<(u64, Vec<Triple>)> = Vec::new();
    let mut referenced: BTreeSet<u32> = BTreeSet::new();
    let mut quarantined = 0usize;
    let mut degraded = false;
    let mut max_seg_id: Option<u32> = None;
    for (i, rec) in records.iter().enumerate() {
        max_seg_id = max_seg_id.max(Some(rec.seg_id));
        if rec.epoch <= manifest.epoch {
            // Checkpointed already; its segment is swept below.
            continue;
        }
        let seg = seg_name(rec.seg_id);
        let verified = match retried(opts, || fs.read(&seg))? {
            None => Err(format!("segment {seg} is missing")),
            Some(bytes) => decode_paged(&bytes, PageKind::Segment)
                .map_err(|e| e.0)
                .and_then(|p| {
                    if p.epoch != rec.epoch {
                        Err(format!(
                            "{seg} is epoch {}, its record says {}",
                            p.epoch, rec.epoch
                        ))
                    } else if p.payload.len() as u64 != rec.payload_len
                        || checksum64(&p.payload) != rec.payload_sum
                    {
                        Err(format!("{seg} payload does not match its log record"))
                    } else {
                        decode_triple_block(&p.payload).map_err(|e| e.0)
                    }
                }),
        };
        match verified {
            Ok(block) => {
                // A duplicate epoch is rollback residue: last wins.
                deltas.retain(|(e, _)| *e != rec.epoch);
                deltas.push((rec.epoch, materialize(&block)));
                epoch = epoch.max(rec.epoch);
                referenced.insert(rec.seg_id);
            }
            Err(_why) => {
                // Corrupt or missing: quarantine what exists, cut the
                // log at this record, and serve the epochs before it.
                if retried(opts, || fs.read_at(&seg, 0, 1))?.is_some() {
                    quarantine_segment(fs, opts, &seg)?;
                    quarantined += 1;
                }
                cut_log(fs, opts, &mut st, (i * RECORD_LEN) as u64)?;
                degraded = true;
                break;
            }
        }
    }

    // Sweep unreferenced segments and superseded checkpoints.
    for name in &names {
        if name.ends_with(TMP_SUFFIX) || name.ends_with(QUARANTINE_SUFFIX) {
            continue;
        }
        let stale_seg = parse_id(name, "seg-").is_some_and(|id| !referenced.contains(&id));
        let stale_base = parse_id(name, "base-").is_some()
            && manifest.checkpoint.as_deref() != Some(name.as_str());
        if (stale_seg || stale_base) && retried(opts, || fs.read_at(name, 0, 0))?.is_some() {
            retried(opts, || fs.remove(name))?;
        }
        if let Some(id) = parse_id(name, "seg-") {
            max_seg_id = max_seg_id.max(Some(id));
        }
        if let Some(id) = parse_id(name, "base-") {
            st.next_base_id = st.next_base_id.max(id + 1);
        }
    }
    if log_missing {
        // A crash between the manifest publish and the log creation
        // during format: recreate the (empty) log.
        retried(opts, || fs.create(LOG))?;
        st.log_len = 0;
    }
    retried(opts, || fs.dir_sync())?;
    crate::obs::on_fsync();

    st.next_seg_id = max_seg_id.map_or(0, |id| id + 1);
    deltas.sort_by_key(|(e, _)| *e);
    Ok((
        Recovered {
            epoch,
            checkpoint: checkpoint_triples,
            deltas,
            quarantined,
            degraded,
        },
        st,
    ))
}

// ---------------------------------------------------------------------
// StoreDir: the handle the service embeds
// ---------------------------------------------------------------------

/// An open store directory: a [`Vfs`] plus the protocol bookkeeping.
/// All methods delegate to the free protocol functions, which is what
/// lets the crash-matrix tests drive the identical code over a
/// simulated filesystem.
pub struct StoreDir {
    fs: Arc<dyn Vfs + Send + Sync>,
    opts: PersistOpts,
    state: DirState,
}

impl StoreDir {
    pub fn new(fs: Arc<dyn Vfs + Send + Sync>, opts: PersistOpts) -> StoreDir {
        StoreDir {
            fs,
            opts,
            state: DirState::default(),
        }
    }

    /// Opens `root` on the real filesystem, creating it if absent.
    pub fn real(
        root: impl Into<std::path::PathBuf>,
        opts: PersistOpts,
    ) -> Result<StoreDir, PersistError> {
        let fs = RealFs::open(root.into()).map_err(|e| PersistError::Io {
            op: format!("open store directory: {e}"),
            kind: FaultKind::Permanent,
        })?;
        Ok(StoreDir::new(Arc::new(fs), opts))
    }

    pub fn is_formatted(&self) -> Result<bool, PersistError> {
        is_formatted(&*self.fs, &self.opts)
    }

    pub fn format(&mut self) -> Result<(), PersistError> {
        self.state = format_store(&*self.fs, &self.opts)?;
        Ok(())
    }

    pub fn recover(&mut self) -> Result<Recovered, PersistError> {
        let (rec, st) = recover(&*self.fs, &self.opts)?;
        self.state = st;
        Ok(rec)
    }

    pub fn commit_batch(&mut self, epoch: u64, triples: &[Triple]) -> Result<(), PersistError> {
        commit_batch(&*self.fs, &self.opts, &mut self.state, epoch, triples)
    }

    pub fn checkpoint(&mut self, epoch: u64, triples: &[Triple]) -> Result<(), PersistError> {
        checkpoint(&*self.fs, &self.opts, &mut self.state, epoch, triples)
    }

    /// True when a failed rollback froze writes (see [`DirState`]).
    pub fn is_wedged(&self) -> bool {
        self.state.wedged
    }
}
