//! The filesystem seam the durable store is written against.
//!
//! [`Vfs`] is the narrow, single-directory surface the commit protocol
//! needs — the same op vocabulary as `wdsparql_analyzer::fsim::SimFs`,
//! so the crash matrix the model checker enumerates replays verbatim
//! against the production code. [`RealFs`] backs it with `std::fs` for
//! production; [`FaultFs`] decorates any backend with injected
//! transient/permanent errors, crashes-after-op-N and torn half-page
//! writes, which is how the fault-injection suites drive the real
//! commit and recovery paths through every failure they must survive.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// How an injected (or classified) I/O failure behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Worth retrying: the next attempt may succeed.
    Transient,
    /// Retrying is pointless; the commit must roll back.
    Permanent,
    /// The process (simulated) died mid-operation; every later op fails.
    Crashed,
}

/// A failed [`Vfs`] operation, carrying how it failed and on what.
#[derive(Debug, Clone)]
pub struct VfsError {
    pub kind: FaultKind,
    /// `"op name"` description, e.g. `"rename seg-3.tmp -> seg-3"`.
    pub op: String,
}

impl VfsError {
    pub fn new(kind: FaultKind, op: impl Into<String>) -> VfsError {
        VfsError {
            kind,
            op: op.into(),
        }
    }

    pub fn is_transient(&self) -> bool {
        self.kind == FaultKind::Transient
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::Crashed => "crashed",
        };
        write!(f, "{kind} i/o failure during {}", self.op)
    }
}

impl std::error::Error for VfsError {}

pub type VfsResult<T> = Result<T, VfsError>;

/// The single-directory filesystem surface of the commit protocol.
///
/// Names are flat (no subdirectories); `rename` within the directory is
/// atomic; `dir_sync` makes completed namespace operations (`create`,
/// `rename`, `remove`) durable, in order. This is exactly the
/// durability model `fsim::SimFs` simulates.
pub trait Vfs {
    /// Creates (or truncates) `name` as an empty file.
    fn create(&self, name: &str) -> VfsResult<()>;
    /// Appends `data` to `name`.
    fn append(&self, name: &str, data: &[u8]) -> VfsResult<()>;
    /// Writes `data` at `offset`, extending the file if needed.
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> VfsResult<()>;
    /// Truncates `name` to `len` bytes.
    fn truncate(&self, name: &str, len: u64) -> VfsResult<()>;
    /// Makes `name`'s contents durable.
    fn fsync(&self, name: &str) -> VfsResult<()>;
    /// Atomically renames `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &str, to: &str) -> VfsResult<()>;
    /// Removes `name`.
    fn remove(&self, name: &str) -> VfsResult<()>;
    /// Makes completed namespace operations durable.
    fn dir_sync(&self) -> VfsResult<()>;
    /// Reads the whole file, `None` if it does not exist.
    fn read(&self, name: &str) -> VfsResult<Option<Vec<u8>>>;
    /// Reads up to `len` bytes at `offset`, `None` if the file does not
    /// exist. Short reads past end-of-file are not errors.
    fn read_at(&self, name: &str, offset: u64, len: usize) -> VfsResult<Option<Vec<u8>>> {
        Ok(self.read(name)?.map(|bytes| {
            let start = (offset as usize).min(bytes.len());
            let end = start.saturating_add(len).min(bytes.len());
            bytes[start..end].to_vec()
        }))
    }
    /// Lists the files in the directory, sorted by name.
    fn list(&self) -> VfsResult<Vec<String>>;
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// Production [`Vfs`]: one real directory via `std::fs`.
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Opens (creating if absent) `root` as the store directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RealFs> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(RealFs { root })
    }

    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Maps an `io::Error` onto the retry taxonomy: interrupted/busy
    /// conditions are worth another attempt, everything else is final.
    fn classify(e: &io::Error) -> FaultKind {
        match e.kind() {
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                FaultKind::Transient
            }
            _ => FaultKind::Permanent,
        }
    }

    fn wrap<T>(res: io::Result<T>, op: impl FnOnce() -> String) -> VfsResult<T> {
        res.map_err(|e| VfsError::new(Self::classify(&e), format!("{}: {e}", op())))
    }
}

impl Vfs for RealFs {
    fn create(&self, name: &str) -> VfsResult<()> {
        Self::wrap(File::create(self.path(name)).map(|_| ()), || {
            format!("create {name}")
        })
    }

    fn append(&self, name: &str, data: &[u8]) -> VfsResult<()> {
        let op = || format!("append {name}");
        let mut f = Self::wrap(
            OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.path(name)),
            op,
        )?;
        Self::wrap(f.write_all(data), op)
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> VfsResult<()> {
        let op = || format!("write_at {name}@{offset}");
        let mut f = Self::wrap(
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(self.path(name)),
            op,
        )?;
        Self::wrap(f.seek(SeekFrom::Start(offset)).map(|_| ()), op)?;
        Self::wrap(f.write_all(data), op)
    }

    fn truncate(&self, name: &str, len: u64) -> VfsResult<()> {
        let op = || format!("truncate {name} to {len}");
        let f = Self::wrap(OpenOptions::new().write(true).open(self.path(name)), op)?;
        Self::wrap(f.set_len(len), op)
    }

    fn fsync(&self, name: &str) -> VfsResult<()> {
        let op = || format!("fsync {name}");
        let f = Self::wrap(File::open(self.path(name)), op)?;
        Self::wrap(f.sync_all(), op)
    }

    fn rename(&self, from: &str, to: &str) -> VfsResult<()> {
        // analyzer-allow: io-ordering Vfs primitive: sync-before-publish is enforced one layer up, in the commit protocol that calls it
        Self::wrap(std::fs::rename(self.path(from), self.path(to)), || {
            format!("rename {from} -> {to}")
        })
    }

    fn remove(&self, name: &str) -> VfsResult<()> {
        Self::wrap(std::fs::remove_file(self.path(name)), || {
            format!("remove {name}")
        })
    }

    fn dir_sync(&self) -> VfsResult<()> {
        let op = || "dir_sync".to_string();
        let d = Self::wrap(File::open(&self.root), op)?;
        Self::wrap(d.sync_all(), op)
    }

    fn read(&self, name: &str) -> VfsResult<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(VfsError::new(
                Self::classify(&e),
                format!("read {name}: {e}"),
            )),
        }
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> VfsResult<Option<Vec<u8>>> {
        let op = || format!("read_at {name}@{offset}");
        let mut f = match File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(VfsError::new(Self::classify(&e), format!("{}: {e}", op())));
            }
        };
        Self::wrap(f.seek(SeekFrom::Start(offset)).map(|_| ()), op)?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(VfsError::new(Self::classify(&e), format!("{}: {e}", op())));
                }
            }
        }
        buf.truncate(filled);
        Ok(Some(buf))
    }

    fn list(&self) -> VfsResult<Vec<String>> {
        let op = || "list".to_string();
        let mut names = Vec::new();
        for entry in Self::wrap(std::fs::read_dir(&self.root), op)? {
            let entry = Self::wrap(entry, op)?;
            let is_file = Self::wrap(entry.file_type(), op)?.is_file();
            if is_file {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

/// A fault to arm at a specific operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The op fails once with a retryable error and has no effect.
    Transient,
    /// The op fails finally and has no effect.
    Permanent,
    /// The op fails and every op after it fails too.
    Crash,
    /// A write op persists only the first half of its payload, then the
    /// process crashes. Non-write ops degrade to [`Fault::Crash`].
    TornWrite,
}

struct FaultState {
    next_op: usize,
    /// Faults armed at exact op indexes; consumed when they fire.
    plan: BTreeMap<usize, Fault>,
    /// Every op at index >= this crashes.
    crash_from: Option<usize>,
    crashed: bool,
}

/// Decorates any [`Vfs`] with scripted failures.
///
/// Operations are numbered in call order (all ten verbs count), the
/// same accounting `fsim::SimFs` uses, so a crash point found by the
/// model checker can be replayed here by index.
pub struct FaultFs<V> {
    inner: V,
    state: Mutex<FaultState>,
}

impl<V: Vfs> FaultFs<V> {
    pub fn new(inner: V) -> FaultFs<V> {
        FaultFs {
            inner,
            state: Mutex::new(FaultState {
                next_op: 0,
                plan: BTreeMap::new(),
                crash_from: None,
                crashed: false,
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, FaultState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Arms `fault` to fire at operation index `op` (0-based, counted
    /// from construction or the last [`reset`](FaultFs::reset)).
    pub fn inject(&self, op: usize, fault: Fault) {
        self.locked().plan.insert(op, fault);
    }

    /// Every operation with index >= `op` fails as crashed.
    pub fn crash_from(&self, op: usize) {
        self.locked().crash_from = Some(op);
    }

    /// Operations performed so far (failed ones included).
    pub fn op_count(&self) -> usize {
        self.locked().next_op
    }

    /// True once a crash fault has fired.
    pub fn has_crashed(&self) -> bool {
        self.locked().crashed
    }

    /// Clears all armed faults, the crash flag and the op counter.
    pub fn reset(&self) {
        let mut st = self.locked();
        st.plan.clear();
        st.crash_from = None;
        st.crashed = false;
        st.next_op = 0;
    }

    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Accounts one op and returns the fault armed for it, if any.
    fn gate(&self, op: &str) -> Result<Option<Fault>, VfsError> {
        let mut st = self.locked();
        if st.crashed {
            return Err(VfsError::new(FaultKind::Crashed, op.to_string()));
        }
        let idx = st.next_op;
        st.next_op += 1;
        if st.crash_from.is_some_and(|from| idx >= from) {
            st.crashed = true;
            return Err(VfsError::new(FaultKind::Crashed, op.to_string()));
        }
        match st.plan.remove(&idx) {
            None => Ok(None),
            Some(Fault::Transient) => Err(VfsError::new(FaultKind::Transient, op.to_string())),
            Some(Fault::Permanent) => Err(VfsError::new(FaultKind::Permanent, op.to_string())),
            Some(Fault::Crash) => {
                st.crashed = true;
                Err(VfsError::new(FaultKind::Crashed, op.to_string()))
            }
            Some(Fault::TornWrite) => Ok(Some(Fault::TornWrite)),
        }
    }

    /// A non-write op hit by [`Fault::TornWrite`] just crashes.
    fn torn_as_crash(&self, op: &str) -> VfsError {
        self.locked().crashed = true;
        VfsError::new(FaultKind::Crashed, op.to_string())
    }
}

impl<V: Vfs> Vfs for FaultFs<V> {
    fn create(&self, name: &str) -> VfsResult<()> {
        match self.gate("create")? {
            None => self.inner.create(name),
            Some(_) => Err(self.torn_as_crash("create")),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> VfsResult<()> {
        match self.gate("append")? {
            None => self.inner.append(name, data),
            Some(Fault::TornWrite) => {
                // Half the payload lands, then the lights go out.
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                Err(self.torn_as_crash("append"))
            }
            Some(_) => Err(self.torn_as_crash("append")),
        }
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> VfsResult<()> {
        match self.gate("write_at")? {
            None => self.inner.write_at(name, offset, data),
            Some(Fault::TornWrite) => {
                let _ = self.inner.write_at(name, offset, &data[..data.len() / 2]);
                Err(self.torn_as_crash("write_at"))
            }
            Some(_) => Err(self.torn_as_crash("write_at")),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> VfsResult<()> {
        match self.gate("truncate")? {
            None => self.inner.truncate(name, len),
            Some(_) => Err(self.torn_as_crash("truncate")),
        }
    }

    fn fsync(&self, name: &str) -> VfsResult<()> {
        match self.gate("fsync")? {
            None => self.inner.fsync(name),
            Some(_) => Err(self.torn_as_crash("fsync")),
        }
    }

    fn rename(&self, from: &str, to: &str) -> VfsResult<()> {
        match self.gate("rename")? {
            // analyzer-allow: io-ordering Vfs primitive: the commit protocol above this layer syncs before it publishes
            None => self.inner.rename(from, to),
            Some(_) => Err(self.torn_as_crash("rename")),
        }
    }

    fn remove(&self, name: &str) -> VfsResult<()> {
        match self.gate("remove")? {
            None => self.inner.remove(name),
            Some(_) => Err(self.torn_as_crash("remove")),
        }
    }

    fn dir_sync(&self) -> VfsResult<()> {
        match self.gate("dir_sync")? {
            None => self.inner.dir_sync(),
            Some(_) => Err(self.torn_as_crash("dir_sync")),
        }
    }

    fn read(&self, name: &str) -> VfsResult<Option<Vec<u8>>> {
        match self.gate("read")? {
            None => self.inner.read(name),
            Some(_) => Err(self.torn_as_crash("read")),
        }
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> VfsResult<Option<Vec<u8>>> {
        match self.gate("read_at")? {
            None => self.inner.read_at(name, offset, len),
            Some(_) => Err(self.torn_as_crash("read_at")),
        }
    }

    fn list(&self) -> VfsResult<Vec<String>> {
        match self.gate("list")? {
            None => self.inner.list(),
            Some(_) => Err(self.torn_as_crash("list")),
        }
    }
}
