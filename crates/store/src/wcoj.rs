//! Worst-case-optimal multiway joins (leapfrog triejoin) over the
//! sorted permutations.
//!
//! The pairwise pipeline ([`crate::TripleStore::query`]'s semi-join +
//! bind joins) materialises an intermediate result per join step; on
//! cyclic cores — triangles, k-cliques — those intermediates blow up
//! exactly as the AGM bound predicts, even though the store already pays
//! for four sorted permutations that could answer the query without
//! them. This module closes that gap with a variable-at-a-time leapfrog
//! join (Veldhuizen's LFTJ):
//!
//! * a global **variable order** is chosen from the same selectivity /
//!   connectivity statistics the pairwise planner uses
//!   ([`wco_variable_order`]);
//! * every pattern opens one **seekable trie**
//!   ([`wdsparql_rdf::TrieCursor`]) over its matches, with one level per
//!   variable in that order. On [`EncodedGraph`] the trie is a
//!   **zero-copy view** over the permutation whose prefix matches the
//!   pattern's bound positions and variable order — the base range
//!   resolved through the offset table plus one narrowed run per delta
//!   segment, dictionary ids as keys ([`encoded_trie`]). When no
//!   permutation fits (two of the six rotations are not stored, and
//!   repeated variables constrain rows), the pattern falls back to a
//!   materialised projection — still linear in *that pattern's* matches,
//!   never in a join intermediate. Other backends (the scatter-gather
//!   [`crate::ShardedSnapshot`], [`wdsparql_rdf::RdfGraph`]) serve the
//!   default materialised trie in [`Iri`] key space;
//! * at each variable the participating tries are intersected by
//!   **leapfrog search**: repeatedly gallop (`seek`) the laggards to the
//!   current maximum until all agree, bind, `open`, recurse
//!   ([`eval_bgp_wco`]).
//!
//! [`resolve_strategy`] is the planner hook: under
//! [`JoinStrategy::Auto`] a query core routes to the WCOJ when its
//! hypergraph is cyclic (GYO reduction, [`bgp_is_cyclic`]) or when the
//! uniform-containment estimate of the pairwise plan's largest
//! intermediate exceeds the join's input size by a wide margin; acyclic
//! chains keep the pairwise pipeline, whose semi-joins are hard to beat
//! there.

use crate::dict::{Dictionary, TermId};
use crate::encoded::EncodedGraph;
use crate::segment::{Perm, Row};
use crate::service::{eval_bgp, plan_order};
use std::collections::BTreeSet;
use std::fmt;
use wdsparql_rdf::{
    gallop, ExecError, Iri, Mapping, MaterializedTrie, QueryBudget, SolutionStream, Term,
    TrieCursor, TrieOpStats, TripleIndex, TriplePattern, Variable,
};

/// Execution counters of one leapfrog level (one variable of the global
/// order), reported by [`eval_bgp_wco_profiled`]:
///
/// * `rows` — successful alignments, i.e. keys bound at this level (the
///   level's output cardinality across the whole run);
/// * `seeks` — `seek` calls the leapfrog search issued here to drag
///   laggard cursors to the running maximum;
/// * `gallop_steps` — galloping work those seeks reported through
///   [`TrieCursor::op_stats`] (best-effort: backends that do not count
///   contribute zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WcoLevelStats {
    pub rows: u64,
    pub seeks: u64,
    pub gallop_steps: u64,
}

/// How a service evaluates multi-pattern (BGP) queries. The knob on
/// [`crate::TripleStore`], [`crate::ShardedStore`] and the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Always the pairwise pipeline: most-selective-first ordering, a
    /// sorted semi-join on the first shared variable, bind joins for the
    /// rest.
    Pairwise,
    /// Always the worst-case-optimal leapfrog join.
    Wco,
    /// Per query core: WCOJ when the core is cyclic (GYO) or the
    /// estimated pairwise intermediate blows past the input size;
    /// pairwise otherwise.
    #[default]
    Auto,
}

impl JoinStrategy {
    /// Parses the CLI spelling (`pairwise` / `wco` / `auto`).
    pub fn parse(s: &str) -> Option<JoinStrategy> {
        match s {
            "pairwise" => Some(JoinStrategy::Pairwise),
            "wco" => Some(JoinStrategy::Wco),
            "auto" => Some(JoinStrategy::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::Pairwise => "pairwise",
            JoinStrategy::Wco => "wco",
            JoinStrategy::Auto => "auto",
        })
    }
}

/// Is the BGP's hypergraph (one hyperedge per pattern, over its
/// variables) cyclic? Decided by the GYO reduction: repeatedly drop
/// variables occurring in a single hyperedge and hyperedges contained in
/// another; the query is α-acyclic iff everything reduces away. A
/// triangle sticks (every variable in two edges, no containment); a star
/// `(?x p ?y1)(?x p ?y2)(?x p ?y3)` reduces (each `?yi` is private) even
/// though its patterns pairwise share `?x`.
pub fn bgp_is_cyclic(patterns: &[TriplePattern]) -> bool {
    let mut edges: Vec<BTreeSet<Variable>> = patterns
        .iter()
        .map(|p| p.vars())
        .filter(|vs| !vs.is_empty())
        .collect();
    // analyzer-allow: budget-checkpoint planning-time GYO reduction,
    // bounded by the query size (each round removes a variable or an
    // edge) — never data-dependent.
    loop {
        let mut changed = false;
        // Ear variables: occurring in exactly one remaining hyperedge.
        let mut counts: Vec<(Variable, usize)> = Vec::new();
        for e in &edges {
            for &v in e {
                match counts.iter_mut().find(|(u, _)| *u == v) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((v, 1)),
                }
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| counts.iter().any(|&(u, n)| u == *v && n > 1));
            changed |= e.len() != before;
        }
        // Contained hyperedges (empty ones are contained in anything).
        let mut keep = vec![true; edges.len()];
        for i in 0..edges.len() {
            if edges[i].is_empty() {
                keep[i] = false;
                continue;
            }
            for j in 0..edges.len() {
                if i != j
                    && keep[j]
                    && edges[i].is_subset(&edges[j])
                    && (edges[i] != edges[j] || i > j)
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut it = keep.iter();
            edges.retain(|_| *it.next().expect("keep mask covers edges"));
            changed = true;
        }
        if !changed {
            return !edges.is_empty();
        }
    }
}

/// Resolves [`JoinStrategy::Auto`] for one query core against one
/// snapshot (`Pairwise` and `Wco` pass through). Auto picks the WCOJ
/// when the core is cyclic, or when the uniform-containment estimate of
/// the pairwise plan's largest intermediate (`|A ⋈ B| ≈ |A|·|B| / |G|`
/// on a shared variable, an outright product otherwise) exceeds four
/// times the candidate input rows — the skew-blind but cheap signal for
/// unavoidable Cartesian blow-ups. Callers that already planned the
/// pairwise order use [`resolve_with_order`] so each query plans once.
pub fn resolve_strategy(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    strategy: JoinStrategy,
) -> JoinStrategy {
    match strategy {
        JoinStrategy::Auto => resolve_with_order(ix, patterns, strategy, &plan_order(ix, patterns)),
        fixed => fixed,
    }
}

/// As [`resolve_strategy`] with the pairwise plan already in hand — the
/// service entry point (`query_with_plan` computes the order anyway, and
/// re-deriving it here would undo the plans-exactly-once guarantee).
pub(crate) fn resolve_with_order(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    strategy: JoinStrategy,
    order: &[usize],
) -> JoinStrategy {
    match strategy {
        JoinStrategy::Auto => {
            if bgp_is_cyclic(patterns) || pairwise_blowup_predicted(ix, patterns, order) {
                JoinStrategy::Wco
            } else {
                JoinStrategy::Pairwise
            }
        }
        fixed => fixed,
    }
}

/// The uniform-containment walk behind [`resolve_strategy`]: follow the
/// pairwise plan, estimating each intermediate, and flag the plan when
/// the largest estimate dwarfs the inputs.
fn pairwise_blowup_predicted(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    order: &[usize],
) -> bool {
    if patterns.len() < 2 {
        return false;
    }
    let counts: Vec<usize> = patterns.iter().map(|p| ix.candidate_count(p)).collect();
    let inputs: usize = counts.iter().sum();
    let n = ix.len().max(1);
    let mut bound = patterns[order[0]].vars();
    let mut cur = counts[order[0]].max(1);
    let mut worst = cur;
    for &i in &order[1..] {
        let vars = patterns[i].vars();
        let shares = !bound.is_disjoint(&vars);
        cur = if shares {
            (cur.saturating_mul(counts[i].max(1)) / n).max(1)
        } else {
            cur.saturating_mul(counts[i].max(1))
        };
        worst = worst.max(cur);
        bound.extend(vars);
    }
    worst > inputs.saturating_mul(4).max(1024)
}

/// Evaluates a BGP with the given strategy knob: resolves `Auto` on this
/// snapshot, then runs either the pairwise pipeline or
/// [`eval_bgp_wco`]. Both produce the same solution *set* (the order may
/// differ). The pairwise order is planned exactly once — resolution and
/// execution share it.
pub fn eval_bgp_with_strategy(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    strategy: JoinStrategy,
) -> Vec<Mapping> {
    match strategy {
        JoinStrategy::Wco => eval_bgp_wco(ix, patterns),
        JoinStrategy::Pairwise => eval_bgp(ix, patterns),
        JoinStrategy::Auto => {
            let order = plan_order(ix, patterns);
            match resolve_with_order(ix, patterns, strategy, &order) {
                JoinStrategy::Wco => eval_bgp_wco(ix, patterns),
                _ => crate::service::eval_bgp_planned(ix, patterns, &order),
            }
        }
    }
}

/// The global variable order of the leapfrog join: seed with the
/// variable whose cheapest covering pattern is most selective, then
/// repeatedly append the most selective variable sharing a pattern with
/// what is already ordered (connectivity keeps every trie's prefix
/// anchored before its deeper levels are intersected). Deterministic.
pub fn wco_variable_order(ix: &dyn TripleIndex, patterns: &[TriplePattern]) -> Vec<Variable> {
    let mut vars: Vec<Variable> = Vec::new();
    for pat in patterns {
        for v in pat.var_occurrences() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let counts: Vec<usize> = patterns.iter().map(|p| ix.candidate_count(p)).collect();
    let est = |v: Variable| -> usize {
        patterns
            .iter()
            .zip(&counts)
            .filter(|(p, _)| p.vars().contains(&v))
            .map(|(_, &c)| c)
            .min()
            .unwrap_or(usize::MAX)
    };
    let mut order: Vec<Variable> = Vec::with_capacity(vars.len());
    // analyzer-allow: budget-checkpoint planning-time ordering, bounded
    // by the query's variable count — never data-dependent.
    while order.len() < vars.len() {
        let connected = |v: Variable| {
            patterns.iter().any(|p| {
                let vs = p.vars();
                vs.contains(&v) && order.iter().any(|u| vs.contains(u))
            })
        };
        let next = vars
            .iter()
            .filter(|v| !order.contains(v))
            .min_by_key(|&&v| {
                let tied = order.is_empty() || connected(v);
                // Disconnected variables only when nothing connected
                // remains (the deferred-product rule of the pairwise
                // planner, in variable space).
                (usize::from(!tied), est(v), v)
            })
            .copied()
            .expect("loop runs only while variables remain");
        order.push(next);
    }
    order
}

/// Worst-case-optimal evaluation of the conjunction of `patterns`: one
/// seekable trie per pattern ([`TripleIndex::trie_cursor`]), leapfrog
/// intersection variable by variable in [`wco_variable_order`]. Returns
/// the same solution set as the pairwise pipeline — every distinct
/// mapping over `vars(patterns)` whose image lies in the graph — without
/// materialising any pairwise intermediate.
pub fn eval_bgp_wco(ix: &dyn TripleIndex, patterns: &[TriplePattern]) -> Vec<Mapping> {
    eval_wco_inner(ix, patterns, None)
}

/// As [`eval_bgp_wco`], additionally reporting per-level execution
/// counters — one `(variable, stats)` pair per variable of the global
/// order, in that order. Queries that short-circuit before the leapfrog
/// runs (a failed ground gate, an all-ground BGP) report no levels.
pub fn eval_bgp_wco_profiled(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
) -> (Vec<Mapping>, Vec<(Variable, WcoLevelStats)>) {
    let mut levels = Vec::new();
    let sols = eval_wco_inner(ix, patterns, Some(&mut levels));
    (sols, levels)
}

fn eval_wco_inner(
    ix: &dyn TripleIndex,
    patterns: &[TriplePattern],
    profile: Option<&mut Vec<(Variable, WcoLevelStats)>>,
) -> Vec<Mapping> {
    let budget = QueryBudget::unlimited();
    let mut stream = WcoStream::new(ix, patterns, &budget, profile.is_some());
    let out = stream
        .collect_limit(None)
        .expect("an unlimited budget never fails a checkpoint");
    if let Some(p) = profile {
        *p = stream.level_stats();
    }
    out
}

/// Where a [`WcoStream`] resumes inside one level of the leapfrog
/// intersection.
enum WcoMode {
    /// Entering the level: open every participating cursor (descending
    /// from its aligned parent key, or from its virtual root if this is
    /// its first variable — which is what rewinds it each time an outer
    /// variable advances).
    Open,
    /// Run the leapfrog search at the current level.
    Align,
    /// A key at this level was consumed (emitted, or its subtree
    /// exhausted): move one cursor past it — the next alignment drags
    /// the rest along.
    Advance,
}

/// The leapfrog triejoin as a resumable explicit-stack cursor: the
/// recursion of the classic LFTJ flattened into (`level`, [`WcoMode`])
/// so each [`SolutionStream::next`] pull runs the intersection exactly
/// until the next full binding is found, then suspends. The classic
/// bracketing survives: entering a level opens its cursors, leaving
/// restores them to their parent state ([`WcoMode::Open`] / the
/// exhausted-alignment arm).
///
/// Checkpoints: the per-level loop and the leapfrog search both call
/// [`QueryBudget::check`] every iteration, so a deadline or
/// cancellation is noticed within one seek/gallop step.
pub struct WcoStream<'a> {
    cursors: Vec<Box<dyn TrieCursor + 'a>>,
    by_var: Vec<Vec<usize>>,
    order: Vec<Variable>,
    binding: Vec<Option<Iri>>,
    level: usize,
    mode: WcoMode,
    done: bool,
    /// The single empty-mapping solution of an all-ground BGP whose
    /// gates all passed (no cursors to run in that case).
    pending: Option<Mapping>,
    stats: Option<Vec<WcoLevelStats>>,
    budget: &'a QueryBudget,
}

impl<'a> WcoStream<'a> {
    /// Opens the leapfrog join of `patterns` over `ix` under `budget`.
    /// With `profiled`, per-level counters accumulate for
    /// [`WcoStream::level_stats`].
    pub fn new(
        ix: &'a dyn TripleIndex,
        patterns: &[TriplePattern],
        budget: &'a QueryBudget,
        profiled: bool,
    ) -> WcoStream<'a> {
        // Ground patterns join nothing; they are containment gates.
        for pat in patterns {
            if pat.vars().is_empty() && ix.match_pattern(pat).is_empty() {
                return WcoStream::closed(budget, None);
            }
        }
        let var_pats: Vec<&TriplePattern> =
            patterns.iter().filter(|p| !p.vars().is_empty()).collect();
        if var_pats.is_empty() {
            return WcoStream::closed(budget, Some(Mapping::new()));
        }
        let order = wco_variable_order(ix, patterns);
        let index_of = |v: Variable| -> usize {
            order
                .iter()
                .position(|&u| u == v)
                .expect("the variable order covers every pattern variable")
        };
        let mut cursors: Vec<Box<dyn TrieCursor + 'a>> = Vec::with_capacity(var_pats.len());
        let mut by_var: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
        for (c, pat) in var_pats.iter().enumerate() {
            let mut vs: Vec<Variable> = pat.vars().into_iter().collect();
            vs.sort_by_key(|&v| index_of(v));
            for &v in &vs {
                by_var[index_of(v)].push(c);
            }
            cursors.push(ix.trie_cursor(pat, &vs));
        }
        let binding = vec![None; order.len()];
        let stats = profiled.then(|| vec![WcoLevelStats::default(); order.len()]);
        WcoStream {
            cursors,
            by_var,
            order,
            binding,
            level: 0,
            mode: WcoMode::Open,
            done: false,
            pending: None,
            stats,
            budget,
        }
    }

    /// A stream that yields `pending` (if any) and then exhausts — the
    /// short-circuit shapes that never run the leapfrog.
    fn closed(budget: &'a QueryBudget, pending: Option<Mapping>) -> WcoStream<'a> {
        WcoStream {
            cursors: Vec::new(),
            by_var: Vec::new(),
            order: Vec::new(),
            binding: Vec::new(),
            level: 0,
            mode: WcoMode::Open,
            done: pending.is_none(),
            pending,
            stats: None,
            budget,
        }
    }

    /// Per-level execution counters, one `(variable, stats)` pair per
    /// variable of the global order (empty unless built `profiled`, or
    /// when the query short-circuited before the leapfrog ran).
    pub fn level_stats(&self) -> Vec<(Variable, WcoLevelStats)> {
        match &self.stats {
            Some(s) => self.order.iter().copied().zip(s.iter().copied()).collect(),
            None => Vec::new(),
        }
    }

    fn emit(&self) -> Mapping {
        Mapping::from_pairs(
            self.order
                .iter()
                .zip(self.binding.iter())
                .map(|(&v, b)| (v, b.expect("every level bound before emitting"))),
        )
    }

    /// Resumes the flattened recursion until the next solution, the end
    /// of the intersection, or a failed checkpoint.
    fn pull(&mut self) -> Result<Option<Mapping>, ExecError> {
        if self.cursors.is_empty() {
            self.done = true;
            return Ok(self.pending.take());
        }
        loop {
            self.budget.check()?;
            match self.mode {
                WcoMode::Open => {
                    let active = &self.by_var[self.level];
                    debug_assert!(!active.is_empty(), "every ordered variable has a pattern");
                    for &c in active {
                        self.cursors[c].open();
                    }
                    self.mode = WcoMode::Align;
                }
                WcoMode::Align => {
                    let active = &self.by_var[self.level];
                    // Gallop work is attributed to the level whose
                    // alignment drove it: delta of the active cursors'
                    // cumulative counters around the search (a cursor
                    // participating in several levels reports one
                    // total; the deltas split it correctly).
                    let before = self
                        .stats
                        .as_ref()
                        .map(|_| gallop_total(&self.cursors, active))
                        .unwrap_or_default();
                    let (key, seeks) = leapfrog_align(&mut self.cursors, active, self.budget)?;
                    let active = &self.by_var[self.level];
                    if let Some(s) = self.stats.as_deref_mut() {
                        s[self.level].seeks += seeks;
                        s[self.level].gallop_steps +=
                            gallop_total(&self.cursors, active).saturating_sub(before);
                        if key.is_some() {
                            s[self.level].rows += 1;
                        }
                    }
                    match key {
                        None => {
                            // This level is exhausted: restore its
                            // cursors to their parent state and resume
                            // one level up (or finish at the root).
                            self.binding[self.level] = None;
                            for &c in &self.by_var[self.level] {
                                self.cursors[c].up();
                            }
                            if self.level == 0 {
                                self.done = true;
                                return Ok(None);
                            }
                            self.level -= 1;
                            self.mode = WcoMode::Advance;
                        }
                        Some(_) => {
                            let probe = self.by_var[self.level][0];
                            self.binding[self.level] = Some(self.cursors[probe].value());
                            if self.level + 1 == self.order.len() {
                                // A full binding: emit it and resume by
                                // advancing past this deepest key.
                                self.mode = WcoMode::Advance;
                                return Ok(Some(self.emit()));
                            }
                            self.level += 1;
                            self.mode = WcoMode::Open;
                        }
                    }
                }
                WcoMode::Advance => {
                    let probe = self.by_var[self.level][0];
                    self.cursors[probe].advance();
                    self.mode = WcoMode::Align;
                }
            }
        }
    }
}

impl SolutionStream for WcoStream<'_> {
    fn next(&mut self) -> Result<Option<Mapping>, ExecError> {
        if self.done {
            return Ok(None);
        }
        match self.pull() {
            Ok(v) => Ok(v),
            Err(e) => {
                // Budget errors are sticky: a failed stream stays
                // failed instead of resuming mid-intersection.
                self.done = true;
                Err(e)
            }
        }
    }
}

/// Sum of the active cursors' reported galloping steps (profiling only).
fn gallop_total(cursors: &[Box<dyn TrieCursor + '_>], active: &[usize]) -> u64 {
    active
        .iter()
        .map(|&c| cursors[c].op_stats().gallop_steps)
        .sum()
}

/// The leapfrog search: gallop the laggards to the running maximum until
/// every active cursor sits on the same key (`Some`), or one exhausts
/// (`None`). Also returns the number of `seek` calls issued. Each
/// galloping round checkpoints `budget`, so a deadline interrupts even
/// a pathological intersection within one seek.
fn leapfrog_align(
    cursors: &mut [Box<dyn TrieCursor + '_>],
    active: &[usize],
    budget: &QueryBudget,
) -> Result<(Option<u64>, u64), ExecError> {
    let mut seeks = 0u64;
    loop {
        budget.check()?;
        let mut max: Option<u64> = None;
        let mut aligned = true;
        for &c in active {
            let Some(k) = cursors[c].key() else {
                return Ok((None, seeks));
            };
            match max {
                None => max = Some(k),
                Some(m) if k != m => {
                    aligned = false;
                    max = Some(m.max(k));
                }
                Some(_) => {}
            }
        }
        let m = max.expect("active is non-empty");
        if aligned {
            return Ok((Some(m), seeks));
        }
        for &c in active {
            if cursors[c].key() != Some(m) {
                cursors[c].seek(m);
                seeks += 1;
            }
        }
    }
}

/// Zero-copy trie over an [`EncodedGraph`] permutation: the narrowed
/// base range plus one narrowed run per delta segment, all sorted under
/// the same rotation. Each level is one row position past the bound
/// prefix; the merged view's key is the minimum over the run heads, and
/// `seek`/`advance`/`open` gallop every run independently. Starts at the
/// virtual root (see [`TrieCursor`]); re-opening level 0 restores the
/// full narrowed runs — rewinding costs one `Vec` clone of slice
/// references, never a row copy.
struct SliceTrie<'a> {
    depth: usize,
    /// Row position of level 0 (the number of bound constants).
    first_pos: usize,
    /// The full narrowed runs — what opening level 0 restores.
    level0: Vec<&'a [Row]>,
    /// Active runs at the current level — never empty slices; meaningful
    /// only below the root.
    runs: Vec<&'a [Row]>,
    /// Saved parent runs, one per open level (so the current level is
    /// `stack.len() - 1`; an empty stack is the virtual root).
    stack: Vec<Vec<&'a [Row]>>,
    /// Retired run vectors, recycled by `open` — the leapfrog opens a
    /// sub-trie per binding step, and reusing the buffers keeps that
    /// allocation-free after the first few steps.
    spare: Vec<Vec<&'a [Row]>>,
    stats: TrieOpStats,
    dict: &'a Dictionary,
}

impl<'a> SliceTrie<'a> {
    fn new(
        depth: usize,
        first_pos: usize,
        level0: Vec<&'a [Row]>,
        dict: &'a Dictionary,
    ) -> SliceTrie<'a> {
        SliceTrie {
            depth,
            first_pos,
            level0,
            runs: Vec::new(),
            stack: Vec::new(),
            spare: Vec::new(),
            stats: TrieOpStats::default(),
            dict,
        }
    }

    /// Row position of the current level, `None` at the virtual root.
    fn pos(&self) -> Option<usize> {
        Some(self.first_pos + self.stack.len().checked_sub(1)?)
    }
}

impl TrieCursor for SliceTrie<'_> {
    fn depth(&self) -> usize {
        self.depth
    }

    fn key(&self) -> Option<u64> {
        let pos = self.pos()?;
        self.runs.iter().map(|r| u64::from(r[0][pos])).min()
    }

    fn value(&self) -> Iri {
        let key = self.key().expect("value() requires a current key");
        self.dict.decode(key as TermId)
    }

    fn advance(&mut self) {
        let Some(pos) = self.pos() else { return };
        let Some(k) = self.key() else { return };
        let k = k as TermId;
        for r in &mut self.runs {
            if r[0][pos] == k {
                *r = &r[gallop(r, |row| row[pos] <= k)..];
            }
        }
        self.runs.retain(|r| !r.is_empty());
    }

    fn seek(&mut self, target: u64) {
        let Some(pos) = self.pos() else { return };
        self.stats.seeks += 1;
        let Ok(t) = TermId::try_from(target) else {
            // Beyond any dictionary id: exhausted.
            self.runs.clear();
            return;
        };
        for r in &mut self.runs {
            if r[0][pos] < t {
                let moved = gallop(r, |row| row[pos] < t);
                self.stats.gallop_steps += TrieOpStats::gallop_cost(moved);
                *r = &r[moved..];
            }
        }
        self.runs.retain(|r| !r.is_empty());
    }

    fn open(&mut self) {
        let mut sub = self.spare.pop().unwrap_or_default();
        sub.clear();
        match self.pos() {
            // From the root: level 0 spans the full narrowed runs.
            None => sub.extend_from_slice(&self.level0),
            Some(pos) => {
                let k = self.key().expect("open() requires a current key") as TermId;
                sub.extend(
                    self.runs
                        .iter()
                        .filter(|r| r[0][pos] == k)
                        .map(|r| &r[..gallop(r, |row| row[pos] <= k)]),
                );
            }
        }
        self.stack.push(std::mem::replace(&mut self.runs, sub));
    }

    fn up(&mut self) {
        let parent = self.stack.pop().expect("up() without a matching open()");
        self.spare.push(std::mem::replace(&mut self.runs, parent));
    }

    fn op_stats(&self) -> TrieOpStats {
        self.stats
    }
}

/// Builds the WCOJ trie of one pattern over an [`EncodedGraph`] — the
/// backend override behind [`TripleIndex::trie_cursor`]. Zero-copy when
/// some stored permutation's layout puts the bound positions in a prefix
/// and the variables in exactly the requested order (PSO qualifies only
/// on a fully compacted graph — delta segments carry no PSO run);
/// otherwise the match set is materialised and projected, in dictionary
/// id space either way.
pub(crate) fn encoded_trie<'a>(
    g: &'a EncodedGraph,
    pat: &TriplePattern,
    vars: &[Variable],
) -> Box<dyn TrieCursor + 'a> {
    let depth = vars.len();
    let positions = pat.positions();
    let Some(spo_ids) = g.resolve_ids(pat) else {
        // A bound term the dictionary has never seen: nothing matches.
        return Box::new(SliceTrie::new(depth, 0, Vec::new(), g.dictionary()));
    };
    let constants = spo_ids.iter().filter(|id| id.is_some()).count();
    // `depth + constants == 3` ⟺ no variable repeats: repeats constrain
    // rows beyond what any sorted run expresses, so they materialise.
    if depth + constants == 3 {
        'perm: for perm in [Perm::Spo, Perm::Osp, Perm::Pso, Perm::Pos] {
            if perm == Perm::Pso && g.segment_count() > 0 {
                continue;
            }
            let layout = perm.layout();
            for (comp, id) in spo_ids.iter().enumerate() {
                if id.is_some() && layout[comp] >= constants {
                    continue 'perm;
                }
            }
            for (i, &v) in vars.iter().enumerate() {
                let comp = positions
                    .iter()
                    .position(|&t| t == Term::Var(v))
                    .expect("projected variables occur in the pattern");
                if layout[comp] != constants + i {
                    continue 'perm;
                }
            }
            let runs = g.pattern_runs(perm, spo_ids);
            return Box::new(SliceTrie::new(
                depth,
                constants,
                runs.iter().collect(),
                g.dictionary(),
            ));
        }
    }
    // No permutation fits this (constants, variable order) layout —
    // materialise the pattern's matches projected onto `vars`. Linear in
    // the pattern's own match set, never in a join intermediate.
    let var_pos: Vec<usize> = vars
        .iter()
        .map(|&v| {
            positions
                .iter()
                .position(|&t| t == Term::Var(v))
                .expect("projected variables occur in the pattern")
        })
        .collect();
    let rows: Vec<[u64; 3]> = g
        .matching_rows(pat)
        .into_iter()
        .map(|row| {
            let mut out = [0u64; 3];
            for (i, &p) in var_pos.iter().enumerate() {
                out[i] = u64::from(row[p]);
            }
            out
        })
        .collect();
    let dict = g.dictionary();
    Box::new(MaterializedTrie::from_rows(rows, depth, move |k| {
        dict.decode(k as TermId)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Triple};

    fn sorted(mut sols: Vec<Mapping>) -> Vec<Mapping> {
        sols.sort();
        sols
    }

    fn ring_graph(n: usize) -> Vec<Triple> {
        // A directed n-ring over `p` plus chords, so triangles exist.
        let mut ts: Vec<Triple> = (0..n)
            .map(|i| Triple::from_strs(&format!("v{i}"), "p", &format!("v{}", (i + 1) % n)))
            .collect();
        for i in 0..n {
            ts.push(Triple::from_strs(
                &format!("v{i}"),
                "p",
                &format!("v{}", (i + 2) % n),
            ));
        }
        ts
    }

    fn triangle_bgp() -> [TriplePattern; 3] {
        [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("x"), iri("p"), var("z")),
        ]
    }

    #[test]
    fn gyo_classifies_cores() {
        let chain = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(var("z"), iri("p"), var("w")),
        ];
        assert!(!bgp_is_cyclic(&chain));
        // A star is acyclic even though its patterns pairwise share ?x.
        let star = [
            tp(var("x"), iri("p"), var("a")),
            tp(var("x"), iri("p"), var("b")),
            tp(var("x"), iri("p"), var("c")),
        ];
        assert!(!bgp_is_cyclic(&star));
        assert!(bgp_is_cyclic(&triangle_bgp()));
        // 4-clique: cyclic.
        let clique = [
            tp(var("a"), iri("p"), var("b")),
            tp(var("a"), iri("p"), var("c")),
            tp(var("a"), iri("p"), var("d")),
            tp(var("b"), iri("p"), var("c")),
            tp(var("b"), iri("p"), var("d")),
            tp(var("c"), iri("p"), var("d")),
        ];
        assert!(bgp_is_cyclic(&clique));
        // Triangle + pendant arm: still cyclic.
        let mut star_cycle = triangle_bgp().to_vec();
        star_cycle.push(tp(var("x"), iri("q"), var("w")));
        assert!(bgp_is_cyclic(&star_cycle));
        assert!(!bgp_is_cyclic(&[]));
        assert!(!bgp_is_cyclic(&[tp(iri("a"), iri("p"), iri("b"))]));
    }

    #[test]
    fn auto_routes_cyclic_cores_to_wco() {
        let g = EncodedGraph::from_triples(ring_graph(8));
        assert_eq!(
            resolve_strategy(&g, &triangle_bgp(), JoinStrategy::Auto),
            JoinStrategy::Wco
        );
        let chain = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
        ];
        assert_eq!(
            resolve_strategy(&g, &chain, JoinStrategy::Auto),
            JoinStrategy::Pairwise
        );
        // Fixed strategies pass through untouched.
        assert_eq!(
            resolve_strategy(&g, &chain, JoinStrategy::Wco),
            JoinStrategy::Wco
        );
        assert_eq!(
            resolve_strategy(&g, &triangle_bgp(), JoinStrategy::Pairwise),
            JoinStrategy::Pairwise
        );
    }

    #[test]
    fn auto_flags_cartesian_blowups() {
        // Two disconnected fans: the pairwise plan must take the
        // product, which the uniform estimate sees.
        let mut ts = Vec::new();
        for i in 0..64 {
            ts.push(Triple::from_strs(&format!("a{i}"), "p", &format!("b{i}")));
            ts.push(Triple::from_strs(&format!("c{i}"), "q", &format!("d{i}")));
        }
        let g = EncodedGraph::from_triples(ts);
        let disconnected = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("z"), iri("q"), var("w")),
        ];
        assert_eq!(
            resolve_strategy(&g, &disconnected, JoinStrategy::Auto),
            JoinStrategy::Wco
        );
    }

    #[test]
    fn variable_order_is_connected_and_total() {
        let g = EncodedGraph::from_triples(ring_graph(6));
        let pats = [
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("z")),
            tp(iri("v0"), iri("p"), var("x")),
        ];
        let order = wco_variable_order(&g, &pats);
        assert_eq!(order.len(), 3);
        // x is covered by the most selective pattern (one subject), so
        // it leads; y connects next, then z.
        assert_eq!(order[0], Variable::new("x"));
        for k in 1..order.len() {
            let prefix = &order[..k];
            assert!(
                pats.iter().any(|p| {
                    let vs = p.vars();
                    vs.contains(&order[k]) && prefix.iter().any(|u| vs.contains(u))
                }),
                "order must stay connected"
            );
        }
    }

    /// The WCOJ agrees with the pairwise pipeline on the triangle, with
    /// the graph compacted, all-delta, and split — exercising the
    /// zero-copy permutation tries over base + segments.
    #[test]
    fn triangle_matches_pairwise_across_layouts() {
        let ts = ring_graph(12);
        let compacted = EncodedGraph::from_triples(ts.iter().copied());
        let mut staged = EncodedGraph::with_compaction_policy(crate::CompactionPolicy::Manual);
        for chunk in ts.chunks(5) {
            staged.insert_batch(chunk.iter().copied()).unwrap();
        }
        let mut half = EncodedGraph::with_compaction_policy(crate::CompactionPolicy::Manual);
        half.insert_batch(ts[..ts.len() / 2].iter().copied())
            .unwrap();
        half.compact();
        half.insert_batch(ts[ts.len() / 2..].iter().copied())
            .unwrap();
        let pats = triangle_bgp();
        let want = sorted(eval_bgp(&compacted, &pats));
        assert!(!want.is_empty(), "the chorded ring has triangles");
        for (label, g) in [
            ("compacted", &compacted),
            ("staged", &staged),
            ("half", &half),
        ] {
            assert_eq!(sorted(eval_bgp_wco(g, &pats)), want, "{label}");
        }
        // And through the strategy knob.
        assert_eq!(
            sorted(eval_bgp_with_strategy(
                &compacted,
                &pats,
                JoinStrategy::Auto
            )),
            want
        );
    }

    /// Shapes that stress every trie flavour: bound constants, repeated
    /// variables (materialised fallback), ground gates, absent terms,
    /// missing-permutation variable orders.
    #[test]
    fn wco_handles_edge_shapes() {
        let mut ts = ring_graph(10);
        ts.push(Triple::from_strs("v0", "p", "v0")); // a loop
        let g = EncodedGraph::from_triples(ts);
        let r = g.to_rdf();
        let cases: Vec<Vec<TriplePattern>> = vec![
            // Repeated variable: loops only.
            vec![tp(var("x"), iri("p"), var("x"))],
            // Repeated variable joined with an edge.
            vec![
                tp(var("x"), iri("p"), var("x")),
                tp(var("x"), iri("p"), var("y")),
            ],
            // Ground gate present + join.
            vec![
                tp(iri("v0"), iri("p"), iri("v1")),
                tp(var("x"), iri("p"), var("y")),
            ],
            // Ground gate absent.
            vec![
                tp(iri("v1"), iri("p"), iri("v0")),
                tp(var("x"), iri("p"), var("y")),
            ],
            // Absent constant.
            vec![tp(iri("nope"), iri("p"), var("y"))],
            // Subject bound, object-before-predicate order arises when
            // the object joins first — no SOP permutation exists.
            vec![
                tp(iri("v0"), var("q"), var("y")),
                tp(var("y"), iri("p"), var("z")),
                tp(var("z"), var("q"), var("w")),
            ],
            // Empty BGP.
            vec![],
        ];
        for pats in cases {
            let got = sorted(eval_bgp_wco(&g, &pats));
            let want = sorted(eval_bgp(&g, &pats));
            assert_eq!(got, want, "encoded backend on {pats:?}");
            // The generic materialised path (RdfGraph default cursors)
            // agrees too.
            let generic = sorted(eval_bgp_wco(&r, &pats));
            assert_eq!(generic, want, "materialised backend on {pats:?}");
        }
    }

    #[test]
    fn profiled_wco_reports_per_level_counters() {
        let g = EncodedGraph::from_triples(ring_graph(12));
        let pats = triangle_bgp();
        let (sols, levels) = eval_bgp_wco_profiled(&g, &pats);
        assert_eq!(sorted(sols.clone()), sorted(eval_bgp_wco(&g, &pats)));
        let order = wco_variable_order(&g, &pats);
        assert_eq!(
            levels.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            order,
            "one stats entry per ordered variable"
        );
        assert!(
            levels.iter().all(|(_, s)| s.rows > 0),
            "every level bound keys on a graph with triangles: {levels:?}"
        );
        // Each deepest-level alignment emits exactly one solution.
        assert_eq!(
            levels.last().expect("three levels").1.rows,
            sols.len() as u64
        );
        assert!(
            levels.iter().any(|(_, s)| s.seeks > 0),
            "intersecting distinct key sets must seek: {levels:?}"
        );
        assert!(
            levels.iter().any(|(_, s)| s.gallop_steps > 0),
            "seeks that move report gallop work: {levels:?}"
        );
        // Short-circuited queries report no levels.
        let ground = [tp(iri("v0"), iri("p"), iri("v1"))];
        let (sols, levels) = eval_bgp_wco_profiled(&g, &ground);
        assert_eq!(sols.len(), 1);
        assert!(levels.is_empty());
    }

    #[test]
    fn strategy_knob_parses_and_displays() {
        for s in [
            JoinStrategy::Pairwise,
            JoinStrategy::Wco,
            JoinStrategy::Auto,
        ] {
            assert_eq!(JoinStrategy::parse(&s.to_string()), Some(s));
        }
        assert_eq!(JoinStrategy::parse("nope"), None);
        assert_eq!(JoinStrategy::default(), JoinStrategy::Auto);
    }

    #[test]
    fn encoded_trie_walks_a_permutation_view() {
        let g = EncodedGraph::from_triples([
            Triple::from_strs("a", "p", "b"),
            Triple::from_strs("a", "p", "c"),
            Triple::from_strs("b", "p", "c"),
        ]);
        let pat = tp(var("x"), iri("p"), var("y"));
        // Subject-major order: zero-copy over PSO.
        let mut cur = encoded_trie(&g, &pat, &[Variable::new("x"), Variable::new("y")]);
        assert_eq!(cur.depth(), 2);
        assert_eq!(cur.key(), None, "cursors start at the virtual root");
        cur.open();
        let mut subjects = Vec::new();
        while cur.key().is_some() {
            subjects.push(cur.value());
            cur.open();
            let mut fanout = 0;
            while cur.key().is_some() {
                fanout += 1;
                cur.advance();
            }
            assert!(fanout > 0);
            cur.up();
            cur.advance();
        }
        assert_eq!(subjects, vec![Iri::new("a"), Iri::new("b")]);
        // Object-major order: zero-copy over POS.
        let mut cur = encoded_trie(&g, &pat, &[Variable::new("y"), Variable::new("x")]);
        cur.open();
        let mut objects = Vec::new();
        while cur.key().is_some() {
            objects.push(cur.value());
            cur.advance();
        }
        objects.sort();
        assert_eq!(objects, vec![Iri::new("b"), Iri::new("c")]);
    }
}
