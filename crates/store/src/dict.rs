//! The term dictionary: a two-way map between [`Iri`]s and dense local
//! ids.
//!
//! `wdsparql-rdf` already interns IRIs process-globally, so an [`Iri`] is
//! a `Copy` 32-bit id — but those ids are *sparse* from any one graph's
//! point of view (they are assigned in global first-use order, across all
//! graphs and queries in the process). The dictionary re-numbers the
//! terms of one graph into the dense range `0..terms`, which is what lets
//! [`crate::EncodedGraph`] index its permutation offsets by plain array
//! position instead of hashing.
//!
//! Both directions are plain array loads: local→global through the term
//! table, global→local through a direct-indexed table over the global id
//! space (4 bytes per global id up to the largest term this dictionary
//! holds — no hashing on the hot path).

use wdsparql_rdf::Iri;

/// A dense local id for a term of one encoded graph.
pub type TermId = u32;

/// Sentinel for "global id not interned here".
const ABSENT: TermId = TermId::MAX;

/// Interns [`Iri`]s to dense [`TermId`]s with O(1) two-way lookup.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    /// Local id → term.
    terms: Vec<Iri>,
    /// Global interner id → local id ([`ABSENT`] when not interned).
    by_global: Vec<TermId>,
}

impl Dictionary {
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns `term`, returning its dense id. Idempotent per term.
    pub fn encode(&mut self, term: Iri) -> TermId {
        let g = term.id() as usize;
        if g >= self.by_global.len() {
            self.by_global.resize(g + 1, ABSENT);
        }
        if self.by_global[g] != ABSENT {
            return self.by_global[g];
        }
        let id = TermId::try_from(self.terms.len()).expect("dictionary overflow");
        assert!(id != ABSENT, "dictionary overflow");
        self.terms.push(term);
        self.by_global[g] = id;
        id
    }

    /// The id of `term`, if it has been interned.
    pub fn lookup(&self, term: Iri) -> Option<TermId> {
        match self.by_global.get(term.id() as usize) {
            Some(&id) if id != ABSENT => Some(id),
            _ => None,
        }
    }

    /// The term with id `id`.
    ///
    /// Panics if `id` was not produced by this dictionary.
    pub fn decode(&self, id: TermId) -> Iri {
        self.terms[id as usize]
    }

    /// All interned terms, in id order.
    pub fn iter(&self) -> impl Iterator<Item = Iri> + '_ {
        self.terms.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.encode(Iri::new("a"));
        let b = d.encode(Iri::new("b"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.encode(Iri::new("a")), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn two_way_lookup_round_trips() {
        let mut d = Dictionary::new();
        for name in ["x", "y", "z"] {
            let id = d.encode(Iri::new(name));
            assert_eq!(d.lookup(Iri::new(name)), Some(id));
            assert_eq!(d.decode(id), Iri::new(name));
        }
        assert_eq!(d.lookup(Iri::new("not-interned-here")), None);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn local_ids_are_dense_even_when_global_ids_are_not() {
        // Interleave with fresh global interning to spread global ids.
        let mut d = Dictionary::new();
        let mut locals = Vec::new();
        for i in 0..10 {
            let _gap = Iri::new(&format!("dict-gap-{i}"));
            locals.push(d.encode(Iri::new(&format!("dict-kept-{i}"))));
        }
        assert_eq!(locals, (0..10).collect::<Vec<TermId>>());
        for (i, &l) in locals.iter().enumerate() {
            assert_eq!(d.decode(l), Iri::new(&format!("dict-kept-{i}")));
            assert_eq!(d.lookup(Iri::new(&format!("dict-gap-{i}"))), None);
        }
    }
}
