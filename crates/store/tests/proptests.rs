//! Property tests for the store: dictionary round-trips, full
//! access-pattern equivalence between [`EncodedGraph`]'s sorted
//! permutation ranges and [`RdfGraph`]'s hash indexes — with delta
//! segments pending, absent, and interleaved with compaction — and
//! service-level queries racing compaction. All properties replay under
//! `PROPTEST_SEED=<u64>` (reported on failure by the vendored
//! proptest).

use proptest::prelude::*;
use wdsparql_rdf::{tp, Iri, Mapping, RdfGraph, Triple, TripleIndex, TriplePattern, Variable};
use wdsparql_store::{
    eval_bgp_pairwise, eval_bgp_wco, CompactionPolicy, Dictionary, EncodedGraph, JoinStrategy,
    ShardedStore, TripleStore,
};

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..6usize, 0..3usize, 0..6usize), 0..20).prop_map(|ts| {
        RdfGraph::from_triples(ts.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("sn{s}"), &format!("sp{p}"), &format!("sn{o}"))
        }))
    })
}

/// One of the nine interesting term choices per position: a present
/// constant, a maybe-absent constant, or one of two variables (repeats
/// exercise the repeated-variable constraints).
fn term_of(choice: usize, prefix: &str) -> wdsparql_rdf::Term {
    use wdsparql_rdf::{iri, var};
    match choice {
        0..=5 => iri(&format!("{prefix}{choice}")),
        6 => iri("absent-term"),
        7 => var("a"),
        _ => var("b"),
    }
}

/// As [`term_of`] with a third variable, so multi-pattern BGPs can close
/// cycles (triangles over `a`/`b`/`c`) as well as chain and star.
fn join_term_of(choice: usize, prefix: &str) -> wdsparql_rdf::Term {
    use wdsparql_rdf::var;
    match choice {
        0..=6 => term_of(choice, prefix),
        7 => var("a"),
        8 => var("b"),
        _ => var("c"),
    }
}

/// The reference BGP semantics: fold nested-loop joins of the
/// per-pattern solution sets over the hash-indexed graph, dedup.
fn reference_bgp(g: &RdfGraph, pats: &[TriplePattern]) -> Vec<Mapping> {
    let mut acc = vec![Mapping::new()];
    for pat in pats {
        let sols = g.solutions(pat);
        let mut next = Vec::new();
        for a in &acc {
            for b in &sols {
                if let Some(u) = a.union(b) {
                    next.push(u);
                }
            }
        }
        acc = next;
    }
    acc.sort();
    acc.dedup();
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dictionary encode/decode/lookup round-trips, with dense ids.
    #[test]
    fn dictionary_round_trips(names in proptest::collection::vec("[a-z]{1,6}", 1..20)) {
        let mut d = Dictionary::new();
        let ids: Vec<u32> = names.iter().map(|n| d.encode(Iri::new(n))).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(d.decode(id), Iri::new(name));
            prop_assert_eq!(d.lookup(Iri::new(name)), Some(id));
            prop_assert_eq!(d.encode(Iri::new(name)), id, "re-encode must be stable");
        }
        // Ids are dense: 0..distinct-names.
        let distinct: std::collections::BTreeSet<&String> = names.iter().collect();
        prop_assert_eq!(d.len(), distinct.len());
        let max = ids.iter().copied().max().unwrap() as usize;
        prop_assert_eq!(max + 1, d.len());
    }

    /// EncodedGraph agrees with RdfGraph on every access pattern,
    /// including repeated variables and absent constants.
    #[test]
    fn encoded_matches_rdf_graph(g in arb_graph(), s in 0..9usize, p in 0..9usize, o in 0..9usize) {
        let enc = EncodedGraph::from_rdf(&g);
        prop_assert_eq!(enc.len(), g.len());
        let pat = tp(term_of(s, "sn"), term_of(p, "sp"), term_of(o, "sn"));
        let mut got = enc.match_pattern(&pat);
        let mut want = g.match_pattern(&pat);
        got.sort();
        want.sort();
        prop_assert_eq!(&got, &want, "pattern {}", pat);
        prop_assert!(enc.candidate_count(&pat) >= got.len());
        // Solutions agree as sets.
        let mut gs = enc.solutions(&pat);
        let mut ws = g.solutions(&pat);
        gs.sort();
        ws.sort();
        prop_assert_eq!(gs, ws);
        // The TripleIndex views agree on the global surface too.
        let ei: &dyn TripleIndex = &enc;
        let gi: &dyn TripleIndex = &g;
        prop_assert_eq!(ei.dom().collect::<Vec<_>>(), gi.dom().collect::<Vec<_>>());
        for t in gi.triples() {
            prop_assert!(ei.contains(&t));
        }
    }

    /// Incremental bulk loads converge to the one-shot build, and the
    /// service's BGP join agrees with the reference pairwise join.
    #[test]
    fn service_join_agrees_with_reference(g in arb_graph(), chunk in 1..7usize) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let store = TripleStore::new();
        for batch in triples.chunks(chunk) {
            store.bulk_load(batch.iter().copied());
        }
        prop_assert_eq!(store.len(), g.len());
        let pats = [
            tp(wdsparql_rdf::var("x"), wdsparql_rdf::iri("sp0"), wdsparql_rdf::var("y")),
            tp(wdsparql_rdf::var("y"), wdsparql_rdf::iri("sp1"), wdsparql_rdf::var("z")),
        ];
        let mut got: Vec<_> = store.query(&pats).iter().cloned().collect();
        got.sort();
        // Reference: nested-loop join over RdfGraph solutions.
        let mut want = Vec::new();
        for a in g.solutions(&pats[0]) {
            for b in g.solutions(&pats[1]) {
                if let Some(u) = a.union(&b) {
                    want.push(u);
                }
            }
        }
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want);
        let _ = store.cache_stats();
    }

    /// Interleaved `insert_batch`/`compact` sequences agree with the
    /// hash indexes on every access pattern, whether the probed rows
    /// live in the base, in pending delta segments, or both. The
    /// `compact_mask` drives when compaction strikes, so the property
    /// covers deltas-present and deltas-absent states of the same data.
    #[test]
    fn interleaved_batches_and_compactions_match_rdf_graph(
        g in arb_graph(),
        chunk in 1..6usize,
        compact_mask in 0u32..64,
        s in 0..9usize,
        p in 0..9usize,
        o in 0..9usize,
    ) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let mut enc = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
        for (i, batch) in triples.chunks(chunk).enumerate() {
            enc.insert_batch(batch.iter().copied()).expect("tiny batch");
            if compact_mask & (1 << (i % 6)) != 0 {
                enc.compact();
            }
        }
        prop_assert_eq!(enc.len(), g.len());
        prop_assert_eq!(enc.base_len() + enc.delta_len(), enc.len());
        let pat = tp(term_of(s, "sn"), term_of(p, "sp"), term_of(o, "sn"));
        let mut got = enc.match_pattern(&pat);
        let mut want = g.match_pattern(&pat);
        got.sort();
        want.sort();
        prop_assert_eq!(&got, &want, "pattern {} (segments: {})", pat, enc.segment_count());
        prop_assert!(enc.candidate_count(&pat) >= got.len());
        let mut gs = enc.solutions(&pat);
        let mut ws = g.solutions(&pat);
        gs.sort();
        ws.sort();
        prop_assert_eq!(gs, ws);
        // Compacting afterwards changes the layout only.
        let before_iter: Vec<Triple> = enc.iter().collect();
        enc.compact();
        prop_assert_eq!(enc.segment_count(), 0);
        let mut got_after = enc.match_pattern(&pat);
        got_after.sort();
        prop_assert_eq!(got_after, want);
        prop_assert_eq!(enc.iter().collect::<Vec<Triple>>(), before_iter);
        // The TripleIndex dom view survives the whole interleaving.
        let ei: &dyn TripleIndex = &enc;
        let gi: &dyn TripleIndex = &g;
        prop_assert_eq!(ei.dom().collect::<Vec<_>>(), gi.dom().collect::<Vec<_>>());
    }

    /// Queries racing a compaction see exactly the same answers: the
    /// service's snapshot isolation makes the fold invisible. The inputs
    /// (graph, chunking, query epoch) replay under `PROPTEST_SEED`; the
    /// thread interleaving is free, which is the point — every
    /// interleaving must yield the reference answer.
    #[test]
    fn service_queries_during_compaction_are_snapshot_consistent(
        g in arb_graph(),
        chunk in 1..6usize,
        rounds in 1..4usize,
    ) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let store = std::sync::Arc::new(TripleStore::new());
        for batch in triples.chunks(chunk) {
            store.bulk_load(batch.iter().copied());
        }
        let pats = [
            tp(wdsparql_rdf::var("x"), wdsparql_rdf::iri("sp0"), wdsparql_rdf::var("y")),
            tp(wdsparql_rdf::var("y"), wdsparql_rdf::iri("sp1"), wdsparql_rdf::var("z")),
        ];
        let mut want: Vec<_> = store.query(&pats).iter().cloned().collect();
        want.sort();
        let compactor = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    store.compact();
                }
            })
        };
        let epoch = store.epoch();
        for _ in 0..rounds {
            let out = store.query_with_plan(&pats);
            prop_assert_eq!(out.epoch, epoch, "compaction must not bump the epoch");
            let mut got: Vec<_> = out.solutions.iter().cloned().collect();
            got.sort();
            prop_assert_eq!(&got, &want, "query racing compaction diverged");
        }
        compactor.join().expect("compactor thread");
        prop_assert_eq!(store.stats().delta_rows, 0);
        let mut after: Vec<_> = store.query(&pats).iter().cloned().collect();
        after.sort();
        prop_assert_eq!(after, want);
    }

    /// A hash-sharded store is indistinguishable from a single
    /// `TripleStore` on every access pattern — chunked loads interleaved
    /// with *per-shard* compactions (driven by `compact_mask`, so some
    /// shards answer from delta segments while others are freshly
    /// folded), the full `TripleIndex` surface through the scatter-gather
    /// snapshot, and the facade's cached BGP path. Replays under
    /// `PROPTEST_SEED`.
    #[test]
    fn sharded_store_matches_single_store(
        g in arb_graph(),
        shards in 1..5usize,
        chunk in 1..6usize,
        compact_mask in 0u32..64,
        s in 0..9usize,
        p in 0..9usize,
        o in 0..9usize,
    ) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let single = TripleStore::new();
        let sharded = ShardedStore::new(shards);
        for (i, batch) in triples.chunks(chunk).enumerate() {
            single.bulk_load(batch.iter().copied());
            sharded.bulk_load(batch.iter().copied());
            if compact_mask & (1 << (i % 6)) != 0 {
                // Fold one shard only: the layouts diverge across
                // shards, the contents must not.
                sharded.shards()[i % shards].compact();
            }
        }
        prop_assert_eq!(sharded.len(), single.len());
        prop_assert_eq!(sharded.epochs().len(), shards);

        let snap = sharded.snapshot();
        let sref = single.read_snapshot();
        let pat = tp(term_of(s, "sn"), term_of(p, "sp"), term_of(o, "sn"));
        // The TripleIndex surface agrees: matches, bounds, solutions,
        // membership, domain.
        let mut got = TripleIndex::match_pattern(&snap, &pat);
        let mut want = sref.match_pattern(&pat);
        got.sort();
        want.sort();
        prop_assert_eq!(&got, &want, "{} shards, pattern {}", shards, pat);
        prop_assert!(TripleIndex::candidate_count(&snap, &pat) >= got.len());
        let mut gs = TripleIndex::solutions(&snap, &pat);
        let mut ws = sref.solutions(&pat);
        gs.sort();
        ws.sort();
        prop_assert_eq!(gs, ws);
        for t in &triples {
            prop_assert!(TripleIndex::contains(&snap, t));
        }
        prop_assert_eq!(
            TripleIndex::dom(&snap).collect::<Vec<_>>(),
            TripleIndex::dom(sref.graph()).collect::<Vec<_>>()
        );

        // The facade's cached, planned BGP path agrees with the single
        // service — for the fan-out join and for a routed point query.
        let join = [
            tp(wdsparql_rdf::var("x"), wdsparql_rdf::iri("sp0"), wdsparql_rdf::var("y")),
            tp(wdsparql_rdf::var("y"), wdsparql_rdf::iri("sp1"), wdsparql_rdf::var("z")),
        ];
        let mut got: Vec<_> = sharded.query(&join).iter().cloned().collect();
        let mut want: Vec<_> = single.query(&join).iter().cloned().collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "facade join diverged at {} shards", shards);
        let routed = [tp(wdsparql_rdf::iri("sn0"), wdsparql_rdf::var("a"), wdsparql_rdf::var("b"))];
        let mut got: Vec<_> = sharded.query(&routed).iter().cloned().collect();
        let mut want: Vec<_> = single.query(&routed).iter().cloned().collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "routed query diverged at {} shards", shards);

        // A full compact is invisible to queries, like the single store's.
        sharded.compact();
        let snap = sharded.snapshot();
        let mut after = TripleIndex::match_pattern(&snap, &pat);
        after.sort();
        let mut want = sref.match_pattern(&pat);
        want.sort();
        prop_assert_eq!(after, want);
        for st in sharded.stats().shards {
            prop_assert_eq!((st.delta_rows, st.segments), (0, 0));
        }
    }

    /// The worst-case-optimal join ≡ the pairwise pipeline ≡ the
    /// reference nested-loop semantics, on random BGPs — including
    /// cyclic cores over three shared variables, repeated variables,
    /// ground and absent-constant patterns — over both the single
    /// `TripleStore` snapshot (zero-copy permutation tries) and every
    /// sharded layout (materialised scatter-gather tries), plus the
    /// facade under every `JoinStrategy`. Replays under `PROPTEST_SEED`.
    #[test]
    fn wcoj_matches_pairwise(
        g in arb_graph(),
        raw in proptest::collection::vec((0..10usize, 0..10usize, 0..10usize), 1..5),
        shards in 1..4usize,
    ) {
        let pats: Vec<TriplePattern> = raw
            .into_iter()
            .map(|(s, p, o)| tp(join_term_of(s, "sn"), join_term_of(p, "sp"), join_term_of(o, "sn")))
            .collect();
        let want = reference_bgp(&g, &pats);
        let store = TripleStore::from_triples(g.iter().copied());
        let snap = store.read_snapshot();
        let mut wco = eval_bgp_wco(snap.graph(), &pats);
        wco.sort();
        prop_assert_eq!(&wco, &want, "wco vs reference on {:?}", &pats);
        let mut pairwise = eval_bgp_pairwise(snap.graph(), &pats);
        pairwise.sort();
        prop_assert_eq!(&pairwise, &want, "pairwise vs reference on {:?}", &pats);
        // The sharded scatter-gather snapshot joins through materialised
        // tries; the facade must agree under every knob setting.
        let sharded = ShardedStore::from_triples(shards, g.iter().copied());
        let ssnap = sharded.snapshot();
        let mut swco = eval_bgp_wco(&ssnap, &pats);
        swco.sort();
        prop_assert_eq!(&swco, &want, "sharded wco vs reference on {:?}", &pats);
        for strategy in [JoinStrategy::Pairwise, JoinStrategy::Wco, JoinStrategy::Auto] {
            sharded.set_join_strategy(strategy);
            let mut got: Vec<Mapping> = sharded.query(&pats).iter().cloned().collect();
            got.sort();
            prop_assert_eq!(&got, &want, "facade {} on {:?}", strategy, &pats);
        }
    }

    /// merge_join_ids equals the set intersection of the per-pattern
    /// candidate bindings.
    #[test]
    fn merge_join_is_set_intersection(g in arb_graph(), p1 in 0..3usize, p2 in 0..3usize) {
        let enc = EncodedGraph::from_rdf(&g);
        let v = Variable::new("j");
        let a = tp(wdsparql_rdf::var("j"), wdsparql_rdf::iri(&format!("sp{p1}")), wdsparql_rdf::var("o1"));
        let b = tp(wdsparql_rdf::var("j"), wdsparql_rdf::iri(&format!("sp{p2}")), wdsparql_rdf::var("o2"));
        let joined: std::collections::BTreeSet<Iri> =
            enc.merge_join_values(&a, &b, v).unwrap().into_iter().collect();
        let sa: std::collections::BTreeSet<Iri> =
            g.solutions(&a).into_iter().filter_map(|m| m.get(v)).collect();
        let sb: std::collections::BTreeSet<Iri> =
            g.solutions(&b).into_iter().filter_map(|m| m.get(v)).collect();
        let want: std::collections::BTreeSet<Iri> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(joined, want);
    }
}

// ---------------------------------------------------------------------
// Durable-store equivalence
// ---------------------------------------------------------------------

fn prop_tempdir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wdsparql-durable-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    // Each case touches a real temp directory (commits + reopen), so
    // the case budget is smaller than the in-memory properties above.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A durable store fed a random script of batched loads and
    /// compactions, then **reopened from disk**, is indistinguishable
    /// from a volatile store fed the same script: same epoch, same
    /// triple set, and the same answers over the full [`TripleIndex`]
    /// surface (len / contains / dom / match_pattern / solutions for
    /// every constant-and-variable pattern shape over the universe).
    /// Replays under `PROPTEST_SEED=<u64>`.
    #[test]
    fn durable_store_matches_volatile(
        script in proptest::collection::vec(
            (
                any::<bool>(),
                proptest::collection::vec((0..6usize, 0..3usize, 0..6usize), 0..6),
            ),
            1..10,
        )
    ) {
        let dir = prop_tempdir();
        let opts = wdsparql_store::PersistOpts {
            page_size: 64,
            ..Default::default()
        };
        let durable = TripleStore::open_with_opts(&dir, opts).expect("open durable");
        let volatile = TripleStore::new();
        for (compact_after, coded) in &script {
            let batch: Vec<Triple> = coded
                .iter()
                .map(|&(s, p, o)| {
                    Triple::from_strs(&format!("sn{s}"), &format!("sp{p}"), &format!("sn{o}"))
                })
                .collect();
            let a = durable.try_bulk_load(batch.iter().copied()).expect("durable load");
            let b = volatile.try_bulk_load(batch.iter().copied()).expect("volatile load");
            prop_assert_eq!(a, b, "added counts diverge");
            prop_assert_eq!(durable.epoch(), volatile.epoch(), "epochs diverge mid-script");
            if *compact_after {
                prop_assert_eq!(durable.compact(), volatile.compact());
            }
        }
        drop(durable);

        let reopened = TripleStore::open(&dir).expect("reopen from disk");
        prop_assert_eq!(reopened.epoch(), volatile.epoch(), "epoch lost across restart");
        let got = reopened.read_snapshot();
        let want = volatile.read_snapshot();
        let (got, want) = (got.graph(), want.graph());
        prop_assert_eq!(got.len(), want.len());
        let gs: std::collections::BTreeSet<Triple> = got.triples().collect();
        let ws: std::collections::BTreeSet<Triple> = want.triples().collect();
        prop_assert_eq!(&gs, &ws, "triple sets diverge across restart");
        let gd: std::collections::BTreeSet<Iri> = got.dom().collect();
        let wd: std::collections::BTreeSet<Iri> = want.dom().collect();
        prop_assert_eq!(gd, wd, "domains diverge across restart");
        for t in &ws {
            prop_assert!(got.contains(t));
        }
        // Every single-pattern shape over the universe answers alike.
        for s in 0..9usize {
            for p in 0..4usize {
                for o in 0..9usize {
                    let pat = tp(
                        term_of(s, "sn"),
                        if p < 3 { wdsparql_rdf::iri(&format!("sp{p}")) } else { wdsparql_rdf::var("p") },
                        join_term_of(o, "sn"),
                    );
                    let mut gm = got.match_pattern(&pat);
                    let mut wm = want.match_pattern(&pat);
                    gm.sort();
                    wm.sort();
                    prop_assert_eq!(gm, wm, "match_pattern diverges on {:?}", &pat);
                    prop_assert_eq!(
                        got.candidate_count(&pat) == 0,
                        want.candidate_count(&pat) == 0,
                        "candidate emptiness diverges on {:?}", &pat
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The sharded equivalent: persist, reopen, and the scatter-gather
    /// snapshot serves the same triples.
    #[test]
    fn durable_sharded_store_matches_volatile(
        coded in proptest::collection::vec((0..12usize, 0..3usize, 0..12usize), 0..30),
        shards in 1..4usize,
    ) {
        let dir = prop_tempdir();
        let triples: Vec<Triple> = coded
            .iter()
            .map(|&(s, p, o)| {
                Triple::from_strs(&format!("sn{s}"), &format!("sp{p}"), &format!("sn{o}"))
            })
            .collect();
        let store = ShardedStore::new(shards);
        store.bulk_load(triples.iter().copied());
        store.persist_to(&dir).expect("attach");
        let want: std::collections::BTreeSet<Triple> = store.snapshot().triples().collect();
        drop(store);
        let reopened = ShardedStore::open(&dir).expect("reopen sharded");
        prop_assert_eq!(reopened.shard_count(), shards);
        let reopened_set: std::collections::BTreeSet<Triple> = reopened.snapshot().triples().collect();
        prop_assert_eq!(reopened_set, want);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
