//! The fsim crash matrix, replayed against the *real* persist code.
//!
//! PR 9's model checker proved the commit protocol correct as a model;
//! this suite closes the loop: a thin adapter implements the store's
//! [`Vfs`] trait over `fsim::SimFs`, and [`CrashExplorer`] drives the
//! production `format_store` / `commit_batch` / `checkpoint` /
//! `recover` functions through **every crash point and every crash
//! image** (page-granular persistence reordering, torn half-pages
//! included). At each image the real recovery must uphold the durable
//! contract:
//!
//! - **D1** — every acked epoch is recovered with its exact payload;
//! - **D2** — an interrupted (un-acked) load is either invisible or
//!   recovered whole, never partial;
//! - **D3** — recovery never errors on a crash image, and a pure crash
//!   (no corruption) never quarantines or degrades;
//! - **D4** — recovery is idempotent: running it twice yields the same
//!   epoch and the same triple set.

use std::collections::BTreeSet;
use wdsparql_analyzer::fsim::{CrashExplorer, CrashOpts, Crashed, OpResult, SimFs};
use wdsparql_rdf::Triple;
use wdsparql_store::persist::vfs::{FaultKind, Vfs, VfsError, VfsResult};
use wdsparql_store::persist::{self, PersistError, PersistOpts};

// ---------------------------------------------------------------------
// The SimFs adapter: the store's Vfs surface over the crash simulator.
// ---------------------------------------------------------------------

/// `SimFs` as a [`Vfs`]: op vocabularies match one to one; the only
/// translation is `Crashed` → a [`FaultKind::Crashed`] error, which the
/// persist layer treats as non-retryable (so post-crash rollback steps
/// fail cleanly instead of spinning).
struct Sim<'a>(&'a SimFs);

fn crashed(op: &str) -> VfsError {
    VfsError::new(FaultKind::Crashed, op)
}

impl Vfs for Sim<'_> {
    fn create(&self, name: &str) -> VfsResult<()> {
        self.0.create(name).map_err(|Crashed| crashed("create"))
    }
    fn append(&self, name: &str, data: &[u8]) -> VfsResult<()> {
        self.0
            .append(name, data)
            .map_err(|Crashed| crashed("append"))
    }
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> VfsResult<()> {
        self.0
            .write_at(name, offset as usize, data)
            .map_err(|Crashed| crashed("write_at"))
    }
    fn truncate(&self, name: &str, len: u64) -> VfsResult<()> {
        self.0
            .truncate(name, len as usize)
            .map_err(|Crashed| crashed("truncate"))
    }
    fn fsync(&self, name: &str) -> VfsResult<()> {
        self.0.fsync(name).map_err(|Crashed| crashed("fsync"))
    }
    fn rename(&self, from: &str, to: &str) -> VfsResult<()> {
        self.0.rename(from, to).map_err(|Crashed| crashed("rename"))
    }
    fn remove(&self, name: &str) -> VfsResult<()> {
        self.0.remove(name).map_err(|Crashed| crashed("remove"))
    }
    fn dir_sync(&self) -> VfsResult<()> {
        self.0.dir_sync().map_err(|Crashed| crashed("dir_sync"))
    }
    fn read(&self, name: &str) -> VfsResult<Option<Vec<u8>>> {
        self.0.read(name).map_err(|Crashed| crashed("read"))
    }
    fn list(&self) -> VfsResult<Vec<String>> {
        self.0.list().map_err(|Crashed| crashed("list"))
    }
}

// ---------------------------------------------------------------------
// Workload and oracle
// ---------------------------------------------------------------------

/// Small page size keeps framed files to a few simulator pages, so the
/// per-crash-point image space stays exhaustively enumerable.
fn popts() -> PersistOpts {
    PersistOpts {
        page_size: 64,
        ..PersistOpts::default()
    }
}

/// Three deterministic batches with single-character spellings: tiny
/// payloads (the image space is exponential in dirty pages), distinct
/// per epoch, overlapping in subject so term tables are exercised.
fn batches() -> Vec<Vec<Triple>> {
    vec![
        vec![Triple::from_strs("a", "p", "b")],
        vec![
            Triple::from_strs("a", "q", "c"),
            Triple::from_strs("b", "p", "c"),
        ],
        vec![Triple::from_strs("c", "r", "a")],
    ]
}

/// The exact triple set a store recovered at `epoch` must serve.
fn prefix_union(epoch: u64) -> BTreeSet<Triple> {
    batches()
        .into_iter()
        .take(epoch as usize)
        .flatten()
        .collect()
}

/// What the caller observed: the highest epoch whose commit returned
/// `Ok` (= was acknowledged) before the crash.
#[derive(Clone, Copy, Default)]
struct Oracle {
    acked: u64,
}

/// Maps a persist failure in a crashing run back onto the simulator's
/// vocabulary. Anything but a crash here is a real bug: `SimFs` never
/// injects transient or permanent faults.
fn interrupted(e: PersistError) -> OpResult {
    match e {
        PersistError::Io {
            kind: FaultKind::Crashed,
            ..
        } => Err(Crashed),
        other => panic!("non-crash persist failure under fsim: {other}"),
    }
}

/// Formats the store and commits the three batches; optionally
/// checkpoints after the second commit, which puts the manifest
/// rewrite + log truncation inside the explored op trace.
fn workload(fs: &SimFs, oracle: &mut Oracle, with_checkpoint: bool) -> OpResult {
    let vfs = Sim(fs);
    let opts = popts();
    let mut st = match persist::format_store(&vfs, &opts) {
        Ok(st) => st,
        Err(e) => return interrupted(e),
    };
    for (i, batch) in batches().iter().enumerate() {
        let epoch = (i + 1) as u64;
        match persist::commit_batch(&vfs, &opts, &mut st, epoch, batch) {
            Ok(()) => oracle.acked = epoch,
            Err(e) => return interrupted(e),
        }
        if with_checkpoint && epoch == 2 {
            let image: Vec<Triple> = prefix_union(epoch).into_iter().collect();
            if let Err(e) = persist::checkpoint(&vfs, &opts, &mut st, epoch, &image) {
                return interrupted(e);
            }
        }
    }
    Ok(())
}

/// Runs the real recovery against one crash image and checks D1–D4.
fn recover_check(fs: &SimFs, oracle: &Oracle) -> Result<(), String> {
    let vfs = Sim(fs);
    let opts = popts();
    // Production (`TripleStore::open`) formats an unformatted
    // directory rather than recovering it. A crash can only leave the
    // manifest missing before `format_store` acked — it publishes the
    // manifest under rename + dir_sync — so nothing durable is lost,
    // and formatting over the debris (leftover `*.tmp`) must succeed
    // and yield an empty epoch-0 store.
    if !persist::is_formatted(&vfs, &opts).map_err(|e| format!("is_formatted failed: {e}"))? {
        if oracle.acked != 0 {
            return Err(format!(
                "acked epoch {} but no manifest on disk (D1)",
                oracle.acked
            ));
        }
        persist::format_store(&vfs, &opts)
            .map_err(|e| format!("re-format over crash debris failed: {e}"))?;
        let (rec, _) = persist::recover(&vfs, &opts)
            .map_err(|e| format!("recovery of a fresh store failed: {e}"))?;
        if rec.epoch != 0 || !rec.checkpoint.is_empty() || !rec.deltas.is_empty() {
            return Err("a freshly formatted store must be empty at epoch 0".to_string());
        }
        return Ok(());
    }
    let (rec, _st) = persist::recover(&vfs, &opts)
        .map_err(|e| format!("recovery must never fail on a crash image (D3): {e}"))?;
    if rec.degraded || rec.quarantined != 0 {
        return Err(format!(
            "a pure crash must not look like corruption (D3): degraded={} quarantined={}",
            rec.degraded, rec.quarantined
        ));
    }
    if rec.epoch < oracle.acked {
        return Err(format!(
            "acked epoch {} lost: recovered only epoch {} (D1)",
            oracle.acked, rec.epoch
        ));
    }
    let total = batches().len() as u64;
    if rec.epoch > total {
        return Err(format!("recovered epoch {} was never written", rec.epoch));
    }
    let image = |rec: &persist::Recovered| -> BTreeSet<Triple> {
        rec.checkpoint
            .iter()
            .copied()
            .chain(rec.deltas.iter().flat_map(|(_, d)| d.iter().copied()))
            .collect()
    };
    let got = image(&rec);
    let want = prefix_union(rec.epoch);
    if got != want {
        return Err(format!(
            "epoch {} must serve exactly its prefix union (D1/D2): got {} triples, want {}",
            rec.epoch,
            got.len(),
            want.len()
        ));
    }
    for (e, _) in &rec.deltas {
        if *e > rec.epoch {
            return Err(format!(
                "delta epoch {e} above recovered epoch {}",
                rec.epoch
            ));
        }
    }
    // D4: recovery already swept the directory; running it again must
    // land on the same epoch and the same triple set.
    let (rec2, _) =
        persist::recover(&vfs, &opts).map_err(|e| format!("second recovery failed (D4): {e}"))?;
    if rec2.epoch != rec.epoch || image(&rec2) != want {
        return Err(format!(
            "recovery is not idempotent (D4): epoch {} then {}",
            rec.epoch, rec2.epoch
        ));
    }
    if rec2.quarantined != 0 || rec2.degraded {
        return Err("second recovery invented corruption (D4)".to_string());
    }
    Ok(())
}

fn explorer() -> CrashExplorer {
    CrashExplorer {
        opts: CrashOpts {
            // Half the persist page: every framed page can tear.
            page_size: 32,
            torn_pages: true,
            max_images: 100_000,
        },
    }
}

#[test]
fn crash_matrix_on_real_persist_code_upholds_d1_to_d4() {
    let report = explorer()
        .explore(
            Oracle::default,
            |fs, o| workload(fs, o, false),
            recover_check,
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert!(
        report.exhausted,
        "the image space must be fully enumerated, not sampled"
    );
    // Every op boundary is a crash point, and torn pages multiply the
    // images well past one per point.
    assert!(report.crash_points > 20, "got {}", report.crash_points);
    assert!(
        report.images > report.crash_points,
        "torn/reordered images missing: {} images over {} points",
        report.images,
        report.crash_points
    );
}

#[test]
fn crash_matrix_with_checkpoint_upholds_d1_to_d4() {
    let report = explorer()
        .explore(
            Oracle::default,
            |fs, o| workload(fs, o, true),
            recover_check,
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert!(report.exhausted);
    assert!(
        report.crash_points > 30,
        "the checkpoint ops must be inside the explored trace, got {}",
        report.crash_points
    );
}
