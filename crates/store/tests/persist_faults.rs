//! Fault injection against the durable store on a real filesystem.
//!
//! Where `persist_crash_matrix.rs` replays the simulator's exhaustive
//! crash matrix against the persist free functions, this suite drives
//! the full [`TripleStore`] / [`ShardedStore`] service layer through
//! [`FaultFs`]-injected failures on real temp directories: transient
//! errors must be retried away, permanent ones must roll back to an
//! unchanged store, crashes at every op index must reopen at a
//! consistent epoch, torn writes must be truncated away, and bit-rot
//! must quarantine the corrupt segment while the store serves the last
//! consistent epoch.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdsparql_rdf::{Triple, TripleIndex};
use wdsparql_store::{
    Fault, FaultFs, PersistError, PersistOpts, RealFs, ShardedStore, StoreError, TripleStore,
};

fn tempdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wdsparql-persist-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small pages keep files readable in a debugger; zero backoff keeps
/// the retry tests instant.
fn popts() -> PersistOpts {
    PersistOpts {
        page_size: 64,
        max_retries: 3,
        backoff: Duration::ZERO,
    }
}

fn batches() -> Vec<Vec<Triple>> {
    vec![
        vec![Triple::from_strs("alice", "knows", "bob")],
        vec![
            Triple::from_strs("bob", "knows", "carol"),
            Triple::from_strs("carol", "knows", "alice"),
        ],
        vec![Triple::from_strs("dave", "age", "30")],
    ]
}

fn prefix_union(epoch: u64) -> BTreeSet<Triple> {
    batches()
        .into_iter()
        .take(epoch as usize)
        .flatten()
        .collect()
}

fn contents(store: &TripleStore) -> BTreeSet<Triple> {
    store.read_snapshot().graph().iter().collect()
}

fn fault_store(dir: &PathBuf) -> (Arc<FaultFs<RealFs>>, TripleStore) {
    let ffs = Arc::new(FaultFs::new(RealFs::open(dir).expect("temp dir opens")));
    let store =
        TripleStore::open_with_vfs(ffs.clone(), popts()).expect("open with no faults armed");
    (ffs, store)
}

// ---------------------------------------------------------------------
// Transient / permanent faults
// ---------------------------------------------------------------------

#[test]
fn transient_faults_are_retried_and_the_commit_acks() {
    let dir = tempdir("transient");
    let (ffs, store) = fault_store(&dir);
    let retries_before = wdsparql_store::obs::registry().commit_retries.get();

    // One transient failure on each of the next two ops: the commit's
    // first two steps each fail once and succeed on retry.
    let base = ffs.op_count();
    ffs.inject(base, Fault::Transient);
    ffs.inject(base + 2, Fault::Transient);
    assert_eq!(store.bulk_load(batches()[0].clone()), 1);
    assert_eq!(store.epoch(), 1);

    let retries_after = wdsparql_store::obs::registry().commit_retries.get();
    assert!(
        retries_after >= retries_before + 2,
        "store.commit_retries_total must count both retries: {retries_before} -> {retries_after}"
    );

    // The retried commit is a real one: a fresh process sees it.
    drop(store);
    let reopened = TripleStore::open(&dir).expect("reopen");
    assert_eq!(reopened.epoch(), 1);
    assert_eq!(contents(&reopened), prefix_union(1));
}

#[test]
fn permanent_faults_roll_back_cleanly_at_every_commit_step() {
    // A commit is 7 Vfs ops (create, append, fsync, rename, dir_sync,
    // log append, log fsync). `max_retries` attempts make each step's
    // index space wider than 1, so arm the fault at each step's *first*
    // attempt: offset = step index, since non-faulted steps take one op.
    for step in 0..7 {
        let dir = tempdir("permanent");
        let (ffs, store) = fault_store(&dir);
        assert_eq!(store.bulk_load(batches()[0].clone()), 1);

        ffs.inject(ffs.op_count() + step, Fault::Permanent);
        let err = store
            .try_bulk_load(batches()[1].clone())
            .expect_err("armed fault must surface");
        assert!(
            matches!(err, StoreError::Persist(_)),
            "step {step}: expected a persist error, got {err}"
        );
        // D2: the refused load is invisible, in memory and on disk.
        assert_eq!(store.epoch(), 1, "step {step}");
        assert_eq!(contents(&store), prefix_union(1), "step {step}");

        // The store recovers: the same batch loads once the fault is
        // gone (the rollback may wedge the directory on late steps, in
        // which case a reopen — the documented remedy — must succeed).
        let retried = store.try_bulk_load(batches()[1].clone());
        drop(store);
        let reopened = TripleStore::open(&dir).expect("reopen after rollback");
        match retried {
            Ok(added) => {
                assert_eq!(added, 2, "step {step}");
                assert_eq!(reopened.epoch(), 2, "step {step}");
                assert_eq!(contents(&reopened), prefix_union(2), "step {step}");
            }
            Err(_) => {
                assert_eq!(reopened.epoch(), 1, "step {step}");
                assert_eq!(contents(&reopened), prefix_union(1), "step {step}");
                assert_eq!(reopened.bulk_load(batches()[1].clone()), 2, "step {step}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Crashes and torn writes
// ---------------------------------------------------------------------

/// Runs open + all three loads against a possibly-crashing Vfs,
/// returning the highest acked epoch.
fn run_ingest(ffs: &Arc<FaultFs<RealFs>>) -> u64 {
    let Ok(store) = TripleStore::open_with_vfs(ffs.clone(), popts()) else {
        return 0;
    };
    let mut acked = 0;
    for (i, batch) in batches().iter().enumerate() {
        match store.try_bulk_load(batch.iter().copied()) {
            Ok(_) => acked = i as u64 + 1,
            Err(_) => break,
        }
    }
    acked
}

#[test]
fn crash_at_every_op_index_reopens_at_a_consistent_epoch() {
    // Size the op space with an uncrashed run.
    let dir = tempdir("crash-size");
    let ffs = Arc::new(FaultFs::new(RealFs::open(&dir).expect("temp dir")));
    assert_eq!(run_ingest(&ffs), batches().len() as u64);
    let total_ops = ffs.op_count();
    assert!(total_ops > 25, "expected a real op trace, got {total_ops}");

    for crash_at in 0..total_ops {
        let dir = tempdir("crash");
        let ffs = Arc::new(FaultFs::new(RealFs::open(&dir).expect("temp dir")));
        ffs.crash_from(crash_at);
        let acked = run_ingest(&ffs);

        let reopened = TripleStore::open(&dir)
            .unwrap_or_else(|e| panic!("reopen after crash at op {crash_at} failed: {e}"));
        let epoch = reopened.epoch();
        assert!(
            epoch >= acked,
            "crash at op {crash_at}: acked epoch {acked} lost, recovered {epoch} (D1)"
        );
        assert!(
            epoch <= batches().len() as u64,
            "crash at op {crash_at}: recovered epoch {epoch} was never written"
        );
        assert_eq!(
            contents(&reopened),
            prefix_union(epoch),
            "crash at op {crash_at}: epoch {epoch} must serve exactly its prefix (D2)"
        );
        // And the reopened store keeps working durably.
        reopened.bulk_load([Triple::from_strs("post", "crash", "load")]);
        let epoch2 = reopened.epoch();
        drop(reopened);
        let again = TripleStore::open(&dir).expect("second reopen");
        assert_eq!(again.epoch(), epoch2, "crash at op {crash_at}");
    }
}

#[test]
fn torn_writes_during_commit_recover_at_the_prior_epoch() {
    // Offset 1 tears the segment append, offset 5 tears the log-record
    // append (see the op layout in the permanent-fault test).
    for torn_at in [1usize, 5] {
        let dir = tempdir("torn");
        let (ffs, store) = fault_store(&dir);
        assert_eq!(store.bulk_load(batches()[0].clone()), 1);

        ffs.inject(ffs.op_count() + torn_at, Fault::TornWrite);
        store
            .try_bulk_load(batches()[1].clone())
            .expect_err("torn write crashes the commit");
        assert!(ffs.has_crashed());
        drop(store);

        let reopened = TripleStore::open(&dir)
            .unwrap_or_else(|e| panic!("reopen after torn write at +{torn_at}: {e}"));
        assert_eq!(reopened.epoch(), 1, "torn at +{torn_at}");
        assert_eq!(contents(&reopened), prefix_union(1), "torn at +{torn_at}");
        // The half-written debris does not block later commits.
        assert_eq!(reopened.bulk_load(batches()[1].clone()), 2);
        drop(reopened);
        assert_eq!(TripleStore::open(&dir).expect("reopen").epoch(), 2);
    }
}

// ---------------------------------------------------------------------
// Corruption: quarantine and typed errors
// ---------------------------------------------------------------------

/// Flips one payload byte of `name` inside `dir`.
fn corrupt_file(dir: &std::path::Path, name: &str, at: usize) {
    let path = dir.join(name);
    let mut bytes = std::fs::read(&path).expect("file exists");
    assert!(at < bytes.len(), "{name} is only {} bytes", bytes.len());
    bytes[at] ^= 0x40;
    std::fs::write(&path, bytes).expect("rewrite");
}

#[test]
fn bit_rot_quarantines_the_segment_and_serves_the_last_consistent_epoch() {
    let dir = tempdir("bitrot");
    {
        let store = TripleStore::open_with_opts(&dir, popts()).expect("create");
        assert_eq!(store.bulk_load(batches()[0].clone()), 1);
        assert_eq!(store.bulk_load(batches()[1].clone()), 2);
    }
    // seg-00000000 carries epoch 1, seg-00000001 epoch 2. Rot a data
    // page of the second: recovery must fall back to epoch 1, not fail.
    let quarantined_before = wdsparql_store::obs::registry().segments_quarantined.get();
    corrupt_file(&dir, "seg-00000001", 80);

    let reopened = TripleStore::open(&dir).expect("corruption must degrade, not fail");
    assert_eq!(reopened.epoch(), 1, "fell back to the last verified epoch");
    assert_eq!(contents(&reopened), prefix_union(1));
    assert!(
        dir.join("seg-00000001.quarantined").exists(),
        "the corrupt segment is renamed aside for forensics"
    );
    assert!(
        wdsparql_store::obs::registry().segments_quarantined.get() > quarantined_before,
        "store.segments_quarantined_total must count the quarantine"
    );
    // The store keeps accepting (durable) writes after degrading.
    assert_eq!(reopened.bulk_load(batches()[2].clone()), 1);
    drop(reopened);
    let again = TripleStore::open(&dir).expect("reopen");
    assert_eq!(again.epoch(), 2);
    let want: BTreeSet<Triple> = prefix_union(1)
        .into_iter()
        .chain(batches()[2].iter().copied())
        .collect();
    assert_eq!(contents(&again), want);
}

#[test]
fn a_corrupt_manifest_is_a_typed_error_not_a_panic() {
    let dir = tempdir("manifest");
    {
        let store = TripleStore::open_with_opts(&dir, popts()).expect("create");
        store.bulk_load(batches()[0].clone());
    }
    // Byte 70 sits in the first data page (the header page's zero
    // padding is dead bytes — rot there is harmless and ignored).
    corrupt_file(&dir, "manifest", 70);
    let err = match TripleStore::open(&dir) {
        Ok(_) => panic!("a rotten manifest cannot be opened"),
        Err(e) => e,
    };
    assert!(
        matches!(err, StoreError::Persist(PersistError::CorruptManifest(_))),
        "expected CorruptManifest, got {err}"
    );
}

// ---------------------------------------------------------------------
// Sharded stores
// ---------------------------------------------------------------------

#[test]
fn sharded_stores_persist_and_reopen_per_shard_directories() {
    let dir = tempdir("sharded");
    let triples: Vec<Triple> = (0..20)
        .map(|i| Triple::from_strs(&format!("s{i}"), "p", &format!("o{}", i % 5)))
        .collect();

    let store = ShardedStore::new(3);
    store.bulk_load(triples.iter().copied());
    store
        .persist_to_opts(&dir, popts())
        .expect("attach durable storage");
    assert!(store.is_durable());
    // Post-attach loads commit durably, shard by shard.
    store.bulk_load([Triple::from_strs("extra", "p", "o0")]);
    let want: BTreeSet<Triple> = store.snapshot().triples().collect();
    drop(store);

    for i in 0..3 {
        assert!(
            dir.join(format!("shard-{i}")).join("manifest").exists(),
            "shard-{i} has its own manifest"
        );
    }
    let reopened = ShardedStore::open(&dir).expect("reopen sharded");
    assert_eq!(reopened.shard_count(), 3);
    let got: BTreeSet<Triple> = reopened.snapshot().triples().collect();
    assert_eq!(got, want);

    // Routing is stable across restarts: a subject-bound read finds
    // its triples on the reopened layout.
    assert_eq!(reopened.len(), 21);
}
