//! Property tests for the streaming execution core: the pull-based
//! solution streams behind `solutions_limit`/`query_budgeted` must be
//! indistinguishable from the materialised path — on random BGPs
//! (cyclic cores, repeated variables, ground and absent-constant
//! patterns), random LIMIT prefixes, every `JoinStrategy` and both
//! store facades — and a budget that is already dead must always
//! surface as a typed error, never a panic or a partial answer. All
//! properties replay under `PROPTEST_SEED=<u64>`.

use proptest::prelude::*;
use std::time::Duration;
use wdsparql_rdf::{
    tp, CancelToken, ExecError, Mapping, QueryBudget, RdfGraph, Triple, TriplePattern,
};
use wdsparql_store::{JoinStrategy, ShardedStore, TripleStore};

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..6usize, 0..3usize, 0..6usize), 0..20).prop_map(|ts| {
        RdfGraph::from_triples(ts.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("sn{s}"), &format!("sp{p}"), &format!("sn{o}"))
        }))
    })
}

/// A present constant, a maybe-absent constant, or one of three
/// variables — repeats close cycles (triangles over `a`/`b`/`c`) and
/// exercise repeated-variable constraints.
fn join_term_of(choice: usize, prefix: &str) -> wdsparql_rdf::Term {
    use wdsparql_rdf::{iri, var};
    match choice {
        0..=5 => iri(&format!("{prefix}{choice}")),
        6 => iri("absent-term"),
        7 => var("a"),
        8 => var("b"),
        _ => var("c"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streamed k-prefix equals the materialised result's first k
    /// rows exactly (so sizes are exact and the prefix is a subset),
    /// an unlimited budgeted query reproduces the materialised answer,
    /// and a dead budget — zero deadline or tripped cancellation
    /// token, fresh per query — fails typed. Across all three join
    /// strategies, every shard layout, both store facades.
    #[test]
    fn streaming_matches_materialized(
        g in arb_graph(),
        raw in proptest::collection::vec((0..10usize, 0..10usize, 0..10usize), 1..5),
        shards in 1..4usize,
        k in 0..12usize,
    ) {
        let pats: Vec<TriplePattern> = raw
            .into_iter()
            .map(|(s, p, o)| {
                tp(join_term_of(s, "sn"), join_term_of(p, "sp"), join_term_of(o, "sn"))
            })
            .collect();
        let single = TripleStore::from_triples(g.iter().copied());
        let sharded = ShardedStore::from_triples(shards, g.iter().copied());
        for strategy in [JoinStrategy::Pairwise, JoinStrategy::Wco, JoinStrategy::Auto] {
            single.set_join_strategy(strategy);
            sharded.set_join_strategy(strategy);

            let full: Vec<Mapping> = single.query(&pats).as_ref().clone();
            let sharded_full: Vec<Mapping> = sharded.query(&pats).as_ref().clone();

            // Exact prefix: first-k streamed rows are the materialised
            // result's first k rows, in order.
            let prefix = single.solutions_limit(&pats, k);
            prop_assert_eq!(prefix.len(), k.min(full.len()), "{} single prefix size", strategy);
            prop_assert_eq!(
                &prefix[..],
                &full[..prefix.len()],
                "{} single prefix content on {:?}",
                strategy,
                &pats
            );
            let sprefix = sharded.solutions_limit(&pats, k);
            prop_assert_eq!(
                sprefix.len(),
                k.min(sharded_full.len()),
                "{} sharded prefix size",
                strategy
            );
            prop_assert_eq!(
                &sprefix[..],
                &sharded_full[..sprefix.len()],
                "{} sharded prefix content on {:?}",
                strategy,
                &pats
            );

            // An unlimited budget changes nothing.
            let budgeted = single
                .query_budgeted(&pats, &QueryBudget::unlimited())
                .expect("unlimited");
            prop_assert_eq!(budgeted.as_ref(), &full);
            let sbudgeted = sharded
                .query_budgeted(&pats, &QueryBudget::unlimited())
                .expect("unlimited");
            prop_assert_eq!(sbudgeted.as_ref(), &sharded_full);

            // A dead budget always fails typed — fresh budget per query
            // (the first checkpoint is the one guaranteed clock check),
            // cached or not, limited or not.
            prop_assert_eq!(
                single.query_budgeted(&pats, &QueryBudget::with_deadline(Duration::ZERO)),
                Err(ExecError::DeadlineExceeded)
            );
            prop_assert_eq!(
                single.query_limited(&pats, k, &QueryBudget::with_deadline(Duration::ZERO)),
                Err(ExecError::DeadlineExceeded)
            );
            prop_assert_eq!(
                sharded.query_budgeted(&pats, &QueryBudget::with_deadline(Duration::ZERO)),
                Err(ExecError::DeadlineExceeded)
            );
            prop_assert_eq!(
                sharded.query_limited(&pats, k, &QueryBudget::with_deadline(Duration::ZERO)),
                Err(ExecError::DeadlineExceeded)
            );
            let token = CancelToken::new();
            token.cancel();
            prop_assert_eq!(
                single.query_budgeted(&pats, &QueryBudget::unlimited().and_cancel(token.clone())),
                Err(ExecError::Cancelled)
            );
            prop_assert_eq!(
                sharded.query_limited(&pats, k, &QueryBudget::unlimited().and_cancel(token)),
                Err(ExecError::Cancelled)
            );
        }
    }
}
