//! Property tests for the existential k-pebble game.

use proptest::prelude::*;
use wdsparql_hom::{ctw, find_hom_into_graph, GenTGraph, TGraph};
use wdsparql_pebble::duplicator_wins;
use wdsparql_rdf::{iri, tp, var, Mapping, RdfGraph, Triple};

/// Random small connected-ish query shapes over one predicate: paths,
/// stars, cycles, cliques — mixing low and high ctw.
#[derive(Clone, Debug)]
enum QueryShape {
    Path(usize),
    Star(usize),
    Cycle(usize),
    Clique(usize),
}

fn build(shape: &QueryShape) -> GenTGraph {
    let v = |i: usize| var(&format!("pq{i}"));
    let pats: Vec<wdsparql_rdf::TriplePattern> = match shape {
        QueryShape::Path(n) => (0..*n).map(|i| tp(v(i), iri("r"), v(i + 1))).collect(),
        QueryShape::Star(n) => (1..=*n).map(|i| tp(v(0), iri("r"), v(i))).collect(),
        QueryShape::Cycle(n) => (0..*n)
            .map(|i| tp(v(i), iri("r"), v((i + 1) % n)))
            .collect(),
        QueryShape::Clique(n) => {
            let mut out = Vec::new();
            for i in 0..*n {
                for j in (i + 1)..*n {
                    out.push(tp(v(i), iri("r"), v(j)));
                }
            }
            out
        }
    };
    GenTGraph::new(TGraph::from_patterns(pats), [])
}

fn arb_shape() -> impl Strategy<Value = QueryShape> {
    prop_oneof![
        (1usize..5).prop_map(QueryShape::Path),
        (1usize..4).prop_map(QueryShape::Star),
        (3usize..5).prop_map(QueryShape::Cycle),
        (2usize..4).prop_map(QueryShape::Clique),
    ]
}

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..5usize, 0..5usize), 1..12).prop_map(|edges| {
        RdfGraph::from_triples(
            edges
                .into_iter()
                .map(|(s, o)| Triple::from_strs(&format!("pg{s}"), "r", &format!("pg{o}"))),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property (2): →µ implies →µ_k for every k ≥ 2.
    #[test]
    fn hom_implies_pebble(shape in arb_shape(), g in arb_graph()) {
        let src = build(&shape);
        if find_hom_into_graph(&src, &g, &Mapping::new()).is_some() {
            for k in 2..=3 {
                prop_assert!(duplicator_wins(&src, &g, &Mapping::new(), k),
                    "hom exists but Duplicator loses at k={} for {:?}", k, shape);
            }
        }
    }

    /// Monotonicity: more pebbles only help the Spoiler —
    /// →µ_{k+1} implies →µ_k.
    #[test]
    fn pebble_monotone_in_k(shape in arb_shape(), g in arb_graph()) {
        let src = build(&shape);
        let w3 = duplicator_wins(&src, &g, &Mapping::new(), 3);
        let w2 = duplicator_wins(&src, &g, &Mapping::new(), 2);
        prop_assert!(!w3 || w2, "win at 3 pebbles must imply win at 2");
    }

    /// Proposition 3: when ctw(S,X) ≤ k − 1, the game decides → exactly.
    #[test]
    fn proposition3_exactness(shape in arb_shape(), g in arb_graph()) {
        let src = build(&shape);
        let width = ctw(&src).width;
        let hom = find_hom_into_graph(&src, &g, &Mapping::new()).is_some();
        for k in 2..=3 {
            if width < k {
                prop_assert_eq!(
                    duplicator_wins(&src, &g, &Mapping::new(), k),
                    hom,
                    "Prop 3 violated: ctw={} k={} shape={:?}", width, k, shape
                );
            }
        }
    }

    /// Pinning variables through µ can only make the Duplicator's life
    /// harder: if the pinned game is won, the free game is won too.
    #[test]
    fn mu_restricts_duplicator(n in 1usize..4, g in arb_graph(), pin in 0usize..5) {
        let v0 = wdsparql_rdf::Variable::new("pq0");
        let free = build(&QueryShape::Path(n));
        let pinned = GenTGraph::new(free.s.clone(), [v0]);
        let mu = Mapping::from_pairs([(v0, wdsparql_rdf::Iri::new(&format!("pg{pin}")))]);
        if g.dom_contains(wdsparql_rdf::Iri::new(&format!("pg{pin}")))
            && duplicator_wins(&pinned, &g, &mu, 2)
        {
            prop_assert!(duplicator_wins(&free, &g, &Mapping::new(), 2));
        }
    }
}
