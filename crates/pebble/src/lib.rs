//! # wdsparql-pebble
//!
//! The existential k-pebble game of Kolaitis–Vardi, adapted to generalised
//! t-graphs and RDF graphs (§3 of the paper): decides the relation
//! `(S, X) →µ_k G` in polynomial time for fixed `k` (Proposition 2).
//!
//! The Duplicator wins iff there is a non-empty family `F` of partial
//! homomorphisms `f : vars(S) \ X ⇀ dom(G)` with `|dom(f)| ≤ k` that is
//! closed under restrictions and has the forth property up to `k`
//! (every `f` with `|dom(f)| < k` extends to any further variable inside
//! `F`). We compute the greatest such family by worklist deletion from the
//! family of *all* partial homomorphisms and report whether the empty
//! assignment survives — this is exactly the k-consistency test.

#![forbid(unsafe_code)]

pub mod game;

pub use game::{duplicator_wins, pebble_game, PebbleStats};
