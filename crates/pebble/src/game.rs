//! The k-consistency fixpoint implementing `(S, X) →µ_k G`.

use std::collections::{HashMap, HashSet, VecDeque};
use wdsparql_hom::{GenTGraph, TGraph};
use wdsparql_rdf::{Iri, Mapping, Term, TripleIndex, TriplePattern, Variable};

/// Statistics from one run of the game, for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PebbleStats {
    /// Partial homomorphisms generated initially.
    pub initial_assignments: usize,
    /// Assignments deleted by the fixpoint.
    pub deleted: usize,
    /// Variable subsets considered.
    pub subsets: usize,
}

/// `(S, X) →µ_k G`: does the Duplicator win the existential k-pebble game
/// on `(S, X)`, `G` and `µ` (with `dom(µ) ⊇ X`)?
///
/// Requires `k ≥ 2` (the paper's setting). When `vars(S) \ X = ∅` the game
/// degenerates to the direct check `(S, X) →µ G` (property (1) in §3).
pub fn duplicator_wins(src: &GenTGraph, g: &dyn TripleIndex, mu: &Mapping, k: usize) -> bool {
    pebble_game(src, g, mu, k).0
}

/// As [`duplicator_wins`], also returning statistics.
pub fn pebble_game(
    src: &GenTGraph,
    g: &dyn TripleIndex,
    mu: &Mapping,
    k: usize,
) -> (bool, PebbleStats) {
    assert!(k >= 2, "the existential pebble game needs k ≥ 2");
    debug_assert!(
        src.x.iter().all(|&v| mu.contains(v)),
        "µ must be defined on X"
    );
    let vars: Vec<Variable> = src.existential_vars().into_iter().collect();
    let mut stats = PebbleStats::default();

    // Degenerate case: no existential variables — direct homomorphism test.
    if vars.is_empty() {
        let wins = src.s.maps_into_under(&mu.restrict(src.s.vars()), g);
        return (wins, stats);
    }

    // Triples fully determined by µ must hold outright: they belong to every
    // configuration of the game, including the initial one.
    let mu_x = mu.restrict(src.x.iter().copied());
    for t in src.s.iter() {
        if let Some(ground) = t.apply(&mu_x) {
            if !g.contains(&ground) {
                return (false, stats);
            }
        }
    }

    let mut solver = Consistency::new(src, g, mu, k, vars);
    let wins = solver.run(&mut stats);
    (wins, stats)
}

/// Sorted list of variable indices — the domain of a partial assignment.
type Domain = Vec<u8>;
/// IRIs assigned to the domain variables, aligned positionally.
type Assignment = Vec<Iri>;

struct SubsetEntry {
    domain: Domain,
    /// Triples of `S` whose variables are covered by `X ∪ domain` —
    /// the constraints active for this subset.
    constraints: Vec<TriplePattern>,
    live: HashSet<Assignment>,
}

struct Consistency<'a> {
    g: &'a dyn TripleIndex,
    k: usize,
    vars: Vec<Variable>,
    domain_values: Vec<Iri>,
    entries: Vec<SubsetEntry>,
    index: HashMap<Domain, usize>,
}

impl<'a> Consistency<'a> {
    fn new(
        src: &GenTGraph,
        g: &'a dyn TripleIndex,
        mu: &Mapping,
        k: usize,
        vars: Vec<Variable>,
    ) -> Consistency<'a> {
        let mu = mu.restrict(src.x.iter().copied());
        // Pre-substitute µ into S once: remaining variables are existential.
        let s_mu: TGraph = src.s.apply_mapping(&mu);
        let domain_values: Vec<Iri> = g.dom().collect();
        let mut solver = Consistency {
            g,
            k,
            vars,
            domain_values,
            entries: Vec::new(),
            index: HashMap::new(),
        };
        // Enumerate all subsets of size ≤ k.
        let n = solver.vars.len();
        let kk = k.min(n);
        let mut current: Domain = Vec::new();
        solver.enumerate_subsets(&s_mu, &mut current, 0, kk);
        solver
    }

    fn enumerate_subsets(&mut self, s_mu: &TGraph, current: &mut Domain, start: usize, k: usize) {
        self.register_subset(s_mu, current.clone());
        if current.len() == k {
            return;
        }
        for i in start..self.vars.len() {
            current.push(i as u8);
            self.enumerate_subsets(s_mu, current, i + 1, k);
            current.pop();
        }
    }

    fn register_subset(&mut self, s_mu: &TGraph, domain: Domain) {
        let covered: Vec<Variable> = domain.iter().map(|&i| self.vars[i as usize]).collect();
        let constraints: Vec<TriplePattern> = s_mu
            .iter()
            .filter(|t| t.vars().iter().all(|v| covered.contains(v)))
            .copied()
            .collect();
        let idx = self.entries.len();
        self.index.insert(domain.clone(), idx);
        self.entries.push(SubsetEntry {
            domain,
            constraints,
            live: HashSet::new(),
        });
    }

    /// Generates the initial partial homomorphisms of one subset by
    /// backtracking over its variables, checking each constraint as soon as
    /// it is fully assigned.
    fn generate_initial(&mut self, idx: usize) -> usize {
        let domain = self.entries[idx].domain.clone();
        let constraints = self.entries[idx].constraints.clone();
        let mut assignment: Assignment = Vec::with_capacity(domain.len());
        let mut out: Vec<Assignment> = Vec::new();
        self.gen_rec(&domain, &constraints, &mut assignment, &mut out);
        let count = out.len();
        self.entries[idx].live = out.into_iter().collect();
        count
    }

    fn gen_rec(
        &self,
        domain: &Domain,
        constraints: &[TriplePattern],
        assignment: &mut Assignment,
        out: &mut Vec<Assignment>,
    ) {
        if assignment.len() == domain.len() {
            out.push(assignment.clone());
            return;
        }
        for &val in &self.domain_values {
            assignment.push(val);
            if self.prefix_consistent(domain, constraints, assignment) {
                self.gen_rec(domain, constraints, assignment, out);
            }
            assignment.pop();
        }
    }

    /// Checks the constraints whose variables are all within the assigned
    /// prefix (the last assigned variable being the interesting one).
    fn prefix_consistent(
        &self,
        domain: &Domain,
        constraints: &[TriplePattern],
        assignment: &Assignment,
    ) -> bool {
        let assigned = assignment.len();
        let value_of = |v: Variable| -> Option<Iri> {
            domain[..assigned]
                .iter()
                .position(|&i| self.vars[i as usize] == v)
                .map(|p| assignment[p])
        };
        let last_var = self.vars[domain[assigned - 1] as usize];
        'next: for t in constraints {
            // Only re-check constraints that involve the newest variable
            // and are fully assigned.
            let mut involves_last = false;
            let mut ground = [Iri::new("_"); 3];
            for (slot, term) in ground.iter_mut().zip(t.positions()) {
                match term {
                    Term::Iri(i) => *slot = i,
                    Term::Var(v) => {
                        if v == last_var {
                            involves_last = true;
                        }
                        match value_of(v) {
                            Some(i) => *slot = i,
                            None => continue 'next, // not fully assigned yet
                        }
                    }
                }
            }
            if involves_last
                && !self
                    .g
                    .contains(&wdsparql_rdf::Triple::new(ground[0], ground[1], ground[2]))
            {
                return false;
            }
        }
        true
    }

    fn run(&mut self, stats: &mut PebbleStats) -> bool {
        stats.subsets = self.entries.len();
        for idx in 0..self.entries.len() {
            stats.initial_assignments += self.generate_initial(idx);
        }
        // Worklist of deletions to process: (subset index, assignment).
        let mut work: VecDeque<(usize, Assignment)> = VecDeque::new();
        // Initial forth check on every assignment.
        for idx in 0..self.entries.len() {
            let doomed: Vec<Assignment> = self.entries[idx]
                .live
                .iter()
                .filter(|f| !self.has_forth(idx, f))
                .cloned()
                .collect();
            for f in doomed {
                if self.entries[idx].live.remove(&f) {
                    work.push_back((idx, f));
                }
            }
        }
        while let Some((idx, f)) = work.pop_front() {
            stats.deleted += 1;
            let domain = self.entries[idx].domain.clone();
            // (a) Downward closure: supersets extending f by one variable
            // must lose every extension of f.
            if domain.len() < self.k.min(self.vars.len()) {
                for x in 0..self.vars.len() as u8 {
                    if domain.contains(&x) {
                        continue;
                    }
                    let (sup_dom, pos) = insert_sorted(&domain, x);
                    let sup_idx = self.index[&sup_dom];
                    for &a in &self.domain_values.clone() {
                        let mut g = f.clone();
                        g.insert(pos, a);
                        if self.entries[sup_idx].live.remove(&g) {
                            work.push_back((sup_idx, g));
                        }
                    }
                }
            }
            // (b) Forth support: each restriction of f may have lost its
            // last extension through the removed variable.
            for (pos, _) in domain.iter().enumerate() {
                let mut sub_dom = domain.clone();
                let removed = sub_dom.remove(pos);
                let mut f_sub = f.clone();
                f_sub.remove(pos);
                let sub_idx = self.index[&sub_dom];
                if !self.entries[sub_idx].live.contains(&f_sub) {
                    continue;
                }
                if !self.supports(idx, &sub_dom, &f_sub, removed) {
                    self.entries[sub_idx].live.remove(&f_sub);
                    work.push_back((sub_idx, f_sub));
                }
            }
        }
        // Duplicator wins iff the empty assignment survives.
        let empty_idx = self.index[&Vec::new()];
        !self.entries[empty_idx].live.is_empty()
    }

    /// Does assignment `f` over `sub_dom` still extend by variable `x`
    /// inside the live set of the superset `sub_dom ∪ {x}` (= entry `idx`)?
    fn supports(&self, sup_idx: usize, sub_dom: &Domain, f: &Assignment, x: u8) -> bool {
        let (_, pos) = insert_sorted(sub_dom, x);
        self.domain_values.iter().any(|&a| {
            let mut g = f.clone();
            g.insert(pos, a);
            self.entries[sup_idx].live.contains(&g)
        })
    }

    /// Forth property for `f` over its entry's domain: every outside
    /// variable has at least one live extension.
    fn has_forth(&self, idx: usize, f: &Assignment) -> bool {
        let domain = &self.entries[idx].domain;
        if domain.len() >= self.k.min(self.vars.len()) {
            return true;
        }
        (0..self.vars.len() as u8)
            .filter(|x| !domain.contains(x))
            .all(|x| {
                let (sup_dom, pos) = insert_sorted(domain, x);
                let sup_idx = self.index[&sup_dom];
                self.domain_values.iter().any(|&a| {
                    let mut g = f.clone();
                    g.insert(pos, a);
                    self.entries[sup_idx].live.contains(&g)
                })
            })
    }
}

/// Inserts `x` into a sorted domain, returning the new domain and the
/// insertion position.
fn insert_sorted(domain: &Domain, x: u8) -> (Domain, usize) {
    let pos = domain.partition_point(|&y| y < x);
    let mut out = domain.clone();
    out.insert(pos, x);
    (out, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_hom::{find_hom_into_graph, GenTGraph, TGraph};
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;
    use wdsparql_rdf::RdfGraph;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn triangle() -> TGraph {
        TGraph::from_patterns([
            tp(var("a"), iri("r"), var("b")),
            tp(var("b"), iri("r"), var("c")),
            tp(var("c"), iri("r"), var("a")),
        ])
    }

    fn path(n: usize) -> TGraph {
        TGraph::from_patterns(
            (0..n).map(|i| tp(var(&format!("v{i}")), iri("r"), var(&format!("v{}", i + 1)))),
        )
    }

    fn path_graph(n: usize) -> RdfGraph {
        RdfGraph::from_triples((0..n).map(|i| {
            wdsparql_rdf::Triple::from_strs(&format!("n{i}"), "r", &format!("n{}", i + 1))
        }))
    }

    #[test]
    fn hom_implies_pebble_win() {
        // Property (2): →µ implies →µ_k.
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        let src = GenTGraph::new(triangle(), []);
        assert!(find_hom_into_graph(&src, &g, &Mapping::new()).is_some());
        for k in 2..=4 {
            assert!(duplicator_wins(&src, &g, &Mapping::new(), k), "k={k}");
        }
    }

    #[test]
    fn two_pebbles_cannot_refute_triangle_into_two_cycle() {
        // The classic relaxation gap: K3 (ctw 2) has no hom into the
        // directed 2-cycle, but the Duplicator wins with 2 pebbles.
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "1")]);
        let src = GenTGraph::new(triangle(), []);
        assert!(find_hom_into_graph(&src, &g, &Mapping::new()).is_none());
        assert!(duplicator_wins(&src, &g, &Mapping::new(), 2));
        // Three pebbles pin all variables: Spoiler wins (Proposition 3,
        // ctw = 2 ≤ 3 − 1).
        assert!(!duplicator_wins(&src, &g, &Mapping::new(), 3));
    }

    #[test]
    fn path_queries_are_exact_at_k2() {
        // Paths have ctw 1, so k = 2 decides homomorphism exactly
        // (Proposition 3).
        for len in 1..=4 {
            let src = GenTGraph::new(path(len), []);
            for target_len in 1..=4 {
                let g = path_graph(target_len);
                let hom = find_hom_into_graph(&src, &g, &Mapping::new()).is_some();
                let peb = duplicator_wins(&src, &g, &Mapping::new(), 2);
                assert_eq!(hom, peb, "path {len} into path {target_len}");
                assert_eq!(hom, len <= target_len);
            }
        }
    }

    #[test]
    fn mu_constrains_the_game() {
        // Path of length 2 pinned at both ends.
        let src = GenTGraph::new(path(2), [v("v0"), v("v2")]);
        let g = path_graph(2);
        let good = Mapping::from_strs([("v0", "n0"), ("v2", "n2")]);
        let bad = Mapping::from_strs([("v0", "n1"), ("v2", "n1")]);
        assert!(duplicator_wins(&src, &g, &good, 2));
        assert!(!duplicator_wins(&src, &g, &bad, 2));
    }

    #[test]
    fn no_existential_vars_degenerates_to_hom_check() {
        let s = TGraph::from_patterns([tp(var("x"), iri("r"), var("y"))]);
        let src = GenTGraph::new(s, [v("x"), v("y")]);
        let g = RdfGraph::from_strs([("a", "r", "b")]);
        let yes = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let no = Mapping::from_strs([("x", "b"), ("y", "a")]);
        for k in 2..=3 {
            assert!(duplicator_wins(&src, &g, &yes, k));
            assert!(!duplicator_wins(&src, &g, &no, k));
        }
    }

    #[test]
    fn empty_graph_defeats_duplicator() {
        let src = GenTGraph::new(path(1), []);
        let g = RdfGraph::new();
        assert!(!duplicator_wins(&src, &g, &Mapping::new(), 2));
    }

    #[test]
    fn ground_source_triples_must_be_in_graph() {
        let s = TGraph::from_patterns([
            tp(iri("a"), iri("r"), iri("b")),
            tp(var("x"), iri("r"), var("y")),
        ]);
        let src = GenTGraph::new(s, []);
        let with = RdfGraph::from_strs([("a", "r", "b")]);
        let without = RdfGraph::from_strs([("a", "r", "c")]);
        assert!(duplicator_wins(&src, &with, &Mapping::new(), 2));
        assert!(!duplicator_wins(&src, &without, &Mapping::new(), 2));
    }

    #[test]
    fn pebble_agrees_with_hom_on_low_ctw_random_instances() {
        // Deterministic LCG-driven random star/path-shaped queries
        // (ctw ≤ 1) against small random graphs: k = 2 must agree with →.
        let mut state = 0xDEADBEEFu64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..30 {
            let n_edges = 3 + next(6) as usize;
            let g = RdfGraph::from_triples((0..n_edges).map(|_| {
                wdsparql_rdf::Triple::from_strs(
                    &format!("g{}", next(5)),
                    "r",
                    &format!("g{}", next(5)),
                )
            }));
            // Random path query of length 1..4.
            let len = 1 + next(3) as usize;
            let src = GenTGraph::new(path(len), []);
            let hom = find_hom_into_graph(&src, &g, &Mapping::new()).is_some();
            let peb = duplicator_wins(&src, &g, &Mapping::new(), 2);
            assert_eq!(hom, peb, "trial {trial}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = path_graph(3);
        let src = GenTGraph::new(path(2), []);
        let (win, stats) = pebble_game(&src, &g, &Mapping::new(), 2);
        assert!(win);
        assert!(stats.subsets > 0);
        assert!(stats.initial_assignments > 0);
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k_one_is_rejected() {
        let g = path_graph(1);
        let src = GenTGraph::new(path(1), []);
        let _ = duplicator_wins(&src, &g, &Mapping::new(), 1);
    }
}
