//! The experiments harness: regenerates every figure/claim table of the
//! paper (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! Usage: `cargo run -p wdsparql-bench --release --bin experiments -- [--smoke] [e1|e2|...|e18|all]`
//!
//! `--smoke` runs the full suite at reduced scale (smaller parameter
//! sweeps, shorter timing budgets) — every experiment and its
//! correctness assertions still execute, in seconds instead of minutes;
//! CI uses it to keep the harness exercised.

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use std::time::Duration;
use wdsparql_bench::{fmt_duration, time_median, time_once, Table};
use wdsparql_core::{check_forest, check_forest_pebble};
use wdsparql_hardness::{clique_family_parameter, has_k_clique, lemma3_witness, reduce_clique};
use wdsparql_hom::{
    core_of, ctw, find_hom_into_graph, is_core, maps_to, tw_gen, GenTGraph, TGraph, UGraph,
};
use wdsparql_pebble::{duplicator_wins, pebble_game};
use wdsparql_rdf::Mapping;
use wdsparql_tree::{Wdpf, ROOT};
use wdsparql_width::{
    branch_treewidth, domination_width, forest_subtrees, gtg, local_width, local_width_forest,
    ForestSubtree,
};
use wdsparql_workloads as wl;

/// Set once from `--smoke` before any experiment runs.
static SMOKE: OnceLock<bool> = OnceLock::new();

fn smoke() -> bool {
    *SMOKE.get().unwrap_or(&false)
}

/// Sweep upper bound: `full` normally, `small` under `--smoke`.
fn scale(full: usize, small: usize) -> usize {
    if smoke() {
        small
    } else {
        full
    }
}

/// Parameter list prefix: the whole list normally, the first `small`
/// entries under `--smoke`.
fn sweep<T>(xs: &[T], small: usize) -> &[T] {
    if smoke() {
        &xs[..xs.len().min(small)]
    } else {
        xs
    }
}

/// Timing budget, cut to a tenth (min 5ms) under `--smoke`.
fn budget_ms(ms: u64) -> Duration {
    Duration::from_millis(if smoke() { (ms / 10).max(5) } else { ms })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_flag = args.iter().any(|a| a == "--smoke");
    SMOKE.set(smoke_flag).expect("SMOKE set once");
    let which = args
        .iter()
        .map(String::as_str)
        .find(|a| !a.starts_with("--"))
        .unwrap_or("all");
    let all = which == "all";
    let run = |id: &str| all || which == id;

    if run("e1") {
        e1_figure1();
    }
    if run("e2") {
        e2_figure2_gtg();
    }
    if run("e3") {
        e3_figure3_domination();
    }
    if run("e4") {
        e4_frontier();
    }
    if run("e5") {
        e5_dichotomy_fk();
    }
    if run("e6") {
        e6_union_free();
    }
    if run("e7") {
        e7_pebble_scaling();
    }
    if run("e8") {
        e8_proposition3();
    }
    if run("e9") {
        e9_proposition5();
    }
    if run("e10") {
        e10_reduction();
    }
    if run("e11") {
        e11_lemma3();
    }
    if run("e12") {
        e12_ablation();
    }
    if run("e14") {
        e14_enumeration_delay();
    }
    if run("e15") {
        e15_recognition();
    }
    if run("e16") {
        e16_projection_hardness();
    }
    if run("e17") {
        e17_containment();
    }
    if run("e18") {
        e18_wcoj();
    }
}

/// E1 — Figure 1 / Example 3: the widths of (S,X) and (S',X).
fn e1_figure1() {
    let mut t = Table::new(
        "E1  Figure 1 / Example 3 — tw and ctw of (S,X), (S',X)",
        &[
            "k",
            "ctw(S,X) [paper: k-1]",
            "is_core(S,X)",
            "tw(S',X) [k-1]",
            "ctw(S',X) [1]",
            "core(S')=C'",
        ],
    );
    for k in 2..=scale(6, 3) {
        let s = wl::example3_s(k);
        let sp = wl::example3_s_prime(k);
        let c = core_of(&sp);
        t.row(&[
            &k,
            &ctw(&s).width,
            &is_core(&s),
            &tw_gen(&sp).width,
            &ctw(&sp).width,
            &(c.s == wl::example3_c_prime()),
        ]);
    }
    println!("{}", t.render());
}

/// E2 — Figure 2 / Example 4: the GtG structure of F_k.
fn e2_figure2_gtg() {
    let mut t = Table::new(
        "E2  Figure 2 / Example 4 — subtrees of F_k with non-empty GtG (paper: exactly 5)",
        &[
            "k",
            "subtrees",
            "non-empty GtG",
            "|GtG(T1[r1])|",
            "ctws of GtG(T1[r1])",
        ],
    );
    for k in 2..=scale(5, 3) {
        let f = wl::fk_forest(k);
        let subtrees = forest_subtrees(&f);
        let nonempty = subtrees.iter().filter(|st| !gtg(&f, st).is_empty()).count();
        let root = ForestSubtree {
            tree: 0,
            nodes: [ROOT].into_iter().collect(),
        };
        let elements = gtg(&f, &root);
        let mut widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
        widths.sort();
        let widths_s = format!("{widths:?}");
        t.row(&[&k, &subtrees.len(), &nonempty, &elements.len(), &widths_s]);
    }
    println!("{}", t.render());
}

/// E3 — Figure 3 / Example 5: domination inside GtG(T1\[r1\]) and dw(F_k).
fn e3_figure3_domination() {
    let mut t = Table::new(
        "E3  Figure 3 / Example 5 — (S∆1) → (S∆2) and dw(F_k) = 1",
        &["k", "ctw(S∆1)", "ctw(S∆2)", "S∆1→S∆2", "S∆2→S∆1", "dw(F_k)"],
    );
    for k in 2..=scale(5, 3) {
        let f = wl::fk_forest(k);
        let root = ForestSubtree {
            tree: 0,
            nodes: [ROOT].into_iter().collect(),
        };
        let elements = gtg(&f, &root);
        let lo = elements.iter().min_by_key(|e| ctw(&e.graph).width).unwrap();
        let hi = elements.iter().max_by_key(|e| ctw(&e.graph).width).unwrap();
        t.row(&[
            &k,
            &ctw(&lo.graph).width,
            &ctw(&hi.graph).width,
            &maps_to(&lo.graph, &hi.graph),
            &maps_to(&hi.graph, &lo.graph),
            &domination_width(&f),
        ]);
    }
    println!("{}", t.render());
}

/// E4 — the tractability frontier across families (end of §3.1/§3.2).
fn e4_frontier() {
    let mut t = Table::new(
        "E4  The frontier: dw vs bw vs local width across families",
        &[
            "family",
            "dw",
            "bw",
            "local",
            "verdict (Theorem 3 / Cor. 1)",
        ],
    );
    for k in 2..=scale(4, 3) {
        let f = wl::fk_forest(k);
        t.row(&[
            &format!("F_{k}"),
            &domination_width(&f),
            &"-",
            &local_width_forest(&f),
            &"PTIME (dominated; not locally tractable)",
        ]);
    }
    for k in 2..=scale(4, 3) {
        let tr = wl::tprime_tree(k);
        let bw = branch_treewidth(&tr);
        let lw = local_width(&tr);
        let dw = domination_width(&Wdpf::new(vec![tr]));
        t.row(&[
            &format!("T'_{k}"),
            &dw,
            &bw,
            &lw,
            &"PTIME (bw = 1; not locally tractable)",
        ]);
    }
    for k in 2..=scale(4, 3) {
        let tr = wl::clique_child_tree(k);
        let bw = branch_treewidth(&tr);
        let lw = local_width(&tr);
        let dw = domination_width(&Wdpf::new(vec![tr]));
        t.row(&[
            &format!("Q_{k}"),
            &dw,
            &bw,
            &lw,
            &"W[1]-hard as a class (width grows)",
        ]);
    }
    println!("{}", t.render());
}

/// E5 — Theorem 1 dichotomy on {F_k}: naive vs pebble runtimes.
fn e5_dichotomy_fk() {
    let mut t = Table::new(
        "E5  Theorem 1 on {F_k} (positive instances): naive (coNP) vs pebble (PTIME, k=dw=1)",
        &["k", "|G|", "naive", "pebble(k=1)", "agree", "speedup"],
    );
    let budget = budget_ms(300);
    for k in 3..=scale(6, 4) {
        let n = 4 * (k - 1);
        let inst = wl::fk_instance(k, n);
        let (naive_ans, _) = time_once(|| check_forest(&inst.forest, &inst.graph, &inst.mu));
        let naive_t = time_median(budget, || check_forest(&inst.forest, &inst.graph, &inst.mu));
        let peb_ans = check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1);
        let peb_t = time_median(budget, || {
            check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1)
        });
        let speedup = naive_t.as_secs_f64() / peb_t.as_secs_f64().max(1e-9);
        t.row(&[
            &k,
            &inst.graph.len(),
            &fmt_duration(naive_t),
            &fmt_duration(peb_t),
            &(naive_ans == peb_ans && naive_ans == inst.expected),
            &format!("{speedup:.1}x"),
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: naive grows superpolynomially in k, pebble stays flat)\n");
}

/// E6 — Corollary 1: UNION-free families, tractable vs intractable.
fn e6_union_free() {
    let mut t = Table::new(
        "E6  Corollary 1 (UNION-free): bounded bw (T'_k) vs unbounded bw (Q_k), naive evaluator",
        &[
            "k",
            "T'_k naive",
            "Q_k naive",
            "Q_k pebble(k-1) [exact]",
            "Q_k answers agree",
        ],
    );
    let budget = budget_ms(300);
    for k in 3..=scale(5, 4) {
        // The pebble game state space is (n*d)^k: keep the adversary small
        // enough that the k = 5 row (4 pebbles) stays tractable to *run*
        // while still showing the growth.
        let n = 3 * (k - 1);
        let tp = wl::tprime_instance(k, n);
        let tp_t = time_median(budget, || check_forest(&tp.forest, &tp.graph, &tp.mu));
        let q = wl::clique_instance(k, n);
        let (q_naive, _) = time_once(|| check_forest(&q.forest, &q.graph, &q.mu));
        let q_t = time_median(budget, || check_forest(&q.forest, &q.graph, &q.mu));
        let q_peb = check_forest_pebble(&q.forest, &q.graph, &q.mu, k - 1);
        let q_peb_t = time_median(budget, || {
            check_forest_pebble(&q.forest, &q.graph, &q.mu, k - 1)
        });
        t.row(&[
            &k,
            &fmt_duration(tp_t),
            &fmt_duration(q_t),
            &fmt_duration(q_peb_t),
            &(q_naive == q.expected && q_peb == q.expected),
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: T'_k flat; both Q_k columns grow with k — no algorithm is\n polynomial on an unbounded-width class, matching Theorem 2)\n");
}

/// E7 — Proposition 2: pebble game cost scaling in |dom(G)| and k.
fn e7_pebble_scaling() {
    // Headers follow the sweep — under --smoke it is truncated, and a
    // skipped column must say so rather than promise a measurement.
    let all_ns = [9usize, 12, 15, 18];
    let ns = sweep(&all_ns, 2);
    let n_cols: Vec<String> = all_ns
        .iter()
        .map(|n| {
            if ns.contains(n) {
                format!("n={n}")
            } else {
                format!("n={n} (skipped)")
            }
        })
        .collect();
    let assignments_col = format!("assignments@{}", ns.last().expect("sweep is non-empty"));
    let mut t = Table::new(
        "E7  Proposition 2 — pebble game cost vs |dom(G)| and k (polynomial for fixed k)",
        &[
            "k",
            &n_cols[0],
            &n_cols[1],
            &n_cols[2],
            &n_cols[3],
            &assignments_col,
        ],
    );
    let budget = budget_ms(250);
    // A fixed query: root ∪ K4 clique child (4 existential variables).
    let tree = wl::clique_child_tree(4);
    let child = tree.children(ROOT)[0];
    let pat = tree.pat(child).union(tree.pat(ROOT));
    let x: Vec<_> = pat
        .vars()
        .into_iter()
        .filter(|v| ["x", "y"].contains(&v.name()))
        .collect();
    let src = GenTGraph::new(pat, x);
    for k in 2..=scale(4, 3) {
        let mut cells: Vec<String> = Vec::new();
        let mut last_assignments = 0;
        for &n in ns {
            let inst = wl::clique_instance(4, n);
            let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
            let d = time_median(budget, || duplicator_wins(&src, &inst.graph, &mu, k));
            let (_, stats) = pebble_game(&src, &inst.graph, &mu, k);
            last_assignments = stats.initial_assignments;
            cells.push(fmt_duration(d));
        }
        cells.resize(4, "-".into());
        t.row(&[
            &k,
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
            &last_assignments,
        ]);
    }
    println!("{}", t.render());
    println!("(expected shape: each row polynomial in n; cost jumps with k as d^k)\n");
}

/// E8 — Proposition 3: →k coincides with → when ctw ≤ k−1.
fn e8_proposition3() {
    let mut t = Table::new(
        "E8  Proposition 3 — agreement of →µ_k with →µ (ctw ≤ k−1: must be 100%)",
        &[
            "query ctw",
            "k",
            "trials",
            "agreements",
            "relaxation gaps (ctw > k−1)",
        ],
    );
    let mut lcg: u64 = 0xABCDEF12345;
    let mut next = move |m: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) % m
    };
    let cases: Vec<(&str, GenTGraph, usize, bool)> = vec![
        ("1 (path)", path_query(3), 2, true),
        ("2 (triangle)", triangle_query(), 2, false),
        ("2 (triangle)", triangle_query(), 3, true),
    ];
    for (label, src, k, exact) in cases {
        let trials = scale(60, 12);
        let mut agree = 0;
        let mut gaps = 0;
        for _ in 0..trials {
            let n_edges = 4 + next(8) as usize;
            let g = wdsparql_rdf::RdfGraph::from_triples((0..n_edges).map(|_| {
                wdsparql_rdf::Triple::from_strs(
                    &format!("v{}", next(5)),
                    "r",
                    &format!("v{}", next(5)),
                )
            }));
            let hom = find_hom_into_graph(&src, &g, &Mapping::new()).is_some();
            let peb = duplicator_wins(&src, &g, &Mapping::new(), k);
            if hom == peb {
                agree += 1;
            } else {
                gaps += 1;
                assert!(peb && !hom, "the relaxation can only over-approximate");
            }
        }
        if exact {
            assert_eq!(agree, trials, "Proposition 3 violated");
        }
        t.row(&[&label, &k, &trials, &agree, &gaps]);
    }
    println!("{}", t.render());
}

fn path_query(len: usize) -> GenTGraph {
    let pats = (0..len).map(|i| {
        wdsparql_rdf::tp(
            wdsparql_rdf::var(&format!("e8p{i}")),
            wdsparql_rdf::iri("r"),
            wdsparql_rdf::var(&format!("e8p{}", i + 1)),
        )
    });
    GenTGraph::new(TGraph::from_patterns(pats), [])
}

fn triangle_query() -> GenTGraph {
    let v = wdsparql_rdf::var;
    GenTGraph::new(
        TGraph::from_patterns([
            wdsparql_rdf::tp(v("e8a"), wdsparql_rdf::iri("r"), v("e8b")),
            wdsparql_rdf::tp(v("e8b"), wdsparql_rdf::iri("r"), v("e8c")),
            wdsparql_rdf::tp(v("e8c"), wdsparql_rdf::iri("r"), v("e8a")),
        ]),
        [],
    )
}

/// E9 — Proposition 5: dw = bw on random UNION-free trees.
fn e9_proposition5() {
    let mut t = Table::new(
        "E9  Proposition 5 — dw(P) = bw(P) on random UNION-free wdPTs",
        &["seeds", "equalities", "max dw seen", "max nodes"],
    );
    let mut equal = 0;
    let mut max_dw = 0;
    let mut max_nodes = 0;
    let seeds = scale(30, 8) as u64;
    for seed in 0..seeds {
        let tree = wl::random_wdpt(wl::RandomTreeParams::default(), seed);
        max_nodes = max_nodes.max(tree.len());
        let bw = branch_treewidth(&tree);
        let dw = domination_width(&Wdpf::new(vec![tree]));
        assert_eq!(dw, bw, "Proposition 5 violated at seed {seed}");
        equal += 1;
        max_dw = max_dw.max(dw);
    }
    t.row(&[&seeds, &equal, &max_dw, &max_nodes]);
    println!("{}", t.render());
}

/// E10 — the §4.2 reduction, end to end.
fn e10_reduction() {
    let mut t = Table::new(
        "E10  §4.2 reduction p-CLIQUE → p-co-wdEVAL (k = 2): H has k-clique ⟺ µ ∉ ⟦P⟧_G",
        &["H", "|B|", "|G|", "build", "k-clique", "µ∈⟦P⟧", "agree"],
    );
    let k = 2;
    let m = clique_family_parameter(k).max(2);
    let mut cases: Vec<(String, UGraph)> = vec![
        ("P4".into(), UGraph::path(4)),
        ("C5".into(), UGraph::cycle(5)),
        ("K4".into(), UGraph::complete(4)),
        ("K6".into(), UGraph::complete(6)),
        ("star+edge".into(), {
            let mut g = UGraph::new(6);
            for i in 1..6 {
                g.add_edge(0, i);
            }
            g
        }),
    ];
    if smoke() {
        cases.truncate(3);
    }
    for (label, h) in cases {
        let forest = Wdpf::new(vec![wl::clique_child_tree(m)]);
        let (inst, build) = time_once(|| reduce_clique(forest, &h, k, m - 1).unwrap());
        let clique = has_k_clique(&h, k);
        let member = check_forest(&inst.forest, &inst.graph, &inst.mu);
        t.row(&[
            &label,
            &inst.lemma2.b.s.len(),
            &inst.graph.len(),
            &fmt_duration(build),
            &clique,
            &member,
            &(clique != member),
        ]);
        assert_eq!(clique, !member, "reduction correctness");
    }
    println!("{}", t.render());

    // k = 3 at the t-graph level: Lemma 2 condition (3) directly (the
    // frozen-graph evaluation is exercised at k = 2 above). The decider is
    // the slot-respecting search, exact by the core-automorphism argument
    // (see hardness::lemma2::slot_respecting_hom_exists) — the generic
    // refutation is itself an NP-hard instance by design.
    let mut t3 = Table::new(
        "E10b Lemma 2 condition (3) at k = 3: H has triangle ⟺ (S,X) → (B,X)",
        &[
            "H",
            "|B|",
            "build+check",
            "triangle",
            "(S,X)→(B,X)",
            "agree",
        ],
    );
    let s = clique_source_for(9);
    let mut cases3: Vec<(String, UGraph)> = vec![
        ("C5 (triangle-free)".into(), UGraph::cycle(5)),
        ("Petersen-ish C7".into(), UGraph::cycle(7)),
        ("C5+chord".into(), {
            let mut g = UGraph::cycle(5);
            g.add_edge(0, 2);
            g
        }),
        ("K4".into(), UGraph::complete(4)),
        ("grid 3x3".into(), UGraph::grid(3, 3)),
    ];
    if smoke() {
        cases3.truncate(3);
    }
    for (label, h) in cases3 {
        let ((out, hom), t_build) = time_once(|| {
            let out = wdsparql_hardness::lemma2(&s, &h, 3).unwrap();
            let hom = wdsparql_hardness::slot_respecting_hom_exists(&out);
            (out, hom)
        });
        let tri = has_k_clique(&h, 3);
        t3.row(&[
            &label,
            &out.b.s.len(),
            &fmt_duration(t_build),
            &tri,
            &hom,
            &(tri == hom),
        ]);
        assert_eq!(tri, hom, "Lemma 2 condition (3)");
    }
    println!("{}", t3.render());
}

fn clique_source_for(m: usize) -> GenTGraph {
    let tree = wl::clique_child_tree(m);
    let child = tree.children(ROOT)[0];
    let pat = tree.pat(ROOT).union(tree.pat(child));
    let x: Vec<_> = pat
        .vars()
        .into_iter()
        .filter(|v| ["x", "y"].contains(&v.name()))
        .collect();
    GenTGraph::new(pat, x)
}

/// E11 — Lemma 3 witnesses on unbounded-width forests.
fn e11_lemma3() {
    let mut t = Table::new(
        "E11  Lemma 3 — witness search: ctw ≥ k and hom-minimality",
        &[
            "family",
            "threshold k",
            "witness found",
            "witness ctw",
            "minimality verified",
        ],
    );
    for m in 3..=scale(5, 4) {
        let f = Wdpf::new(vec![wl::clique_child_tree(m)]);
        let threshold = m - 1;
        match lemma3_witness(&f, threshold) {
            Some(w) => {
                let elements = gtg(&f, &w.subtree);
                let minimal = elements.iter().all(|e| {
                    !maps_to(&e.graph, &w.element.graph) || maps_to(&w.element.graph, &e.graph)
                });
                t.row(&[&format!("Q_{m}"), &threshold, &true, &w.ctw, &minimal]);
            }
            None => t.row(&[&format!("Q_{m}"), &threshold, &false, &0usize, &false]),
        }
    }
    // Bounded family: no witness above its width.
    let f = wl::fk_forest(4);
    let none = lemma3_witness(&f, 2).is_none();
    t.row(&[&"F_4", &2usize, &!none, &0usize, &none]);
    println!("{}", t.render());
}

/// E12 — ablation: pebble algorithm below the domination width.
fn e12_ablation() {
    let mut t = Table::new(
        "E12  Ablation — pebble evaluator below dw: soundness holds, completeness fails",
        &[
            "family",
            "dw",
            "k used",
            "false accepts",
            "false rejects",
            "trials",
        ],
    );
    for &m in sweep(&[3usize, 4], 1) {
        let dw = m - 1;
        let mut false_accepts = 0;
        let mut false_rejects = 0;
        let mut trials = 0;
        for &n in sweep(&[6usize, 8, 10], 2) {
            let inst = wl::clique_instance(m, n);
            let truth = check_forest(&inst.forest, &inst.graph, &inst.mu);
            let approx = check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1);
            trials += 1;
            if approx && !truth {
                false_accepts += 1;
            }
            if !approx && truth {
                false_rejects += 1;
            }
        }
        t.row(&[
            &format!("Q_{m}"),
            &dw,
            &1usize,
            &false_accepts,
            &false_rejects,
            &trials,
        ]);
        assert_eq!(false_accepts, 0, "soundness is unconditional");
    }
    println!("{}", t.render());
    println!(
        "(false rejects are expected: below dw the pebble test loses completeness;\n \
         false accepts would contradict the soundness half of Theorem 1)\n"
    );
}

/// E14 — enumeration with work counters: per-solution delay on the
/// bounded-width chain family vs the clique-child family (§5's
/// enumeration variant).
fn e14_enumeration_delay() {
    use wdsparql_core::enumerate_with_stats;
    let mut t = Table::new(
        "E14  Enumeration — solutions, work and max per-solution delay",
        &[
            "family",
            "solutions",
            "emitted",
            "hom calls",
            "steps",
            "max delay",
            "time",
        ],
    );
    // Bounded side: chains of depth d over a 2-way branching layered graph.
    for &depth in sweep(&[2usize, 3, 4], 2) {
        let tree = wl::chain_tree(depth);
        let mut g = wdsparql_rdf::RdfGraph::new();
        for i in 0..depth {
            for j in 0..2usize {
                for j2 in 0..2usize {
                    g.insert(wdsparql_rdf::Triple::from_strs(
                        &format!("l{i}_{j}"),
                        &format!("p{i}"),
                        &format!("l{}_{j2}", i + 1),
                    ));
                }
            }
        }
        let f = Wdpf::new(vec![tree]);
        let ((sols, stats), d) = time_once(|| enumerate_with_stats(&f, &g));
        t.row(&[
            &format!("Chain_{depth} / layered(2)"),
            &sols.len(),
            &stats.emitted,
            &stats.hom_calls,
            &stats.steps,
            &stats.max_delay_steps,
            &fmt_duration(d),
        ]);
    }
    // Unbounded side: Q_k against the Turán adversary — few solutions,
    // most of the work is one long refutation (delay ≈ all steps).
    for &k in sweep(&[3usize, 4], 1) {
        let inst = wl::clique_instance(k, 4 * (k - 1));
        let ((sols, stats), d) = time_once(|| enumerate_with_stats(&inst.forest, &inst.graph));
        t.row(&[
            &inst.label,
            &sols.len(),
            &stats.emitted,
            &stats.hom_calls,
            &stats.steps,
            &stats.max_delay_steps,
            &fmt_duration(d),
        ]);
    }
    println!("{}", t.render());
}

/// E15 — the recognition problem (paper §5 conclusions): decide
/// `dw(P) ≤ k` / `bw(P) ≤ k` with certificates, and verify them.
fn e15_recognition() {
    use wdsparql_width::{recognize_bw, recognize_dw, verify_dw_certificate, DwCertificate};
    let mut t = Table::new(
        "E15  Recognition — dw(P) ≤ k / bw(P) ≤ k with certificates",
        &["family", "measure", "k", "holds", "certificate", "time"],
    );
    for k in 2..=scale(4, 3) {
        let f = wl::fk_forest(k);
        let (cert, d) = time_once(|| recognize_dw(&f, 1));
        let (holds, detail) = match &cert {
            DwCertificate::Holds(entries) => (
                true,
                format!(
                    "verified={} ({} subtrees)",
                    verify_dw_certificate(&f, 1, entries),
                    entries.len()
                ),
            ),
            DwCertificate::Violated(v) => (false, format!("ctw {} element", v.element_ctw)),
        };
        t.row(&[
            &format!("F_{k}"),
            &"dw",
            &1usize,
            &holds,
            &detail,
            &fmt_duration(d),
        ]);
    }
    for &m in sweep(&[3usize, 4, 5], 2) {
        let q = wl::clique_child_tree(m);
        // At m − 2: violated with a ctw = m − 1 witness.
        let (cert, d) = time_once(|| recognize_bw(&q, m - 2));
        let detail = match &cert {
            wdsparql_width::BwCertificate::Violated(v) => {
                format!("node {} has ctw {}", v.node.0, v.ctw)
            }
            wdsparql_width::BwCertificate::Holds(_) => "unexpected".into(),
        };
        t.row(&[
            &format!("Q_{m}"),
            &"bw",
            &(m - 2),
            &cert.holds(),
            &detail,
            &fmt_duration(d),
        ]);
    }
    for &(r, c) in sweep(&[(2usize, 2usize), (2, 3), (3, 3)], 2) {
        let g = wl::grid_child_tree(r, c);
        let want = r.min(c);
        let (cert, d) = time_once(|| recognize_bw(&g, want));
        t.row(&[
            &format!("Grid_{r}x{c}"),
            &"bw",
            &want,
            &cert.holds(),
            &"exact threshold",
            &fmt_duration(d),
        ]);
    }
    println!("{}", t.render());
}

/// E16 — projection breaks the dichotomy (§5): the family R_k has dw = 1
/// (PTIME without projection, trivially) but its projected membership
/// problem embeds k-CLIQUE.
fn e16_projection_hardness() {
    use wdsparql_project::{anchored_graph, check_projected, clique_projection_query};
    let mut t = Table::new(
        "E16  Projection — R_k: dw = 1, yet SELECT-membership embeds k-CLIQUE",
        &[
            "k",
            "dw(R_k)",
            "unprojected check",
            "projected (K_k present)",
            "projected (Turán, no K_k)",
            "answers (pos/neg)",
        ],
    );
    for &k in sweep(&[3usize, 4, 5], 2) {
        let q = clique_projection_query(k);
        let dw = domination_width(q.forest());
        // Tractable side: the full mapping binds the whole clique.
        let (gpos, hub) = anchored_graph(&wl::turan_graph(3 * k, k, "r"), "hub");
        let mut full = Mapping::new();
        full.bind(wdsparql_rdf::Variable::new("u"), hub);
        for i in 1..=k {
            // One vertex per Turán class forms a K_k: t0, t1, ..., t(k-1).
            full.bind(
                wdsparql_rdf::Variable::new(&format!("c{i}")),
                wdsparql_rdf::Iri::new(&format!("t{}", i - 1)),
            );
        }
        let d_full = time_median(budget_ms(30), || check_forest(q.forest(), &gpos, &full));
        assert!(check_forest(q.forest(), &gpos, &full));
        // Hard side: the projected mapping hides the clique.
        let mu = {
            let mut m = Mapping::new();
            m.bind(wdsparql_rdf::Variable::new("u"), hub);
            m
        };
        let (pos, d_pos) = time_once(|| check_projected(&q, &gpos, &mu));
        let (gneg, hub_n) = anchored_graph(&wl::turan_graph(4 * (k - 1), k - 1, "r"), "hub");
        let mu_n = {
            let mut m = Mapping::new();
            m.bind(wdsparql_rdf::Variable::new("u"), hub_n);
            m
        };
        let (neg, d_neg) = time_once(|| check_projected(&q, &gneg, &mu_n));
        t.row(&[
            &k,
            &dw,
            &fmt_duration(d_full),
            &fmt_duration(d_pos),
            &fmt_duration(d_neg),
            &format!("{pos}/{neg}"),
        ]);
        assert!(pos && !neg, "k-CLIQUE encoding must answer correctly");
    }
    println!("{}", t.render());
    println!(
        "(the 'projected (Turán)' column is the k-clique refutation: it grows\n \
         superpolynomially in k while dw stays 1 — with SELECT, bounded domination\n \
         width no longer implies tractability, as §5 states)\n"
    );
}

/// E17 — containment static analysis: three-valued verdicts on a battery
/// of pattern pairs (§3.2's optimisation-side contrast).
fn e17_containment() {
    use wdsparql_algebra::parse_pattern;
    use wdsparql_contain::{decide_containment, SearchBudget, Verdict};
    let mut t = Table::new(
        "E17  Containment — verdicts on pattern pairs (sound both ways)",
        &["P1", "P2", "P1 ⊆ P2", "P2 ⊆ P1", "time"],
    );
    let pairs = [
        ("(?x, p, ?y) AND (?y, q, ?z)", "(?y, q, ?z) AND (?x, p, ?y)"),
        ("(?x, p, ?y)", "(?x, p, ?y) OPT (?y, q, ?z)"),
        ("(?x, p, ?y) AND (?y, q, ?z)", "(?x, p, ?y) OPT (?y, q, ?z)"),
        (
            "(?x, p, ?y) OPT (?y, q, ?z)",
            "(?x, p, ?y) OPT ((?y, q, ?z) OPT (?z, r, ?w))",
        ),
        ("(?x, p, ?y)", "(?x, p, ?y) UNION (?x, q, ?y)"),
    ];
    let budget = SearchBudget::default();
    let show = |v: &Verdict| match v {
        Verdict::Contained => "yes".to_string(),
        Verdict::NotContained(_) => "no (witness)".to_string(),
        Verdict::Unknown => "unknown".to_string(),
    };
    for (a, b) in pairs {
        let f1 = Wdpf::from_pattern(&parse_pattern(a).unwrap()).unwrap();
        let f2 = Wdpf::from_pattern(&parse_pattern(b).unwrap()).unwrap();
        let (fwd, d1) = time_once(|| decide_containment(&f1, &f2, &budget));
        let (bwd, d2) = time_once(|| decide_containment(&f2, &f1, &budget));
        if let Verdict::NotContained(ce) = &fwd {
            assert!(ce.verify(&f1, &f2), "counterexample must verify");
        }
        if let Verdict::NotContained(ce) = &bwd {
            assert!(ce.verify(&f2, &f1), "counterexample must verify");
        }
        t.row(&[&a, &b, &show(&fwd), &show(&bwd), &fmt_duration(d1 + d2)]);
    }
    println!("{}", t.render());
}

/// E18 — worst-case-optimal joins: cyclic query cores (triangle,
/// 4-clique) on the triple store's sorted permutations, the leapfrog
/// join against the pairwise pipeline, and `JoinStrategy::Auto` routing
/// each core to the right operator. Every row asserts the two
/// strategies produce identical solution sets, and that Auto resolves
/// cyclic cores to `wco` while the acyclic chain stays `pairwise`.
fn e18_wcoj() {
    use wdsparql_rdf::term::var;
    use wdsparql_rdf::{tp, Iri, TriplePattern};
    use wdsparql_store::{
        bgp_is_cyclic, eval_bgp_pairwise, eval_bgp_wco, resolve_strategy, JoinStrategy, TripleStore,
    };
    let (nodes, draws) = (scale(3_000, 200), scale(40_000, 1_500));
    let store = TripleStore::from_triples(wl::triple_stream(nodes, draws, 2, 18));
    let snap = store.read_snapshot();
    let p0 = |s: &str, o: &str| tp(var(s), Iri::new("p0"), var(o));
    let cores: [(&str, Vec<TriplePattern>); 3] = [
        ("triangle", vec![p0("x", "y"), p0("y", "z"), p0("x", "z")]),
        (
            "4-clique",
            vec![
                p0("w", "x"),
                p0("w", "y"),
                p0("w", "z"),
                p0("x", "y"),
                p0("x", "z"),
                p0("y", "z"),
            ],
        ),
        ("chain", vec![p0("x", "y"), p0("y", "z")]),
    ];
    let mut t = Table::new(
        "E18  Worst-case-optimal join — cyclic cores route through the leapfrog operator",
        &[
            "core",
            "cyclic",
            "Auto picks",
            "solutions",
            "pairwise",
            "wco",
        ],
    );
    for (name, pats) in cores {
        let cyclic = bgp_is_cyclic(&pats);
        let picked = resolve_strategy(snap.graph(), &pats, JoinStrategy::Auto);
        assert_eq!(
            picked,
            if cyclic {
                JoinStrategy::Wco
            } else {
                JoinStrategy::Pairwise
            },
            "{name}: Auto must follow the core's shape"
        );
        let mut want = eval_bgp_pairwise(snap.graph(), &pats);
        want.sort();
        let mut got = eval_bgp_wco(snap.graph(), &pats);
        got.sort();
        assert_eq!(got, want, "{name}: strategies must agree");
        let d_pair = time_median(budget_ms(400), || {
            eval_bgp_pairwise(snap.graph(), &pats).len()
        });
        let d_wco = time_median(budget_ms(400), || eval_bgp_wco(snap.graph(), &pats).len());
        t.row(&[
            &name,
            &cyclic,
            &picked,
            &want.len(),
            &fmt_duration(d_pair),
            &fmt_duration(d_wco),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(cyclic cores blow up the pairwise pipeline's intermediates exactly as the\n \
         AGM bound predicts; the leapfrog join intersects the sorted permutations\n \
         variable-at-a-time instead — `JoinStrategy::Auto` routes per core)\n"
    );
}
