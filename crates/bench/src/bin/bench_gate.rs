//! bench_gate — the CI regression gate over `BENCH_*.json` baselines:
//! compares a freshly measured bench JSON against a committed baseline
//! and fails (exit 1) when the selected group's geometric-mean latency
//! ratio exceeds the threshold.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--prefix store_scan/] [--max-ratio 1.05]
//! ```
//!
//! Only entries present in *both* files are compared (new benches are
//! not regressions). The gate is the geometric mean over the matched
//! entries, not any single entry — single-entry jitter on a shared CI
//! runner is noise, a uniform shift across a whole group is a
//! regression.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(regressed) => {
            if regressed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!(
                "usage: bench_gate <baseline.json> <current.json> \
                 [--prefix <group/>] [--max-ratio <r>]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut prefix = String::new();
    let mut max_ratio = 1.05f64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--prefix" => prefix = it.next().ok_or("--prefix needs a value")?.clone(),
            "--max-ratio" => {
                max_ratio = it
                    .next()
                    .ok_or("--max-ratio needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--max-ratio: {e}"))?;
            }
            _ => positional.push(arg),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err("expected exactly two json paths".into());
    };
    let baseline = load_medians(baseline_path)?;
    let current = load_medians(current_path)?;
    let mut log_ratio_sum = 0.0f64;
    let mut matched = 0usize;
    for (name, &cur) in &current {
        if !name.starts_with(&prefix) {
            continue;
        }
        let Some(&base) = baseline.get(name) else {
            println!("  new   {name}: {cur} ns (no baseline)");
            continue;
        };
        let ratio = cur as f64 / base as f64;
        println!("  {ratio:>5.2}x {name}: {base} -> {cur} ns");
        log_ratio_sum += ratio.ln();
        matched += 1;
    }
    if matched == 0 {
        return Err(format!(
            "no entries matching prefix {prefix:?} in both files"
        ));
    }
    let geomean = (log_ratio_sum / matched as f64).exp();
    let regressed = geomean > max_ratio;
    println!(
        "bench_gate: {matched} entr{} under {prefix:?}, geometric mean {geomean:.3}x \
         (threshold {max_ratio:.2}x) -> {}",
        if matched == 1 { "y" } else { "ies" },
        if regressed { "REGRESSED" } else { "ok" }
    );
    Ok(regressed)
}

/// `name -> median_ns` for every entry line of a `BENCH_*.json` file.
/// The format is the vendored criterion's line-oriented JSON: one entry
/// object per line with `"name"` and `"median_ns"` fields.
fn load_medians(path: &str) -> Result<BTreeMap<String, u128>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let Some(name) = str_field(line, "name") else {
            continue;
        };
        let Some(median) = int_field(line, "median_ns") else {
            continue;
        };
        out.insert(name, median);
    }
    if out.is_empty() {
        return Err(format!("{path}: no bench entries found"));
    }
    Ok(out)
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let (_, rest) = line.split_once(&format!("\"{key}\":"))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn int_field(line: &str, key: &str) -> Option<u128> {
    let (_, rest) = line.split_once(&format!("\"{key}\":"))?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(dir: &str, name: &str, body: &str) -> String {
        let d = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        std::fs::write(&p, body).unwrap();
        p.to_string_lossy().into_owned()
    }

    const BASE: &str = r#"{
  "targets": ["store_scan"],
  "entries": [
    {"name": "store_scan/a", "median_ns": 100, "samples": 10},
    {"name": "store_scan/b", "median_ns": 200, "samples": 10},
    {"name": "other/x", "median_ns": 50, "samples": 10}
  ]
}"#;

    #[test]
    fn within_threshold_passes() {
        let b = fixture("bench-gate-ok", "base.json", BASE);
        let cur = BASE.replace("\"median_ns\": 100", "\"median_ns\": 103");
        let c = fixture("bench-gate-ok", "cur.json", &cur);
        let args: Vec<String> = [&b, &c, "--prefix", "store_scan/"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(false));
    }

    #[test]
    fn uniform_regression_fails() {
        let b = fixture("bench-gate-bad", "base.json", BASE);
        let cur = BASE
            .replace("\"median_ns\": 100", "\"median_ns\": 120")
            .replace("\"median_ns\": 200", "\"median_ns\": 240");
        let c = fixture("bench-gate-bad", "cur.json", &cur);
        let args: Vec<String> = [&b, &c, "--prefix", "store_scan/"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(true));
    }

    #[test]
    fn prefix_scopes_the_gate_and_new_entries_are_ignored() {
        let b = fixture("bench-gate-scope", "base.json", BASE);
        // `other/x` regresses 10x, but the store_scan prefix ignores it;
        // a brand-new entry has no baseline and is skipped.
        let cur = BASE
            .replace("\"median_ns\": 50", "\"median_ns\": 500")
            .replace(
                "{\"name\": \"store_scan/b\", \"median_ns\": 200, \"samples\": 10},",
                "{\"name\": \"store_scan/b\", \"median_ns\": 200, \"samples\": 10},\n    \
             {\"name\": \"store_scan/new\", \"median_ns\": 999, \"samples\": 10},",
            );
        let c = fixture("bench-gate-scope", "cur.json", &cur);
        let args: Vec<String> = [&b, &c, "--prefix", "store_scan/"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(false));
        // No prefix: everything matches, and the other/x blowup trips it.
        let args: Vec<String> = [&b, &c].iter().map(|s| s.to_string()).collect();
        assert_eq!(run(&args), Ok(true));
    }

    #[test]
    fn missing_or_empty_files_error() {
        assert!(run(&["/nonexistent.json".to_string(), "/also.json".to_string()]).is_err());
        let e = fixture("bench-gate-empty", "empty.json", "{}");
        assert!(run(&[e.clone(), e]).is_err());
    }
}
