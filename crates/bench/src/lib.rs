//! # wdsparql-bench
//!
//! Shared utilities for the criterion benches and the `experiments`
//! harness binary: wall-clock measurement helpers and plain-text table
//! rendering (no serde format crate is in the approved dependency set, so
//! tables are printed and optionally written as TSV).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` repeatedly until `budget` elapses (at least once), returning
/// the median duration.
pub fn time_median<T>(budget: Duration, mut f: impl FnMut() -> T) -> Duration {
    let mut samples = Vec::new();
    let start = Instant::now();
    loop {
        let (_, d) = time_once(&mut f);
        samples.push(d);
        if start.elapsed() >= budget || samples.len() >= 25 {
            break;
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// A plain-text table with aligned columns.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Tab-separated rendering for machine consumption.
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let n = d.as_nanos();
    if n < 10_000 {
        format!("{n}ns")
    } else if n < 10_000_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else if n < 10_000_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else {
        format!("{:.2}s", n as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.lines().count() >= 5);
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("a\tlong-header"));
    }

    #[test]
    fn duration_formatting_units() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(120)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with('s'));
    }

    #[test]
    fn time_median_returns_a_sample() {
        let d = time_median(Duration::from_millis(5), || 2 + 2);
        assert!(d < Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }
}
