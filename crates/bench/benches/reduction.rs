//! E10 — cost of the §4.2 reduction: building (P, G, µ) from (H, k), and
//! the downstream sizes, as H grows (the fpt shape: polynomial in |H| for
//! fixed k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_hardness::{clique_family_parameter, lemma2, reduce_clique};
use wdsparql_hom::{GenTGraph, UGraph};
use wdsparql_tree::{Wdpf, ROOT};
use wdsparql_workloads::clique_child_tree;

fn clique_source(m: usize) -> GenTGraph {
    let tree = clique_child_tree(m);
    let child = tree.children(ROOT)[0];
    let pat = tree.pat(ROOT).union(tree.pat(child));
    let x: Vec<_> = pat
        .vars()
        .into_iter()
        .filter(|v| ["x", "y"].contains(&v.name()))
        .collect();
    GenTGraph::new(pat, x)
}

fn bench_full_reduction_k2(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_build_k2");
    group.sample_size(10);
    let m = clique_family_parameter(2).max(2);
    for n in [4usize, 8, 12] {
        let h = UGraph::complete(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let f = Wdpf::new(vec![clique_child_tree(m)]);
                reduce_clique(f, h, 2, m - 1).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lemma2_k3(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma2_build_k3");
    group.sample_size(10);
    let s = clique_source(9);
    for n in [4usize, 5, 6] {
        let h = UGraph::complete(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| lemma2(&s, h, 3).unwrap().b.s.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_reduction_k2, bench_lemma2_k3);
criterion_main!(benches);
