//! store_restart — the cost of durability and the payoff of restart.
//!
//! Three measurements around the persist layer (medians merge into the
//! workspace-root `BENCH_store.json`, shared with the other store
//! targets):
//!
//! - `durable_ingest`: bulk-loading a workload into a store persisted
//!   with [`TripleStore::persist_to`] — every batch runs the full
//!   crash-safe commit (tmp → fsync → rename → dir_sync → log) before
//!   it acks. The write-amplification price of durability.
//! - `volatile_ingest`: the identical load into a plain in-RAM store —
//!   the baseline the durable path is measured against.
//! - `reopen`: [`TripleStore::open`] on a checkpointed store — the
//!   restart-without-reingest path (manifest + checksummed pages +
//!   recovery sweep) that replaces re-parsing N-Triples on boot.
//!
//! Before anything is timed, the reopened store is asserted equal to
//! the ingested one (triple count and a pattern probe): we only
//! measure restarts that restore the data.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Triple};
use wdsparql_store::TripleStore;
use wdsparql_workloads::batched_triple_stream;

const NODES: usize = 3_000;
const DRAWS: usize = 20_000;
const PREDICATES: usize = 8;
const BATCH: usize = 1_000;

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The pre-materialised ingest feed, interned once so the timed loops
/// measure the store and the disk, not the string interner. Also pins
/// the JSON report to the committed workspace-root baseline.
fn batches() -> &'static Vec<Vec<Triple>> {
    static BATCHES: OnceLock<Vec<Vec<Triple>>> = OnceLock::new();
    BATCHES.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        let (nodes, draws, batch) = if test_mode() {
            (200, 2_000, 500)
        } else {
            (NODES, DRAWS, BATCH)
        };
        batched_triple_stream(nodes, draws, PREDICATES, batch, 42).collect()
    })
}

/// A fresh store directory per build (the commit protocol is
/// append-only per epoch, so reusing one would measure recovery of an
/// ever-longer log, not a restart).
fn fresh_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wdsparql_bench_restart_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_ingest(dir: &PathBuf) -> TripleStore {
    let store = TripleStore::new();
    store.persist_to(dir).expect("fresh directory");
    for batch in batches() {
        store
            .try_bulk_load(batch.iter().copied())
            .expect("workload is far below MAX_TRIPLES");
    }
    store
}

fn bench_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_restart");
    group.sample_size(if test_mode() { 2 } else { 15 });

    group.bench_function("durable_ingest", |b| {
        b.iter(|| {
            let dir = fresh_dir();
            let store = durable_ingest(&dir);
            let len = store.len();
            let _ = std::fs::remove_dir_all(&dir);
            black_box(len)
        })
    });

    group.bench_function("volatile_ingest", |b| {
        b.iter(|| {
            let store = TripleStore::new();
            for batch in batches() {
                store.bulk_load(batch.iter().copied());
            }
            black_box(store.len())
        })
    });

    // One persisted, checkpointed image reopened over and over: the
    // pure restart path (compact folds the per-epoch delta segments
    // into a checkpoint, so `open` reads manifest + base, not a log
    // replay of every batch).
    let dir = fresh_dir();
    let ingested = durable_ingest(&dir);
    ingested.compact();
    let probe = tp(var("x"), wdsparql_rdf::iri("p0"), var("y"));
    let want_len = ingested.len();
    let want_probe = ingested.read_snapshot().graph().match_pattern(&probe).len();
    let reopened = TripleStore::open(&dir).expect("store persisted above");
    assert_eq!(reopened.len(), want_len, "restart must restore the data");
    assert_eq!(
        reopened.read_snapshot().graph().match_pattern(&probe).len(),
        want_probe
    );
    group.bench_function("reopen", |b| {
        b.iter(|| {
            let store = TripleStore::open(&dir).expect("store persisted above");
            black_box(store.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_restart);
criterion_main!(benches);
