//! store_write — write amplification of the store's log-structured
//! write path: ingesting one workload as many small batches under the
//! default adaptive compaction (delta segments, folded geometrically)
//! vs the pre-delta **full-rewrite baseline**
//! ([`CompactionPolicy::EveryBatch`]: every batch merges into all base
//! permutations, exactly the old `insert_batch`), plus the same load
//! through the [`TripleStore`] service (snapshot pre-scan + write
//! lock). Before anything is timed, query results are asserted
//! identical with deltas pending, after compaction, and across both
//! builds. Medians merge into the workspace-root `BENCH_store.json`
//! (shared with the `store_scan` target).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Triple, TriplePattern};
use wdsparql_store::{CompactionPolicy, EncodedGraph, TripleStore};
use wdsparql_workloads::batched_triple_stream;

const NODES: usize = 15_000;
const DRAWS: usize = 110_000;
const PREDICATES: usize = 8;
const BATCH: usize = 200;

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The pre-materialised ingest feed: batches of triples, interned once
/// so the timed loops measure the store, not the string interner. Also
/// pins the JSON report to the committed workspace-root baseline.
fn batches() -> &'static Vec<Vec<Triple>> {
    static BATCHES: OnceLock<Vec<Vec<Triple>>> = OnceLock::new();
    BATCHES.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        let (nodes, draws, batch) = if test_mode() {
            (200, 2_000, 250)
        } else {
            (NODES, DRAWS, BATCH)
        };
        batched_triple_stream(nodes, draws, PREDICATES, batch, 42).collect()
    })
}

/// Query shapes asserted identical across layouts (one per access path).
fn check_patterns() -> Vec<TriplePattern> {
    vec![
        tp(var("x"), wdsparql_rdf::iri("p0"), var("y")),
        tp(wdsparql_rdf::iri("n7"), var("q"), var("y")),
        tp(var("x"), wdsparql_rdf::iri("p1"), wdsparql_rdf::iri("n3")),
        tp(var("x"), var("q"), wdsparql_rdf::iri("n11")),
        tp(var("x"), var("q"), var("y")),
    ]
}

fn sorted_matches(g: &EncodedGraph, pats: &[TriplePattern]) -> Vec<Vec<Triple>> {
    pats.iter()
        .map(|p| {
            let mut m = g.match_pattern(p);
            m.sort();
            m
        })
        .collect()
}

fn build(policy: CompactionPolicy) -> EncodedGraph {
    let mut g = EncodedGraph::with_compaction_policy(policy);
    for batch in batches() {
        g.insert_batch(batch.iter().copied())
            .expect("workload is far below MAX_TRIPLES");
    }
    g.compact();
    g
}

/// Correctness gate, run once before timing: the log-structured build
/// answers every check pattern identically with deltas pending and
/// after compaction, and agrees with the full-rewrite baseline.
fn assert_layouts_agree() {
    let pats = check_patterns();
    let mut staged = EncodedGraph::with_compaction_policy(CompactionPolicy::Manual);
    for batch in batches() {
        staged
            .insert_batch(batch.iter().copied())
            .expect("workload is far below MAX_TRIPLES");
    }
    assert!(staged.segment_count() > 0, "deltas must be pending");
    let with_deltas = sorted_matches(&staged, &pats);
    staged.compact();
    assert_eq!(staged.segment_count(), 0);
    let compacted = sorted_matches(&staged, &pats);
    assert_eq!(with_deltas, compacted, "compaction changed query results");
    let rewritten = build(CompactionPolicy::EveryBatch);
    assert_eq!(staged.len(), rewritten.len());
    assert_eq!(
        compacted,
        sorted_matches(&rewritten, &pats),
        "log-structured and full-rewrite builds disagree"
    );
}

fn bench_write_amplification(c: &mut Criterion) {
    assert_layouts_agree();
    let mut group = c.benchmark_group("store_write");
    group.sample_size(10);
    // The log-structured default: batches append sorted delta segments;
    // the adaptive policy folds them geometrically; one final compact
    // leaves the same fully-indexed end state as the baseline.
    group.bench_function("log_structured", |b| {
        b.iter(|| black_box(build(CompactionPolicy::Adaptive).len()))
    });
    // The baseline this PR retired: every batch rewrites every base
    // permutation end to end.
    group.bench_function("full_rewrite", |b| {
        b.iter(|| black_box(build(CompactionPolicy::EveryBatch).len()))
    });
    // The same incremental load through the service: snapshot no-op
    // pre-scan, write-lock insert, epoch bump, final explicit compact.
    group.bench_function("service_bulk_load", |b| {
        b.iter(|| {
            let store = TripleStore::new();
            for batch in batches() {
                store.bulk_load(batch.iter().copied());
            }
            store.compact();
            black_box(store.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_write_amplification);
criterion_main!(benches);
