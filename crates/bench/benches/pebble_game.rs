//! E7 — Proposition 2: the existential k-pebble game runs in polynomial
//! time for fixed k. Sweeps |dom(G)| for k ∈ {2, 3} and the pattern size
//! for k = 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_hom::{GenTGraph, TGraph};
use wdsparql_pebble::duplicator_wins;
use wdsparql_rdf::{iri, tp, var, Mapping};
use wdsparql_workloads::turan_graph;

fn clique_query(k: usize) -> GenTGraph {
    let mut pats = Vec::new();
    for i in 1..=k {
        for j in (i + 1)..=k {
            pats.push(tp(var(&format!("pb{i}")), iri("r"), var(&format!("pb{j}"))));
        }
    }
    GenTGraph::new(TGraph::from_patterns(pats), [])
}

fn path_query(len: usize) -> GenTGraph {
    GenTGraph::new(
        TGraph::from_patterns((0..len).map(|i| {
            tp(
                var(&format!("pp{i}")),
                iri("r"),
                var(&format!("pp{}", i + 1)),
            )
        })),
        [],
    )
}

fn bench_domain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebble_domain_scaling");
    group.sample_size(10);
    let src = clique_query(4);
    for n in [9usize, 15, 21] {
        let g = turan_graph(n, 3, "r");
        for k in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(&src, &g),
                |b, (src, g)| b.iter(|| duplicator_wins(src, *g, &Mapping::new(), k)),
            );
        }
    }
    group.finish();
}

fn bench_pattern_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebble_pattern_scaling_k2");
    group.sample_size(10);
    let g = turan_graph(12, 3, "r");
    for len in [2usize, 4, 6, 8] {
        let src = path_query(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &src, |b, src| {
            b.iter(|| duplicator_wins(src, &g, &Mapping::new(), 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_domain_scaling, bench_pattern_scaling);
criterion_main!(benches);
