//! store_scan — the hot-path comparison behind `wdsparql-store`:
//! [`RdfGraph`]'s hash-indexed pattern matching vs [`EncodedGraph`]'s
//! dictionary-encoded sorted-permutation ranges, on a ≥100k-triple
//! workload graph, plus join throughput (hash bind join vs sorted-merge
//! intersection). The workload mixes a uniform stream with type-like
//! hub objects (every node carries a `type` triple into one of a few
//! classes), so the pair-bound `(? p o)` sweep exercises both tiny
//! object blocks and the hub fan-in where index choice actually
//! matters. Medians land in the workspace-root `BENCH_store.json` (the
//! committed cross-PR baseline, shared with the `store_write` target;
//! `$BENCH_JSON_PATH` overrides) via the vendored criterion's JSON
//! writer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::OnceLock;
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Iri, RdfGraph, Term, Triple, TriplePattern, Variable};
use wdsparql_store::EncodedGraph;
use wdsparql_workloads::triple_stream;

const NODES: usize = 20_000;
const DRAWS: usize = 110_000;
const PREDICATES: usize = 8;
/// Hub classes for the `type` triples: each class collects
/// `NODES / CLASSES` subjects, the fan-in that makes `(? p o)` hard.
const CLASSES: usize = 24;

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The shared workload: both index structures over the same triples,
/// built once and reused by every bench group. Also pins the JSON
/// report to the committed workspace-root baseline, which `cargo bench`
/// would otherwise miss (it runs benches with the package directory as
/// cwd, so the `BENCH_<target>.json` default lands in `crates/bench/`).
fn workload() -> &'static (RdfGraph, EncodedGraph) {
    static WORKLOAD: OnceLock<(RdfGraph, EncodedGraph)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        let (nodes, draws, classes) = if test_mode() {
            (200, 1_000, 4)
        } else {
            (NODES, DRAWS, CLASSES)
        };
        let rdf: RdfGraph = triple_stream(nodes, draws, PREDICATES, 42)
            .chain((0..nodes).map(|i| {
                Triple::from_strs(&format!("n{i}"), "type", &format!("class{}", i % classes))
            }))
            .collect();
        assert!(
            test_mode() || rdf.len() >= 100_000,
            "workload too small: {}",
            rdf.len()
        );
        let enc = EncodedGraph::from_rdf(&rdf);
        (rdf, enc)
    })
}

/// Every `step`-th triple of the graph — the deterministic probe set.
fn probes(g: &RdfGraph, step: usize) -> Vec<Triple> {
    g.iter().step_by(step).copied().collect()
}

/// Sums match sizes over a probe sweep; the per-probe patterns cover one
/// bound-prefix access path each.
fn sweep(
    b: &mut criterion::Bencher<'_>,
    probes: &[Triple],
    pattern_of: impl Fn(&Triple) -> TriplePattern,
    matcher: impl Fn(&TriplePattern) -> Vec<Triple>,
) {
    let pats: Vec<TriplePattern> = probes.iter().map(&pattern_of).collect();
    b.iter(|| {
        let mut total = 0usize;
        for pat in &pats {
            total += matcher(black_box(pat)).len();
        }
        black_box(total)
    });
}

type PatternOf = fn(&Triple) -> TriplePattern;

/// One pattern shape per bound-prefix access path.
const SHAPES: [(&str, PatternOf); 5] = [
    ("s??", |t| TriplePattern::new(t.s, var("x"), var("y"))),
    ("sp?", |t| TriplePattern::new(t.s, t.p, var("y"))),
    ("?p?", |t| TriplePattern::new(var("x"), t.p, var("y"))),
    ("?po", |t| TriplePattern::new(var("x"), t.p, t.o)),
    ("s?o", |t| TriplePattern::new(t.s, var("x"), t.o)),
];

fn bench_bound_prefix_matching(c: &mut Criterion) {
    let (rdf, enc) = workload();
    let probes = probes(rdf, 97);
    let mut group = c.benchmark_group("store_scan");
    group.sample_size(10);
    for (shape, pattern_of) in SHAPES {
        group.bench_with_input(
            BenchmarkId::new("rdf_match", shape),
            &probes,
            |b, probes| sweep(b, probes, pattern_of, |p| rdf.match_pattern(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("enc_match", shape),
            &probes,
            |b, probes| sweep(b, probes, pattern_of, |p| enc.match_pattern(p)),
        );
    }
    // The headline number: one sweep over all five bound-prefix shapes
    // together, per backend.
    let all_shapes = |matcher: &dyn Fn(&TriplePattern) -> Vec<Triple>| -> usize {
        let mut total = 0usize;
        for t in &probes {
            for pattern_of in SHAPES.map(|(_, f)| f) {
                total += matcher(black_box(&pattern_of(t))).len();
            }
        }
        total
    };
    group.bench_function("rdf_match/all_shapes", |b| {
        b.iter(|| black_box(all_shapes(&|p| rdf.match_pattern(p))))
    });
    group.bench_function("enc_match/all_shapes", |b| {
        b.iter(|| black_box(all_shapes(&|p| enc.match_pattern(p))))
    });
    // Candidate counting — the fail-first heuristic's inner loop.
    let pats: Vec<TriplePattern> = probes
        .iter()
        .map(|t| TriplePattern::new(t.s, t.p, var("y")))
        .collect();
    group.bench_function("rdf_count/sp?", |b| {
        b.iter(|| {
            pats.iter()
                .map(|p| rdf.candidate_count(black_box(p)))
                .sum::<usize>()
        })
    });
    group.bench_function("enc_count/sp?", |b| {
        b.iter(|| {
            pats.iter()
                .map(|p| enc.candidate_count(black_box(p)))
                .sum::<usize>()
        })
    });
    group.finish();
}

/// The pair-bound sweep on its own: both fully-bound-pair shapes,
/// `(? p o)` (the ROADMAP gap: hash stores precompute every (p, o)
/// list) and `(s ? o)`, over the same probe set. Both backends are
/// asserted to agree on the total before timing.
fn bench_pair_bound(c: &mut Criterion) {
    let (rdf, enc) = workload();
    let probes = probes(rdf, 97);
    let pair_shapes: [(&str, PatternOf); 2] =
        [(SHAPES[3].0, SHAPES[3].1), (SHAPES[4].0, SHAPES[4].1)];
    let total_of = |matcher: &dyn Fn(&TriplePattern) -> Vec<Triple>| -> usize {
        let mut total = 0usize;
        for t in &probes {
            for (_, pattern_of) in pair_shapes {
                total += matcher(black_box(&pattern_of(t))).len();
            }
        }
        total
    };
    assert_eq!(
        total_of(&|p| rdf.match_pattern(p)),
        total_of(&|p| enc.match_pattern(p)),
        "pair-bound sweeps disagree between backends"
    );
    let mut group = c.benchmark_group("store_pair");
    group.sample_size(10);
    group.bench_function("rdf_match/pair_bound", |b| {
        b.iter(|| black_box(total_of(&|p| rdf.match_pattern(p))))
    });
    group.bench_function("enc_match/pair_bound", |b| {
        b.iter(|| black_box(total_of(&|p| enc.match_pattern(p))))
    });
    group.finish();
}

fn bench_join_throughput(c: &mut Criterion) {
    let (rdf, enc) = workload();
    let vx = Variable::new("x");
    let p1 = tp(var("x"), Term::Iri(Iri::new("p0")), var("y"));
    let p2 = tp(var("x"), Term::Iri(Iri::new("p1")), var("z"));
    // Both intersection strategies must compute the same quantity — the
    // number of distinct subjects matching p0 and p1 — or the comparison
    // is meaningless.
    let hash_intersect = || {
        let left: std::collections::HashSet<Iri> =
            rdf.match_pattern(&p1).into_iter().map(|t| t.s).collect();
        let shared: std::collections::HashSet<Iri> = rdf
            .match_pattern(&p2)
            .into_iter()
            .map(|t| t.s)
            .filter(|s| left.contains(s))
            .collect();
        shared.len()
    };
    assert_eq!(
        hash_intersect(),
        enc.merge_join_ids(&p1, &p2, vx).unwrap().len(),
        "hash and merge intersections disagree"
    );
    let mut group = c.benchmark_group("store_join");
    group.sample_size(10);
    // Subject-subject join candidates: hash-set intersection over the
    // hash indexes vs the store's sorted-merge intersection (whose
    // candidate lists come subject-sorted off the PSO permutation).
    group.bench_function("rdf_hash_intersect", |b| {
        b.iter(|| black_box(hash_intersect()))
    });
    group.bench_function("enc_merge_intersect", |b| {
        b.iter(|| black_box(enc.merge_join_ids(&p1, &p2, vx).unwrap().len()))
    });
    // Full bind join (index-nested-loop): seed on p1, probe p2 with the
    // subject bound — the matcher's bound-prefix path under join load.
    group.bench_function("rdf_bind_join", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in rdf.match_pattern(&p1) {
                n += rdf
                    .match_pattern(&TriplePattern::new(t.s, Iri::new("p1"), var("z")))
                    .len();
            }
            black_box(n)
        })
    });
    group.bench_function("enc_bind_join", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in enc.match_pattern(&p1) {
                n += enc
                    .match_pattern(&TriplePattern::new(t.s, Iri::new("p1"), var("z")))
                    .len();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bound_prefix_matching,
    bench_pair_bound,
    bench_join_throughput
);
criterion_main!(benches);
