//! store_latency — the first latency-distribution numbers in the repo:
//! per-query-shape p50/p90/p99 under a concurrent mixed read/write
//! workload, against the sharded triple store. A background writer
//! keeps appending delta segments (bumping epochs, so the result cache
//! cannot serve every probe) and a background reader keeps scatter-
//! gather scans in flight while the foreground measures three query
//! shapes: a routed point lookup, a subject star, and the cyclic
//! triangle that `Auto` sends to the WCOJ. Percentile entries merge
//! into the workspace-root `BENCH_store.json` next to the medians of
//! the other store targets (the vendored criterion emits
//! `p50_ns`/`p90_ns`/`p99_ns` alongside `median_ns`).
//!
//! A second group measures the streaming core's LIMIT pushdown on the
//! quiesced store: time-to-first-solution (LIMIT 1) and LIMIT-10
//! against full enumeration, for the triangle and the 4-clique under
//! the pairwise pipeline — the shapes where stopping after k pulls
//! skips the bulk of the probe work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Iri, Triple};
use wdsparql_store::ShardedStore;
use wdsparql_workloads::triple_stream;

const NODES: usize = 4_000;
const DRAWS: usize = 30_000;
const PREDICATES: usize = 8;
/// Closed `p0`-triangles seeded on top of the stream, so the cyclic
/// query has guaranteed answers.
const TRIANGLES: usize = 64;
/// Closed `p0`-4-cliques seeded likewise, so the 4-clique streaming
/// benches have solutions to find early.
const CLIQUES: usize = 16;
const SHARDS: usize = 4;

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn seed_triples() -> Vec<Triple> {
    let (nodes, draws, triangles, cliques) = if test_mode() {
        (200, 1_000, 8, 4)
    } else {
        (NODES, DRAWS, TRIANGLES, CLIQUES)
    };
    triple_stream(nodes, draws, PREDICATES, 42)
        .chain((0..triangles).flat_map(|i| {
            let (a, b, c) = (format!("t{i}a"), format!("t{i}b"), format!("t{i}c"));
            [
                Triple::from_strs(&a, "p0", &b),
                Triple::from_strs(&b, "p0", &c),
                Triple::from_strs(&a, "p0", &c),
            ]
        }))
        .chain((0..cliques).flat_map(|i| {
            let v = [
                format!("q{i}a"),
                format!("q{i}b"),
                format!("q{i}c"),
                format!("q{i}d"),
            ];
            [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)]
                .map(|(a, b)| Triple::from_strs(&v[a], "p0", &v[b]))
        }))
        .collect()
}

/// The store under concurrent load, built once: seeded, compacted, and
/// with the baseline JSON path pinned to the workspace root (shared
/// with the other store targets).
fn workload() -> &'static Arc<ShardedStore> {
    static WORKLOAD: OnceLock<Arc<ShardedStore>> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        Arc::new(ShardedStore::from_triples(SHARDS, seed_triples()))
    })
}

/// Background churn: a writer appending small fresh batches (each one
/// bumps a shard epoch and invalidates facade cache entries that read
/// it) and a reader keeping fan-out scans in flight. Stops on the flag;
/// the guard joins the threads.
struct Churn {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Churn {
    fn start(store: &Arc<ShardedStore>) -> Churn {
        let stop = Arc::new(AtomicBool::new(false));
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let mut handles = Vec::new();
        {
            let (store, stop) = (Arc::clone(store), Arc::clone(&stop));
            handles.push(std::thread::spawn(move || {
                // relaxed-ok: stop flag and id counter need no ordering
                // with the store's own synchronization
                while !stop.load(Ordering::Relaxed) {
                    let base = NEXT.fetch_add(64, Ordering::Relaxed);
                    store.bulk_load((base..base + 64).map(|i| {
                        Triple::from_strs(&format!("w{i}"), "p7", &format!("w{}", i / 2))
                    }));
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }));
        }
        {
            let (store, stop) = (Arc::clone(store), Arc::clone(&stop));
            handles.push(std::thread::spawn(move || {
                let pat = tp(var("x"), Iri::new("p1"), var("y"));
                // relaxed-ok: stop flag needs no ordering with the reads
                while !stop.load(Ordering::Relaxed) {
                    black_box(store.snapshot().shard(0).match_pattern(&pat).len());
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }));
        }
        Churn { stop, handles }
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        // relaxed-ok: thread join below is the synchronization point
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn bench_latency_under_churn(c: &mut Criterion) {
    let store = workload();
    // Correctness before timing: every shape must actually answer.
    let point = tp(Iri::new("t0a"), Iri::new("p0"), var("y"));
    let star = [
        tp(Iri::new("t0a"), Iri::new("p0"), var("y")),
        tp(Iri::new("t0a"), var("w"), var("z")),
    ];
    let triangle = [
        tp(var("x"), Iri::new("p0"), var("y")),
        tp(var("y"), Iri::new("p0"), var("z")),
        tp(var("x"), Iri::new("p0"), var("z")),
    ];
    assert!(!store.solutions(&point).is_empty(), "point probe is empty");
    assert!(!store.query(&star).is_empty(), "star probe is empty");
    let planned = store.query_with_plan(&triangle);
    assert!(!planned.solutions.is_empty(), "no triangles in workload");
    assert_eq!(
        planned.strategy,
        wdsparql_store::JoinStrategy::Wco,
        "auto must route the triangle to the WCOJ"
    );

    let churn = Churn::start(store);
    let mut group = c.benchmark_group("store_latency");
    group.sample_size(30);
    // Rotating probe subjects: epoch churn already defeats most cache
    // hits, rotation defeats the rest — the numbers are evaluation
    // latency, not cache-lookup latency.
    let probe = AtomicU64::new(0);
    let triangles = if test_mode() { 8 } else { TRIANGLES } as u64;
    group.bench_function("point_routed", |b| {
        b.iter(|| {
            // relaxed-ok: bench-local rotation counter
            let i = probe.fetch_add(1, Ordering::Relaxed) % triangles;
            let pat = tp(Iri::new(&format!("t{i}a")), Iri::new("p0"), var("y"));
            black_box(store.solutions(&pat).len())
        })
    });
    group.bench_function("star_routed", |b| {
        b.iter(|| {
            // relaxed-ok: bench-local rotation counter
            let i = probe.fetch_add(1, Ordering::Relaxed) % triangles;
            let s = format!("t{i}b");
            let pats = [
                tp(Iri::new(&s), Iri::new("p0"), var("y")),
                tp(Iri::new(&s), var("w"), var("z")),
            ];
            black_box(store.query(&pats).len())
        })
    });
    group.bench_function("triangle_wco_fanout", |b| {
        b.iter(|| black_box(store.query(&triangle).len()))
    });
    group.finish();
    drop(churn);
}

/// LIMIT pushdown on the quiesced store: time-to-first-solution and
/// LIMIT-10 against full enumeration for the triangle and the
/// 4-clique, all on the uncached `query_limited` streaming path under
/// the pairwise pipeline — the strategy where the old materialise-all
/// evaluator paid the full probe cost before the first row.
fn bench_streaming_limits(c: &mut Criterion) {
    let store = workload();
    store.set_join_strategy(wdsparql_store::JoinStrategy::Pairwise);
    let p0 = Iri::new("p0");
    let triangle = [
        tp(var("x"), p0, var("y")),
        tp(var("y"), p0, var("z")),
        tp(var("x"), p0, var("z")),
    ];
    let clique4 = [
        tp(var("x"), p0, var("y")),
        tp(var("y"), p0, var("z")),
        tp(var("x"), p0, var("z")),
        tp(var("x"), p0, var("w")),
        tp(var("y"), p0, var("w")),
        tp(var("z"), p0, var("w")),
    ];
    // Correctness before timing: both shapes must stream a first row.
    assert!(
        !store.solutions_limit(&triangle, 1).is_empty(),
        "no triangle to stream"
    );
    assert!(
        !store.solutions_limit(&clique4, 1).is_empty(),
        "no 4-clique to stream"
    );

    let mut group = c.benchmark_group("store_latency");
    group.sample_size(30);
    for (name, pats) in [("triangle", &triangle[..]), ("clique4", &clique4[..])] {
        group.bench_function(format!("{name}_ttfs"), |b| {
            b.iter(|| black_box(store.solutions_limit(black_box(pats), 1).len()))
        });
        group.bench_function(format!("{name}_limit10"), |b| {
            b.iter(|| black_box(store.solutions_limit(black_box(pats), 10).len()))
        });
        group.bench_function(format!("{name}_full_stream"), |b| {
            b.iter(|| {
                let budget = wdsparql_rdf::QueryBudget::unlimited();
                let rows = store
                    .query_limited(black_box(pats), usize::MAX, &budget)
                    .expect("an unlimited budget never fails a checkpoint");
                black_box(rows.len())
            })
        });
    }
    group.finish();
    store.set_join_strategy(wdsparql_store::JoinStrategy::default());
}

criterion_group!(benches, bench_latency_under_churn, bench_streaming_limits);
criterion_main!(benches);
