//! E13 — the core/treewidth machinery: cost of core computation and of
//! exact treewidth across pattern families (the per-query static-analysis
//! cost of the width measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_hom::{core_of, ctw, treewidth, UGraph};
use wdsparql_width::domination_width;
use wdsparql_workloads::{example3_s_prime, fk_forest};

fn bench_core_computation(c: &mut Criterion) {
    // (S', X) from Example 3: the core must fold a K_k onto a loop.
    let mut group = c.benchmark_group("core_of_s_prime");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let s = example3_s_prime(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &s, |b, s| {
            b.iter(|| core_of(s))
        });
    }
    group.finish();
}

fn bench_ctw(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctw_of_s_prime");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let s = example3_s_prime(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &s, |b, s| {
            b.iter(|| assert_eq!(ctw(s).width, 1))
        });
    }
    group.finish();
}

fn bench_exact_treewidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("treewidth_exact");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        let g = UGraph::grid(n, 4);
        group.bench_with_input(BenchmarkId::new("grid_nx4", n), &g, |b, g| {
            b.iter(|| assert_eq!(treewidth(g).width, 4.min(g.n())))
        });
    }
    for k in [8usize, 12, 16] {
        let g = UGraph::complete(k);
        group.bench_with_input(BenchmarkId::new("clique", k), &g, |b, g| {
            b.iter(|| assert_eq!(treewidth(g).width, g.n() - 1))
        });
    }
    group.finish();
}

fn bench_domination_width(c: &mut Criterion) {
    // The full static analysis of F_k (subtrees × GtG × cores × treewidth).
    let mut group = c.benchmark_group("domination_width_fk");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let f = fk_forest(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &f, |b, f| {
            b.iter(|| assert_eq!(domination_width(f), 1))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_core_computation,
    bench_ctw,
    bench_exact_treewidth,
    bench_domination_width
);
criterion_main!(benches);
