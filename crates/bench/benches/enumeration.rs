//! E14 — enumeration and counting: output-sensitive behaviour on layered
//! chain queries (solution count grows with fanout^depth) and counting on
//! realistic OPT data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_core::{count_by_domain, enumerate_with_stats, Query};
use wdsparql_rdf::{RdfGraph, Triple};
use wdsparql_tree::Wdpf;
use wdsparql_workloads::{chain_tree, social_network};

fn layered_graph(depth: usize, fanout: usize) -> RdfGraph {
    let mut g = RdfGraph::new();
    for i in 0..depth {
        for j in 0..fanout {
            for j2 in 0..fanout {
                g.insert(Triple::from_strs(
                    &format!("l{i}_{j}"),
                    &format!("p{i}"),
                    &format!("l{}_{j2}", i + 1),
                ));
            }
        }
    }
    g
}

fn bench_chain_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_chain_layered");
    group.sample_size(10);
    for depth in [2usize, 3, 4] {
        let f = Wdpf::new(vec![chain_tree(depth)]);
        let g = layered_graph(depth, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(depth),
            &(&f, &g),
            |b, (f, g)| b.iter(|| enumerate_with_stats(f, *g).0.len()),
        );
    }
    group.finish();
}

fn bench_counting_social(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_by_domain_social");
    group.sample_size(10);
    let q =
        Query::parse("{ ?x knows ?y OPTIONAL { ?y email ?e } OPTIONAL { ?y city ?c } }").unwrap();
    for n in [30usize, 60, 120] {
        let g = social_network(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| count_by_domain(q.forest(), g).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_enumeration, bench_counting_social);
criterion_main!(benches);
