//! E12b — the homomorphism solver: satisfiable vs refutation workloads,
//! and the effect of the Turán adversary (the NP-hard test the naive
//! evaluator pays for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_hom::{find_hom_into_graph, find_hom_into_graph_with, GenTGraph, SearchOrder, TGraph};
use wdsparql_rdf::{iri, tp, var, Mapping, RdfGraph, Triple};
use wdsparql_workloads::turan_graph;

fn clique_query(k: usize) -> GenTGraph {
    let mut pats = Vec::new();
    for i in 1..=k {
        for j in (i + 1)..=k {
            pats.push(tp(var(&format!("hs{i}")), iri("r"), var(&format!("hs{j}"))));
        }
    }
    GenTGraph::new(TGraph::from_patterns(pats), [])
}

fn bench_refutation(c: &mut Criterion) {
    // K_k into Turán(n, k−1): no hom; the solver must refute.
    let mut group = c.benchmark_group("hom_refutation_clique");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let g = turan_graph(4 * (k - 1), k - 1, "r");
        let q = clique_query(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &(&q, &g), |b, (q, g)| {
            b.iter(|| {
                assert!(find_hom_into_graph(q, *g, &Mapping::new()).is_none());
            })
        });
    }
    group.finish();
}

fn bench_satisfiable(c: &mut Criterion) {
    // K_k into Turán(n, k): hom exists; fail-first finds it quickly.
    let mut group = c.benchmark_group("hom_satisfiable_clique");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let g = turan_graph(4 * k, k, "r");
        let q = clique_query(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &(&q, &g), |b, (q, g)| {
            b.iter(|| {
                assert!(find_hom_into_graph(q, *g, &Mapping::new()).is_some());
            })
        });
    }
    group.finish();
}

fn bench_path_queries(c: &mut Criterion) {
    // Long path patterns over a chain-with-noise graph: index-driven,
    // near-linear.
    let mut group = c.benchmark_group("hom_path_queries");
    group.sample_size(10);
    let mut g = RdfGraph::new();
    for i in 0..500 {
        g.insert(Triple::from_strs(
            &format!("c{i}"),
            "r",
            &format!("c{}", i + 1),
        ));
        g.insert(Triple::from_strs(&format!("c{i}"), "q", &format!("d{i}")));
    }
    for len in [4usize, 8, 16] {
        let q = GenTGraph::new(
            TGraph::from_patterns((0..len).map(|i| {
                tp(
                    var(&format!("hp{i}")),
                    iri("r"),
                    var(&format!("hp{}", i + 1)),
                )
            })),
            [],
        );
        group.bench_with_input(BenchmarkId::from_parameter(len), &q, |b, q| {
            b.iter(|| {
                assert!(find_hom_into_graph(q, &g, &Mapping::new()).is_some());
            })
        });
    }
    group.finish();
}

fn bench_order_ablation(c: &mut Criterion) {
    // What does fail-first buy? Path queries over a chain-with-decoys
    // graph: the static order binds triples in input order (worst when the
    // selective triple comes last), fail-first starts from the rarest.
    let mut group = c.benchmark_group("hom_order_ablation");
    group.sample_size(10);
    let mut g = RdfGraph::new();
    for i in 0..300 {
        g.insert(Triple::from_strs(
            &format!("c{i}"),
            "r",
            &format!("c{}", i + 1),
        ));
    }
    // One selective 'tag' edge at the end of the chain.
    g.insert(Triple::from_strs("c300", "tag", "goal"));
    for len in [4usize, 6, 8] {
        // Pattern: a path of r-edges whose *last* vertex carries the tag;
        // written tag-last so the static order explores the untagged
        // prefix blindly.
        let mut pats: Vec<_> = (0..len)
            .map(|i| {
                tp(
                    var(&format!("ho{i}")),
                    iri("r"),
                    var(&format!("ho{}", i + 1)),
                )
            })
            .collect();
        pats.push(tp(var(&format!("ho{len}")), iri("tag"), iri("goal")));
        let q = GenTGraph::new(TGraph::from_patterns(pats), []);
        for order in [SearchOrder::FailFirst, SearchOrder::Static] {
            group.bench_with_input(
                BenchmarkId::new(format!("{order:?}"), len),
                &(&q, &g),
                |b, (q, g)| {
                    b.iter(|| {
                        assert!(find_hom_into_graph_with(q, *g, &Mapping::new(), order).is_some())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_refutation,
    bench_satisfiable,
    bench_path_queries,
    bench_order_ablation
);
criterion_main!(benches);
