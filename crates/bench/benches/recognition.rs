//! E15 — cost of the recognition problem (`dw(P) ≤ k` / `bw(P) ≤ k`):
//! the static-analysis price of the width measures, growing with the
//! query (not the data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_width::{recognize_bw, recognize_dw};
use wdsparql_workloads::{clique_child_tree, fk_forest, grid_child_tree};

fn bench_recognize_dw_fk(c: &mut Criterion) {
    let mut group = c.benchmark_group("recognize_dw_fk");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let f = fk_forest(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &f, |b, f| {
            b.iter(|| assert!(recognize_dw(f, 1).holds()))
        });
    }
    group.finish();
}

fn bench_recognize_bw_clique(c: &mut Criterion) {
    // The NP-hard kernel (ctw ≤ k) on growing clique children: accepted
    // at the exact width, rejected just below it.
    let mut group = c.benchmark_group("recognize_bw_clique");
    group.sample_size(10);
    for m in [4usize, 6, 8] {
        let q = clique_child_tree(m);
        group.bench_with_input(BenchmarkId::new("exact", m), &q, |b, q| {
            b.iter(|| assert!(recognize_bw(q, m - 1).holds()))
        });
        group.bench_with_input(BenchmarkId::new("reject", m), &q, |b, q| {
            b.iter(|| assert!(!recognize_bw(q, m - 2).holds()))
        });
    }
    group.finish();
}

fn bench_recognize_bw_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("recognize_bw_grid");
    group.sample_size(10);
    for (r, cdim) in [(2usize, 2usize), (2, 4), (3, 3)] {
        let q = grid_child_tree(r, cdim);
        let want = r.min(cdim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cdim}")),
            &q,
            |b, q| b.iter(|| assert!(recognize_bw(q, want).holds())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_recognize_dw_fk,
    bench_recognize_bw_clique,
    bench_recognize_bw_grid
);
criterion_main!(benches);
