//! E16 — the SELECT frontier: projected membership on the dw = 1 family
//! `R_k` embeds k-CLIQUE (grows superpolynomially in k), while projected
//! *enumeration* on realistic data stays proportional to the full
//! solution set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_project::{
    anchored_graph, check_projected, clique_projection_query, enumerate_projected, ProjectedQuery,
};
use wdsparql_rdf::{Mapping, Variable};
use wdsparql_workloads::{turan_graph, university};

fn bench_projected_membership_refutation(c: &mut Criterion) {
    // Negative instances: no k-clique in the Turán adversary, so the
    // witness search must exhaust — the NP-hard kernel of §5.
    let mut group = c.benchmark_group("projected_membership_refute");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let q = clique_projection_query(k);
        let (g, hub) = anchored_graph(&turan_graph(4 * (k - 1), k - 1, "r"), "hub");
        let mut mu = Mapping::new();
        mu.bind(Variable::new("u"), hub);
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &(&q, &g, &mu),
            |b, (q, g, mu)| b.iter(|| assert!(!check_projected(q, g, mu))),
        );
    }
    group.finish();
}

fn bench_projected_membership_witness(c: &mut Criterion) {
    // Positive instances: a K_k exists; fail-first finds it quickly.
    let mut group = c.benchmark_group("projected_membership_witness");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let q = clique_projection_query(k);
        let (g, hub) = anchored_graph(&turan_graph(3 * k, k, "r"), "hub");
        let mut mu = Mapping::new();
        mu.bind(Variable::new("u"), hub);
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &(&q, &g, &mu),
            |b, (q, g, mu)| b.iter(|| assert!(check_projected(q, g, mu))),
        );
    }
    group.finish();
}

fn bench_projected_enumeration_university(c: &mut Criterion) {
    // Projection on realistic OPT data: SELECT-ing fewer variables only
    // shrinks the output; the work tracks the full solution set.
    let mut group = c.benchmark_group("projected_enumeration_university");
    group.sample_size(10);
    let q_all = ProjectedQuery::parse(
        "SELECT * WHERE { ?p type Professor . ?p teaches ?c OPTIONAL { ?p office ?o } }",
    )
    .unwrap();
    let q_proj = ProjectedQuery::parse(
        "SELECT ?p WHERE { ?p type Professor . ?p teaches ?c OPTIONAL { ?p office ?o } }",
    )
    .unwrap();
    for depts in [4usize, 8, 16] {
        let g = university(depts, 42);
        group.bench_with_input(BenchmarkId::new("select_star", depts), &g, |b, g| {
            b.iter(|| enumerate_projected(&q_all, g).len())
        });
        group.bench_with_input(BenchmarkId::new("select_p", depts), &g, |b, g| {
            b.iter(|| enumerate_projected(&q_proj, g).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_projected_membership_refutation,
    bench_projected_membership_witness,
    bench_projected_enumeration_university
);
criterion_main!(benches);
