//! E5 — the Theorem 1 dichotomy on the bounded-dw family {F_k}:
//! the naive coNP evaluator vs the pebble evaluator (k = dw = 1) on
//! positive instances whose certification requires refuting a k-clique.
//!
//! Expected shape: `naive` grows superpolynomially with k while `pebble`
//! stays polynomial (flat-ish), reproducing the tractable side of
//! Theorem 3 where the two algorithms differ most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_core::{check_forest, check_forest_pebble};
use wdsparql_workloads::fk_instance;

fn bench_dichotomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fk_dichotomy");
    group.sample_size(10);
    for k in [3usize, 4, 5, 6] {
        let inst = fk_instance(k, 4 * (k - 1));
        assert!(check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1));
        // The naive column is capped at k = 5: at k = 6 a single refutation
        // of the K_k child against the Turán adversary already takes ~8 s,
        // which criterion would multiply by its sample count. The k = 6
        // naive data point is recorded once by the `experiments e5` harness
        // instead; the growth trend is fully visible at k ≤ 5 here.
        if k <= 5 {
            assert!(check_forest(&inst.forest, &inst.graph, &inst.mu));
            group.bench_with_input(BenchmarkId::new("naive", k), &inst, |b, inst| {
                b.iter(|| check_forest(&inst.forest, &inst.graph, &inst.mu))
            });
        }
        group.bench_with_input(BenchmarkId::new("pebble_k1", k), &inst, |b, inst| {
            b.iter(|| check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1))
        });
    }
    group.finish();
}

fn bench_graph_scaling(c: &mut Criterion) {
    // Fixed k = 4, growing adversary size: both algorithms should be
    // polynomial in |G|; the gap is in the constant/k-dependence.
    let mut group = c.benchmark_group("fk_graph_scaling_k4");
    group.sample_size(10);
    for n in [9usize, 15, 21, 27] {
        let inst = fk_instance(4, n);
        group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
            b.iter(|| check_forest(&inst.forest, &inst.graph, &inst.mu))
        });
        group.bench_with_input(BenchmarkId::new("pebble_k1", n), &inst, |b, inst| {
            b.iter(|| check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dichotomy, bench_graph_scaling);
criterion_main!(benches);
