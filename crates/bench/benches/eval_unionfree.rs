//! E6 — Corollary 1 on UNION-free families: bounded branch treewidth
//! (`T'_k`, `Path_n`) stays cheap; the unbounded clique-child family `Q_k`
//! grows with k under *every* strategy, matching the W[1]-hardness of the
//! class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdsparql_core::{check_forest, check_forest_pebble};
use wdsparql_workloads::{clique_instance, path_instance, tprime_instance};

fn bench_bounded_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("unionfree_bounded");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let inst = tprime_instance(k, 4 * (k - 1));
        group.bench_with_input(BenchmarkId::new("tprime_naive", k), &inst, |b, inst| {
            b.iter(|| check_forest(&inst.forest, &inst.graph, &inst.mu))
        });
    }
    for len in [2usize, 4, 6] {
        let inst = path_instance(len, 6);
        group.bench_with_input(BenchmarkId::new("path_naive", len), &inst, |b, inst| {
            b.iter(|| check_forest(&inst.forest, &inst.graph, &inst.mu))
        });
        group.bench_with_input(BenchmarkId::new("path_pebble_k1", len), &inst, |b, inst| {
            b.iter(|| check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1))
        });
    }
    group.finish();
}

fn bench_unbounded_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("unionfree_unbounded_Qk");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let inst = clique_instance(k, 4 * (k - 1));
        group.bench_with_input(BenchmarkId::new("naive", k), &inst, |b, inst| {
            b.iter(|| check_forest(&inst.forest, &inst.graph, &inst.mu))
        });
        // The exact pebble parameter for Q_k is k − 1: cost grows with k
        // (no fixed-parameter shortcut exists for the class).
        group.bench_with_input(BenchmarkId::new("pebble_exact", k), &inst, |b, inst| {
            b.iter(|| check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, k - 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounded_families, bench_unbounded_family);
criterion_main!(benches);
