//! store_shard — write scaling of the hash-sharded store.
//!
//! The scenario is the service's operating point: batches stream in
//! while snapshot-isolated reads are in flight (there is always some
//! query holding a graph snapshot in a loaded service). Every batch is
//! loaded with one routed point-read pinned across the write, so the
//! write path pays its real-world copy-on-write bill:
//!
//! * **single store** (`shards_1`, the baseline): the reader pins the
//!   *whole* graph, so the load's `Arc::make_mut` deep-clones every
//!   permutation and the dictionary — O(dataset) per batch;
//! * **sharded store** (`shards_2` / `shards_4`): the routed reader pins
//!   *one shard*, the scattered sub-loads clone at most that shard —
//!   the copy-on-write blast radius shrinks with the shard count (and
//!   on multi-core hosts the scattered sub-loads additionally run on
//!   independent write locks in parallel; this box times the
//!   single-core algorithmic win alone).
//!
//! Before anything is timed, the sharded layouts are asserted to answer
//! every check query identically to the single store. Read-side
//! scatter-gather overhead is reported separately (`query_routed`,
//! `query_fanout` — routed reads touch one shard; fan-outs pay a k-way
//! merge). Medians merge into the workspace-root `BENCH_store.json`
//! (shared with the `store_scan` / `store_write` targets).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Iri, Mapping, Triple, TripleIndex, TriplePattern};
use wdsparql_store::{ShardedStore, TripleStore};
use wdsparql_workloads::batched_triple_stream;

const NODES: usize = 15_000;
const DRAWS: usize = 110_000;
const PREDICATES: usize = 8;
/// Same ingest granularity as `store_write`: the 200-triple batches an
/// incremental pipeline delivers.
const BATCH: usize = 200;
/// Shard counts under test; 1 is the single-`TripleStore` baseline.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The pre-materialised ingest feed, interned once. Also pins the JSON
/// report to the committed workspace-root baseline.
fn batches() -> &'static Vec<Vec<Triple>> {
    static BATCHES: OnceLock<Vec<Vec<Triple>>> = OnceLock::new();
    BATCHES.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        let (nodes, draws, batch) = if test_mode() {
            (200, 2_000, 250)
        } else {
            (NODES, DRAWS, BATCH)
        };
        batched_triple_stream(nodes, draws, PREDICATES, batch, 42).collect()
    })
}

fn node_count() -> usize {
    if test_mode() {
        200
    } else {
        NODES
    }
}

/// Query shapes asserted identical across layouts: a routed point read,
/// a predicate fan-out, a pair-bound probe, and a two-pattern join.
fn check_patterns() -> Vec<Vec<TriplePattern>> {
    vec![
        vec![tp(Iri::new("n7"), var("q"), var("y"))],
        vec![tp(var("x"), wdsparql_rdf::iri("p0"), var("y"))],
        vec![tp(var("x"), wdsparql_rdf::iri("p1"), Iri::new("n3"))],
        vec![
            tp(var("x"), wdsparql_rdf::iri("p0"), var("y")),
            tp(var("y"), wdsparql_rdf::iri("p1"), var("z")),
        ],
    ]
}

fn sorted(sols: &[Mapping]) -> Vec<Mapping> {
    let mut out = sols.to_vec();
    out.sort();
    out
}

/// Correctness gate, run once before timing: every sharded layout
/// answers every check query exactly like the single store.
fn assert_layouts_agree() {
    let single = TripleStore::new();
    for batch in batches() {
        single.bulk_load(batch.iter().copied());
    }
    single.compact();
    for &shards in &SHARD_COUNTS[1..] {
        let sharded = ShardedStore::new(shards);
        for batch in batches() {
            sharded.bulk_load(batch.iter().copied());
        }
        sharded.compact();
        assert_eq!(sharded.len(), single.len(), "{shards}-shard row count");
        for pats in check_patterns() {
            assert_eq!(
                sorted(&sharded.query(&pats)),
                sorted(&single.query(&pats)),
                "{shards}-shard layout diverged on {pats:?}"
            );
        }
        // The scatter-gather snapshot agrees with the single graph on a
        // raw pattern sweep too.
        let snap = sharded.snapshot();
        let sref = single.read_snapshot();
        for pats in check_patterns() {
            for pat in pats {
                let mut got = TripleIndex::match_pattern(&snap, &pat);
                let mut want = sref.match_pattern(&pat);
                got.sort();
                want.sort();
                assert_eq!(got, want, "{shards}-shard match_pattern {pat}");
            }
        }
    }
}

/// One full ingest with a snapshot-isolated routed read pinned across
/// every batch load — the single-store side. The reader's snapshot spans
/// the whole graph (there is nothing smaller to pin), so each load
/// deep-clones the dataset.
fn ingest_under_readers_single() -> usize {
    let store = TripleStore::new();
    let nodes = node_count();
    let probe_pred = Iri::new("p0");
    let mut served = 0usize;
    for (i, batch) in batches().iter().enumerate() {
        let subject = Iri::new(&format!("n{}", (i * 97) % nodes));
        let snapshot = store.read_snapshot();
        store.bulk_load(batch.iter().copied());
        // The in-flight read completes on its pinned (pre-load) world.
        served += snapshot.solutions(&tp(subject, probe_pred, var("y"))).len();
    }
    store.compact();
    store.len() + served
}

/// The sharded side of the same scenario: the routed reader pins one
/// shard's graph, so the scattered load clones at most that shard.
fn ingest_under_readers_sharded(shards: usize) -> usize {
    let store = ShardedStore::new(shards);
    let nodes = node_count();
    let probe_pred = Iri::new("p0");
    let mut served = 0usize;
    for (i, batch) in batches().iter().enumerate() {
        let subject = Iri::new(&format!("n{}", (i * 97) % nodes));
        let snapshot = store.subject_snapshot(subject);
        store.bulk_load(batch.iter().copied());
        served += snapshot.solutions(&tp(subject, probe_pred, var("y"))).len();
    }
    store.compact();
    store.len() + served
}

fn bench_sharded_writes(c: &mut Criterion) {
    assert_layouts_agree();
    let mut group = c.benchmark_group("store_shard");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        group.bench_function(format!("bulk_load/shards_{shards}"), |b| {
            if shards == 1 {
                b.iter(|| black_box(ingest_under_readers_single()))
            } else {
                b.iter(|| black_box(ingest_under_readers_sharded(shards)))
            }
        });
    }

    // Read-side scatter-gather overhead, on fully-built stores: routed
    // point reads (one shard) and a predicate fan-out (k-way merge),
    // measured on snapshots so the facade cache stays out of the way.
    let single = TripleStore::new();
    for batch in batches() {
        single.bulk_load(batch.iter().copied());
    }
    single.compact();
    let sharded = ShardedStore::new(4);
    for batch in batches() {
        sharded.bulk_load(batch.iter().copied());
    }
    sharded.compact();
    let nodes = node_count();
    let probes: Vec<TriplePattern> = (0..100)
        .map(|i| {
            tp(
                Iri::new(&format!("n{}", (i * 131) % nodes)),
                Iri::new("p0"),
                var("y"),
            )
        })
        .collect();
    let sref = single.read_snapshot();
    let snap = sharded.snapshot();
    assert_eq!(
        probes
            .iter()
            .map(|p| sref.solutions(p).len())
            .sum::<usize>(),
        probes
            .iter()
            .map(|p| TripleIndex::solutions(&snap, p).len())
            .sum::<usize>(),
        "routed sweeps disagree"
    );
    group.bench_function("query_routed/shards_1", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| sref.solutions(black_box(p)).len())
                .sum::<usize>()
        })
    });
    group.bench_function("query_routed/shards_4", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| TripleIndex::solutions(&snap, black_box(p)).len())
                .sum::<usize>()
        })
    });
    let fanout = tp(var("x"), Iri::new("p0"), var("y"));
    assert_eq!(
        sref.solutions(&fanout).len(),
        TripleIndex::solutions(&snap, &fanout).len(),
        "fan-out sweeps disagree"
    );
    group.bench_function("query_fanout/shards_1", |b| {
        b.iter(|| black_box(sref.solutions(&fanout).len()))
    });
    group.bench_function("query_fanout/shards_4", |b| {
        b.iter(|| black_box(TripleIndex::solutions(&snap, &fanout).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_writes);
criterion_main!(benches);
