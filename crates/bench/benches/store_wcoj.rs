//! store_wcoj — the worst-case-optimal join vs the pairwise pipeline on
//! cyclic query cores.
//!
//! The workload is a ~110k-triple uniform stream over two predicates:
//! the `p0` edge relation (~55k edges over 6k nodes) is exactly the
//! regime where pairwise triangle evaluation drowns — the bind-join
//! materialises every length-2 path (≈ |E|²/|V| ≈ 500k intermediates)
//! before the closing edge filters them down to the triangles — while
//! the leapfrog join intersects adjacency runs straight off the PSO/POS
//! permutations and never materialises an intermediate. Three cyclic
//! cores are timed: the triangle, the 4-clique and a triangle with a
//! star arm on `p1`.
//!
//! Before anything is timed, every query is asserted to produce the
//! identical solution set across {pairwise, wco} × {TripleStore,
//! ShardedStore} (snapshot evaluators and the cached facade paths), and
//! `JoinStrategy::Auto` is asserted to resolve each cyclic core to the
//! WCOJ. Medians merge into the workspace-root `BENCH_store.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use wdsparql_rdf::term::var;
use wdsparql_rdf::{tp, Iri, Mapping, TriplePattern};
use wdsparql_store::{
    eval_bgp_pairwise, eval_bgp_wco, resolve_strategy, JoinStrategy, ShardedStore, TripleStore,
};
use wdsparql_workloads::triple_stream;

const NODES: usize = 6_000;
const DRAWS: usize = 110_000;
const PREDICATES: usize = 2;
const SHARDS: usize = 4;

/// `cargo test` runs bench targets with `--test` (each body once); a
/// token workload keeps that pass fast while still exercising every
/// bench path end to end.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Both store layouts over the same stream, built once. Also pins the
/// JSON report to the committed workspace-root baseline.
fn stores() -> &'static (TripleStore, ShardedStore) {
    static STORES: OnceLock<(TripleStore, ShardedStore)> = OnceLock::new();
    STORES.get_or_init(|| {
        criterion::set_bench_json_path(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_store.json"
        ));
        let (nodes, draws) = if test_mode() {
            (60, 600)
        } else {
            (NODES, DRAWS)
        };
        let single = TripleStore::from_triples(triple_stream(nodes, draws, PREDICATES, 42));
        assert!(
            test_mode() || single.len() >= 100_000,
            "workload too small: {}",
            single.len()
        );
        let sharded =
            ShardedStore::from_triples(SHARDS, triple_stream(nodes, draws, PREDICATES, 42));
        (single, sharded)
    })
}

fn p0(s: &str, o: &str) -> TriplePattern {
    tp(var(s), Iri::new("p0"), var(o))
}

/// The cyclic cores under test.
fn queries() -> Vec<(&'static str, Vec<TriplePattern>)> {
    let triangle = vec![p0("x", "y"), p0("y", "z"), p0("x", "z")];
    let clique4 = vec![
        p0("w", "x"),
        p0("w", "y"),
        p0("w", "z"),
        p0("x", "y"),
        p0("x", "z"),
        p0("y", "z"),
    ];
    let mut star_cycle = triangle.clone();
    star_cycle.push(tp(var("x"), Iri::new("p1"), var("arm")));
    vec![
        ("triangle", triangle),
        ("clique4", clique4),
        ("star_cycle", star_cycle),
    ]
}

fn sorted(mut sols: Vec<Mapping>) -> Vec<Mapping> {
    sols.sort();
    sols
}

/// Correctness gate, run once before timing: identical solution sets
/// across both strategies and both backends — snapshot evaluators and
/// the cached facade paths — and `Auto` resolving each core to the
/// WCOJ.
fn assert_strategies_and_backends_agree() {
    let (single, sharded) = stores();
    let snap = single.read_snapshot();
    let ssnap = sharded.snapshot();
    for (name, pats) in queries() {
        let want = sorted(eval_bgp_pairwise(snap.graph(), &pats));
        assert_eq!(
            sorted(eval_bgp_wco(snap.graph(), &pats)),
            want,
            "{name}: wco vs pairwise on TripleStore"
        );
        assert_eq!(
            sorted(eval_bgp_pairwise(&ssnap, &pats)),
            want,
            "{name}: pairwise on ShardedStore"
        );
        assert_eq!(
            sorted(eval_bgp_wco(&ssnap, &pats)),
            want,
            "{name}: wco on ShardedStore"
        );
        assert_eq!(
            resolve_strategy(snap.graph(), &pats, JoinStrategy::Auto),
            JoinStrategy::Wco,
            "{name}: Auto must route the cyclic core to the WCOJ"
        );
        // The cached service paths agree under every knob setting.
        for strategy in [JoinStrategy::Pairwise, JoinStrategy::Wco] {
            single.set_join_strategy(strategy);
            sharded.set_join_strategy(strategy);
            assert_eq!(
                sorted(single.query(&pats).iter().cloned().collect()),
                want,
                "{name}: single facade under {strategy}"
            );
            assert_eq!(
                sorted(sharded.query(&pats).iter().cloned().collect()),
                want,
                "{name}: sharded facade under {strategy}"
            );
        }
    }
}

fn bench_wcoj(c: &mut Criterion) {
    assert_strategies_and_backends_agree();
    let (single, sharded) = stores();
    let snap = single.read_snapshot();
    let ssnap = sharded.snapshot();
    let mut group = c.benchmark_group("store_wcoj");
    group.sample_size(10);
    for (name, pats) in queries() {
        group.bench_function(format!("{name}/pairwise"), |b| {
            b.iter(|| eval_bgp_pairwise(snap.graph(), black_box(&pats)).len())
        });
        group.bench_function(format!("{name}/wco"), |b| {
            b.iter(|| eval_bgp_wco(snap.graph(), black_box(&pats)).len())
        });
        group.bench_function(format!("{name}/wco_sharded{SHARDS}"), |b| {
            b.iter(|| eval_bgp_wco(&ssnap, black_box(&pats)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wcoj);
criterion_main!(benches);
