//! Matched (query, graph, mapping, expected) instances for the dichotomy
//! experiments — engineered so the *interesting* homomorphism test is the
//! refutation of a k-clique pattern against a Turán adversary, the case
//! where exact solvers pay an exponential price and the pebble relaxation
//! does not.

use crate::graphs::turan_graph;
use crate::paper::{clique_child_tree, fk_forest, path_child_tree, tprime_tree};
use wdsparql_rdf::{Mapping, RdfGraph, Triple};
use wdsparql_tree::{Wdpf, Wdpt};

/// A ready-to-run membership instance.
pub struct Instance {
    pub forest: Wdpf,
    pub graph: RdfGraph,
    pub mu: Mapping,
    /// Ground-truth membership `µ ∈ ⟦F⟧_G`.
    pub expected: bool,
    /// Human-readable label for tables.
    pub label: String,
}

fn single(tree: Wdpt) -> Wdpf {
    Wdpf::new(vec![tree])
}

/// Attaches the standard front matter to a Turán adversary: `(a, p, b)`
/// matches the root, and `b` has `r`-edges into Turán class 0 only, so the
/// child clique `K_k` reachable from `b` has no homomorphism (see
/// workloads::instances module docs).
fn adversarial_graph(k: usize, n: usize) -> RdfGraph {
    assert!(k >= 3, "the adversary needs k ≥ 3 (k − 1 ≥ 2 classes)");
    let mut g = turan_graph(n, k - 1, "r");
    g.insert(Triple::from_strs("a", "p", "b"));
    for v in crate::graphs::turan_class(n, k - 1, 0) {
        g.insert(Triple::new(
            wdsparql_rdf::Iri::new("b"),
            wdsparql_rdf::Iri::new("r"),
            v,
        ));
    }
    g
}

/// F_k (Example 4, dw = 1) against the Turán adversary; `µ = {x→a, y→b}`
/// **is** a solution, and certifying it requires refuting the clique child
/// — exponential for the naive algorithm, polynomial for Theorem 1 with
/// k = 1 thanks to domination by T2.
pub fn fk_instance(k: usize, n: usize) -> Instance {
    let forest = fk_forest(k);
    let graph = adversarial_graph(k, n);
    let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
    Instance {
        forest,
        graph,
        mu,
        expected: true,
        label: format!("F_{k} / Turán({n}, {})", k - 1),
    }
}

/// As [`fk_instance`] but a *negative* instance: adding the q-chain makes
/// the optional branches extendable, so `µ` is no longer maximal.
pub fn fk_instance_negative(k: usize, n: usize) -> Instance {
    let mut inst = fk_instance(k, n);
    inst.graph.insert(Triple::from_strs("z0", "q", "a"));
    inst.graph.insert(Triple::from_strs("w0", "q", "z0"));
    inst.expected = false;
    inst.label = format!("{} (neg)", inst.label);
    inst
}

/// The unbounded-width UNION-free family Q_k = clique-child tree
/// (bw = k − 1) against the same adversary: `µ` is a solution, but here
/// *no* polynomial algorithm exists for the class (Corollary 1) — the
/// Theorem 1 evaluator needs k − 1 as its parameter and its cost grows
/// with k.
pub fn clique_instance(k: usize, n: usize) -> Instance {
    let forest = single(clique_child_tree(k));
    let graph = adversarial_graph(k, n);
    let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
    Instance {
        forest,
        graph,
        mu,
        expected: true,
        label: format!("Q_{k} / Turán({n}, {})", k - 1),
    }
}

/// The bounded-width control: path-child tree (bw = 1) against a graph
/// where the path child almost-extends (the last edge is missing), pinned
/// at `µ = {x→a, y→b}` — a solution whose certification is linear.
pub fn path_instance(len: usize, n: usize) -> Instance {
    let forest = single(path_child_tree(len));
    let mut graph = RdfGraph::new();
    graph.insert(Triple::from_strs("a", "p", "b"));
    // A bundle of r-paths of length len−1 starting at b: one short of
    // extending the child (which needs len edges after (y,r,o1)).
    for c in 0..n {
        let mut prev = "b".to_string();
        for d in 0..len {
            let next = format!("v{c}_{d}");
            graph.insert(Triple::from_strs(&prev, "r", &next));
            prev = next;
        }
    }
    let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
    Instance {
        forest,
        graph,
        mu,
        expected: false, // the child extends (paths are long enough)
        label: format!("Path_{len} / bundle({n})"),
    }
}

/// T'_k (§3.2, bw = 1) against a graph with an `r`-loop so the branch core
/// collapses: positive instance whose naive cost still grows with k.
pub fn tprime_instance(k: usize, n: usize) -> Instance {
    let forest = single(tprime_tree(k));
    // Loop at b (matches root (y,r,y)), plus a Turán r-graph reachable
    // from b: the child clique has no hom because... the loop! (b,r,b)
    // lets the whole clique collapse onto b. To keep the instance
    // *negative for extension* we must NOT give b an r-loop — instead use
    // a different loop vertex l not reachable as o1.
    // Root (y,r,y) needs a loop at µ(y): so the child WILL also map by
    // collapsing onto that loop. Hence for T'_k the positive instances are
    // the extended mappings.
    let mut graph = turan_graph(n, (k - 1).max(2), "r");
    graph.insert(Triple::from_strs("b", "r", "b"));
    let mu = Mapping::from_strs([("y", "b")]);
    Instance {
        forest,
        graph,
        mu,
        expected: false, // child extends by collapsing onto the loop
        label: format!("T'_{k} / loop+Turán({n})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_blocks_the_clique_child() {
        // Direct check on k = 3, n = 6: no hom from the clique child
        // pattern extending µ.
        let inst = clique_instance(3, 6);
        let tree = &inst.forest.trees[0];
        let child = tree.children(wdsparql_tree::ROOT)[0];
        let pat = tree.pat(child);
        let x: Vec<_> = pat
            .vars()
            .into_iter()
            .filter(|v| inst.mu.contains(*v))
            .collect();
        let src = wdsparql_hom::GenTGraph::new(pat.clone(), x);
        assert!(
            wdsparql_hom::find_hom_into_graph(&src, &inst.graph, &inst.mu).is_none(),
            "the clique child must not extend"
        );
    }

    #[test]
    fn fk_positive_and_negative_instances() {
        // Cross-checked against the naive evaluator in integration tests;
        // here: structural sanity.
        let pos = fk_instance(3, 6);
        assert!(pos.expected);
        assert!(pos.graph.contains(&Triple::from_strs("a", "p", "b")));
        let neg = fk_instance_negative(3, 6);
        assert!(!neg.expected);
        assert!(neg.graph.contains(&Triple::from_strs("z0", "q", "a")));
    }

    #[test]
    fn path_instance_child_extends() {
        let inst = path_instance(3, 2);
        let tree = &inst.forest.trees[0];
        let child = tree.children(wdsparql_tree::ROOT)[0];
        let pat = tree.pat(child);
        let x: Vec<_> = pat
            .vars()
            .into_iter()
            .filter(|v| inst.mu.contains(*v))
            .collect();
        let src = wdsparql_hom::GenTGraph::new(pat.clone(), x);
        assert!(wdsparql_hom::find_hom_into_graph(&src, &inst.graph, &inst.mu).is_some());
    }

    #[test]
    fn tprime_instance_has_loop() {
        let inst = tprime_instance(3, 6);
        assert!(inst.graph.contains(&Triple::from_strs("b", "r", "b")));
    }
}
