//! Seeded RDF graph generators: random graphs, Turán adversaries, and two
//! realistic domains (a social network and a bibliography) for the
//! examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdsparql_rdf::{Iri, RdfGraph, Triple};

/// A uniformly random graph: `n_triples` triples over `n_nodes` node IRIs
/// and the given predicates. Deterministic in `seed`.
pub fn random_graph(n_nodes: usize, n_triples: usize, predicates: &[&str], seed: u64) -> RdfGraph {
    assert!(n_nodes > 0 && !predicates.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    while g.len() < n_triples {
        let s = format!("n{}", rng.gen_range(0..n_nodes));
        let p = predicates[rng.gen_range(0..predicates.len())];
        let o = format!("n{}", rng.gen_range(0..n_nodes));
        g.insert(Triple::from_strs(&s, p, &o));
    }
    g
}

/// The Turán-style adversary: `n` vertices split into `parts` classes, with
/// `predicate`-edges in *both directions* between every two vertices of
/// different classes (and none inside a class, no loops). Contains
/// `K_parts` but no `K_{parts+1}`, which makes refuting a
/// `(parts+1)`-clique pattern the worst case for backtracking solvers.
pub fn turan_graph(n: usize, parts: usize, predicate: &str) -> RdfGraph {
    assert!(parts >= 1 && n >= parts);
    let mut g = RdfGraph::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && u % parts != v % parts {
                g.insert(Triple::from_strs(
                    &format!("t{u}"),
                    predicate,
                    &format!("t{v}"),
                ));
            }
        }
    }
    g
}

/// Names of the Turán vertices in class `class`.
pub fn turan_class(n: usize, parts: usize, class: usize) -> Vec<Iri> {
    (0..n)
        .filter(|u| u % parts == class)
        .map(|u| Iri::new(&format!("t{u}")))
        .collect()
}

/// A small social network: people with `knows` edges, partial profiles
/// (`email`, `city`), posts (`wrote`) and likes. The OPT-shaped queries of
/// the examples exercise exactly the partial profile data.
pub fn social_network(n_people: usize, seed: u64) -> RdfGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    let person = |i: usize| format!("person{i}");
    for i in 0..n_people {
        g.insert(Triple::from_strs(&person(i), "type", "Person"));
        // ~60% have an email, ~50% a city: OPTIONAL data.
        if rng.gen_bool(0.6) {
            g.insert(Triple::from_strs(
                &person(i),
                "email",
                &format!("mail{i}@example.org"),
            ));
        }
        if rng.gen_bool(0.5) {
            g.insert(Triple::from_strs(
                &person(i),
                "city",
                &format!("city{}", rng.gen_range(0..5)),
            ));
        }
        // Posts.
        for p in 0..rng.gen_range(0..3) {
            let post = format!("post{i}_{p}");
            g.insert(Triple::from_strs(&person(i), "wrote", &post));
            if rng.gen_bool(0.5) {
                g.insert(Triple::from_strs(
                    &post,
                    "topic",
                    &format!("topic{}", rng.gen_range(0..4)),
                ));
            }
        }
    }
    // knows edges (directed).
    for _ in 0..n_people * 2 {
        let a = rng.gen_range(0..n_people);
        let b = rng.gen_range(0..n_people);
        if a != b {
            g.insert(Triple::from_strs(&person(a), "knows", &person(b)));
        }
    }
    g
}

/// A bibliographic graph: papers with authors, venues, years and citation
/// edges; some papers have optional abstracts or award marks.
pub fn bibliography(n_papers: usize, seed: u64) -> RdfGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    let n_authors = (n_papers / 2).max(1);
    for i in 0..n_papers {
        let paper = format!("paper{i}");
        g.insert(Triple::from_strs(&paper, "type", "Paper"));
        g.insert(Triple::from_strs(
            &paper,
            "venue",
            ["PODS", "SIGMOD", "VLDB", "ICDT"][rng.gen_range(0..4usize)],
        ));
        g.insert(Triple::from_strs(
            &paper,
            "year",
            &format!("{}", 2000 + rng.gen_range(0..20)),
        ));
        for _ in 0..rng.gen_range(1..4) {
            g.insert(Triple::from_strs(
                &paper,
                "author",
                &format!("author{}", rng.gen_range(0..n_authors)),
            ));
        }
        if rng.gen_bool(0.4) {
            g.insert(Triple::from_strs(&paper, "abstract", &format!("abs{i}")));
        }
        if rng.gen_bool(0.1) {
            g.insert(Triple::from_strs(&paper, "award", "BestPaper"));
        }
        // Citations point backwards.
        if i > 0 {
            for _ in 0..rng.gen_range(0..3) {
                g.insert(Triple::from_strs(
                    &paper,
                    "cites",
                    &format!("paper{}", rng.gen_range(0..i)),
                ));
            }
        }
    }
    g
}

/// A LUBM-flavoured university dataset: departments with professors,
/// students, courses, `teaches`/`takes`/`advisor` edges and *optional*
/// attributes (office, homepage, TA-ship) shaped for OPT queries.
pub fn university(n_depts: usize, seed: u64) -> RdfGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    for d in 0..n_depts {
        let dept = format!("dept{d}");
        g.insert(Triple::from_strs(&dept, "type", "Department"));
        let n_profs = rng.gen_range(2..5);
        let n_students = rng.gen_range(6..12);
        let n_courses = rng.gen_range(3..6);
        for c in 0..n_courses {
            let course = format!("course{d}_{c}");
            g.insert(Triple::from_strs(&course, "type", "Course"));
            g.insert(Triple::from_strs(&course, "offeredBy", &dept));
        }
        for p in 0..n_profs {
            let prof = format!("prof{d}_{p}");
            g.insert(Triple::from_strs(&prof, "type", "Professor"));
            g.insert(Triple::from_strs(&prof, "worksFor", &dept));
            g.insert(Triple::from_strs(
                &prof,
                "teaches",
                &format!("course{d}_{}", rng.gen_range(0..n_courses)),
            ));
            // Optional attributes: not every professor has them.
            if rng.gen_bool(0.5) {
                g.insert(Triple::from_strs(&prof, "office", &format!("room{d}{p}")));
            }
            if rng.gen_bool(0.4) {
                g.insert(Triple::from_strs(
                    &prof,
                    "homepage",
                    &format!("http://uni.example/{prof}"),
                ));
            }
        }
        for s in 0..n_students {
            let student = format!("student{d}_{s}");
            g.insert(Triple::from_strs(&student, "type", "Student"));
            g.insert(Triple::from_strs(&student, "memberOf", &dept));
            for _ in 0..rng.gen_range(1..4) {
                g.insert(Triple::from_strs(
                    &student,
                    "takes",
                    &format!("course{d}_{}", rng.gen_range(0..n_courses)),
                ));
            }
            // ~half the students have an advisor; a few TA a course.
            if rng.gen_bool(0.5) {
                g.insert(Triple::from_strs(
                    &student,
                    "advisor",
                    &format!("prof{d}_{}", rng.gen_range(0..n_profs)),
                ));
            }
            if rng.gen_bool(0.2) {
                g.insert(Triple::from_strs(
                    &student,
                    "assists",
                    &format!("course{d}_{}", rng.gen_range(0..n_courses)),
                ));
            }
        }
    }
    g
}

/// A streaming bulk-load workload: `n_triples` pseudo-random triple
/// draws over `n_nodes` node IRIs and `n_predicates` predicates,
/// deterministic in `seed`. Unlike [`random_graph`] nothing is
/// materialised or deduplicated — the iterator feeds
/// `wdsparql-store`-style batched loaders at million-triple scale
/// without an intermediate [`RdfGraph`] (duplicates are the loader's
/// problem, as with any real ingest feed).
pub fn triple_stream(
    n_nodes: usize,
    n_triples: usize,
    n_predicates: usize,
    seed: u64,
) -> impl Iterator<Item = Triple> {
    assert!(n_nodes > 0 && n_predicates > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_triples).map(move |_| {
        let s = format!("n{}", rng.gen_range(0..n_nodes));
        let p = format!("p{}", rng.gen_range(0..n_predicates));
        let o = format!("n{}", rng.gen_range(0..n_nodes));
        Triple::from_strs(&s, &p, &o)
    })
}

/// An incremental-ingest workload: the draws of [`triple_stream`]
/// delivered as ready-made batches of `batch_size` triples — the shape
/// the store's log-structured write path (and its write-amplification
/// bench) consumes. The concatenation of all batches equals the stream;
/// the final batch may be short. Deterministic in `seed`.
pub fn batched_triple_stream(
    n_nodes: usize,
    n_triples: usize,
    n_predicates: usize,
    batch_size: usize,
    seed: u64,
) -> impl Iterator<Item = Vec<Triple>> {
    assert!(batch_size > 0);
    let mut stream = triple_stream(n_nodes, n_triples, n_predicates, seed);
    std::iter::from_fn(move || {
        let batch: Vec<Triple> = stream.by_ref().take(batch_size).collect();
        (!batch.is_empty()).then_some(batch)
    })
}

/// A subject-skewed variant of [`triple_stream`]: subjects are drawn as
/// the minimum of three uniform draws, so the density at rank `x` is
/// `3(1 − x)²` — a hot head (the first tenth of the node range receives
/// ~27% of the writes) with a long tail, the shape real ingest feeds
/// have. Predicates and objects stay uniform. Deterministic in `seed`.
///
/// The hot subjects stress exactly what hash partitioning is supposed to
/// absorb: a sharded store must spread the head's *names* across shards
/// even though their *ranks* cluster, keeping per-shard loads balanced.
pub fn skewed_triple_stream(
    n_nodes: usize,
    n_triples: usize,
    n_predicates: usize,
    seed: u64,
) -> impl Iterator<Item = Triple> {
    assert!(n_nodes > 0 && n_predicates > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_triples).map(move |_| {
        let draw = rng
            .gen_range(0..n_nodes)
            .min(rng.gen_range(0..n_nodes))
            .min(rng.gen_range(0..n_nodes));
        let s = format!("n{draw}");
        let p = format!("p{}", rng.gen_range(0..n_predicates));
        let o = format!("n{}", rng.gen_range(0..n_nodes));
        Triple::from_strs(&s, &p, &o)
    })
}

/// A preferential-attachment ("scale-free") graph: each new vertex
/// attaches `m` out-edges, preferring endpoints that already have many
/// edges (Barabási–Albert flavour, over a single predicate). Produces the
/// skewed degree distributions under which fail-first hom search shines.
pub fn scale_free(n: usize, m: usize, predicate: &str, seed: u64) -> RdfGraph {
    assert!(n >= 2 && m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RdfGraph::new();
    // Endpoint pool: one entry per edge endpoint (classic BA trick).
    let mut pool: Vec<usize> = vec![0, 1];
    g.insert(Triple::from_strs("v0", predicate, "v1"));
    for v in 2..n {
        for _ in 0..m.min(v) {
            let target = pool[rng.gen_range(0..pool.len())];
            if target != v {
                g.insert(Triple::from_strs(
                    &format!("v{v}"),
                    predicate,
                    &format!("v{target}"),
                ));
                pool.push(v);
                pool.push(target);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(10, 30, &["p", "q"], 7);
        let b = random_graph(10, 30, &["p", "q"], 7);
        let c = random_graph(10, 30, &["p", "q"], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn turan_has_no_large_clique() {
        // K_3 exists in T(9, 3) but K_4 does not (directed i<j pattern).
        let g = turan_graph(9, 3, "r");
        let clique = |k: usize| {
            let mut pats = Vec::new();
            for i in 1..=k {
                for j in (i + 1)..=k {
                    pats.push(tp(var(&format!("c{i}")), iri("r"), var(&format!("c{j}"))));
                }
            }
            wdsparql_hom::TGraph::from_patterns(pats)
        };
        let g3 = wdsparql_hom::GenTGraph::new(clique(3), []);
        let g4 = wdsparql_hom::GenTGraph::new(clique(4), []);
        let mu = wdsparql_rdf::Mapping::new();
        assert!(wdsparql_hom::find_hom_into_graph(&g3, &g, &mu).is_some());
        assert!(wdsparql_hom::find_hom_into_graph(&g4, &g, &mu).is_none());
    }

    #[test]
    fn turan_classes_partition() {
        let all: usize = (0..3).map(|c| turan_class(10, 3, c).len()).sum();
        assert_eq!(all, 10);
    }

    #[test]
    fn social_network_has_optional_profiles() {
        let g = social_network(50, 42);
        let people = g.solutions(&tp(var("p"), iri("type"), iri("Person")));
        assert_eq!(people.len(), 50);
        let emails = g.solutions(&tp(var("p"), iri("email"), var("e")));
        assert!(!emails.is_empty() && emails.len() < 50);
    }

    #[test]
    fn bibliography_has_citations_and_awards() {
        let g = bibliography(60, 1);
        assert!(!g
            .solutions(&tp(var("p"), iri("cites"), var("q")))
            .is_empty());
        assert!(!g
            .solutions(&tp(var("p"), iri("award"), iri("BestPaper")))
            .is_empty());
        assert!(!g
            .solutions(&tp(var("p"), iri("abstract"), var("a")))
            .is_empty());
    }

    #[test]
    fn university_has_partial_profiles_and_advisors() {
        let g = university(4, 11);
        let profs = g.solutions(&tp(var("p"), iri("type"), iri("Professor")));
        assert!(!profs.is_empty());
        let offices = g.solutions(&tp(var("p"), iri("office"), var("o")));
        assert!(!offices.is_empty() && offices.len() < profs.len());
        assert!(!g
            .solutions(&tp(var("s"), iri("advisor"), var("p")))
            .is_empty());
        // Deterministic in the seed.
        assert_eq!(university(4, 11), university(4, 11));
        assert_ne!(university(4, 11), university(4, 12));
    }

    #[test]
    fn skewed_stream_is_deterministic_with_a_hot_head() {
        let a: Vec<Triple> = skewed_triple_stream(100, 4000, 3, 11).collect();
        let b: Vec<Triple> = skewed_triple_stream(100, 4000, 3, 11).collect();
        assert_eq!(a, b, "deterministic in the seed");
        assert_eq!(a.len(), 4000);
        // min-of-3 subjects: the first decile of the node range draws
        // 1 − 0.9³ ≈ 27% of the writes — well above a uniform 10%.
        let head = a
            .iter()
            .filter(|t| {
                let rank: usize = t.s.as_str()[1..].parse().unwrap();
                rank < 10
            })
            .count();
        assert!(
            head * 5 >= a.len(),
            "expected a hot head, got {head}/{} in the first decile",
            a.len()
        );
        // Objects stay uniform: the first decile holds nothing special.
        let obj_head = a
            .iter()
            .filter(|t| t.o.as_str()[1..].parse::<usize>().unwrap() < 10)
            .count();
        assert!(obj_head * 5 < a.len(), "objects must not inherit the skew");
    }

    #[test]
    fn triple_stream_is_deterministic_and_lazy() {
        let a: Vec<Triple> = triple_stream(50, 1000, 3, 9).collect();
        let b: Vec<Triple> = triple_stream(50, 1000, 3, 9).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        let c: Vec<Triple> = triple_stream(50, 1000, 3, 10).collect();
        assert_ne!(a, c);
        // The stream (unlike random_graph) may repeat triples; a set
        // build of the same draws is therefore no larger.
        let g = RdfGraph::from_triples(a.iter().copied());
        assert!(g.len() <= 1000);
    }

    #[test]
    fn batched_stream_concatenates_to_the_stream() {
        let flat: Vec<Triple> = triple_stream(40, 500, 3, 5).collect();
        let batches: Vec<Vec<Triple>> = batched_triple_stream(40, 500, 3, 64, 5).collect();
        assert_eq!(batches.len(), 500usize.div_ceil(64));
        assert!(batches[..batches.len() - 1].iter().all(|b| b.len() == 64));
        let joined: Vec<Triple> = batches.concat();
        assert_eq!(joined, flat);
        // An exact multiple leaves no short tail.
        let even: Vec<Vec<Triple>> = batched_triple_stream(40, 500, 3, 100, 5).collect();
        assert!(even.iter().all(|b| b.len() == 100));
    }

    #[test]
    fn scale_free_is_skewed_and_deterministic() {
        let g = scale_free(80, 2, "link", 3);
        assert_eq!(g, scale_free(80, 2, "link", 3));
        // In-degree of the hubs exceeds the average markedly.
        let mut indeg = std::collections::BTreeMap::new();
        for t in g.iter() {
            *indeg.entry(t.o).or_insert(0usize) += 1;
        }
        let max = indeg.values().copied().max().unwrap();
        let avg = g.len() as f64 / indeg.len() as f64;
        assert!(
            (max as f64) >= 3.0 * avg,
            "expected a hub: max {max}, avg {avg:.2}"
        );
    }
}
