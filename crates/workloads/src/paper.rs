//! Verbatim constructions from the paper: Examples 1–5 and Figures 1–3,
//! plus the §3.2 family `T'_k`. These are the fixtures behind experiments
//! E1–E4 and many integration tests.

use wdsparql_algebra::GraphPattern;
use wdsparql_hom::{GenTGraph, TGraph};
use wdsparql_rdf::term::{iri, var};
use wdsparql_rdf::{tp, TriplePattern, Variable};
use wdsparql_tree::{Wdpf, Wdpt, ROOT};

fn t(s: &str, p: &str, o: &str) -> TriplePattern {
    let term = |x: &str| {
        if let Some(name) = x.strip_prefix('?') {
            var(name)
        } else {
            iri(x)
        }
    };
    tp(term(s), term(p), term(o))
}

/// `K_k(?o1, ..., ?ok) = {(?oi, r, ?oj) | i < j}` (Example 3).
pub fn kk_clique(k: usize) -> Vec<TriplePattern> {
    let mut out = Vec::new();
    for i in 1..=k {
        for j in (i + 1)..=k {
            out.push(t(&format!("?o{i}"), "r", &format!("?o{j}")));
        }
    }
    out
}

/// `P1` from Example 1 (well-designed):
/// `((?x,p,?y) OPT (?z,q,?x)) OPT ((?y,r,?o1) AND (?o1,r,?o2))`.
pub fn example1_p1() -> GraphPattern {
    GraphPattern::opt(
        GraphPattern::opt(
            GraphPattern::triple(t("?x", "p", "?y")),
            GraphPattern::triple(t("?z", "q", "?x")),
        ),
        GraphPattern::and(
            GraphPattern::triple(t("?y", "r", "?o1")),
            GraphPattern::triple(t("?o1", "r", "?o2")),
        ),
    )
}

/// `P2` from Example 1 (NOT well-designed: `?z` escapes its OPT).
pub fn example1_p2() -> GraphPattern {
    GraphPattern::opt(
        GraphPattern::opt(
            GraphPattern::triple(t("?x", "p", "?y")),
            GraphPattern::triple(t("?z", "q", "?x")),
        ),
        GraphPattern::and(
            GraphPattern::triple(t("?y", "r", "?z")),
            GraphPattern::triple(t("?z", "r", "?o2")),
        ),
    )
}

/// `P` from Example 2: `P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z)))`.
pub fn example2_pattern() -> GraphPattern {
    GraphPattern::union(
        example1_p1(),
        GraphPattern::opt(
            GraphPattern::triple(t("?x", "p", "?y")),
            GraphPattern::and(
                GraphPattern::triple(t("?z", "q", "?x")),
                GraphPattern::triple(t("?w", "q", "?z")),
            ),
        ),
    )
}

/// `(S, X)` from Example 3 / Figure 1:
/// `S = {(?z,q,?x), (?x,p,?y), (?y,r,?o1)} ∪ K_k`, `X = {?x, ?y, ?z}`.
/// A core with `ctw = k − 1`.
pub fn example3_s(k: usize) -> GenTGraph {
    let mut pats = vec![t("?z", "q", "?x"), t("?x", "p", "?y"), t("?y", "r", "?o1")];
    pats.extend(kk_clique(k));
    GenTGraph::new(
        TGraph::from_patterns(pats),
        [Variable::new("x"), Variable::new("y"), Variable::new("z")],
    )
}

/// `(S', X)` from Example 3 / Figure 1: `S` extended with
/// `(?y,r,?o), (?o,r,?o)`. Here `tw = k − 1` but `ctw = 1`.
pub fn example3_s_prime(k: usize) -> GenTGraph {
    let mut pats = vec![
        t("?z", "q", "?x"),
        t("?x", "p", "?y"),
        t("?y", "r", "?o1"),
        t("?y", "r", "?o"),
        t("?o", "r", "?o"),
    ];
    pats.extend(kk_clique(k));
    GenTGraph::new(
        TGraph::from_patterns(pats),
        [Variable::new("x"), Variable::new("y"), Variable::new("z")],
    )
}

/// The expected core `C'` of `(S', X)` (Example 3).
pub fn example3_c_prime() -> TGraph {
    TGraph::from_patterns([
        t("?z", "q", "?x"),
        t("?x", "p", "?y"),
        t("?y", "r", "?o"),
        t("?o", "r", "?o"),
    ])
}

/// The wdPF `F_k = {T1, T2, T3}` of Example 4 / Figure 2.
///
/// * `T1`: root `{(?x,p,?y)}`; children `n11 = {(?z,q,?x)}` and
///   `n12 = {(?y,r,?o1)} ∪ K_k`;
/// * `T2`: root `{(?x,p,?y)}`; child `n2 = {(?z,q,?x), (?w,q,?z)}`;
/// * `T3`: root `{(?x,p,?y), (?z,q,?x)}`; child
///   `n3 = {(?y,r,?o), (?o,r,?o)}`.
///
/// `dw(F_k) = 1` for every `k ≥ 2` (Example 5) even though `F_k` is not
/// locally tractable (node `n12`).
pub fn fk_forest(k: usize) -> Wdpf {
    assert!(k >= 2);
    let mut t1 = Wdpt::new(TGraph::from_patterns([t("?x", "p", "?y")]));
    t1.add_child(ROOT, TGraph::from_patterns([t("?z", "q", "?x")]));
    let mut n12 = vec![t("?y", "r", "?o1")];
    n12.extend(kk_clique(k));
    t1.add_child(ROOT, TGraph::from_patterns(n12));

    let mut t2 = Wdpt::new(TGraph::from_patterns([t("?x", "p", "?y")]));
    t2.add_child(
        ROOT,
        TGraph::from_patterns([t("?z", "q", "?x"), t("?w", "q", "?z")]),
    );

    let mut t3 = Wdpt::new(TGraph::from_patterns([
        t("?x", "p", "?y"),
        t("?z", "q", "?x"),
    ]));
    t3.add_child(
        ROOT,
        TGraph::from_patterns([t("?y", "r", "?o"), t("?o", "r", "?o")]),
    );

    let f = Wdpf::new(vec![t1, t2, t3]);
    for tree in &f.trees {
        tree.validate().expect("F_k is a valid wdPF");
    }
    f
}

/// The UNION-free family `T'_k` of §3.2: root `{(?y,r,?y)}`, child
/// `{(?y,r,?o1)} ∪ K_k`. Branch treewidth 1 (hence tractable) but local
/// width `k − 1` (not locally tractable).
pub fn tprime_tree(k: usize) -> Wdpt {
    assert!(k >= 2);
    let mut tree = Wdpt::new(TGraph::from_patterns([t("?y", "r", "?y")]));
    let mut child = vec![t("?y", "r", "?o1")];
    child.extend(kk_clique(k));
    tree.add_child(ROOT, TGraph::from_patterns(child));
    tree.validate().expect("T'_k is a valid wdPT");
    tree
}

/// The unbounded-width UNION-free family: root `{(?x,p,?y)}`, child
/// `{(?y,r,?o1)} ∪ K_k`. Branch treewidth `k − 1` — by Corollary 1 this
/// class has no polynomial-time evaluation unless FPT = W\[1\].
pub fn clique_child_tree(k: usize) -> Wdpt {
    assert!(k >= 2);
    let mut tree = Wdpt::new(TGraph::from_patterns([t("?x", "p", "?y")]));
    let mut child = vec![t("?y", "r", "?o1")];
    child.extend(kk_clique(k));
    tree.add_child(ROOT, TGraph::from_patterns(child));
    tree.validate().expect("clique-child tree is a valid wdPT");
    tree
}

/// A bounded-width analogue of [`clique_child_tree`] where the child is an
/// `n`-edge path `(?y,r,?o1), (?o1,r,?o2), ...` instead of a clique
/// (bw = 1). Used as the tractable side of dichotomy plots.
pub fn path_child_tree(n: usize) -> Wdpt {
    assert!(n >= 1);
    let mut tree = Wdpt::new(TGraph::from_patterns([t("?x", "p", "?y")]));
    let mut child = vec![t("?y", "r", "?o1")];
    for i in 1..n {
        child.push(t(&format!("?o{i}"), "r", &format!("?o{}", i + 1)));
    }
    tree.add_child(ROOT, TGraph::from_patterns(child));
    tree.validate().expect("path-child tree is a valid wdPT");
    tree
}

/// A grid-cored analogue of [`clique_child_tree`]: root `{(?x,p,?y)}`,
/// child `{(?y,anchor,?g1_1)} ∪ Grid(rows × cols)` where the grid t-graph
/// has one triple per pair of orthogonally adjacent cells, each with its
/// **own predicate** (`ei_j_v` / `ei_j_h`). The per-edge predicates make
/// the child pattern rigid — its only self-homomorphism is the identity,
/// so it is its own core — while its Gaifman graph is exactly the grid.
/// Hence `bw = dw = min(rows, cols)`: this family realises the
/// excluded-grid shape of the §4.2 reduction with the *identity* minor
/// map, no Robertson–Seymour search needed.
///
/// (A uniformly-labelled directed grid would *not* work: it folds onto a
/// diagonal path by the level function `i + j`, collapsing its core to
/// treewidth 1. Rigidity is what keeps the grid in the core.)
pub fn grid_child_tree(rows: usize, cols: usize) -> Wdpt {
    assert!(rows >= 2 && cols >= 2);
    let cell = |i: usize, j: usize| format!("?g{i}_{j}");
    let mut tree = Wdpt::new(TGraph::from_patterns([t("?x", "p", "?y")]));
    let mut child = vec![t("?y", "anchor", "?g1_1")];
    for i in 1..=rows {
        for j in 1..=cols {
            if i < rows {
                child.push(t(&cell(i, j), &format!("e{i}_{j}_v"), &cell(i + 1, j)));
            }
            if j < cols {
                child.push(t(&cell(i, j), &format!("e{i}_{j}_h"), &cell(i, j + 1)));
            }
        }
    }
    tree.add_child(ROOT, TGraph::from_patterns(child));
    tree.validate().expect("grid-child tree is a valid wdPT");
    tree
}

/// A deep chain of nested OPTs: node `i` is `{(?v_i, p_i, ?v_{i+1})}`
/// hanging under node `i − 1`; bw = 1 at every depth.
pub fn chain_tree(depth: usize) -> Wdpt {
    assert!(depth >= 1);
    let mut tree = Wdpt::new(TGraph::from_patterns([t("?v0", "p0", "?v1")]));
    let mut cur = ROOT;
    for i in 1..depth {
        cur = tree.add_child(
            cur,
            TGraph::from_patterns([t(
                &format!("?v{i}"),
                &format!("p{i}"),
                &format!("?v{}", i + 1),
            )]),
        );
    }
    tree.validate().expect("chain tree is a valid wdPT");
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::is_well_designed;
    use wdsparql_hom::{core_of, ctw, is_core, tw_gen};

    #[test]
    fn example1_classification() {
        assert!(is_well_designed(&example1_p1()));
        assert!(!is_well_designed(&example1_p2()));
    }

    #[test]
    fn example2_translates_to_two_trees() {
        let f = Wdpf::from_pattern(&example2_pattern()).unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn example3_claims() {
        for k in 2..=4 {
            let s = example3_s(k);
            assert!(is_core(&s), "(S, X) is a core (k={k})");
            assert_eq!(ctw(&s).width, (k - 1).max(1), "ctw(S,X) (k={k})");
            let sp = example3_s_prime(k);
            assert_eq!(tw_gen(&sp).width, (k - 1).max(1), "tw(S',X) (k={k})");
            assert_eq!(ctw(&sp).width, 1, "ctw(S',X) (k={k})");
            let c = core_of(&sp);
            assert_eq!(c.s, example3_c_prime(), "core of (S',X) (k={k})");
        }
    }

    #[test]
    fn families_have_expected_shapes() {
        let f = fk_forest(3);
        assert_eq!(f.len(), 3);
        assert_eq!(f.trees[0].len(), 3);
        assert_eq!(f.trees[1].len(), 2);
        assert_eq!(f.trees[2].len(), 2);
        assert_eq!(tprime_tree(4).len(), 2);
        assert_eq!(clique_child_tree(4).len(), 2);
        assert_eq!(chain_tree(5).len(), 5);
        assert_eq!(path_child_tree(3).len(), 2);
    }

    #[test]
    fn kk_clique_size() {
        assert_eq!(kk_clique(4).len(), 6);
        assert_eq!(kk_clique(2).len(), 1);
    }

    #[test]
    fn grid_child_tree_is_rigid_with_grid_width() {
        // Rigidity: the child's branch t-graph is its own core, so the
        // branch treewidth equals the grid treewidth min(rows, cols).
        for (rows, cols, want) in [(2usize, 2usize, 2usize), (2, 3, 2), (3, 3, 3)] {
            let t = grid_child_tree(rows, cols);
            assert_eq!(t.len(), 2);
            let child = t.children(ROOT)[0];
            let branch = wdsparql_width::branch_tgraph(&t, child);
            assert!(
                is_core(&branch),
                "per-edge predicates must make the {rows}x{cols} grid rigid"
            );
            assert_eq!(
                wdsparql_width::branch_treewidth(&t),
                want,
                "bw(grid {rows}x{cols})"
            );
        }
    }

    #[test]
    fn uniform_grid_would_fold_onto_a_path() {
        // The design note on grid_child_tree: with a single predicate the
        // directed grid folds by levels, so its ctw collapses to 1. This
        // test pins the phenomenon the per-edge predicates guard against.
        let cell = |i: usize, j: usize| format!("?u{i}_{j}");
        let mut pats = Vec::new();
        for i in 1..=3usize {
            for j in 1..=3usize {
                if i < 3 {
                    pats.push(t(&cell(i, j), "r", &cell(i + 1, j)));
                }
                if j < 3 {
                    pats.push(t(&cell(i, j), "r", &cell(i, j + 1)));
                }
            }
        }
        let uniform = GenTGraph::new(TGraph::from_patterns(pats), []);
        assert_eq!(tw_gen(&uniform).width, 3, "the uniform grid has tw 3");
        assert_eq!(ctw(&uniform).width, 1, "...but folds to a path (ctw 1)");
    }
}
