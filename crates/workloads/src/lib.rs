//! # wdsparql-workloads
//!
//! Deterministic, seeded workload generators:
//!
//! * [`paper`] — the paper's own constructions (Examples 1–5, Figures 1–3,
//!   the families `F_k`, `T'_k`, clique/path/chain trees);
//! * [`graphs`] — RDF graph families (random, Turán adversaries, a social
//!   network, a bibliography);
//! * [`queries`] — random well-designed pattern trees/forests, valid by
//!   construction;
//! * [`instances`] — matched (query, graph, µ, expected) membership
//!   instances for the dichotomy experiments.

#![forbid(unsafe_code)]

pub mod graphs;
pub mod instances;
pub mod paper;
pub mod queries;

pub use graphs::{
    batched_triple_stream, bibliography, random_graph, scale_free, skewed_triple_stream,
    social_network, triple_stream, turan_class, turan_graph, university,
};
pub use instances::{
    clique_instance, fk_instance, fk_instance_negative, path_instance, tprime_instance, Instance,
};
pub use paper::{
    chain_tree, clique_child_tree, example1_p1, example1_p2, example2_pattern, example3_c_prime,
    example3_s, example3_s_prime, fk_forest, grid_child_tree, kk_clique, path_child_tree,
    tprime_tree,
};
pub use queries::{random_wdpf, random_wdpt, RandomTreeParams};
