//! Random well-designed query generators.
//!
//! Trees are grown so the wdPT invariants hold *by construction*: each
//! node's pattern may reuse variables of its branch and always introduces
//! at least one fresh variable (NR normal form), and private variables are
//! never shared across sibling subtrees (condition (3)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdsparql_hom::TGraph;
use wdsparql_rdf::{tp, Term, TriplePattern, Variable};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// Parameters for [`random_wdpt`].
#[derive(Clone, Copy, Debug)]
pub struct RandomTreeParams {
    /// Maximum node count (≥ 1).
    pub max_nodes: usize,
    /// Maximum children per node.
    pub max_fanout: usize,
    /// Maximum triples per node label.
    pub max_triples_per_node: usize,
    /// Number of predicate names to draw from.
    pub n_predicates: usize,
    /// Probability that a triple position reuses an inherited variable
    /// (vs a fresh variable or constant).
    pub reuse_bias: f64,
}

impl Default for RandomTreeParams {
    fn default() -> RandomTreeParams {
        RandomTreeParams {
            max_nodes: 4,
            max_fanout: 2,
            max_triples_per_node: 2,
            n_predicates: 3,
            reuse_bias: 0.5,
        }
    }
}

/// Generates a random wdPT, valid by construction, deterministic in `seed`.
pub fn random_wdpt(params: RandomTreeParams, seed: u64) -> Wdpt {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0usize;
    let mut fresh = || {
        counter += 1;
        Variable::new(&format!("rv{seed}_{counter}"))
    };

    let n_nodes = rng.gen_range(1..=params.max_nodes.max(1));
    let root_vars: Vec<Variable> = (0..2).map(|_| fresh()).collect();
    let root_pat = random_label(&mut rng, &params, &root_vars, &mut fresh);
    let mut tree = Wdpt::new(root_pat);
    let mut open: Vec<NodeId> = vec![tree.root()];

    while tree.len() < n_nodes && !open.is_empty() {
        let pick = rng.gen_range(0..open.len());
        let parent = open[pick];
        if tree.children(parent).len() >= params.max_fanout {
            open.swap_remove(pick);
            continue;
        }
        // Inherit some branch variables (from the parent's own label so
        // condition (3) holds), add fresh privates.
        let parent_vars: Vec<Variable> = tree.vars(parent).into_iter().collect();
        let n_inherit = rng.gen_range(0..=parent_vars.len().min(2));
        let mut scope: Vec<Variable> = (0..n_inherit)
            .map(|_| parent_vars[rng.gen_range(0..parent_vars.len())])
            .collect();
        let private = fresh();
        scope.push(private);
        let mut label = random_label(&mut rng, &params, &scope, &mut fresh);
        // Guarantee NR normal form: force one triple to use the private
        // variable and one inherited variable (or the private twice).
        let anchor = if parent_vars.is_empty() {
            Term::Var(private)
        } else {
            Term::Var(parent_vars[rng.gen_range(0..parent_vars.len())])
        };
        label.insert(tp(
            anchor,
            wdsparql_rdf::iri(&format!("p{}", rng.gen_range(0..params.n_predicates))),
            Term::Var(private),
        ));
        let child = tree.add_child(parent, label);
        open.push(child);
    }
    tree.validate()
        .expect("random trees are valid by construction");
    tree
}

fn random_label(
    rng: &mut StdRng,
    params: &RandomTreeParams,
    scope: &[Variable],
    fresh: &mut dyn FnMut() -> Variable,
) -> TGraph {
    let n = rng.gen_range(1..=params.max_triples_per_node.max(1));
    let mut pats: Vec<TriplePattern> = Vec::with_capacity(n);
    let mut local: Vec<Variable> = scope.to_vec();
    for _ in 0..n {
        let mut pos = |rng: &mut StdRng, local: &mut Vec<Variable>| -> Term {
            if !local.is_empty() && rng.gen_bool(params.reuse_bias) {
                Term::Var(local[rng.gen_range(0..local.len())])
            } else if rng.gen_bool(0.3) {
                wdsparql_rdf::iri(&format!("c{}", rng.gen_range(0..3)))
            } else {
                let v = fresh();
                local.push(v);
                Term::Var(v)
            }
        };
        let s = pos(rng, &mut local);
        let o = pos(rng, &mut local);
        let p = wdsparql_rdf::iri(&format!("p{}", rng.gen_range(0..params.n_predicates)));
        pats.push(tp(s, p, o));
    }
    TGraph::from_patterns(pats)
}

/// A random forest of 1–3 random trees.
pub fn random_wdpf(params: RandomTreeParams, seed: u64) -> Wdpf {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let n = rng.gen_range(1..=3);
    Wdpf::new(
        (0..n)
            .map(|i| random_wdpt(params, seed.wrapping_add(i as u64 * 7919)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_trees_are_valid_and_deterministic() {
        for seed in 0..40 {
            let t1 = random_wdpt(RandomTreeParams::default(), seed);
            assert!(t1.validate().is_ok(), "seed {seed}");
            let t2 = random_wdpt(RandomTreeParams::default(), seed);
            assert_eq!(t1.render(), t2.render(), "determinism at seed {seed}");
        }
    }

    #[test]
    fn random_trees_vary_with_seed() {
        let renders: std::collections::BTreeSet<String> = (0..10)
            .map(|s| random_wdpt(RandomTreeParams::default(), s).render())
            .collect();
        assert!(renders.len() > 3, "seeds should produce varied trees");
    }

    #[test]
    fn random_forest_sizes() {
        for seed in 0..10 {
            let f = random_wdpf(RandomTreeParams::default(), seed);
            assert!((1..=3).contains(&f.len()));
            for t in &f.trees {
                assert!(t.validate().is_ok());
            }
        }
    }
}
