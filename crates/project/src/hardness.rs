//! The executable witness that **projection breaks the Theorem 3
//! dichotomy**: a family of projected queries with domination width 1
//! (so, projection-free, its class is PTIME-evaluable by Theorem 1)
//! whose *projected* membership problem embeds k-CLIQUE.
//!
//! The family `R_k` is a single-node pattern tree
//!
//! ```text
//! root:  { (?u, anchor, ?c1) } ∪ K_k(?c1, ..., ?ck)      X = {?u}
//! ```
//!
//! where `K_k` is the edge-clique t-graph of Example 3. Projection-free,
//! every instance is trivial: `dom(µ) = vars(T)` binds the whole clique,
//! so membership is a per-triple lookup, and `dw(R_k) = 1` for every `k`
//! (a single-node tree has no children assignments at all). With
//! projection `X = {?u}`, deciding `{?u ↦ h} ∈ ⟦(R_k, X)⟧_G` asks whether
//! `G` contains a k-clique anchored at `h` — NP-hard as `k` grows, so the
//! class `{R_k}` is tractable without projection and intractable with it.
//! This is exactly the §5 phenomenon (after Barceló–Pichler–Skritek).

use crate::query::ProjectedQuery;
use wdsparql_hom::TGraph;
use wdsparql_rdf::{iri, tp, var, Iri, RdfGraph, Triple, Variable};
use wdsparql_tree::{Wdpf, Wdpt};

/// Predicate IRI used for the clique edges of `R_k`.
pub const CLIQUE_EDGE: &str = "r";
/// Predicate IRI anchoring the projected variable to the clique.
pub const CLIQUE_ANCHOR: &str = "anchor";

/// Builds the projected query `R_k = (T_k, {?u})` described in the module
/// docs. Requires `k ≥ 2`.
pub fn clique_projection_query(k: usize) -> ProjectedQuery {
    assert!(k >= 2, "R_k needs k >= 2");
    let mut pats = vec![tp(var("u"), iri(CLIQUE_ANCHOR), var("c1"))];
    for i in 1..=k {
        for j in (i + 1)..=k {
            pats.push(tp(
                var(&format!("c{i}")),
                iri(CLIQUE_EDGE),
                var(&format!("c{j}")),
            ));
        }
    }
    let tree = Wdpt::new(TGraph::from_patterns(pats));
    ProjectedQuery::new(Wdpf::new(vec![tree]), [Variable::new("u")])
        .expect("?u occurs in the pattern")
}

/// Adds an `anchor` edge from a fresh hub IRI to every subject/object of
/// `base`, returning the anchored graph and the hub. Pairing this with a
/// Turán graph yields positive/negative k-CLIQUE membership instances for
/// [`clique_projection_query`].
pub fn anchored_graph(base: &RdfGraph, hub: &str) -> (RdfGraph, Iri) {
    let hub_iri = Iri::new(hub);
    let mut g = base.clone();
    let mut nodes = std::collections::BTreeSet::new();
    for t in base.iter() {
        nodes.insert(t.s);
        nodes.insert(t.o);
    }
    let anchor = Iri::new(CLIQUE_ANCHOR);
    for n in nodes {
        g.insert(Triple::new(hub_iri, anchor, n));
    }
    (g, hub_iri)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{check_projected, enumerate_projected};
    use wdsparql_rdf::Mapping;
    use wdsparql_width::domination_width;
    use wdsparql_workloads::turan_graph;

    #[test]
    fn rk_has_domination_width_one_for_every_k() {
        for k in 2..=5 {
            let q = clique_projection_query(k);
            assert_eq!(
                domination_width(q.forest()),
                1,
                "dw(R_{k}) must be 1: single-node trees have no children"
            );
        }
    }

    #[test]
    fn projected_membership_is_clique_detection() {
        for k in [2usize, 3, 4] {
            // Turán(n, k−1) is k-clique-free; Turán(n, k) contains K_k.
            let negative = turan_graph(3 * (k - 1).max(2), (k - 1).max(2), CLIQUE_EDGE);
            let positive = turan_graph(3 * k, k, CLIQUE_EDGE);
            let q = clique_projection_query(k);
            let (gneg, hub) = anchored_graph(&negative, "hub");
            let mu = Mapping::from_pairs([(Variable::new("u"), hub)]);
            if k > 2 {
                assert!(
                    !check_projected(&q, &gneg, &mu),
                    "k={k}: no k-clique in the Turán adversary"
                );
            }
            let (gpos, hub) = anchored_graph(&positive, "hub");
            let mu = Mapping::from_pairs([(Variable::new("u"), hub)]);
            assert!(check_projected(&q, &gpos, &mu), "k={k}: K_k present");
        }
    }

    #[test]
    fn membership_agrees_with_enumeration_on_small_instances() {
        let k = 3;
        let q = clique_projection_query(k);
        for (n, parts) in [(4usize, 2usize), (6, 3)] {
            let (g, hub) = anchored_graph(&turan_graph(n, parts, CLIQUE_EDGE), "hub");
            let mu = Mapping::from_pairs([(Variable::new("u"), hub)]);
            let enumerated = enumerate_projected(&q, &g);
            assert_eq!(
                enumerated.contains(&mu),
                check_projected(&q, &g, &mu),
                "n={n} parts={parts}"
            );
        }
    }

    #[test]
    fn unanchored_hub_is_rejected() {
        let q = clique_projection_query(2);
        let (g, _) = anchored_graph(&turan_graph(4, 2, CLIQUE_EDGE), "hub");
        let stray = Mapping::from_strs([("u", "not-the-hub")]);
        assert!(!check_projected(&q, &g, &stray));
    }
}
