//! Width measures for projected queries.
//!
//! The paper's §5 points to Kroll–Pichler–Skritek (ICDT'16): for pattern
//! trees with projection, classes of *bounded global treewidth* and
//! *semi-bounded interface* are fixed-parameter tractable, yet NP-hard —
//! so no analogue of Theorem 3's PTIME/W\[1\]-hard dichotomy can hold. This
//! module computes the two measures in our setting so that the break of
//! the dichotomy can be observed experimentally (bench `projection`,
//! experiment E16).
//!
//! Definitions used here (simplified to ground RDF and set semantics):
//!
//! * **global treewidth** of `(T, X)` — the treewidth of the generalised
//!   t-graph `(pat(T), X ∩ vars(T))`, i.e. of the full pattern with the
//!   output variables distinguished. Projection-free queries make every
//!   solution variable distinguished; shrinking `X` grows the existential
//!   part and hence (weakly) the measure.
//! * **interface** of a node `n` — `|vars(n) ∩ (X ∪ vars(B_n))|`: the
//!   variables through which `n`'s pattern talks to the output or to its
//!   branch. Bounded interfaces keep the per-node join degrees small.

use crate::query::ProjectedQuery;
use std::collections::BTreeSet;
use wdsparql_hom::{tw_gen, GenTGraph};
use wdsparql_rdf::Variable;
use wdsparql_tree::{Wdpt, ROOT};

/// The global treewidth of `(T, X)`: `tw(pat(T), X ∩ vars(T))`.
pub fn global_treewidth(t: &Wdpt, x: &BTreeSet<Variable>) -> usize {
    let vars = t.vars_tree();
    let distinguished: Vec<Variable> = x.intersection(&vars).copied().collect();
    tw_gen(&GenTGraph::new(t.pat_tree(), distinguished)).width
}

/// The largest node interface `|vars(n) ∩ (X ∪ vars(B_n))|` over all
/// non-root nodes of `T` (the root's interface is `|vars(r) ∩ X|`).
pub fn max_interface(t: &Wdpt, x: &BTreeSet<Variable>) -> usize {
    let mut best = t.vars(ROOT).intersection(x).count();
    for n in t.node_ids().filter(|&n| n != ROOT) {
        let mut boundary: BTreeSet<Variable> = x.clone();
        for b in t.branch(n) {
            boundary.extend(t.vars(b));
        }
        best = best.max(t.vars(n).intersection(&boundary).count());
    }
    best
}

/// Width report for a projected query, per tree and aggregated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectedWidthReport {
    /// `max_T tw(pat(T), X ∩ vars(T))` over the forest's trees.
    pub global_treewidth: usize,
    /// `max_T max_n |vars(n) ∩ (X ∪ vars(B_n))|`.
    pub max_interface: usize,
    /// Number of output variables `|X|`.
    pub output_vars: usize,
    /// Per-tree `(global treewidth, max interface)` pairs.
    pub per_tree: Vec<(usize, usize)>,
}

impl std::fmt::Display for ProjectedWidthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global treewidth = {} | max interface = {} | |X| = {}",
            self.global_treewidth, self.max_interface, self.output_vars
        )
    }
}

/// Computes the [`ProjectedWidthReport`] of `(F, X)`.
pub fn analyze_projected(q: &ProjectedQuery) -> ProjectedWidthReport {
    let per_tree: Vec<(usize, usize)> = q
        .forest()
        .iter()
        .map(|t| {
            (
                global_treewidth(t, q.projection()),
                max_interface(t, q.projection()),
            )
        })
        .collect();
    ProjectedWidthReport {
        global_treewidth: per_tree.iter().map(|&(g, _)| g).max().unwrap_or(1),
        max_interface: per_tree.iter().map(|&(_, i)| i).max().unwrap_or(0),
        output_vars: q.projection().len(),
        per_tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ProjectedQuery;

    #[test]
    fn identity_projection_has_trivial_global_treewidth() {
        // All variables distinguished: the existential Gaifman graph is
        // empty, so the global treewidth is 1 by convention.
        let q = ProjectedQuery::parse("SELECT * WHERE { ?x p ?y . ?y p ?z . ?z p ?x }").unwrap();
        let r = analyze_projected(&q);
        assert_eq!(r.global_treewidth, 1);
        assert_eq!(r.output_vars, 3);
    }

    #[test]
    fn projecting_away_a_triangle_raises_global_treewidth() {
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x p ?y . ?y p ?z . ?z p ?u . ?u p ?y }")
            .unwrap();
        // Existential part {y,z,u} forms a cycle: treewidth 2.
        assert_eq!(analyze_projected(&q).global_treewidth, 2);
    }

    #[test]
    fn interface_counts_output_and_branch_variables() {
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x p ?y OPTIONAL { ?y q ?z . ?z q ?w } }")
            .unwrap();
        let t = &q.forest().trees[0];
        // Child node vars {y,z,w}; boundary = X ∪ vars(root) = {x} ∪ {x,y};
        // interface = |{y}| = 1.
        assert_eq!(max_interface(t, q.projection()), 1);
        // Root interface |{x,y} ∩ {x}| = 1 is not larger.
        let r = analyze_projected(&q);
        assert_eq!(r.max_interface, 1);
    }

    #[test]
    fn report_aggregates_over_union_branches() {
        let q = ProjectedQuery::parse(
            "SELECT ?x WHERE { { ?x p ?y } UNION { ?x q ?a . ?a q ?b . ?b q ?a } }",
        )
        .unwrap();
        let r = analyze_projected(&q);
        assert_eq!(r.per_tree.len(), 2);
        // Second branch's existential {a,b} 2-cycle has treewidth 1
        // (two vertices, one edge).
        assert_eq!(r.global_treewidth, 1);
        let shown = r.to_string();
        assert!(shown.contains("global treewidth"));
    }
}
