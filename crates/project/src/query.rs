//! Projected well-designed queries: a wdPF together with a set of output
//! variables (the pp-wdPT/pp-wdPF representation of `SELECT`).

use std::collections::BTreeSet;
use std::fmt;
use wdsparql_algebra::{parse_sparql_select, GraphPattern};
use wdsparql_rdf::Variable;
use wdsparql_tree::{TranslateError, Wdpf};

/// Errors building a [`ProjectedQuery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProjectError {
    /// The surface syntax did not parse.
    Parse(String),
    /// The pattern is not well-designed / not translatable to a wdPF.
    Translate(TranslateError),
    /// A projected variable does not occur anywhere in the pattern.
    UnknownVariable(Variable),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Parse(e) => write!(f, "{e}"),
            ProjectError::Translate(e) => write!(f, "{e}"),
            ProjectError::UnknownVariable(v) => {
                write!(f, "projected variable {v} does not occur in the pattern")
            }
        }
    }
}

impl std::error::Error for ProjectError {}

/// A well-designed pattern forest with projection: the pair `(F, X)`.
///
/// `X ⊆ vars(F)` is enforced at construction (a projected variable must
/// occur in at least one tree). `X` may be empty — that is the boolean
/// (`ASK`-style) query, whose only possible solution is the empty mapping.
#[derive(Clone, Debug)]
pub struct ProjectedQuery {
    forest: Wdpf,
    projection: BTreeSet<Variable>,
}

impl ProjectedQuery {
    /// Builds `(F, X)`, checking `X ⊆ vars(F)`.
    pub fn new(
        forest: Wdpf,
        projection: impl IntoIterator<Item = Variable>,
    ) -> Result<ProjectedQuery, ProjectError> {
        let mut all_vars: BTreeSet<Variable> = BTreeSet::new();
        for t in &forest.trees {
            all_vars.extend(t.vars_tree());
        }
        let projection: BTreeSet<Variable> = projection.into_iter().collect();
        if let Some(&v) = projection.difference(&all_vars).next() {
            return Err(ProjectError::UnknownVariable(v));
        }
        Ok(ProjectedQuery { forest, projection })
    }

    /// The identity projection `(F, vars(F))` — `SELECT *`.
    pub fn select_star(forest: Wdpf) -> ProjectedQuery {
        let mut all_vars: BTreeSet<Variable> = BTreeSet::new();
        for t in &forest.trees {
            all_vars.extend(t.vars_tree());
        }
        ProjectedQuery {
            forest,
            projection: all_vars,
        }
    }

    /// Parses a `SELECT ?x ?y WHERE { ... }` query (the SPARQL-flavoured
    /// surface syntax). `SELECT *` and a bare group project everything.
    pub fn parse(text: &str) -> Result<ProjectedQuery, ProjectError> {
        let (pattern, proj) =
            parse_sparql_select(text).map_err(|e| ProjectError::Parse(e.to_string()))?;
        Self::from_pattern(&pattern, proj)
    }

    /// Builds from an already-parsed pattern; `None` projects everything.
    pub fn from_pattern(
        pattern: &GraphPattern,
        projection: Option<Vec<Variable>>,
    ) -> Result<ProjectedQuery, ProjectError> {
        let forest = Wdpf::from_pattern(pattern).map_err(ProjectError::Translate)?;
        match projection {
            None => Ok(ProjectedQuery::select_star(forest)),
            Some(vars) => ProjectedQuery::new(forest, vars),
        }
    }

    pub fn forest(&self) -> &Wdpf {
        &self.forest
    }

    pub fn projection(&self) -> &BTreeSet<Variable> {
        &self.projection
    }

    /// Is this the boolean (`ASK`) query `X = ∅`?
    pub fn is_boolean(&self) -> bool {
        self.projection.is_empty()
    }

    /// Does the projection keep every variable (so that projection is a
    /// no-op and the Theorem 3 dichotomy applies unchanged)?
    pub fn is_identity(&self) -> bool {
        let mut all_vars: BTreeSet<Variable> = BTreeSet::new();
        for t in &self.forest.trees {
            all_vars.extend(t.vars_tree());
        }
        self.projection == all_vars
    }
}

impl fmt::Display for ProjectedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT")?;
        if self.is_identity() {
            write!(f, " *")?;
        } else {
            for v in &self.projection {
                write!(f, " {v}")?;
            }
        }
        write!(
            f,
            " WHERE {}",
            wdsparql_tree::pattern_from_wdpf(&self.forest)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_select_list() {
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x p ?y OPTIONAL { ?y q ?z } }").unwrap();
        assert_eq!(q.projection().len(), 1);
        assert!(!q.is_identity());
        assert!(!q.is_boolean());
    }

    #[test]
    fn select_star_projects_everything() {
        let q = ProjectedQuery::parse("SELECT * WHERE { ?x p ?y }").unwrap();
        assert!(q.is_identity());
        assert_eq!(q.projection().len(), 2);
    }

    #[test]
    fn unknown_projection_variable_is_rejected() {
        let err = ProjectedQuery::parse("SELECT ?nope WHERE { ?x p ?y }").unwrap_err();
        assert!(matches!(err, ProjectError::UnknownVariable(_)));
    }

    #[test]
    fn non_well_designed_pattern_is_rejected() {
        // Example 1's P2: ?z escapes its OPT scope.
        let err = ProjectedQuery::parse(
            "SELECT ?x WHERE { ?x p ?y OPTIONAL { ?z q ?x } OPTIONAL { ?y r ?z . ?z r ?o2 } }",
        )
        .unwrap_err();
        assert!(matches!(err, ProjectError::Translate(_)));
    }

    #[test]
    fn display_roundtrips_the_projection() {
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x p ?y }").unwrap();
        let shown = q.to_string();
        assert!(shown.starts_with("SELECT ?x WHERE"), "{shown}");
        let star = ProjectedQuery::parse("{ ?x p ?y }").unwrap();
        assert!(star.to_string().starts_with("SELECT * WHERE"));
    }

    #[test]
    fn boolean_query_has_empty_projection() {
        let f =
            Wdpf::from_pattern(&wdsparql_algebra::parse_pattern("(?x, p, ?y)").unwrap()).unwrap();
        let q = ProjectedQuery::new(f, []).unwrap();
        assert!(q.is_boolean());
        assert!(!q.is_identity());
    }
}
