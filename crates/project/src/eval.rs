//! Evaluation of projected queries.
//!
//! Enumeration projects the forest's solution set; membership searches for
//! an existential witness over the projected-away variables. The witness
//! search is worst-case exponential — necessarily so, since projected
//! membership is NP-hard even for width-1 classes (see [`crate::hardness`]
//! and Barceló–Pichler–Skritek, PODS'15).

use crate::query::ProjectedQuery;
use std::collections::BTreeSet;
use wdsparql_algebra::SolutionSet;
use wdsparql_core::{child_extends, enumerate_forest};
use wdsparql_hom::all_homs_into_graph;
use wdsparql_rdf::{Mapping, RdfGraph, Variable};
use wdsparql_tree::{enumerate_subtrees, subtree_children, subtree_pat, subtree_vars, Wdpt};

/// Projects every mapping in `sols` to the variables in `x`
/// (set semantics: duplicates collapse).
pub fn project_solutions(sols: &SolutionSet, x: &BTreeSet<Variable>) -> SolutionSet {
    sols.iter()
        .map(|mu| mu.restrict(x.iter().copied()))
        .collect()
}

/// Enumerates `⟦(F, X)⟧_G` by enumerating `⟦F⟧_G` and projecting.
pub fn enumerate_projected(q: &ProjectedQuery, g: &RdfGraph) -> SolutionSet {
    project_solutions(&enumerate_forest(q.forest(), g), q.projection())
}

/// Counts the distinct projected solutions `|⟦(F, X)⟧_G|`.
pub fn count_projected(q: &ProjectedQuery, g: &RdfGraph) -> usize {
    enumerate_projected(q, g).len()
}

/// The multiplicity of each projected solution: how many full solutions
/// of `⟦F⟧_G` project onto it (the bag-semantics count of `SELECT`).
pub fn projection_multiplicities(
    q: &ProjectedQuery,
    g: &RdfGraph,
) -> std::collections::BTreeMap<Mapping, usize> {
    let mut out = std::collections::BTreeMap::new();
    for mu in &enumerate_forest(q.forest(), g) {
        *out.entry(mu.restrict(q.projection().iter().copied()))
            .or_insert(0) += 1;
    }
    out
}

/// Decides `µ ∈ ⟦(F, X)⟧_G` directly (without full enumeration): is there
/// a solution `µ' ∈ ⟦F⟧_G` with `µ'|_X = µ`?
///
/// Mappings binding variables outside `X` are never solutions. The search
/// runs per tree over the subtrees `T'` whose visible variables
/// `vars(T') ∩ X` equal `dom(µ)`, looking for a homomorphism of
/// `pat(T')` extending `µ` that no child of `T'` can extend (Lemma 1
/// relativised to the projection).
pub fn check_projected(q: &ProjectedQuery, g: &RdfGraph, mu: &Mapping) -> bool {
    if mu.domain().any(|v| !q.projection().contains(&v)) {
        return false;
    }
    q.forest()
        .iter()
        .any(|t| check_projected_tree(t, q.projection(), g, mu))
}

/// The per-tree witness search behind [`check_projected`].
fn check_projected_tree(t: &Wdpt, x: &BTreeSet<Variable>, g: &RdfGraph, mu: &Mapping) -> bool {
    let dom: BTreeSet<Variable> = mu.domain().collect();
    for st in enumerate_subtrees(t) {
        let visible: BTreeSet<Variable> = subtree_vars(t, &st).intersection(x).copied().collect();
        if visible != dom {
            continue;
        }
        let pat = subtree_pat(t, &st);
        // Every hom of pat(T') extending µ is a candidate full solution;
        // Lemma 1 accepts it iff no child of T' extends it compatibly.
        for nu in all_homs_into_graph(&pat, g, mu) {
            let full = mu
                .union(&nu)
                .expect("solver extensions agree with their fixed bindings");
            if subtree_children(t, &st)
                .into_iter()
                .all(|n| !child_extends(t, g, n, &full))
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ProjectedQuery;

    fn sample_graph() -> RdfGraph {
        RdfGraph::from_strs([
            ("alice", "knows", "bob"),
            ("alice", "knows", "carol"),
            ("bob", "email", "b@x.org"),
            ("dave", "knows", "erin"),
        ])
    }

    #[test]
    fn enumerate_projects_and_dedups() {
        // Without projection there are 3 solutions (bob with email,
        // carol and erin without); projecting to ?x collapses alice's two.
        let g = sample_graph();
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
            .unwrap();
        let sols = enumerate_projected(&q, &g);
        assert_eq!(sols.len(), 2);
        assert_eq!(count_projected(&q, &g), 2);
        assert!(sols.contains(&Mapping::from_strs([("x", "alice")])));
        assert!(sols.contains(&Mapping::from_strs([("x", "dave")])));
    }

    #[test]
    fn multiplicities_count_preimages() {
        let g = sample_graph();
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
            .unwrap();
        let m = projection_multiplicities(&q, &g);
        assert_eq!(m[&Mapping::from_strs([("x", "alice")])], 2);
        assert_eq!(m[&Mapping::from_strs([("x", "dave")])], 1);
        assert_eq!(m.values().sum::<usize>(), 3);
    }

    #[test]
    fn membership_agrees_with_enumeration() {
        let g = sample_graph();
        for text in [
            "SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }",
            "SELECT ?x ?e WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }",
            "SELECT ?y WHERE { ?x knows ?y }",
        ] {
            let q = ProjectedQuery::parse(text).unwrap();
            let sols = enumerate_projected(&q, &g);
            for mu in &sols {
                assert!(check_projected(&q, &g, mu), "{text}: rejected {mu}");
            }
            // A wrong binding and a foreign variable are both rejected.
            assert!(!check_projected(
                &q,
                &g,
                &Mapping::from_strs([("x", "zzz")])
            ));
            assert!(!check_projected(
                &q,
                &g,
                &Mapping::from_strs([("nonvar", "alice")])
            ));
        }
    }

    #[test]
    fn projection_interacts_with_opt_maximality() {
        // µ = {x↦alice} is NOT a solution of the *unprojected* query
        // (bob forces the OPT extension), but projecting away ?y keeps
        // {x↦alice} because a full solution ({x↦alice,y↦carol}) exists.
        let g = RdfGraph::from_strs([
            ("alice", "knows", "bob"),
            ("alice", "knows", "carol"),
            ("bob", "email", "b@x.org"),
        ]);
        let q = ProjectedQuery::parse("SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
            .unwrap();
        assert!(check_projected(
            &q,
            &g,
            &Mapping::from_strs([("x", "alice")])
        ));
        // But a projection retaining ?y sees the difference:
        let qy =
            ProjectedQuery::parse("SELECT ?x ?y WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
                .unwrap();
        // {x↦alice, y↦bob} is not a projected solution: the only full
        // solution through bob also binds ?e, and projecting it keeps
        // x,y — wait, it *is* a projected solution: {x,y,e}|_{x,y}.
        assert!(check_projected(
            &qy,
            &g,
            &Mapping::from_strs([("x", "alice"), ("y", "bob")])
        ));
        // And {x↦alice} alone is not (dom must equal vars(T')∩X = {x,y}).
        assert!(!check_projected(
            &qy,
            &g,
            &Mapping::from_strs([("x", "alice")])
        ));
    }

    #[test]
    fn boolean_query_checks_nonemptiness() {
        let g = sample_graph();
        let f = wdsparql_tree::Wdpf::from_pattern(
            &wdsparql_algebra::parse_pattern("(?x, knows, ?y)").unwrap(),
        )
        .unwrap();
        let q = ProjectedQuery::new(f, []).unwrap();
        assert!(check_projected(&q, &g, &Mapping::new()));
        assert_eq!(enumerate_projected(&q, &g).len(), 1);
        let empty = RdfGraph::new();
        assert!(!check_projected(&q, &empty, &Mapping::new()));
        assert!(enumerate_projected(&q, &empty).is_empty());
    }

    #[test]
    fn identity_projection_matches_unprojected_semantics() {
        let g = sample_graph();
        let q = ProjectedQuery::parse("SELECT * WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
            .unwrap();
        let projected = enumerate_projected(&q, &g);
        let full = enumerate_forest(q.forest(), &g);
        assert_eq!(projected, full);
        for mu in &full {
            assert!(check_projected(&q, &g, mu));
        }
    }

    #[test]
    fn union_queries_project_per_branch() {
        let g = RdfGraph::from_strs([("a", "p", "b"), ("c", "q", "d")]);
        let q = ProjectedQuery::parse("SELECT ?x WHERE { { ?x p ?y } UNION { ?x q ?y } }").unwrap();
        let sols = enumerate_projected(&q, &g);
        assert_eq!(sols.len(), 2);
        assert!(check_projected(&q, &g, &Mapping::from_strs([("x", "a")])));
        assert!(check_projected(&q, &g, &Mapping::from_strs([("x", "c")])));
    }
}
