//! # wdsparql-project
//!
//! The SELECT/projection extension of well-designed SPARQL — pattern
//! trees *with projection* (pp-wdPTs), the fragment the paper's §5 names
//! as the frontier where the Theorem 3 dichotomy breaks down.
//!
//! A projected query is a pair `(F, X)` of a well-designed pattern forest
//! and a set of *output* variables `X`. Its solutions are the projections
//! of the forest's solutions:
//!
//! ```text
//! ⟦(F, X)⟧_G  =  { µ|_X : µ ∈ ⟦F⟧_G }        (set semantics)
//! ```
//!
//! Three facts shape this crate:
//!
//! * **Enumeration stays easy-ish**: `⟦(F,X)⟧_G` is computed by
//!   enumerating `⟦F⟧_G` and projecting ([`enumerate_projected`]).
//! * **Membership becomes NP-hard** even for classes whose projection-free
//!   evaluation is trivially tractable: deciding `µ ∈ ⟦(F,X)⟧_G` asks for
//!   an *existential witness* over the projected-away variables
//!   ([`check_projected`]), and [`hardness`] exhibits a family with
//!   domination width 1 whose projected membership problem embeds
//!   k-CLIQUE. This is the executable content of the paper's §5 remark
//!   that with SELECT the PTIME/W\[1\]-hard dichotomy of Theorem 3 fails.
//! * **Width measures still help**: [`width`] computes a global-treewidth
//!   and interface report in the spirit of Kroll–Pichler–Skritek
//!   (ICDT'16), whose boundedness gives fixed-parameter tractability
//!   (but, per the paper, *not* PTIME — the dichotomy genuinely breaks).

#![forbid(unsafe_code)]

pub mod eval;
pub mod hardness;
pub mod query;
pub mod width;

pub use eval::{
    check_projected, count_projected, enumerate_projected, project_solutions,
    projection_multiplicities,
};
pub use hardness::{anchored_graph, clique_projection_query, CLIQUE_ANCHOR, CLIQUE_EDGE};
pub use query::{ProjectError, ProjectedQuery};
pub use width::{analyze_projected, global_treewidth, max_interface, ProjectedWidthReport};
