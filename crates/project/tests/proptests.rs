//! Property tests for the projection laws: on random well-designed
//! pattern trees and random graphs, projected enumeration, projected
//! membership and the algebraic laws of projection must all agree.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wdsparql_core::enumerate_forest;
use wdsparql_project::{
    check_projected, count_projected, enumerate_projected, project_solutions,
    projection_multiplicities, ProjectedQuery,
};
use wdsparql_rdf::{Mapping, Variable};
use wdsparql_workloads::{random_graph, random_wdpt, RandomTreeParams};

fn small_params() -> RandomTreeParams {
    RandomTreeParams {
        max_nodes: 4,
        max_fanout: 2,
        max_triples_per_node: 2,
        n_predicates: 2,
        reuse_bias: 0.6,
    }
}

/// A random projection: each variable of the forest kept with ~1/2 chance,
/// driven by the seed.
fn random_projection(vars: &BTreeSet<Variable>, seed: u64) -> BTreeSet<Variable> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    vars.iter()
        .filter(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 0
        })
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projected enumeration is exactly the projection of full
    /// enumeration, and counting matches it.
    #[test]
    fn enumeration_commutes_with_projection(
        tree_seed in 0u64..5000,
        graph_seed in 0u64..5000,
        proj_seed in 0u64..5000,
        n_triples in 1usize..14,
    ) {
        let t = random_wdpt(small_params(), tree_seed);
        let g = random_graph(5, n_triples, &["p0", "p1"], graph_seed);
        let forest = wdsparql_tree::Wdpf::new(vec![t]);
        let full = enumerate_forest(&forest, &g);
        let vars: BTreeSet<Variable> =
            forest.trees.iter().flat_map(|t| t.vars_tree()).collect();
        let x = random_projection(&vars, proj_seed);
        let q = ProjectedQuery::new(forest, x.iter().copied()).unwrap();
        let projected = enumerate_projected(&q, &g);
        prop_assert_eq!(&projected, &project_solutions(&full, &x));
        prop_assert_eq!(count_projected(&q, &g), projected.len());
    }

    /// Membership agrees with enumeration: every enumerated projected
    /// solution is accepted, and perturbed mappings are accepted iff
    /// enumeration contains them.
    #[test]
    fn membership_agrees_with_enumeration(
        tree_seed in 0u64..5000,
        graph_seed in 0u64..5000,
        proj_seed in 0u64..5000,
    ) {
        let t = random_wdpt(small_params(), tree_seed);
        let g = random_graph(4, 10, &["p0", "p1"], graph_seed);
        let forest = wdsparql_tree::Wdpf::new(vec![t]);
        let vars: BTreeSet<Variable> =
            forest.trees.iter().flat_map(|t| t.vars_tree()).collect();
        let x = random_projection(&vars, proj_seed);
        let q = ProjectedQuery::new(forest, x.iter().copied()).unwrap();
        let projected = enumerate_projected(&q, &g);
        for mu in &projected {
            prop_assert!(check_projected(&q, &g, mu), "rejected {}", mu);
        }
        // Probe a perturbed mapping: rebind one projected variable of a
        // solution to a fresh IRI and require agreement with enumeration.
        if let (Some(mu), Some(&v)) = (projected.iter().next(), x.iter().next()) {
            if mu.contains(v) {
                let mut probe = Mapping::new();
                for (pv, i) in mu.iter() {
                    probe.bind(pv, i);
                }
                probe.bind(v, wdsparql_rdf::Iri::new("fresh-probe"));
                prop_assert_eq!(
                    check_projected(&q, &g, &probe),
                    projected.contains(&probe)
                );
            }
        }
    }

    /// Multiplicities sum to the size of the full solution set, and their
    /// support is the projected solution set.
    #[test]
    fn multiplicities_are_a_partition(
        tree_seed in 0u64..5000,
        graph_seed in 0u64..5000,
        proj_seed in 0u64..5000,
    ) {
        let t = random_wdpt(small_params(), tree_seed);
        let g = random_graph(4, 10, &["p0", "p1"], graph_seed);
        let forest = wdsparql_tree::Wdpf::new(vec![t]);
        let full = enumerate_forest(&forest, &g);
        let vars: BTreeSet<Variable> =
            forest.trees.iter().flat_map(|t| t.vars_tree()).collect();
        let x = random_projection(&vars, proj_seed);
        let q = ProjectedQuery::new(forest, x.iter().copied()).unwrap();
        let mult = projection_multiplicities(&q, &g);
        prop_assert_eq!(mult.values().sum::<usize>(), full.len());
        let support: wdsparql_algebra::SolutionSet = mult.keys().cloned().collect();
        prop_assert_eq!(support, enumerate_projected(&q, &g));
    }

    /// Identity projection is a no-op; empty projection is the ASK query.
    #[test]
    fn identity_and_boolean_projections(
        tree_seed in 0u64..5000,
        graph_seed in 0u64..5000,
    ) {
        let t = random_wdpt(small_params(), tree_seed);
        let g = random_graph(4, 10, &["p0", "p1"], graph_seed);
        let forest = wdsparql_tree::Wdpf::new(vec![t]);
        let full = enumerate_forest(&forest, &g);
        let star = ProjectedQuery::select_star(forest.clone());
        prop_assert_eq!(&enumerate_projected(&star, &g), &full);
        let ask = ProjectedQuery::new(forest, []).unwrap();
        let ask_sols = enumerate_projected(&ask, &g);
        prop_assert_eq!(ask_sols.len(), usize::from(!full.is_empty()));
        prop_assert_eq!(
            check_projected(&ask, &g, &Mapping::new()),
            !full.is_empty()
        );
    }
}
