//! Property tests for the containment machinery: the three-valued verdict
//! must never contradict ground truth.
//!
//! * If `syntactic_containment(F1, F2)` accepts, then `⟦F1⟧_G ⊆ ⟦F2⟧_G`
//!   on every graph in a random battery (soundness of `Contained`).
//! * Any counterexample returned by the search verifies semantically
//!   (soundness of `NotContained`).
//! * `contained_on`/`subsumed_on`/`equivalent_on` are consistent with
//!   each other on every instance.

use proptest::prelude::*;
use wdsparql_contain::{
    contained_on, decide_containment, equivalent_on, search_counterexample, set_subsumed,
    subsumed_on, syntactic_containment, SearchBudget, Verdict,
};
use wdsparql_core::enumerate_forest;
use wdsparql_workloads::{random_graph, random_wdpf, RandomTreeParams};

fn small_params() -> RandomTreeParams {
    RandomTreeParams {
        max_nodes: 3,
        max_fanout: 2,
        max_triples_per_node: 2,
        n_predicates: 2,
        reuse_bias: 0.7,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Syntactic containment is sound: accepted pairs are contained on
    /// every random graph probed.
    #[test]
    fn syntactic_containment_is_sound(
        seed1 in 0u64..2000,
        seed2 in 0u64..2000,
        gseed in 0u64..2000,
    ) {
        let f1 = random_wdpf(small_params(), seed1);
        let f2 = random_wdpf(small_params(), seed2);
        if syntactic_containment(&f1, &f2) {
            for i in 0..6 {
                let g = random_graph(4, 8, &["p0", "p1"], gseed.wrapping_add(i));
                prop_assert!(
                    contained_on(&f1, &f2, &g),
                    "claimed containment violated on graph seed {}",
                    gseed.wrapping_add(i)
                );
            }
        }
    }

    /// Counterexamples verify; verdicts never conflict with each other.
    #[test]
    fn verdicts_are_consistent(
        seed1 in 0u64..2000,
        seed2 in 0u64..2000,
    ) {
        let f1 = random_wdpf(small_params(), seed1);
        let f2 = random_wdpf(small_params(), seed2);
        let budget = SearchBudget { random_graphs: 40, ..SearchBudget::default() };
        if let Some(ce) = search_counterexample(&f1, &f2, &budget) {
            prop_assert!(ce.verify(&f1, &f2));
            // A verified counterexample forbids the Contained verdict.
            prop_assert!(!syntactic_containment(&f1, &f2));
        }
        match decide_containment(&f1, &f2, &budget) {
            Verdict::Contained => prop_assert!(syntactic_containment(&f1, &f2)),
            Verdict::NotContained(ce) => prop_assert!(ce.verify(&f1, &f2)),
            Verdict::Unknown => {}
        }
    }

    /// Self-containment always holds and is always proved.
    #[test]
    fn self_containment_is_proved(seed in 0u64..4000) {
        let f = random_wdpf(small_params(), seed);
        prop_assert!(syntactic_containment(&f, &f));
    }

    /// On-graph relations are mutually consistent: containment implies
    /// subsumption; equivalence is two-way containment.
    #[test]
    fn on_graph_relations_are_consistent(
        seed1 in 0u64..2000,
        seed2 in 0u64..2000,
        gseed in 0u64..2000,
    ) {
        let f1 = random_wdpf(small_params(), seed1);
        let f2 = random_wdpf(small_params(), seed2);
        let g = random_graph(4, 8, &["p0", "p1"], gseed);
        let c12 = contained_on(&f1, &f2, &g);
        let c21 = contained_on(&f2, &f1, &g);
        if c12 {
            prop_assert!(subsumed_on(&f1, &f2, &g));
        }
        prop_assert_eq!(equivalent_on(&f1, &f2, &g), c12 && c21);
        // set_subsumed is reflexive on the actual solution sets.
        let sols = enumerate_forest(&f1, &g);
        prop_assert!(set_subsumed(&sols, &sols));
    }
}
