//! Containment, equivalence and subsumption **on a fixed graph** — the
//! decidable-by-enumeration base case, used both directly and as the
//! verifier for counterexamples produced by [`crate::decide`].

use crate::order::set_subsumed;
use wdsparql_core::enumerate_forest;
use wdsparql_rdf::RdfGraph;
use wdsparql_tree::Wdpf;

/// `⟦F1⟧_G ⊆ ⟦F2⟧_G`.
pub fn contained_on(f1: &Wdpf, f2: &Wdpf, g: &RdfGraph) -> bool {
    let a = enumerate_forest(f1, g);
    let b = enumerate_forest(f2, g);
    a.is_subset(&b)
}

/// `⟦F1⟧_G = ⟦F2⟧_G`.
pub fn equivalent_on(f1: &Wdpf, f2: &Wdpf, g: &RdfGraph) -> bool {
    enumerate_forest(f1, g) == enumerate_forest(f2, g)
}

/// `⟦F1⟧_G ⊑ ⟦F2⟧_G`: every solution of `F1` is extended by one of `F2`.
pub fn subsumed_on(f1: &Wdpf, f2: &Wdpf, g: &RdfGraph) -> bool {
    let a = enumerate_forest(f1, g);
    let b = enumerate_forest(f2, g);
    set_subsumed(&a, &b)
}

/// The mappings witnessing non-containment on `g`: `⟦F1⟧_G \ ⟦F2⟧_G`.
/// Empty iff [`contained_on`]; each entry is a ready-made
/// counterexample mapping for this graph (useful when debugging a
/// `NotContained` verdict or an `Unknown` one by hand).
pub fn containment_violations(f1: &Wdpf, f2: &Wdpf, g: &RdfGraph) -> Vec<wdsparql_rdf::Mapping> {
    let b = enumerate_forest(f2, g);
    enumerate_forest(f1, g)
        .into_iter()
        .filter(|mu| !b.contains(mu))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::parse_pattern;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn opt_is_subsumed_by_but_not_contained_in_its_left_arm() {
        // ⟦P OPT Q⟧ extends ⟦P⟧'s mappings where Q matches: on such a
        // graph the two differ as sets but OPT subsumes the left arm.
        let left = forest("(?x, p, ?y)");
        let opt = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
        assert!(!contained_on(&left, &opt, &g));
        assert!(subsumed_on(&left, &opt, &g));
        // And the OPT solutions are not contained in the left arm either
        // (their domain is larger).
        assert!(!contained_on(&opt, &left, &g));
        // On a graph with no q-edge the two coincide.
        let g2 = RdfGraph::from_strs([("a", "p", "b")]);
        assert!(equivalent_on(&left, &opt, &g2));
    }

    #[test]
    fn and_is_commutative_on_every_sample_graph() {
        let ab = forest("(?x, p, ?y) AND (?y, q, ?z)");
        let ba = forest("(?y, q, ?z) AND (?x, p, ?y)");
        for g in [
            RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]),
            RdfGraph::from_strs([("a", "p", "b")]),
            RdfGraph::new(),
        ] {
            assert!(equivalent_on(&ab, &ba, &g));
        }
    }

    #[test]
    fn union_contains_both_branches() {
        let u = forest("(?x, p, ?y) UNION (?x, q, ?y)");
        let b1 = forest("(?x, p, ?y)");
        let g = RdfGraph::from_strs([("a", "p", "b"), ("c", "q", "d")]);
        assert!(contained_on(&b1, &u, &g));
        assert!(!contained_on(&u, &b1, &g));
    }

    #[test]
    fn violations_enumerate_the_difference() {
        let u = forest("(?x, p, ?y) UNION (?x, q, ?y)");
        let b1 = forest("(?x, p, ?y)");
        let g = RdfGraph::from_strs([("a", "p", "b"), ("c", "q", "d")]);
        let vs = containment_violations(&u, &b1, &g);
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0],
            wdsparql_rdf::Mapping::from_strs([("x", "c"), ("y", "d")])
        );
        // Contained direction: no violations.
        assert!(containment_violations(&b1, &u, &g).is_empty());
        assert_eq!(
            containment_violations(&b1, &u, &g).is_empty(),
            contained_on(&b1, &u, &g)
        );
    }
}
