//! # wdsparql-contain
//!
//! Static analysis of well-designed SPARQL patterns: **containment**,
//! **equivalence** and **subsumption** — the optimisation problems the
//! paper's §3.2 contrasts with evaluation ("containment of UNION-free
//! patterns can be characterised in very simple terms, while the general
//! case requires more involved characterisations", citing Pichler–Skritek
//! PODS'14 and Kostylev et al.).
//!
//! For solution *sets* there are two natural orders:
//!
//! * **containment** `⟦P1⟧_G ⊆ ⟦P2⟧_G` — literal set inclusion of
//!   mappings (domains must match exactly);
//! * **subsumption** `⟦P1⟧_G ⊑ ⟦P2⟧_G` — every `µ1` is extended by some
//!   `µ2` (the order under which OPT maximises).
//!
//! Deciding containment *over all graphs* is Πᵖ₂-complete for
//! well-designed patterns, so this crate offers a three-valued decision
//! ([`Verdict`]):
//!
//! * [`syntactic_containment`] — a **sound** Chandra–Merlin-style test
//!   lifted to pattern trees through the Lemma 1 characterisation:
//!   if it accepts, containment holds on *every* graph (a proof sketch
//!   accompanies the function);
//! * [`search_counterexample`] — a **sound refuter**: canonical frozen
//!   instances of every subtree, child-augmented variants, and a seeded
//!   random battery; any hit is a verified witness of non-containment;
//! * [`exhaustive_counterexample`] — complete for counterexamples up to a
//!   given size: enumerates every graph over the queries' predicates and
//!   a bounded constant pool;
//! * [`decide_containment`] / [`decide_equivalence`] — combine the three.
//!
//! On a *fixed* graph everything is decidable outright ([`on_graph`]).

#![forbid(unsafe_code)]

pub mod decide;
pub mod on_graph;
pub mod order;

pub use decide::{
    decide_containment, decide_equivalence, exhaustive_counterexample, search_counterexample,
    syntactic_containment, Counterexample, SearchBudget, Verdict,
};
pub use on_graph::{contained_on, containment_violations, equivalent_on, subsumed_on};
pub use order::{max_solutions, set_subsumed, subsumed};
