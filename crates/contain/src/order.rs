//! The subsumption order on mappings and solution sets.
//!
//! `µ1 ⊑ µ2` ("µ2 extends µ1") iff `dom(µ1) ⊆ dom(µ2)` and the two agree
//! on `dom(µ1)`. This is the order under which OPT returns maximal
//! solutions, and the order used by the *subsumption* variant of
//! containment (Pichler–Skritek call the associated set relation `⊑`).

use wdsparql_algebra::SolutionSet;
use wdsparql_rdf::Mapping;

/// `µ1 ⊑ µ2`: does `µ2` extend `µ1`?
pub fn subsumed(mu1: &Mapping, mu2: &Mapping) -> bool {
    mu1.iter().all(|(v, i)| mu2.get(v) == Some(i))
}

/// `A ⊑ B`: every mapping of `A` is extended by some mapping of `B`.
pub fn set_subsumed(a: &SolutionSet, b: &SolutionSet) -> bool {
    a.iter().all(|mu| b.iter().any(|nu| subsumed(mu, nu)))
}

/// The ⊑-maximal elements of a solution set (duplicates collapse since
/// `SolutionSet` is a set).
pub fn max_solutions(sols: &SolutionSet) -> SolutionSet {
    sols.iter()
        .filter(|mu| !sols.iter().any(|nu| nu != *mu && subsumed(mu, nu)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, &str)]) -> Mapping {
        Mapping::from_strs(pairs.iter().copied())
    }

    #[test]
    fn subsumption_is_extension() {
        let small = m(&[("x", "a")]);
        let big = m(&[("x", "a"), ("y", "b")]);
        let other = m(&[("x", "b"), ("y", "b")]);
        assert!(subsumed(&small, &big));
        assert!(!subsumed(&big, &small));
        assert!(!subsumed(&small, &other));
        // Reflexivity and the empty mapping as bottom.
        assert!(subsumed(&big, &big));
        assert!(subsumed(&Mapping::new(), &small));
    }

    #[test]
    fn subsumption_is_a_partial_order() {
        let a = m(&[("x", "a")]);
        let b = m(&[("x", "a"), ("y", "b")]);
        let c = m(&[("x", "a"), ("y", "b"), ("z", "c")]);
        // Transitivity.
        assert!(subsumed(&a, &b) && subsumed(&b, &c) && subsumed(&a, &c));
        // Antisymmetry: mutual subsumption implies equality.
        let a2 = m(&[("x", "a")]);
        assert!(subsumed(&a, &a2) && subsumed(&a2, &a) && a == a2);
    }

    #[test]
    fn set_subsumption_and_maximal_elements() {
        let sols: SolutionSet = [
            m(&[("x", "a")]),
            m(&[("x", "a"), ("y", "b")]),
            m(&[("x", "c")]),
        ]
        .into_iter()
        .collect();
        let maxes = max_solutions(&sols);
        assert_eq!(maxes.len(), 2);
        assert!(maxes.contains(&m(&[("x", "a"), ("y", "b")])));
        assert!(maxes.contains(&m(&[("x", "c")])));
        // The full set is subsumed by its maximal elements, and vice versa
        // is false only when a maximal element is missing below.
        assert!(set_subsumed(&sols, &maxes));
        assert!(set_subsumed(&maxes, &sols));
        let partial: SolutionSet = [m(&[("x", "a")])].into_iter().collect();
        assert!(set_subsumed(&partial, &sols));
        assert!(!set_subsumed(&sols, &partial));
    }

    #[test]
    fn incomparable_mappings_are_not_subsumed() {
        let a = m(&[("x", "a")]);
        let b = m(&[("y", "b")]);
        assert!(!subsumed(&a, &b));
        assert!(!subsumed(&b, &a));
    }
}
