//! Deciding containment **over all graphs** — three-valued, with sound
//! positive and negative procedures.
//!
//! Containment of well-designed patterns is Πᵖ₂-complete (Pichler–Skritek,
//! PODS'14), so a complete polynomial test is off the table. What this
//! module provides instead:
//!
//! * [`syntactic_containment`] — sound for "contained" (and complete for
//!   single-node, i.e. pure-AND, patterns);
//! * [`search_counterexample`] — sound for "not contained": canonical
//!   frozen instances, child-augmented variants and a random battery;
//! * [`exhaustive_counterexample`] — complete for counterexamples up to a
//!   size bound;
//! * [`decide_containment`] — the combination, returning a [`Verdict`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use wdsparql_core::{check_forest, enumerate_forest};
use wdsparql_hom::{maps_to, GenTGraph, TGraph};
use wdsparql_rdf::{Iri, Mapping, RdfGraph, Term, Triple};
use wdsparql_tree::{enumerate_subtrees, subtree_children, subtree_pat, subtree_vars, Wdpf};

/// A verified witness of non-containment: `µ ∈ ⟦F1⟧_G` but `µ ∉ ⟦F2⟧_G`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub graph: RdfGraph,
    pub mu: Mapping,
}

impl Counterexample {
    /// Re-checks the witness against both forests.
    pub fn verify(&self, f1: &Wdpf, f2: &Wdpf) -> bool {
        check_forest(f1, &self.graph, &self.mu) && !check_forest(f2, &self.graph, &self.mu)
    }
}

/// Outcome of [`decide_containment`].
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Containment holds on every graph (proved syntactically).
    Contained,
    /// Containment fails; the witness is attached (boxed: a witness
    /// carries a whole graph, far bigger than the other variants).
    NotContained(Box<Counterexample>),
    /// Neither procedure resolved the instance within budget.
    Unknown,
}

impl Verdict {
    pub fn is_contained(&self) -> bool {
        matches!(self, Verdict::Contained)
    }

    pub fn is_not_contained(&self) -> bool {
        matches!(self, Verdict::NotContained(_))
    }
}

/// Budget for [`search_counterexample`].
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Number of random graphs to draw.
    pub random_graphs: usize,
    /// Node-pool size for random graphs.
    pub max_nodes: usize,
    /// Maximum triple count per random graph.
    pub max_triples: usize,
    /// RNG seed (searches are deterministic given the budget).
    pub seed: u64,
}

impl Default for SearchBudget {
    fn default() -> SearchBudget {
        SearchBudget {
            random_graphs: 200,
            max_nodes: 4,
            max_triples: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// The sound syntactic containment test `F1 ⊆ F2`, lifted from
/// Chandra–Merlin to pattern trees through Lemma 1.
///
/// For every subtree `T1'` of a tree of `F1` (with `X := vars(T1')`, the
/// solution domain it produces), we require a tree of `F2` with a subtree
/// `T2'` such that
///
/// 1. `vars(T2') = X` — the domains match;
/// 2. `pat(T2') ⊆ pat(T1')` — since every variable of either pattern lies
///    in `X`, a homomorphism `(pat(T2'), X) → (pat(T1'), X)` is forced to
///    be the identity, i.e. triple-set inclusion. Any solution
///    `µ ∈ ⟦T1⟧_G` witnessed by `T1'` (which *is* a homomorphism of
///    `pat(T1')` with `dom(µ) = X`) is then a homomorphism of `pat(T2')`;
/// 3. for every child `n` of `T2'` there is a child `m` of `T1'` with
///    `(pat(T1') ∪ pat(m), X) → (pat(T2') ∪ pat(n), X)`: a compatible
///    extension of `n` under `µ` would compose into a compatible
///    extension of `m`, contradicting the Lemma 1 maximality of `µ` in
///    `T1` — so no child of `T2'` extends and `µ ∈ ⟦T2⟧_G` via `T2'`.
///
/// Soundness is immediate from the three steps. The test is also
/// *complete* for forests of single-node trees (pure AND/UNION patterns):
/// there condition 3 is vacuous and condition 2 is exactly the
/// set-semantics containment criterion (freeze `pat(T1')` injectively for
/// the converse).
pub fn syntactic_containment(f1: &Wdpf, f2: &Wdpf) -> bool {
    for ta in &f1.trees {
        for st1 in enumerate_subtrees(ta) {
            let x = subtree_vars(ta, &st1);
            let pat1 = subtree_pat(ta, &st1);
            let covered = f2.trees.iter().any(|tb| {
                enumerate_subtrees(tb).into_iter().any(|st2| {
                    if subtree_vars(tb, &st2) != x {
                        return false;
                    }
                    let pat2 = subtree_pat(tb, &st2);
                    if !pat2.is_subset(&pat1) {
                        return false;
                    }
                    subtree_children(tb, &st2).into_iter().all(|n| {
                        subtree_children(ta, &st1).into_iter().any(|m| {
                            let src = GenTGraph::new(pat1.union(ta.pat(m)), x.iter().copied());
                            let dst = GenTGraph::new(pat2.union(tb.pat(n)), x.iter().copied());
                            maps_to(&src, &dst)
                        })
                    })
                })
            });
            if !covered {
                return false;
            }
        }
    }
    true
}

/// All IRIs usable as predicates in counterexample graphs: the IRIs in
/// predicate position of either forest, plus a fresh one so that
/// variable-predicate patterns can be exercised.
fn predicate_pool(forests: [&Wdpf; 2]) -> Vec<Iri> {
    let mut preds: BTreeSet<Iri> = BTreeSet::new();
    for f in forests {
        for t in &f.trees {
            for n in t.node_ids() {
                for tp in t.pat(n).iter() {
                    if let Term::Iri(i) = tp.p {
                        preds.insert(i);
                    }
                }
            }
        }
    }
    preds.insert(Iri::new("cx-extra-pred"));
    preds.into_iter().collect()
}

/// All IRIs appearing anywhere in either forest (subject/object constants
/// must be available to the graph generator).
fn constant_pool(forests: [&Wdpf; 2], fresh: usize) -> Vec<Iri> {
    let mut consts: BTreeSet<Iri> = BTreeSet::new();
    for f in forests {
        for t in &f.trees {
            for n in t.node_ids() {
                for tp in t.pat(n).iter() {
                    for term in tp.positions() {
                        if let Term::Iri(i) = term {
                            consts.insert(i);
                        }
                    }
                }
            }
        }
    }
    for k in 0..fresh {
        consts.insert(Iri::new(&format!("cx{k}")));
    }
    consts.into_iter().collect()
}

/// Does `g` witness non-containment? Returns the offending mapping.
fn violation_on(f1: &Wdpf, f2: &Wdpf, g: &RdfGraph) -> Option<Mapping> {
    enumerate_forest(f1, g)
        .into_iter()
        .find(|mu| !check_forest(f2, g, mu))
}

/// Searches for a counterexample to `F1 ⊆ F2`.
///
/// Candidates, in order:
///
/// 1. the frozen canonical instance of `pat(T')` for every subtree `T'`
///    of both forests;
/// 2. each such instance augmented with one frozen child pattern (these
///    exercise the maximality side of Lemma 1, where OPT containment
///    genuinely differs from CQ containment);
/// 3. a seeded random battery over the forests' own vocabulary.
///
/// Any returned [`Counterexample`] has been verified semantically, so a
/// `Some` answer is always correct; `None` proves nothing.
pub fn search_counterexample(
    f1: &Wdpf,
    f2: &Wdpf,
    budget: &SearchBudget,
) -> Option<Counterexample> {
    // 1 & 2: canonical frozen instances (and child-augmented variants).
    for f in [f1, f2] {
        for t in &f.trees {
            for st in enumerate_subtrees(t) {
                let pat = subtree_pat(t, &st);
                let vars = subtree_vars(t, &st);
                let mut candidates: Vec<TGraph> = vec![pat.clone()];
                for n in subtree_children(t, &st) {
                    candidates.push(pat.union(t.pat(n)));
                }
                for cand in candidates {
                    let gen = GenTGraph::new(cand, vars.iter().copied());
                    let (g, _) = gen.freeze(&vars);
                    if let Some(mu) = violation_on(f1, f2, &g) {
                        return Some(Counterexample { graph: g, mu });
                    }
                }
            }
        }
    }
    // 3: random battery over the queries' own vocabulary.
    let preds = predicate_pool([f1, f2]);
    let consts = constant_pool([f1, f2], budget.max_nodes);
    let mut rng = StdRng::seed_from_u64(budget.seed);
    for _ in 0..budget.random_graphs {
        let n_triples = rng.gen_range(1..=budget.max_triples);
        let mut g = RdfGraph::new();
        for _ in 0..n_triples {
            let s = consts[rng.gen_range(0..consts.len())];
            let p = preds[rng.gen_range(0..preds.len())];
            let o = consts[rng.gen_range(0..consts.len())];
            g.insert(Triple::new(s, p, o));
        }
        if let Some(mu) = violation_on(f1, f2, &g) {
            return Some(Counterexample { graph: g, mu });
        }
    }
    None
}

/// Exhaustively searches every graph with at most `max_triples` triples
/// over the forests' vocabulary extended by `fresh_consts` fresh IRIs.
/// Complete for counterexamples of that size — but the candidate space is
/// `C(|consts|²·|preds|, ≤ max_triples)`, so keep the bounds tiny.
pub fn exhaustive_counterexample(
    f1: &Wdpf,
    f2: &Wdpf,
    fresh_consts: usize,
    max_triples: usize,
) -> Option<Counterexample> {
    let preds = predicate_pool([f1, f2]);
    let consts = constant_pool([f1, f2], fresh_consts);
    let mut universe: Vec<Triple> = Vec::new();
    for &s in &consts {
        for &p in &preds {
            for &o in &consts {
                universe.push(Triple::new(s, p, o));
            }
        }
    }
    // Enumerate subsets of the universe of size ≤ max_triples.
    let mut chosen: Vec<Triple> = Vec::new();
    fn rec(
        universe: &[Triple],
        from: usize,
        left: usize,
        chosen: &mut Vec<Triple>,
        f1: &Wdpf,
        f2: &Wdpf,
    ) -> Option<Counterexample> {
        let g = RdfGraph::from_triples(chosen.iter().copied());
        if let Some(mu) = violation_on(f1, f2, &g) {
            return Some(Counterexample { graph: g, mu });
        }
        if left == 0 {
            return None;
        }
        for i in from..universe.len() {
            chosen.push(universe[i]);
            if let Some(ce) = rec(universe, i + 1, left - 1, chosen, f1, f2) {
                return Some(ce);
            }
            chosen.pop();
        }
        None
    }
    rec(&universe, 0, max_triples, &mut chosen, f1, f2)
}

/// Combines the syntactic test and the counterexample search.
pub fn decide_containment(f1: &Wdpf, f2: &Wdpf, budget: &SearchBudget) -> Verdict {
    if syntactic_containment(f1, f2) {
        return Verdict::Contained;
    }
    match search_counterexample(f1, f2, budget) {
        Some(ce) => Verdict::NotContained(Box::new(ce)),
        None => Verdict::Unknown,
    }
}

/// Decides equivalence as containment both ways.
pub fn decide_equivalence(f1: &Wdpf, f2: &Wdpf, budget: &SearchBudget) -> (Verdict, Verdict) {
    (
        decide_containment(f1, f2, budget),
        decide_containment(f2, f1, budget),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::parse_pattern;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn cq_containment_is_exact() {
        // pat2 ⊆ pat1 on equal variable sets: contained; converse refuted.
        let p1 = forest("(?x, p, ?y) AND (?y, p, ?x)");
        let p2 = forest("(?x, p, ?y) AND (?y, q, ?x)");
        let both = forest("((?x, p, ?y) AND (?y, p, ?x)) AND (?y, q, ?x)");
        assert!(syntactic_containment(&both, &p1));
        assert!(!syntactic_containment(&p1, &both));
        let ce = search_counterexample(&p1, &both, &SearchBudget::default()).unwrap();
        assert!(ce.verify(&p1, &both));
        assert!(decide_containment(&both, &p2, &SearchBudget::default()).is_contained());
    }

    #[test]
    fn and_commutativity_is_proved_both_ways() {
        let ab = forest("(?x, p, ?y) AND (?y, q, ?z)");
        let ba = forest("(?y, q, ?z) AND (?x, p, ?y)");
        let (fwd, bwd) = decide_equivalence(&ab, &ba, &SearchBudget::default());
        assert!(fwd.is_contained() && bwd.is_contained());
    }

    #[test]
    fn opt_left_arm_is_not_contained() {
        // ⟦P⟧ ⊄ ⟦P OPT Q⟧: on graphs where Q matches, the left-arm
        // mapping is not maximal. The frozen child-augmented canonical
        // instance finds this immediately.
        let left = forest("(?x, p, ?y)");
        let opt = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let v = decide_containment(&left, &opt, &SearchBudget::default());
        let Verdict::NotContained(ce) = v else {
            panic!("expected a counterexample");
        };
        assert!(ce.verify(&left, &opt));
        // The witness graph must trigger the OPT arm.
        assert!(ce.graph.iter().any(|t| t.p == Iri::new("q")));
    }

    #[test]
    fn opt_to_and_containment() {
        // ⟦P AND Q⟧ ⊆ ⟦P OPT Q⟧ always (an AND solution is an OPT
        // solution with the extension present).
        let and = forest("(?x, p, ?y) AND (?y, q, ?z)");
        let opt = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        assert!(syntactic_containment(&and, &opt));
        // Not conversely: an OPT solution without the extension has a
        // smaller domain.
        assert!(!syntactic_containment(&opt, &and));
        let ce = search_counterexample(&opt, &and, &SearchBudget::default()).unwrap();
        assert!(ce.verify(&opt, &and));
    }

    #[test]
    fn union_branch_containment() {
        let u = forest("(?x, p, ?y) UNION ((?x, q, ?y) AND (?x, p, ?y))");
        let b = forest("(?x, p, ?y)");
        // Each branch of u has solutions contained in... not quite: the
        // second branch's solutions have domain {x,y} and satisfy the
        // first branch's pattern, so u ⊆ b should be *provable*.
        assert!(syntactic_containment(&u, &b));
        // b ⊆ u holds too (the first branch is b itself).
        assert!(syntactic_containment(&b, &u));
    }

    #[test]
    fn self_containment_always_holds() {
        for text in [
            "(?x, p, ?y)",
            "(?x, p, ?y) OPT (?y, q, ?z)",
            "((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2))",
            "(?x, p, ?y) UNION (?x, q, ?y)",
        ] {
            let f = forest(text);
            assert!(syntactic_containment(&f, &f), "{text} ⊈ itself");
        }
    }

    #[test]
    fn exhaustive_search_matches_targeted_search() {
        let left = forest("(?x, p, ?y)");
        let opt = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let ce = exhaustive_counterexample(&left, &opt, 2, 2).unwrap();
        assert!(ce.verify(&left, &opt));
        // Equivalent patterns have no counterexample at this size.
        let ab = forest("(?x, p, ?y) AND (?y, q, ?z)");
        let ba = forest("(?y, q, ?z) AND (?x, p, ?y)");
        assert!(exhaustive_counterexample(&ab, &ba, 2, 2).is_none());
    }

    #[test]
    fn nested_opt_subtlety_is_caught() {
        // Deepening an OPT chain is not containment-preserving in either
        // direction; both verdicts must be NotContained with verified
        // witnesses (never Unknown on these).
        let shallow = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let deep = forest("(?x, p, ?y) OPT ((?y, q, ?z) OPT (?z, r, ?w))");
        let (fwd, bwd) = decide_equivalence(&shallow, &deep, &SearchBudget::default());
        assert!(fwd.is_not_contained(), "{fwd:?}");
        assert!(bwd.is_not_contained(), "{bwd:?}");
    }
}
