//! Branch treewidth (Definition 3, §3.2) and local tractability
//! (Letelier et al., as recalled after Theorem 1).
//!
//! For a node `n ≠ r` of a wdPT with branch `B_n` (the root-to-parent
//! path):
//!
//! * `S^br_n = pat(n) ∪ ⋃_{n' ∈ B_n} pat(n')` and
//!   `X^br_n = vars(⋃_{n' ∈ B_n} pat(n'))`;
//! * `bw(T)` is the least `k` with `ctw(S^br_n, X^br_n) ≤ k` for all `n`;
//! * local tractability instead bounds `ctw(pat(n), vars(n) ∩ vars(n'))`
//!   per node/parent pair.
//!
//! Proposition 5 shows `dw(P) = bw(P)` for UNION-free well-designed
//! patterns; bounded `bw` strictly generalises local tractability.

use wdsparql_hom::{ctw, GenTGraph, TGraph};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// `(S^br_n, X^br_n)` for a non-root node.
pub fn branch_tgraph(t: &Wdpt, n: NodeId) -> GenTGraph {
    assert!(t.parent(n).is_some(), "the root has no branch t-graph");
    let mut branch_pat = TGraph::new();
    for b in t.branch(n) {
        branch_pat = branch_pat.union(t.pat(b));
    }
    let x = branch_pat.vars();
    GenTGraph::new(t.pat(n).union(&branch_pat), x)
}

/// `bw(T)`: the branch treewidth of a wdPT (≥ 1 by convention).
pub fn branch_treewidth(t: &Wdpt) -> usize {
    t.node_ids()
        .filter(|n| t.parent(*n).is_some())
        .map(|n| ctw(&branch_tgraph(t, n)).width)
        .max()
        .unwrap_or(1)
        .max(1)
}

/// `bw` extended to forests as the maximum over trees (used when relating
/// bw to dw on single-tree forests).
pub fn branch_treewidth_forest(f: &Wdpf) -> usize {
    f.trees.iter().map(branch_treewidth).max().unwrap_or(1)
}

/// The recognition problem `bw(T) ≤ k`.
pub fn bw_at_most(t: &Wdpt, k: usize) -> bool {
    t.node_ids()
        .filter(|n| t.parent(*n).is_some())
        .all(|n| ctw(&branch_tgraph(t, n)).width <= k)
}

/// The local width of a node: `ctw(pat(n), vars(n) ∩ vars(n'))`.
pub fn local_node_width(t: &Wdpt, n: NodeId) -> usize {
    let parent = t.parent(n).expect("local width is defined for non-roots");
    let shared: Vec<_> = t.vars(n).intersection(&t.vars(parent)).copied().collect();
    ctw(&GenTGraph::new(t.pat(n).clone(), shared)).width
}

/// The local-tractability width of a wdPT: the max local node width
/// (`1` for a single-node tree). A class is locally tractable iff this is
/// bounded.
pub fn local_width(t: &Wdpt) -> usize {
    t.node_ids()
        .filter(|n| t.parent(*n).is_some())
        .map(|n| local_node_width(t, n))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Local width of a forest.
pub fn local_width_forest(f: &Wdpf) -> usize {
    f.trees.iter().map(local_width).max().unwrap_or(1)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;
    use wdsparql_tree::ROOT;

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    fn kk(k: usize) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for i in 1..=k {
            for j in (i + 1)..=k {
                out.push((format!("?o{i}"), "r".to_string(), format!("?o{j}")));
            }
        }
        out
    }

    /// T'_k from §3.2: root {(y,r,y)}, child {(y,r,o1)} ∪ K_k.
    pub(crate) fn tprime(k: usize) -> Wdpt {
        let mut t = Wdpt::new(tg(&[("?y", "r", "?y")]));
        let mut child: Vec<(String, String, String)> =
            vec![("?y".into(), "r".into(), "?o1".into())];
        child.extend(kk(k));
        let child_ref: Vec<(&str, &str, &str)> = child
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
            .collect();
        t.add_child(ROOT, tg(&child_ref));
        t.validate().expect("T'_k is a valid wdPT");
        t
    }

    #[test]
    fn section32_tprime_family() {
        // bw(T'_k) = 1 for all k (the branch t-graph's core collapses onto
        // the loop), while local width is k−1: the family separates
        // bounded-bw from local tractability.
        for k in 2..=5 {
            let t = tprime(k);
            assert_eq!(branch_treewidth(&t), 1, "bw(T'_{k})");
            assert_eq!(local_width(&t), k - 1, "local(T'_{k})");
        }
    }

    #[test]
    fn single_node_tree_has_width_one() {
        let t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        assert_eq!(branch_treewidth(&t), 1);
        assert_eq!(local_width(&t), 1);
        assert!(bw_at_most(&t, 1));
    }

    #[test]
    fn clique_child_without_loop_has_high_bw() {
        // root {(x,p,y)}, child {(y,r,o1)} ∪ K_k: the branch t-graph is a
        // core (no loop to fold into), so bw = k−1.
        for k in 3..=5 {
            let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
            let mut child: Vec<(String, String, String)> =
                vec![("?y".into(), "r".into(), "?o1".into())];
            child.extend(kk(k));
            let child_ref: Vec<(&str, &str, &str)> = child
                .iter()
                .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
                .collect();
            t.add_child(ROOT, tg(&child_ref));
            assert_eq!(branch_treewidth(&t), k - 1);
            assert!(!bw_at_most(&t, k - 2));
            assert!(bw_at_most(&t, k - 1));
        }
    }

    #[test]
    fn branch_tgraph_accumulates_ancestors() {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        let b = t.add_child(a, tg(&[("?z", "q", "?w")]));
        let bt = branch_tgraph(&t, b);
        assert_eq!(bt.s.len(), 3);
        // X^br = vars of the two ancestors.
        assert_eq!(
            bt.x,
            [var("x"), var("y"), var("z")]
                .iter()
                .map(|t| t.as_var().unwrap())
                .collect()
        );
    }

    #[test]
    fn deep_chain_has_bw_one() {
        let mut t = Wdpt::new(tg(&[("?v0", "p", "?v1")]));
        let mut cur = ROOT;
        for i in 1..6 {
            cur = t.add_child(
                cur,
                tg(&[(
                    format!("?v{i}").as_str(),
                    "p",
                    format!("?v{}", i + 1).as_str(),
                )]),
            );
        }
        assert_eq!(branch_treewidth(&t), 1);
        assert_eq!(local_width(&t), 1);
    }
}
