//! Domination width (Definitions 1–2).
//!
//! A set `G` of generalised t-graphs over a fixed `X` is *k-dominated* if
//! `{(S,X) ∈ G | ctw(S,X) ≤ k}` is a dominating set: every other element is
//! the target of a homomorphism from some low-width element. The domination
//! width `dw(F)` of a wdPF is the least `k ≥ 1` such that `GtG(T)` is
//! k-dominated for *every* subtree `T` of `F`.

use crate::gtg::{forest_subtrees, gtg, GtgElement};
use wdsparql_hom::{ctw, maps_to};
use wdsparql_tree::Wdpf;

/// Is the given `GtG` set k-dominated?
pub fn is_k_dominated(elements: &[GtgElement], k: usize) -> bool {
    let widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
    let dominators: Vec<usize> = (0..elements.len()).filter(|&i| widths[i] <= k).collect();
    elements.iter().enumerate().all(|(i, e)| {
        widths[i] <= k
            || dominators
                .iter()
                .any(|&d| maps_to(&elements[d].graph, &e.graph))
    })
}

/// The least `k` such that the set is k-dominated (`1` for the empty set).
pub fn min_domination(elements: &[GtgElement]) -> usize {
    if elements.is_empty() {
        return 1;
    }
    let mut widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
    widths.sort_unstable();
    widths.dedup();
    for &k in &widths {
        if is_k_dominated(elements, k) {
            return k.max(1);
        }
    }
    // k = max ctw always dominates (G' = G), so this is unreachable.
    unreachable!("the maximal ctw always k-dominates")
}

/// `dw(F)`: the domination width of a wdPF (Definition 2).
///
/// Exponential in `|F|` in general — domination width is a static property
/// of the *query*, which is small; recognition is NP-hard already for
/// UNION-free patterns (§5).
pub fn domination_width(f: &Wdpf) -> usize {
    forest_subtrees(f)
        .iter()
        .map(|st| min_domination(&gtg(f, st)))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The recognition problem `dw(F) ≤ k`, with early exit per subtree.
pub fn dw_at_most(f: &Wdpf, k: usize) -> bool {
    forest_subtrees(f)
        .iter()
        .all(|st| is_k_dominated(&gtg(f, st), k))
}

/// Per-subtree report: (tree index, node set size, |GtG|, minimal k) —
/// used by the experiments harness to reproduce Example 4/5 tables.
pub fn domination_report(f: &Wdpf) -> Vec<(usize, usize, usize, usize)> {
    forest_subtrees(f)
        .iter()
        .map(|st| {
            let g = gtg(f, st);
            (st.tree, st.nodes.len(), g.len(), min_domination(&g))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::branch_treewidth;
    use crate::branch::tests::tprime;
    use crate::gtg::tests::fk;
    use wdsparql_tree::Wdpf;

    #[test]
    fn example5_dw_of_fk_is_one() {
        for k in 2..=4 {
            let f = fk(k);
            assert_eq!(domination_width(&f), 1, "dw(F_{k})");
            assert!(dw_at_most(&f, 1));
        }
    }

    #[test]
    fn report_covers_all_subtrees() {
        let f = fk(2);
        let report = domination_report(&f);
        assert_eq!(report.len(), 8);
        assert!(report.iter().all(|&(_, _, _, k)| k == 1));
    }

    #[test]
    fn proposition5_dw_equals_bw_on_tprime() {
        // UNION-free patterns: dw = bw (Proposition 5).
        for k in 2..=4 {
            let t = tprime(k);
            let bw = branch_treewidth(&t);
            let f = Wdpf::new(vec![t]);
            assert_eq!(domination_width(&f), bw, "T'_{k}");
        }
    }

    #[test]
    fn fk_subtree_gtg_is_dominated_nontrivially() {
        // The root subtree of T1 in F_3 is 1-dominated even though one of
        // its elements has ctw 2 — the non-trivial domination that
        // separates forests from UNION-free trees (remark after Prop. 5).
        let f = fk(3);
        let st = crate::gtg::ForestSubtree {
            tree: 0,
            nodes: [wdsparql_tree::ROOT].into_iter().collect(),
        };
        let g = gtg(&f, &st);
        assert!(is_k_dominated(&g, 1));
        let max_ctw = g
            .iter()
            .map(|e| wdsparql_hom::ctw(&e.graph).width)
            .max()
            .unwrap();
        assert_eq!(max_ctw, 2, "an element of ctw 2 exists but is dominated");
    }
}
