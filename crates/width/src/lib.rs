//! # wdsparql-width
//!
//! The width measures that carve out the tractability frontier (§3):
//!
//! * supports, children assignments and the sets `GtG(T)` ([`mod@gtg`]);
//! * **domination width** `dw` — Definitions 1–2, the exact
//!   characterisation of PTIME evaluability (Theorem 3) ([`domination`]);
//! * **branch treewidth** `bw` and local tractability — the UNION-free
//!   picture of §3.2, where `dw = bw` (Proposition 5) ([`branch`]);
//! * the **recognition problem** `dw(P) ≤ k` / `bw(P) ≤ k` from the
//!   paper's conclusions, with independently checkable certificates
//!   ([`recognition`]).

#![forbid(unsafe_code)]

pub mod branch;
pub mod domination;
pub mod gtg;
pub mod recognition;

pub use branch::{
    branch_tgraph, branch_treewidth, branch_treewidth_forest, bw_at_most, local_node_width,
    local_width, local_width_forest,
};
pub use domination::{
    domination_report, domination_width, dw_at_most, is_k_dominated, min_domination,
};
pub use gtg::{
    children_assignments, forest_subtrees, gtg, is_valid_assignment, s_delta, support,
    ChildrenAssignment, ForestSubtree, GtgElement, Support,
};
pub use recognition::{
    recognize_bw, recognize_dw, verify_dw_certificate, BwCertificate, BwViolation, DwCertificate,
    DwViolation, SubtreeDomination,
};
