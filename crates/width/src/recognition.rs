//! The **recognition problem** from the paper's conclusions: given a
//! well-designed pattern and a fixed `k`, decide `dw(P) ≤ k` (Πᵖ₂ upper
//! bound in general) or `bw(P) ≤ k` (NP-complete for UNION-free
//! patterns, via the NP-completeness of `ctw ≤ k` [Dalmau et al.,
//! Theorem 13]).
//!
//! Unlike the plain boolean tests [`crate::dw_at_most`] /
//! [`crate::bw_at_most`], the recognisers here return **certificates**:
//!
//! * for a *yes* answer, the witness structure (per-subtree dominating
//!   assignments, or per-node core treewidths) whose validity can be
//!   re-checked independently with [`verify_dw_certificate`];
//! * for a *no* answer, the violating subtree/GtG element (the same kind
//!   of witness Lemma 3 extracts for the hardness reduction) or the
//!   violating node.

use crate::branch::branch_tgraph;
use crate::gtg::{forest_subtrees, gtg, ForestSubtree};
use wdsparql_hom::{ctw, maps_to};
use wdsparql_tree::{NodeId, Wdpf, Wdpt, ROOT};

/// A dominating assignment for one subtree's `GtG` set: for each element,
/// the index of a dominator of ctw ≤ k (itself when already small).
#[derive(Clone, Debug)]
pub struct SubtreeDomination {
    pub subtree: ForestSubtree,
    /// `ctw` of each GtG element, in `gtg(f, subtree)` order.
    pub ctws: Vec<usize>,
    /// `dominator_of[i] = j` means element `j` dominates element `i`
    /// (`i == j` for elements of ctw ≤ k).
    pub dominator_of: Vec<usize>,
}

/// Witness that `dw(F) > k`: a subtree with a GtG element of ctw > k that
/// no small element dominates.
#[derive(Clone, Debug)]
pub struct DwViolation {
    pub subtree: ForestSubtree,
    /// Index of the undominated element in `gtg(f, subtree)`.
    pub element: usize,
    /// Its core treewidth (necessarily > k).
    pub element_ctw: usize,
}

/// Outcome of [`recognize_dw`].
#[derive(Clone, Debug)]
pub enum DwCertificate {
    Holds(Vec<SubtreeDomination>),
    Violated(DwViolation),
}

impl DwCertificate {
    pub fn holds(&self) -> bool {
        matches!(self, DwCertificate::Holds(_))
    }
}

/// Decides `dw(F) ≤ k`, producing a checkable certificate either way.
pub fn recognize_dw(f: &Wdpf, k: usize) -> DwCertificate {
    let mut per_subtree = Vec::new();
    for st in forest_subtrees(f) {
        let elements = gtg(f, &st);
        let ctws: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
        let small: Vec<usize> = (0..elements.len()).filter(|&i| ctws[i] <= k).collect();
        let mut dominator_of = Vec::with_capacity(elements.len());
        for (i, e) in elements.iter().enumerate() {
            if ctws[i] <= k {
                dominator_of.push(i);
                continue;
            }
            match small
                .iter()
                .find(|&&d| maps_to(&elements[d].graph, &e.graph))
            {
                Some(&d) => dominator_of.push(d),
                None => {
                    return DwCertificate::Violated(DwViolation {
                        subtree: st,
                        element: i,
                        element_ctw: ctws[i],
                    })
                }
            }
        }
        per_subtree.push(SubtreeDomination {
            subtree: st,
            ctws,
            dominator_of,
        });
    }
    DwCertificate::Holds(per_subtree)
}

/// Independently re-checks a positive certificate: every listed subtree
/// must exist, every dominator must have ctw ≤ k and a homomorphism into
/// its dominee, and the certificate must cover every subtree of `F`.
pub fn verify_dw_certificate(f: &Wdpf, k: usize, cert: &[SubtreeDomination]) -> bool {
    let subtrees = forest_subtrees(f);
    if cert.len() != subtrees.len() {
        return false;
    }
    for (entry, st) in cert.iter().zip(&subtrees) {
        if &entry.subtree != st {
            return false;
        }
        let elements = gtg(f, st);
        if entry.dominator_of.len() != elements.len() || entry.ctws.len() != elements.len() {
            return false;
        }
        for (i, &d) in entry.dominator_of.iter().enumerate() {
            if d >= elements.len() {
                return false;
            }
            // The claimed widths must be honest and the dominator small.
            if ctw(&elements[i].graph).width != entry.ctws[i] || entry.ctws[d] > k {
                return false;
            }
            if d != i && !maps_to(&elements[d].graph, &elements[i].graph) {
                return false;
            }
            if d == i && entry.ctws[i] > k {
                return false;
            }
        }
    }
    true
}

/// Witness that `bw(T) > k`: the node whose branch t-graph has large ctw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BwViolation {
    pub node: NodeId,
    pub ctw: usize,
}

/// Outcome of [`recognize_bw`]: per-node core treewidths, or the first
/// violating node.
#[derive(Clone, Debug)]
pub enum BwCertificate {
    /// `(node, ctw(S^br_n, X^br_n))` for every non-root node.
    Holds(Vec<(NodeId, usize)>),
    Violated(BwViolation),
}

impl BwCertificate {
    pub fn holds(&self) -> bool {
        matches!(self, BwCertificate::Holds(_))
    }
}

/// Decides `bw(T) ≤ k` with a per-node certificate (Definition 3). The
/// NP-hard kernel is the per-node `ctw ≤ k` check; our exact core and
/// treewidth machinery pays that price only in the (small) query size.
pub fn recognize_bw(t: &Wdpt, k: usize) -> BwCertificate {
    let mut widths = Vec::new();
    for n in t.node_ids().filter(|&n| n != ROOT) {
        let w = ctw(&branch_tgraph(t, n)).width;
        if w > k {
            return BwCertificate::Violated(BwViolation { node: n, ctw: w });
        }
        widths.push((n, w));
    }
    BwCertificate::Holds(widths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::tests::tprime;
    use crate::domination::domination_width;
    use crate::gtg::tests::fk;
    use wdsparql_hom::TGraph;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    /// The clique-child family `Q_k`: root `(?x,p,?y)`, one child
    /// `{(?y,r,?o1)} ∪ K_k(?o1..?ok)` — `bw(Q_k) = dw(Q_k) = k − 1`.
    fn clique_tree(k: usize) -> Wdpt {
        let mut pats = vec![tp(var("y"), iri("r"), var("o1"))];
        for i in 1..=k {
            for j in (i + 1)..=k {
                pats.push(tp(var(&format!("o{i}")), iri("r"), var(&format!("o{j}"))));
            }
        }
        let mut t = Wdpt::new(TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]));
        t.add_child(ROOT, TGraph::from_patterns(pats));
        t
    }

    #[test]
    fn fk_recognised_at_its_exact_width() {
        for k in 2..=4 {
            let f = fk(k);
            let cert = recognize_dw(&f, 1);
            let DwCertificate::Holds(entries) = &cert else {
                panic!("dw(F_{k}) = 1 must be recognised at k = 1");
            };
            assert!(verify_dw_certificate(&f, 1, entries));
            // Every subtree is covered.
            assert_eq!(entries.len(), forest_subtrees(&f).len());
        }
    }

    #[test]
    fn fk_nontrivial_domination_appears_in_certificate() {
        // In F_3, the root subtree's GtG has an element of ctw 2 that is
        // dominated by a different element — the certificate records a
        // non-identity dominator.
        let f = fk(3);
        let DwCertificate::Holds(entries) = recognize_dw(&f, 1) else {
            panic!("dw(F_3) = 1");
        };
        assert!(entries
            .iter()
            .any(|e| e.dominator_of.iter().enumerate().any(|(i, &d)| i != d)));
    }

    #[test]
    fn violation_reports_the_large_element() {
        // The clique-child tree Q_4 has bw = dw = 3; at k = 2 recognition
        // must fail and name an element of ctw 3.
        let q4 = clique_tree(4);
        let f = Wdpf::new(vec![q4]);
        assert_eq!(domination_width(&f), 3);
        let DwCertificate::Violated(v) = recognize_dw(&f, 2) else {
            panic!("dw(Q_4) = 3 > 2 must be rejected");
        };
        assert!(v.element_ctw > 2);
        // And it is recognised at its exact width.
        assert!(recognize_dw(&f, 3).holds());
    }

    #[test]
    fn bw_certificates_match_branch_treewidth() {
        for k in 2..=4 {
            let t = tprime(k);
            // bw(T'_k) = 1: recognised at 1, rejected at 0 is meaningless
            // (k ≥ 1), so check the certificate contents instead.
            let BwCertificate::Holds(widths) = recognize_bw(&t, 1) else {
                panic!("bw(T'_{k}) = 1");
            };
            assert!(widths.iter().all(|&(_, w)| w == 1));
        }
        let q4 = clique_tree(4);
        let BwCertificate::Violated(v) = recognize_bw(&q4, 2) else {
            panic!("bw(Q_4) = 3 > 2");
        };
        assert_eq!(v.ctw, 3);
        assert!(recognize_bw(&q4, 3).holds());
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let f = fk(2);
        let DwCertificate::Holds(mut entries) = recognize_dw(&f, 1) else {
            panic!("dw(F_2) = 1");
        };
        assert!(verify_dw_certificate(&f, 1, &entries));
        // Drop a subtree: coverage check fails.
        let dropped: Vec<_> = entries.iter().skip(1).cloned().collect();
        assert!(!verify_dw_certificate(&f, 1, &dropped));
        // Lie about a width.
        if let Some(e) = entries.iter_mut().find(|e| !e.ctws.is_empty()) {
            e.ctws[0] += 7;
        }
        assert!(!verify_dw_certificate(&f, 1, &entries));
    }
}
