//! Supports, children assignments and the sets `GtG(T)` (§3.1).
//!
//! For a subtree `T` of a wdPF `F = {T_1, ..., T_m}`:
//!
//! * `supp(T)` — the tree indices `i` with a (unique, by NR normal form)
//!   witness subtree `T^{sp(i)}` of `T_i` satisfying
//!   `vars(T^{sp(i)}) = vars(T)`;
//! * a *children assignment* `∆` maps a non-empty `dom(∆) ⊆ supp(T)` to
//!   children of the respective witnesses;
//! * `S_∆ = pat(T) ∪ ⋃_i ρ_∆(i)` where `ρ_∆` renames child-private
//!   variables to fresh ones;
//! * `∆` is *valid* if no unassigned supporting tree folds into `S_∆`;
//! * `GtG(T) = {(S_∆, vars(T)) | ∆ ∈ VCA(T)}`.

use std::collections::{BTreeMap, BTreeSet};
use wdsparql_hom::{maps_to, GenTGraph, TGraph, VarMap};
use wdsparql_rdf::{Term, Variable};
use wdsparql_tree::{subtree_pat, subtree_vars, subtree_with_vars, NodeId, Subtree, Wdpf};

/// A subtree of a wdPF: tree index plus node set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestSubtree {
    pub tree: usize,
    pub nodes: Subtree,
}

/// The support of a subtree: for each supporting tree index, its witness
/// subtree.
#[derive(Clone, Debug)]
pub struct Support {
    pub witnesses: BTreeMap<usize, Subtree>,
}

impl Support {
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.witnesses.keys().copied()
    }

    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// Computes `supp(T)` with the witness subtrees `T^{sp(i)}`.
pub fn support(f: &Wdpf, st: &ForestSubtree) -> Support {
    let vars = subtree_vars(&f.trees[st.tree], &st.nodes);
    let mut witnesses = BTreeMap::new();
    for (i, tree) in f.trees.iter().enumerate() {
        if let Some(w) = subtree_with_vars(tree, &vars) {
            witnesses.insert(i, w);
        }
    }
    debug_assert!(
        witnesses.contains_key(&st.tree),
        "supp(T) contains T's tree"
    );
    Support { witnesses }
}

/// A children assignment `∆ ∈ CA(T)`: tree index → chosen child node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildrenAssignment {
    pub chosen: BTreeMap<usize, NodeId>,
}

/// Enumerates `CA(T)`: every function with non-empty domain ⊆ supp(T)
/// assigning to each chosen index a child of its witness subtree.
pub fn children_assignments(f: &Wdpf, support: &Support) -> Vec<ChildrenAssignment> {
    // Options per supporting index: one of its witness's children, or skip.
    let per_index: Vec<(usize, Vec<NodeId>)> = support
        .witnesses
        .iter()
        .map(|(&i, w)| (i, wdsparql_tree::subtree_children(&f.trees[i], w)))
        .collect();
    let mut out: Vec<BTreeMap<usize, NodeId>> = vec![BTreeMap::new()];
    for (i, children) in &per_index {
        let mut next = Vec::with_capacity(out.len() * (children.len() + 1));
        for partial in &out {
            next.push(partial.clone()); // skip i
            for &c in children {
                let mut with = partial.clone();
                with.insert(*i, c);
                next.push(with);
            }
        }
        out = next;
    }
    out.into_iter()
        .filter(|m| !m.is_empty())
        .map(|chosen| ChildrenAssignment { chosen })
        .collect()
}

/// Builds `(S_∆, vars(T))`: the subtree pattern united with the fresh-
/// renamed child patterns `ρ_∆(i)`.
pub fn s_delta(f: &Wdpf, st: &ForestSubtree, delta: &ChildrenAssignment) -> GenTGraph {
    let tree = &f.trees[st.tree];
    let base = subtree_pat(tree, &st.nodes);
    let tvars = subtree_vars(tree, &st.nodes);
    let mut s = base;
    for (&i, &child) in &delta.chosen {
        s = s.union(&rename_child(f, i, child, &tvars));
    }
    GenTGraph::new(s, tvars)
}

/// `ρ_∆(i)`: `pat(∆(i))` with variables outside `vars(T)` renamed fresh.
fn rename_child(f: &Wdpf, tree_idx: usize, child: NodeId, tvars: &BTreeSet<Variable>) -> TGraph {
    let pat = f.trees[tree_idx].pat(child);
    let renaming: VarMap = pat
        .vars()
        .into_iter()
        .filter(|v| !tvars.contains(v))
        .map(|v| (v, Term::Var(Variable::fresh())))
        .collect();
    pat.apply(&renaming)
}

/// Is `∆` valid: for every `i ∈ supp(T) \ dom(∆)`,
/// `(pat(T^{sp(i)}), vars(T)) ̸→ (S_∆, vars(T))`?
pub fn is_valid_assignment(
    f: &Wdpf,
    support: &Support,
    delta: &ChildrenAssignment,
    s_delta: &GenTGraph,
) -> bool {
    support
        .witnesses
        .iter()
        .filter(|(i, _)| !delta.chosen.contains_key(i))
        .all(|(&i, witness)| {
            let pat = subtree_pat(&f.trees[i], witness);
            let src = GenTGraph::new(pat, s_delta.x.iter().copied());
            !maps_to(&src, s_delta)
        })
}

/// One element of `GtG(T)` with its provenance.
#[derive(Clone, Debug)]
pub struct GtgElement {
    pub delta: ChildrenAssignment,
    pub graph: GenTGraph,
}

/// Computes `GtG(T)` — the generalised t-graphs of the valid children
/// assignments.
pub fn gtg(f: &Wdpf, st: &ForestSubtree) -> Vec<GtgElement> {
    let supp = support(f, st);
    children_assignments(f, &supp)
        .into_iter()
        .filter_map(|delta| {
            let graph = s_delta(f, st, &delta);
            is_valid_assignment(f, &supp, &delta, &graph).then_some(GtgElement { delta, graph })
        })
        .collect()
}

/// Enumerates every subtree of the forest.
pub fn forest_subtrees(f: &Wdpf) -> Vec<ForestSubtree> {
    let mut out = Vec::new();
    for (i, tree) in f.trees.iter().enumerate() {
        for nodes in wdsparql_tree::enumerate_subtrees(tree) {
            out.push(ForestSubtree { tree: i, nodes });
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use wdsparql_hom::ctw;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;
    use wdsparql_tree::{Wdpt, ROOT};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    fn kk(k: usize) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for i in 1..=k {
            for j in (i + 1)..=k {
                out.push((format!("?o{i}"), "r".to_string(), format!("?o{j}")));
            }
        }
        out
    }

    /// The wdPF F_k = {T1, T2, T3} of Example 4 / Figure 2.
    pub fn fk(k: usize) -> Wdpf {
        // T1: root (x,p,y); children n11 = (z,q,x), n12 = (y,r,o1) ∪ Kk.
        let mut t1 = Wdpt::new(tg(&[("?x", "p", "?y")]));
        t1.add_child(ROOT, tg(&[("?z", "q", "?x")]));
        let mut n12: Vec<(String, String, String)> = vec![("?y".into(), "r".into(), "?o1".into())];
        n12.extend(kk(k));
        let n12_ref: Vec<(&str, &str, &str)> = n12
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
            .collect();
        t1.add_child(ROOT, tg(&n12_ref));
        // T2: root (x,p,y); child n2 = (z,q,x),(w,q,z).
        let mut t2 = Wdpt::new(tg(&[("?x", "p", "?y")]));
        t2.add_child(ROOT, tg(&[("?z", "q", "?x"), ("?w", "q", "?z")]));
        // T3: root (x,p,y),(z,q,x); child n3 = (y,r,o),(o,r,o).
        let mut t3 = Wdpt::new(tg(&[("?x", "p", "?y"), ("?z", "q", "?x")]));
        t3.add_child(ROOT, tg(&[("?y", "r", "?o"), ("?o", "r", "?o")]));
        let f = Wdpf::new(vec![t1, t2, t3]);
        for t in &f.trees {
            t.validate().expect("F_k trees are valid wdPTs");
        }
        f
    }

    #[test]
    fn example4_supports() {
        let f = fk(3);
        // T1[r1]: vars {x, y} — supported by trees 1 and 2 (indices 0, 1).
        let st = ForestSubtree {
            tree: 0,
            nodes: [ROOT].into_iter().collect(),
        };
        let supp = support(&f, &st);
        assert_eq!(supp.indices().collect::<Vec<_>>(), vec![0, 1]);
        // T1[r1, n11]: vars {x, y, z} — supported by trees 1 and 3.
        let st2 = ForestSubtree {
            tree: 0,
            nodes: [ROOT, NodeId(1)].into_iter().collect(),
        };
        let supp2 = support(&f, &st2);
        assert_eq!(supp2.indices().collect::<Vec<_>>(), vec![0, 2]);
        // The witness in tree 3 is its root subtree.
        assert_eq!(supp2.witnesses[&2], [ROOT].into_iter().collect::<Subtree>());
    }

    #[test]
    fn example4_gtg_of_root_subtree() {
        let k = 3;
        let f = fk(k);
        let st = ForestSubtree {
            tree: 0,
            nodes: [ROOT].into_iter().collect(),
        };
        let elements = gtg(&f, &st);
        // Exactly ∆1 = {1↦n11, 2↦n2} and ∆2 = {1↦n12, 2↦n2}.
        assert_eq!(elements.len(), 2);
        for e in &elements {
            assert_eq!(
                e.delta.chosen.keys().copied().collect::<Vec<_>>(),
                vec![0, 1],
                "both supporting trees must be assigned"
            );
        }
        // One has ctw 1, the other ctw k−1 (Example 5 / Figure 3).
        let mut widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
        widths.sort();
        assert_eq!(widths, vec![1, k - 1]);
        // The low-width element dominates the high-width one.
        let lo = elements.iter().find(|e| ctw(&e.graph).width == 1).unwrap();
        let hi = elements
            .iter()
            .find(|e| ctw(&e.graph).width == k - 1)
            .unwrap();
        assert!(maps_to(&lo.graph, &hi.graph));
        assert!(!maps_to(&hi.graph, &lo.graph));
    }

    #[test]
    fn example4_gtg_of_extended_subtrees() {
        let k = 3;
        let f = fk(k);
        // T1[r1, n11]: single valid assignment ∆ = {1↦n12, 3↦n3};
        // its S_∆ is (S', {x,y,z}) from Figure 1, with ctw 1.
        let st = ForestSubtree {
            tree: 0,
            nodes: [ROOT, NodeId(1)].into_iter().collect(),
        };
        let elements = gtg(&f, &st);
        assert_eq!(elements.len(), 1);
        let e = &elements[0];
        assert_eq!(
            e.delta.chosen.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(ctw(&e.graph).width, 1);

        // T1[r1, n12]: single valid assignment ∆' = {1↦n11}; ctw 1.
        let st2 = ForestSubtree {
            tree: 0,
            nodes: [ROOT, NodeId(2)].into_iter().collect(),
        };
        let elements2 = gtg(&f, &st2);
        assert_eq!(elements2.len(), 1);
        assert_eq!(ctw(&elements2[0].graph).width, 1);
    }

    #[test]
    fn full_trees_have_empty_gtg() {
        let f = fk(2);
        for (i, tree) in f.trees.iter().enumerate() {
            let all: Subtree = tree.node_ids().collect();
            let st = ForestSubtree {
                tree: i,
                nodes: all,
            };
            assert!(gtg(&f, &st).is_empty(), "full tree {i}");
        }
    }

    #[test]
    fn gtg_matches_between_equal_var_subtrees() {
        // GtG(T2[r2]) has the same shape as GtG(T1[r1]) (Example 4).
        let f = fk(3);
        let st = ForestSubtree {
            tree: 1,
            nodes: [ROOT].into_iter().collect(),
        };
        let elements = gtg(&f, &st);
        assert_eq!(elements.len(), 2);
        let mut widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
        widths.sort();
        assert_eq!(widths, vec![1, 2]);
    }

    #[test]
    fn forest_subtrees_counts() {
        let f = fk(2);
        // T1 (root + 2 children): 4 subtrees; T2: 2; T3: 2.
        assert_eq!(forest_subtrees(&f).len(), 8);
    }

    #[test]
    fn renaming_keeps_shared_vars() {
        let f = fk(2);
        let st = ForestSubtree {
            tree: 0,
            nodes: [ROOT].into_iter().collect(),
        };
        let supp = support(&f, &st);
        let cas = children_assignments(&f, &supp);
        // 1 and 2 each have one witness child in T1 (two children) and T2
        // (one child): assignments = (2+1)*(1+1) - 1 = 5 non-empty.
        assert_eq!(cas.len(), 5);
        for ca in &cas {
            let g = s_delta(&f, &st, ca);
            // x and y are never renamed; z/w never survive unrenamed.
            assert!(g.s.vars().contains(&v("x")));
            assert!(g.s.vars().contains(&v("y")));
            assert!(!g.s.vars().contains(&v("z")));
            assert!(!g.s.vars().contains(&v("w")));
        }
    }
}
