//! Property tests for the algebra crate: parser round-trips and algebraic
//! laws of the reference semantics.

use proptest::prelude::*;
use wdsparql_algebra::{eval, join, left_outer_join, parse_pattern, GraphPattern, SolutionSet};
use wdsparql_rdf::{iri, tp, var, RdfGraph, Term, Triple};

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..4usize).prop_map(|i| var(&format!("av{i}"))),
        (0..3usize).prop_map(|i| iri(&format!("ac{i}"))),
    ]
}

fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    let leaf = (arb_term(), 0..2usize, arb_term())
        .prop_map(|(s, p, o)| GraphPattern::Triple(tp(s, iri(["ap", "aq"][p]), o)));
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GraphPattern::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GraphPattern::opt(l, r)),
            (inner.clone(), inner).prop_map(|(l, r)| GraphPattern::union(l, r)),
        ]
    })
}

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..3usize, 0..2usize, 0..3usize), 0..8).prop_map(|ts| {
        RdfGraph::from_triples(ts.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("ac{s}"), ["ap", "aq"][p], &format!("ac{o}"))
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Display → parse is the identity on the AST (for any pattern, not
    /// just well-designed ones).
    #[test]
    fn display_parse_roundtrip(p in arb_pattern()) {
        let text = p.to_string();
        let parsed = parse_pattern(&text).expect("printer output parses");
        prop_assert_eq!(parsed, p);
    }

    /// UNION is commutative and associative under the set semantics.
    #[test]
    fn union_laws(a in arb_pattern(), b in arb_pattern(), c in arb_pattern(), g in arb_graph()) {
        let ab = eval(&GraphPattern::union(a.clone(), b.clone()), &g);
        let ba = eval(&GraphPattern::union(b.clone(), a.clone()), &g);
        prop_assert_eq!(&ab, &ba);
        let left = eval(
            &GraphPattern::union(GraphPattern::union(a.clone(), b.clone()), c.clone()),
            &g,
        );
        let right = eval(&GraphPattern::union(a, GraphPattern::union(b, c)), &g);
        prop_assert_eq!(left, right);
    }

    /// AND is commutative and associative.
    #[test]
    fn and_laws(a in arb_pattern(), b in arb_pattern(), c in arb_pattern(), g in arb_graph()) {
        let ab = eval(&GraphPattern::and(a.clone(), b.clone()), &g);
        let ba = eval(&GraphPattern::and(b.clone(), a.clone()), &g);
        prop_assert_eq!(&ab, &ba);
        let left = eval(
            &GraphPattern::and(GraphPattern::and(a.clone(), b.clone()), c.clone()),
            &g,
        );
        let right = eval(&GraphPattern::and(a, GraphPattern::and(b, c)), &g);
        prop_assert_eq!(left, right);
    }

    /// ⟦P1 OPT P2⟧ always contains ⟦P1 AND P2⟧, and every solution of
    /// P1 OPT P2 extends some solution of P1.
    #[test]
    fn opt_sandwich(a in arb_pattern(), b in arb_pattern(), g in arb_graph()) {
        let opt = eval(&GraphPattern::opt(a.clone(), b.clone()), &g);
        let and = eval(&GraphPattern::and(a.clone(), b), &g);
        for mu in &and {
            prop_assert!(opt.contains(mu), "AND ⊄ OPT");
        }
        let base = eval(&a, &g);
        for mu in &opt {
            prop_assert!(
                base.iter().any(|m1| m1.iter().all(|(v, i)| mu.get(v) == Some(i))),
                "OPT solution does not extend a left solution"
            );
        }
    }

    /// The join/outer-join primitives agree with evaluating the operators.
    #[test]
    fn primitives_match_operators(a in arb_pattern(), b in arb_pattern(), g in arb_graph()) {
        let ea: SolutionSet = eval(&a, &g);
        let eb: SolutionSet = eval(&b, &g);
        prop_assert_eq!(join(&ea, &eb), eval(&GraphPattern::and(a.clone(), b.clone()), &g));
        prop_assert_eq!(left_outer_join(&ea, &eb), eval(&GraphPattern::opt(a, b), &g));
    }

    /// Evaluation only binds variables of the pattern.
    #[test]
    fn solutions_bind_pattern_vars_only(p in arb_pattern(), g in arb_graph()) {
        let vars = p.vars();
        for mu in eval(&p, &g) {
            for v in mu.domain() {
                prop_assert!(vars.contains(&v), "{} not in pattern vars", v);
            }
        }
    }
}
