//! SPARQL graph patterns over AND / OPT / UNION (§2, "SPARQL Syntax").
//!
//! A graph pattern is either a triple pattern or `P1 ∗ P2` for
//! `∗ ∈ {AND, OPT, UNION}`.

use std::collections::BTreeSet;
use std::fmt;
use wdsparql_rdf::{TriplePattern, Variable};

/// A SPARQL graph pattern in the core AND/OPT/UNION fragment.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum GraphPattern {
    Triple(TriplePattern),
    And(Box<GraphPattern>, Box<GraphPattern>),
    Opt(Box<GraphPattern>, Box<GraphPattern>),
    Union(Box<GraphPattern>, Box<GraphPattern>),
}

impl GraphPattern {
    pub fn triple(t: TriplePattern) -> GraphPattern {
        GraphPattern::Triple(t)
    }

    pub fn and(l: GraphPattern, r: GraphPattern) -> GraphPattern {
        GraphPattern::And(Box::new(l), Box::new(r))
    }

    pub fn opt(l: GraphPattern, r: GraphPattern) -> GraphPattern {
        GraphPattern::Opt(Box::new(l), Box::new(r))
    }

    pub fn union(l: GraphPattern, r: GraphPattern) -> GraphPattern {
        GraphPattern::Union(Box::new(l), Box::new(r))
    }

    /// Left-deep AND of a non-empty sequence of triple patterns.
    pub fn and_all<I>(triples: I) -> GraphPattern
    where
        I: IntoIterator<Item = TriplePattern>,
    {
        let mut it = triples.into_iter();
        let first = GraphPattern::Triple(it.next().expect("and_all needs at least one triple"));
        it.fold(first, |acc, t| {
            GraphPattern::and(acc, GraphPattern::Triple(t))
        })
    }

    /// Left-deep UNION of a non-empty sequence of patterns.
    pub fn union_all<I>(branches: I) -> GraphPattern
    where
        I: IntoIterator<Item = GraphPattern>,
    {
        let mut it = branches.into_iter();
        let first = it.next().expect("union_all needs at least one branch");
        it.fold(first, GraphPattern::union)
    }

    /// All variables occurring in the pattern.
    pub fn vars(&self) -> BTreeSet<Variable> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Variable>) {
        match self {
            GraphPattern::Triple(t) => out.extend(t.var_occurrences()),
            GraphPattern::And(l, r) | GraphPattern::Opt(l, r) | GraphPattern::Union(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The triple patterns occurring in the pattern, in syntactic order.
    pub fn triples(&self) -> Vec<TriplePattern> {
        let mut out = Vec::new();
        self.collect_triples(&mut out);
        out
    }

    fn collect_triples(&self, out: &mut Vec<TriplePattern>) {
        match self {
            GraphPattern::Triple(t) => out.push(*t),
            GraphPattern::And(l, r) | GraphPattern::Opt(l, r) | GraphPattern::Union(l, r) => {
                l.collect_triples(out);
                r.collect_triples(out);
            }
        }
    }

    /// Number of AST nodes (`|P|` up to a constant factor).
    pub fn size(&self) -> usize {
        match self {
            GraphPattern::Triple(_) => 1,
            GraphPattern::And(l, r) | GraphPattern::Opt(l, r) | GraphPattern::Union(l, r) => {
                1 + l.size() + r.size()
            }
        }
    }

    /// Does the pattern avoid UNION entirely?
    pub fn is_union_free(&self) -> bool {
        match self {
            GraphPattern::Triple(_) => true,
            GraphPattern::And(l, r) | GraphPattern::Opt(l, r) => {
                l.is_union_free() && r.is_union_free()
            }
            GraphPattern::Union(_, _) => false,
        }
    }

    /// Does the pattern avoid OPT entirely (an AND/UNION pattern)?
    pub fn is_opt_free(&self) -> bool {
        match self {
            GraphPattern::Triple(_) => true,
            GraphPattern::And(l, r) | GraphPattern::Union(l, r) => {
                l.is_opt_free() && r.is_opt_free()
            }
            GraphPattern::Opt(_, _) => false,
        }
    }

    /// Splits a pattern of the form `P1 UNION ··· UNION Pm` (UNION-normal
    /// form, any association) into its UNION-free branches.
    ///
    /// Returns `None` if some branch still contains a UNION *below* an AND
    /// or OPT — such patterns are outside the well-designed fragment.
    pub fn union_branches(&self) -> Option<Vec<&GraphPattern>> {
        let mut out = Vec::new();
        if self.split_unions(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn split_unions<'a>(&'a self, out: &mut Vec<&'a GraphPattern>) -> bool {
        match self {
            GraphPattern::Union(l, r) => l.split_unions(out) && r.split_unions(out),
            other => {
                if other.is_union_free() {
                    out.push(other);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Iterates over all subpatterns (including `self`), pre-order.
    pub fn subpatterns(&self) -> Vec<&GraphPattern> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(p) = stack.pop() {
            out.push(p);
            match p {
                GraphPattern::Triple(_) => {}
                GraphPattern::And(l, r) | GraphPattern::Opt(l, r) | GraphPattern::Union(l, r) => {
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        out
    }
}

impl From<TriplePattern> for GraphPattern {
    fn from(t: TriplePattern) -> GraphPattern {
        GraphPattern::Triple(t)
    }
}

impl fmt::Display for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphPattern::Triple(t) => write!(f, "{t}"),
            GraphPattern::And(l, r) => write!(f, "({l} AND {r})"),
            GraphPattern::Opt(l, r) => write!(f, "({l} OPT {r})"),
            GraphPattern::Union(l, r) => write!(f, "({l} UNION {r})"),
        }
    }
}

impl fmt::Debug for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn t1() -> GraphPattern {
        GraphPattern::triple(tp(var("x"), iri("p"), var("y")))
    }
    fn t2() -> GraphPattern {
        GraphPattern::triple(tp(var("y"), iri("q"), var("z")))
    }
    fn t3() -> GraphPattern {
        GraphPattern::triple(tp(var("z"), iri("r"), iri("c")))
    }

    #[test]
    fn vars_collects_across_operators() {
        let p = GraphPattern::opt(GraphPattern::and(t1(), t2()), t3());
        let vars: Vec<String> = p.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["?x", "?y", "?z"]);
    }

    #[test]
    fn size_and_triples() {
        let p = GraphPattern::union(GraphPattern::and(t1(), t2()), t3());
        assert_eq!(p.size(), 5);
        assert_eq!(p.triples().len(), 3);
    }

    #[test]
    fn union_freeness() {
        assert!(GraphPattern::and(t1(), t2()).is_union_free());
        assert!(!GraphPattern::union(t1(), t2()).is_union_free());
        assert!(GraphPattern::union(t1(), t2()).is_opt_free());
        assert!(!GraphPattern::opt(t1(), t2()).is_opt_free());
    }

    #[test]
    fn union_branches_flattens_any_association() {
        let left_deep = GraphPattern::union(GraphPattern::union(t1(), t2()), t3());
        let right_deep = GraphPattern::union(t1(), GraphPattern::union(t2(), t3()));
        assert_eq!(left_deep.union_branches().unwrap().len(), 3);
        assert_eq!(right_deep.union_branches().unwrap().len(), 3);
    }

    #[test]
    fn union_below_and_is_rejected() {
        let bad = GraphPattern::and(GraphPattern::union(t1(), t2()), t3());
        assert!(bad.union_branches().is_none());
    }

    #[test]
    fn union_free_pattern_is_its_own_branch() {
        let p = GraphPattern::opt(t1(), t2());
        let branches = p.union_branches().unwrap();
        assert_eq!(branches.len(), 1);
        assert_eq!(*branches[0], p);
    }

    #[test]
    fn display_is_fully_parenthesised() {
        let p = GraphPattern::opt(GraphPattern::and(t1(), t2()), t3());
        assert_eq!(
            p.to_string(),
            "(((?x, p, ?y) AND (?y, q, ?z)) OPT (?z, r, c))"
        );
    }

    #[test]
    fn subpatterns_preorder() {
        let p = GraphPattern::and(t1(), t2());
        let subs = p.subpatterns();
        assert_eq!(subs.len(), 3);
        assert_eq!(*subs[0], p);
    }

    #[test]
    fn and_all_and_union_all() {
        let p = GraphPattern::and_all([
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
            tp(var("z"), iri("r"), iri("c")),
        ]);
        assert_eq!(p.triples().len(), 3);
        assert!(p.is_union_free() && p.is_opt_free());
        let u = GraphPattern::union_all([t1(), t2(), t3()]);
        assert_eq!(u.union_branches().unwrap().len(), 3);
    }
}
