//! A parser for the paper's textual pattern syntax.
//!
//! Grammar (whitespace-insensitive, keywords case-insensitive):
//!
//! ```text
//! pattern := operand (('AND' | 'OPT' | 'OPTIONAL' | 'UNION') operand)*
//! operand := '(' term ',' term ',' term ')'     # triple pattern
//!          | '(' pattern ')'                    # grouping
//! term    := '?'name | '<' iri '>' | bareword
//! ```
//!
//! Operators at the same nesting level chain *left-associatively* with a
//! single precedence level, matching the paper's fully parenthesised style:
//! `A OPT B AND C` reads as `(A OPT B) AND C`. `OPTIONAL` is an alias for
//! `OPT`. `AND`, `OPT`, `OPTIONAL` and `UNION` are reserved words.

use crate::pattern::GraphPattern;
use std::fmt;
use wdsparql_rdf::{tp, Term};

/// A parse error with byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    Comma,
    And,
    Opt,
    Union,
    Var(String),
    Iri(String),
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let is_word_byte =
        |b: u8| !b.is_ascii_whitespace() && !matches!(b, b'(' | b')' | b',' | b'<' | b'>' | b'?');
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b if b.is_ascii_whitespace() => i += 1,
            b'(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            b',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            b'<' => {
                let start = i + 1;
                let end = input[start..]
                    .find('>')
                    .map(|j| start + j)
                    .ok_or(ParseError {
                        offset: i,
                        message: "unterminated '<'".into(),
                    })?;
                if end == start {
                    return Err(ParseError {
                        offset: i,
                        message: "empty IRI '<>'".into(),
                    });
                }
                out.push((i, Tok::Iri(input[start..end].to_string())));
                i = end + 1;
            }
            b'?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_word_byte(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(ParseError {
                        offset: i,
                        message: "expected a variable name after '?'".into(),
                    });
                }
                out.push((i, Tok::Var(input[start..j].to_string())));
                i = j;
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_word_byte(bytes[j]) {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "AND" => Tok::And,
                    "OPT" | "OPTIONAL" => Tok::Opt,
                    "UNION" => Tok::Union,
                    _ => Tok::Iri(word.to_string()),
                };
                out.push((start, tok));
                i = j;
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.input_len, |&(o, _)| o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Var(name)) => Ok(wdsparql_rdf::var(&name)),
            Some(Tok::Iri(name)) => Ok(wdsparql_rdf::iri(&name)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a term (variable or IRI)"))
            }
        }
    }

    fn parse_operand(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        // Lookahead: a triple pattern is `term ',' ...`.
        let save = self.pos;
        if let Ok(s) = self.parse_term() {
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                let p = self.parse_term()?;
                self.expect(&Tok::Comma, "','")?;
                let o = self.parse_term()?;
                self.expect(&Tok::RParen, "')'")?;
                return Ok(GraphPattern::Triple(tp(s, p, o)));
            }
        }
        self.pos = save;
        let inner = self.parse_pattern()?;
        self.expect(&Tok::RParen, "')'")?;
        Ok(inner)
    }

    fn parse_pattern(&mut self) -> Result<GraphPattern, ParseError> {
        let mut acc = self.parse_operand()?;
        loop {
            let op = match self.peek() {
                Some(Tok::And) => GraphPattern::and as fn(_, _) -> _,
                Some(Tok::Opt) => GraphPattern::opt,
                Some(Tok::Union) => GraphPattern::union,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_operand()?;
            acc = op(acc, rhs);
        }
        Ok(acc)
    }
}

/// Parses a graph pattern from text.
pub fn parse_pattern(input: &str) -> Result<GraphPattern, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
    };
    let pat = p.parse_pattern()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after pattern"));
    }
    Ok(pat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::well_designed::is_well_designed;
    use wdsparql_rdf::term::{iri, var};

    #[test]
    fn parses_single_triple() {
        let p = parse_pattern("(?x, p, ?y)").unwrap();
        assert_eq!(p, GraphPattern::Triple(tp(var("x"), iri("p"), var("y"))));
    }

    #[test]
    fn parses_bracketed_iris() {
        let p = parse_pattern("(?x, <http://ex/p>, <c d>)").unwrap();
        assert_eq!(
            p,
            GraphPattern::Triple(tp(var("x"), iri("http://ex/p"), iri("c d")))
        );
    }

    #[test]
    fn operators_and_grouping() {
        let p = parse_pattern("((?x, p, ?y) OPT (?z, q, ?x)) AND (?y, r, ?w)").unwrap();
        match &p {
            GraphPattern::And(l, _) => assert!(matches!(**l, GraphPattern::Opt(_, _))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn left_associative_chaining() {
        let p = parse_pattern("(?a, p, ?b) AND (?b, p, ?c) AND (?c, p, ?d)").unwrap();
        assert_eq!(
            p.to_string(),
            "(((?a, p, ?b) AND (?b, p, ?c)) AND (?c, p, ?d))"
        );
    }

    #[test]
    fn optional_is_an_alias_for_opt() {
        let a = parse_pattern("(?x, p, ?y) OPTIONAL (?y, q, ?z)").unwrap();
        let b = parse_pattern("(?x, p, ?y) OPT (?y, q, ?z)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse_pattern("(?x, p, ?y) union (?x, q, ?y)").unwrap();
        assert!(matches!(a, GraphPattern::Union(_, _)));
    }

    #[test]
    fn example1_parses_and_classifies() {
        let p1 =
            parse_pattern("((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2))")
                .unwrap();
        assert!(is_well_designed(&p1));
        let p2 = parse_pattern("((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2))")
            .unwrap();
        assert!(!is_well_designed(&p2));
    }

    #[test]
    fn display_roundtrips() {
        for text in [
            "(?x, p, ?y)",
            "((?x, p, ?y) AND (?y, q, ?z))",
            "((?x, p, ?y) OPT ((?y, q, ?z) UNION (?z, r, c)))",
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
        ] {
            let p = parse_pattern(text).unwrap();
            let p2 = parse_pattern(&p.to_string()).unwrap();
            assert_eq!(p, p2, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_pattern("(?x, p ?y)").unwrap_err();
        assert!(e.message.contains("','"), "{e}");
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("(?x, p, ?y) AND").is_err());
        assert!(parse_pattern("(?x, p, ?y) (?y, q, ?z)").is_err());
        assert!(parse_pattern("(?x, p, ?y,)").is_err());
    }

    #[test]
    fn reserved_words_cannot_be_terms() {
        // `AND` as a subject is parsed as an operator and must fail.
        assert!(parse_pattern("(AND, p, b)").is_err());
    }

    #[test]
    fn unterminated_iri_is_an_error() {
        let e = parse_pattern("(?x, <p, ?y)").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn deep_nesting_parses() {
        let mut text = String::from("(?v0, p, ?v1)");
        for i in 1..30 {
            text = format!("({text} OPT (?v{i}, p, ?v{}))", i + 1);
        }
        let p = parse_pattern(&text).unwrap();
        assert_eq!(p.triples().len(), 30);
    }
}
