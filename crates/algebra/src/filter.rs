//! FILTER constraints — the §5 extension.
//!
//! The paper's conclusions discuss the FILTER operator: well-designed
//! patterns with FILTER can express conjunctive queries with
//! *inequalities*, which makes the evaluation problem polynomially
//! equivalent to graph-embedding problems `EMB(H)` and breaks the
//! PTIME/W\[1\]-hard dichotomy (there are classes in FPT that are NP-hard).
//! This module implements the constraint language and its semantics so the
//! phenomenon is executable (see `wdsparql-hardness::emb` for the
//! embedding encoding); a *dichotomy* for FILTER classes is an open
//! problem the paper explicitly leaves open, and none is claimed here.
//!
//! Semantics: SPARQL's error-as-false reading — a comparison involving an
//! unbound variable does not hold (`Bound` exists to test bindings
//! explicitly).

use crate::pattern::GraphPattern;
use crate::semantics::{eval, SolutionSet};
use std::fmt;
use wdsparql_rdf::{Iri, Mapping, RdfGraph, Variable};

/// A FILTER expression.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum FilterExpr {
    /// `?x = ?y` (both bound and equal).
    EqVar(Variable, Variable),
    /// `?x != ?y` (both bound and different).
    NeqVar(Variable, Variable),
    /// `?x = c`.
    EqConst(Variable, Iri),
    /// `?x != c`.
    NeqConst(Variable, Iri),
    /// `bound(?x)`.
    Bound(Variable),
    And(Box<FilterExpr>, Box<FilterExpr>),
    Or(Box<FilterExpr>, Box<FilterExpr>),
    Not(Box<FilterExpr>),
    /// The always-true filter (neutral element for [`FilterExpr::and`]).
    True,
}

impl FilterExpr {
    pub fn and(l: FilterExpr, r: FilterExpr) -> FilterExpr {
        match (l, r) {
            (FilterExpr::True, x) | (x, FilterExpr::True) => x,
            (l, r) => FilterExpr::And(Box::new(l), Box::new(r)),
        }
    }

    pub fn or(l: FilterExpr, r: FilterExpr) -> FilterExpr {
        FilterExpr::Or(Box::new(l), Box::new(r))
    }

    #[allow(clippy::should_implement_trait)] // DSL constructor, deliberately named like the operator
    pub fn not(e: FilterExpr) -> FilterExpr {
        FilterExpr::Not(Box::new(e))
    }

    /// The conjunction `?xi != ?xj` over all pairs — the inequality
    /// pattern that turns homomorphisms into *embeddings* (§5).
    pub fn all_different<I>(vars: I) -> FilterExpr
    where
        I: IntoIterator<Item = Variable>,
    {
        let vars: Vec<Variable> = vars.into_iter().collect();
        let mut acc = FilterExpr::True;
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                acc = FilterExpr::and(acc, FilterExpr::NeqVar(vars[i], vars[j]));
            }
        }
        acc
    }

    /// Evaluates the expression under `µ` (error-as-false).
    pub fn holds(&self, mu: &Mapping) -> bool {
        match self {
            FilterExpr::EqVar(a, b) => match (mu.get(*a), mu.get(*b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            FilterExpr::NeqVar(a, b) => match (mu.get(*a), mu.get(*b)) {
                (Some(x), Some(y)) => x != y,
                _ => false,
            },
            FilterExpr::EqConst(a, c) => mu.get(*a) == Some(*c),
            FilterExpr::NeqConst(a, c) => matches!(mu.get(*a), Some(x) if x != *c),
            FilterExpr::Bound(a) => mu.contains(*a),
            FilterExpr::And(l, r) => l.holds(mu) && r.holds(mu),
            FilterExpr::Or(l, r) => l.holds(mu) || r.holds(mu),
            FilterExpr::Not(e) => !e.holds(mu),
            FilterExpr::True => true,
        }
    }

    /// Variables mentioned by the expression.
    pub fn vars(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Variable>) {
        match self {
            FilterExpr::EqVar(a, b) | FilterExpr::NeqVar(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            FilterExpr::EqConst(a, _) | FilterExpr::NeqConst(a, _) | FilterExpr::Bound(a) => {
                out.push(*a)
            }
            FilterExpr::And(l, r) | FilterExpr::Or(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            FilterExpr::Not(e) => e.collect_vars(out),
            FilterExpr::True => {}
        }
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::EqVar(a, b) => write!(f, "{a} = {b}"),
            FilterExpr::NeqVar(a, b) => write!(f, "{a} != {b}"),
            FilterExpr::EqConst(a, c) => write!(f, "{a} = {c}"),
            FilterExpr::NeqConst(a, c) => write!(f, "{a} != {c}"),
            FilterExpr::Bound(a) => write!(f, "bound({a})"),
            FilterExpr::And(l, r) => write!(f, "({l} && {r})"),
            FilterExpr::Or(l, r) => write!(f, "({l} || {r})"),
            FilterExpr::Not(e) => write!(f, "!({e})"),
            FilterExpr::True => write!(f, "true"),
        }
    }
}

impl fmt::Debug for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Keeps the solutions satisfying the filter.
pub fn filter_solutions(sols: SolutionSet, expr: &FilterExpr) -> SolutionSet {
    sols.into_iter().filter(|mu| expr.holds(mu)).collect()
}

/// `⟦P FILTER R⟧_G` for a top-level filter.
pub fn eval_filter(p: &GraphPattern, expr: &FilterExpr, g: &RdfGraph) -> SolutionSet {
    filter_solutions(eval(p, g), expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn g() -> RdfGraph {
        RdfGraph::from_strs([("a", "p", "b"), ("a", "p", "a"), ("b", "p", "c")])
    }

    #[test]
    fn inequality_filters_loop_matches() {
        let p = GraphPattern::triple(tp(var("x"), iri("p"), var("y")));
        let all = eval(&p, &g());
        assert_eq!(all.len(), 3);
        let neq = eval_filter(&p, &FilterExpr::NeqVar(v("x"), v("y")), &g());
        assert_eq!(neq.len(), 2); // drops (a, a)
    }

    #[test]
    fn unbound_comparisons_are_false() {
        // OPT leaves z unbound on some solutions: `z != x` must drop them.
        let p = GraphPattern::opt(
            GraphPattern::triple(tp(var("x"), iri("p"), var("y"))),
            GraphPattern::triple(tp(var("y"), iri("p"), var("z"))),
        );
        let sols = eval_filter(&p, &FilterExpr::NeqVar(v("z"), v("x")), &g());
        for mu in &sols {
            assert!(mu.contains(v("z")));
        }
        // bound() can recover the optional rows explicitly.
        let unbound = eval_filter(&p, &FilterExpr::not(FilterExpr::Bound(v("z"))), &g());
        assert!(unbound.iter().all(|mu| !mu.contains(v("z"))));
    }

    #[test]
    fn const_comparisons() {
        let p = GraphPattern::triple(tp(var("x"), iri("p"), var("y")));
        let only_a = eval_filter(&p, &FilterExpr::EqConst(v("x"), Iri::new("a")), &g());
        assert_eq!(only_a.len(), 2);
        let not_a = eval_filter(&p, &FilterExpr::NeqConst(v("x"), Iri::new("a")), &g());
        assert_eq!(not_a.len(), 1);
    }

    #[test]
    fn boolean_connectives() {
        let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let e = FilterExpr::and(
            FilterExpr::Bound(v("x")),
            FilterExpr::or(
                FilterExpr::EqConst(v("y"), Iri::new("zzz")),
                FilterExpr::NeqVar(v("x"), v("y")),
            ),
        );
        assert!(e.holds(&mu));
        assert!(!FilterExpr::not(e.clone()).holds(&mu));
        assert!(FilterExpr::True.holds(&Mapping::new()));
    }

    #[test]
    fn all_different_shape() {
        let e = FilterExpr::all_different([v("a"), v("b"), v("c")]);
        assert_eq!(e.vars().len(), 3);
        assert!(e.holds(&Mapping::from_strs([("a", "1"), ("b", "2"), ("c", "3")])));
        assert!(!e.holds(&Mapping::from_strs([("a", "1"), ("b", "1"), ("c", "3")])));
        // Unbound variables fail the pairwise inequalities.
        assert!(!e.holds(&Mapping::from_strs([("a", "1"), ("b", "2")])));
        // Degenerate cases.
        assert_eq!(FilterExpr::all_different([v("a")]), FilterExpr::True);
    }

    #[test]
    fn display_renders() {
        let e = FilterExpr::and(
            FilterExpr::NeqVar(v("a"), v("b")),
            FilterExpr::Bound(v("c")),
        );
        assert_eq!(e.to_string(), "(?a != ?b && bound(?c))");
    }
}
