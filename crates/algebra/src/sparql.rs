//! A SPARQL-flavoured surface syntax, compiled to [`GraphPattern`].
//!
//! ```text
//! query     := ('SELECT' ('*' | var+) 'WHERE')? group
//! group     := '{' body '}'
//! body      := block ('UNION' block)*
//! block     := element ( '.'? element )*
//! element   := triple | 'OPTIONAL' group | group | 'FILTER' fexpr
//! triple    := term term term
//! term      := '?'name | '<' iri '>' | bareword
//! fexpr     := fand ('||' fand)*
//! fand      := funary ('&&' funary)*
//! funary    := '!' funary | '(' fexpr ')' | 'BOUND' '(' var ')'
//!            | term ('=' | '!=') term
//! ```
//!
//! Elements of a block combine left-to-right: a triple or group joins with
//! AND, an `OPTIONAL` group applies OPT to everything accumulated so far —
//! the standard SPARQL reading, under which
//! `{ A . OPTIONAL { B } C }` means `((A OPT B) AND C)`.
//!
//! `FILTER` clauses are accepted **only in the top-level group** (where
//! their SPARQL semantics is the unambiguous "filter the final solution
//! set"; filters nested under `OPTIONAL` have scope-dependent semantics
//! the paper does not treat, so they are rejected rather than silently
//! reinterpreted). Use [`parse_sparql_filtered`] to obtain them;
//! [`parse_sparql`]/[`parse_sparql_select`] reject queries with filters
//! so that no caller can drop one by accident.

use crate::filter::FilterExpr;
use crate::parser::ParseError;
use crate::pattern::GraphPattern;
use wdsparql_rdf::{tp, Term, Variable};

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Eq,
    Neq,
    AndAnd,
    OrOr,
    Bang,
    Select,
    Star,
    Where,
    Optional,
    Union,
    Filter,
    BoundKw,
    Var(String),
    Iri(String),
}

fn err(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        offset,
        message: message.into(),
    }
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let is_word = |b: u8| {
        !b.is_ascii_whitespace()
            && !matches!(
                b,
                b'{' | b'}'
                    | b'.'
                    | b'<'
                    | b'>'
                    | b'?'
                    | b'*'
                    | b'('
                    | b')'
                    | b'='
                    | b'!'
                    | b'&'
                    | b'|'
            )
    };
    while i < bytes.len() {
        match bytes[i] {
            b if b.is_ascii_whitespace() => i += 1,
            b'{' => {
                out.push((i, Tok::LBrace));
                i += 1;
            }
            b'}' => {
                out.push((i, Tok::RBrace));
                i += 1;
            }
            b'(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            b'=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Neq));
                    i += 2;
                } else {
                    out.push((i, Tok::Bang));
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(err(i, "expected '&&'"));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(err(i, "expected '||'"));
                }
            }
            b'.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            b'*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            b'<' => {
                let start = i + 1;
                let end = input[start..]
                    .find('>')
                    .map(|j| start + j)
                    .ok_or_else(|| err(i, "unterminated '<'"))?;
                if end == start {
                    return Err(err(i, "empty IRI '<>'"));
                }
                out.push((i, Tok::Iri(input[start..end].to_string())));
                i = end + 1;
            }
            b'?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_word(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(err(i, "expected a variable name after '?'"));
                }
                out.push((i, Tok::Var(input[start..j].to_string())));
                i = j;
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_word(bytes[j]) {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::Select,
                    "WHERE" => Tok::Where,
                    "OPTIONAL" | "OPT" => Tok::Optional,
                    "UNION" => Tok::Union,
                    "FILTER" => Tok::Filter,
                    "BOUND" => Tok::BoundKw,
                    _ => Tok::Iri(word.to_string()),
                };
                out.push((start, tok));
                i = j;
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
    /// Group-nesting depth (1 = the top-level group).
    depth: usize,
    /// FILTER clauses collected from the top-level group.
    filters: Vec<FilterExpr>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.len, |&(o, _)| o)
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(self.offset(), format!("expected {what}")))
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let t = match self.peek() {
            Some(Tok::Var(name)) => wdsparql_rdf::var(name),
            Some(Tok::Iri(name)) => wdsparql_rdf::iri(name),
            _ => return Err(err(self.offset(), "expected a term (variable or IRI)")),
        };
        self.pos += 1;
        Ok(t)
    }

    fn parse_group(&mut self) -> Result<GraphPattern, ParseError> {
        let at = self.offset();
        self.eat(&Tok::LBrace, "'{'")?;
        self.depth += 1;
        let mut branches = vec![self.parse_block()?];
        while self.peek() == Some(&Tok::Union) {
            self.pos += 1;
            branches.push(self.parse_block()?);
        }
        self.depth -= 1;
        self.eat(&Tok::RBrace, "'}'")?;
        // A filter inside one branch of a bare top-level UNION would be
        // silently hoisted over the other branches; SPARQL scopes it to
        // its branch, so reject the ambiguous form outright.
        if self.depth == 0 && branches.len() > 1 && !self.filters.is_empty() {
            return Err(err(
                at,
                "FILTER cannot be combined with a top-level UNION \
                 (wrap the UNION in an inner group: { { A } UNION { B } } FILTER ...)",
            ));
        }
        Ok(GraphPattern::union_all(branches))
    }

    fn parse_block(&mut self) -> Result<GraphPattern, ParseError> {
        let mut acc: Option<GraphPattern> = None;
        loop {
            match self.peek() {
                Some(Tok::Optional) => {
                    self.pos += 1;
                    let left = acc
                        .take()
                        .ok_or_else(|| err(self.offset(), "OPTIONAL needs a preceding pattern"))?;
                    let right = self.parse_group()?;
                    acc = Some(GraphPattern::opt(left, right));
                }
                Some(Tok::LBrace) => {
                    let sub = self.parse_group()?;
                    acc = Some(match acc.take() {
                        None => sub,
                        Some(left) => GraphPattern::and(left, sub),
                    });
                }
                Some(Tok::Var(_)) | Some(Tok::Iri(_)) => {
                    let s = self.parse_term()?;
                    let p = self.parse_term()?;
                    let o = self.parse_term()?;
                    let triple = GraphPattern::Triple(tp(s, p, o));
                    acc = Some(match acc.take() {
                        None => triple,
                        Some(left) => GraphPattern::and(left, triple),
                    });
                }
                Some(Tok::Filter) => {
                    let at = self.offset();
                    self.pos += 1;
                    if self.depth != 1 {
                        return Err(err(
                            at,
                            "FILTER is only supported in the top-level group \
                             (nested filter scope is outside the paper's fragment)",
                        ));
                    }
                    let expr = self.parse_filter_or()?;
                    self.filters.push(expr);
                }
                Some(Tok::Dot) => {
                    self.pos += 1; // separators are optional and skippable
                }
                _ => break,
            }
        }
        acc.ok_or_else(|| err(self.offset(), "empty group"))
    }

    // ---- FILTER expressions -------------------------------------------

    fn parse_filter_or(&mut self) -> Result<FilterExpr, ParseError> {
        let mut acc = self.parse_filter_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            acc = FilterExpr::or(acc, self.parse_filter_and()?);
        }
        Ok(acc)
    }

    fn parse_filter_and(&mut self) -> Result<FilterExpr, ParseError> {
        let mut acc = self.parse_filter_unary()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            acc = FilterExpr::and(acc, self.parse_filter_unary()?);
        }
        Ok(acc)
    }

    fn parse_filter_unary(&mut self) -> Result<FilterExpr, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(FilterExpr::not(self.parse_filter_unary()?))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.parse_filter_or()?;
                self.eat(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::BoundKw) => {
                self.pos += 1;
                self.eat(&Tok::LParen, "'(' after BOUND")?;
                let at = self.offset();
                let t = self.parse_term()?;
                let v = t
                    .as_var()
                    .ok_or_else(|| err(at, "BOUND expects a variable"))?;
                self.eat(&Tok::RParen, "')'")?;
                Ok(FilterExpr::Bound(v))
            }
            _ => self.parse_filter_comparison(),
        }
    }

    fn parse_filter_comparison(&mut self) -> Result<FilterExpr, ParseError> {
        let at = self.offset();
        let lhs = self.parse_term()?;
        let negated = match self.peek() {
            Some(Tok::Eq) => false,
            Some(Tok::Neq) => true,
            _ => return Err(err(self.offset(), "expected '=' or '!=' in FILTER")),
        };
        self.pos += 1;
        let rhs = self.parse_term()?;
        // `!=` maps to the dedicated Neq atoms, NOT to `!(=)`: under
        // SPARQL's error-as-false semantics `?x != ?y` requires both
        // variables bound, whereas `!(?x = ?y)` would hold on unbound
        // variables.
        match (lhs, rhs, negated) {
            (Term::Var(a), Term::Var(b), false) => Ok(FilterExpr::EqVar(a, b)),
            (Term::Var(a), Term::Var(b), true) => Ok(FilterExpr::NeqVar(a, b)),
            (Term::Var(a), Term::Iri(c), false) | (Term::Iri(c), Term::Var(a), false) => {
                Ok(FilterExpr::EqConst(a, c))
            }
            (Term::Var(a), Term::Iri(c), true) | (Term::Iri(c), Term::Var(a), true) => {
                Ok(FilterExpr::NeqConst(a, c))
            }
            (Term::Iri(a), Term::Iri(b), negated) => {
                // Constant comparison folds statically; the always-false
                // conjunct is flagged as the likely mistake it is.
                if (a == b) != negated {
                    Ok(FilterExpr::True)
                } else {
                    Err(err(at, "FILTER constant comparison is always false"))
                }
            }
        }
    }
}

/// Parses the SPARQL-flavoured syntax (with or without the
/// `SELECT * WHERE` prefix) into a [`GraphPattern`].
///
/// A projection list (`SELECT ?x ?y WHERE`) is accepted and ignored here;
/// use [`parse_sparql_select`] to retrieve it. Queries containing
/// `FILTER` are rejected (use [`parse_sparql_filtered`]) so the filter
/// cannot be dropped by accident.
pub fn parse_sparql(input: &str) -> Result<GraphPattern, ParseError> {
    parse_sparql_select(input).map(|(pat, _)| pat)
}

/// Parses the SPARQL-flavoured syntax, returning the pattern together with
/// the projection: `None` for `SELECT *` (or no `SELECT` prefix at all),
/// `Some(vars)` for an explicit `SELECT ?x ?y ... WHERE` list.
///
/// The explicit list must be non-empty and duplicate-free; variables not
/// occurring in the pattern are a semantic concern left to the caller
/// (`wdsparql-project` rejects them when building a projected query).
/// Queries containing `FILTER` are rejected here — use
/// [`parse_sparql_filtered`].
pub fn parse_sparql_select(
    input: &str,
) -> Result<(GraphPattern, Option<Vec<Variable>>), ParseError> {
    let (pat, proj, filter) = parse_sparql_filtered(input)?;
    if filter != FilterExpr::True {
        return Err(err(
            0,
            "query contains FILTER; parse it with parse_sparql_filtered",
        ));
    }
    Ok((pat, proj))
}

/// Parses the full surface syntax: pattern, optional projection list, and
/// the conjunction of all top-level `FILTER` clauses
/// ([`FilterExpr::True`] when there are none). Evaluate with
/// `eval_filter` / `filter_solutions` (error-as-false semantics).
pub fn parse_sparql_filtered(
    input: &str,
) -> Result<(GraphPattern, Option<Vec<Variable>>, FilterExpr), ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        len: input.len(),
        depth: 0,
        filters: Vec::new(),
    };
    let mut projection = None;
    if p.peek() == Some(&Tok::Select) {
        p.pos += 1;
        match p.peek() {
            Some(Tok::Star) => {
                p.pos += 1;
            }
            Some(Tok::Var(_)) => {
                let mut vars: Vec<Variable> = Vec::new();
                while let Some(Tok::Var(name)) = p.peek() {
                    let v = Variable::new(name);
                    if vars.contains(&v) {
                        return Err(err(
                            p.offset(),
                            format!("duplicate variable ?{name} in SELECT list"),
                        ));
                    }
                    vars.push(v);
                    p.pos += 1;
                }
                projection = Some(vars);
            }
            _ => {
                return Err(err(
                    p.offset(),
                    "expected '*' or a variable list after SELECT",
                ))
            }
        }
        p.eat(&Tok::Where, "'WHERE'")?;
    }
    let pat = p.parse_group()?;
    if p.peek().is_some() {
        return Err(err(p.offset(), "trailing input after query"));
    }
    let filter = p
        .filters
        .into_iter()
        .fold(FilterExpr::True, FilterExpr::and);
    Ok((pat, projection, filter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use crate::semantics::eval;
    use crate::well_designed::is_well_designed;
    use wdsparql_rdf::RdfGraph;

    #[test]
    fn single_triple() {
        let p = parse_sparql("{ ?x knows ?y }").unwrap();
        assert_eq!(p, parse_pattern("(?x, knows, ?y)").unwrap());
    }

    #[test]
    fn select_star_where_prefix() {
        let a = parse_sparql("SELECT * WHERE { ?x knows ?y . ?y knows ?z }").unwrap();
        let b = parse_sparql("{ ?x knows ?y . ?y knows ?z }").unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a,
            parse_pattern("(?x, knows, ?y) AND (?y, knows, ?z)").unwrap()
        );
    }

    #[test]
    fn optional_applies_to_accumulated_left() {
        let p = parse_sparql("{ ?x knows ?y OPTIONAL { ?y email ?e } ?x city ?c }").unwrap();
        let expected =
            parse_pattern("((?x, knows, ?y) OPT (?y, email, ?e)) AND (?x, city, ?c)").unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn nested_optionals() {
        let p = parse_sparql("{ ?x p ?y OPTIONAL { ?y q ?z OPTIONAL { ?z r ?w } } }").unwrap();
        let expected = parse_pattern("(?x, p, ?y) OPT ((?y, q, ?z) OPT (?z, r, ?w))").unwrap();
        assert_eq!(p, expected);
        assert!(is_well_designed(&p));
    }

    #[test]
    fn union_of_blocks() {
        let p = parse_sparql("{ { ?x p ?y } UNION { ?x q ?y } }").unwrap();
        assert_eq!(p.union_branches().unwrap().len(), 2);
    }

    #[test]
    fn dots_are_optional_separators() {
        let a = parse_sparql("{ ?x p ?y . ?y q ?z . }").unwrap();
        let b = parse_sparql("{ ?x p ?y ?y q ?z }").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bracketed_iris_and_keyword_case() {
        let p =
            parse_sparql("select * where { ?x <http://ex/p> ?y optional { ?y <q> ?z } }").unwrap();
        let expected = parse_pattern("(?x, <http://ex/p>, ?y) OPT (?y, q, ?z)").unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn semantics_match_paper_syntax() {
        let g = RdfGraph::from_strs([
            ("alice", "knows", "bob"),
            ("bob", "email", "b@x.org"),
            ("alice", "knows", "carol"),
        ]);
        let sparql = parse_sparql("{ ?x knows ?y OPTIONAL { ?y email ?e } }").unwrap();
        let paper = parse_pattern("(?x, knows, ?y) OPT (?y, email, ?e)").unwrap();
        assert_eq!(eval(&sparql, &g), eval(&paper, &g));
    }

    #[test]
    fn errors() {
        assert!(parse_sparql("{ }").is_err());
        assert!(parse_sparql("{ ?x p }").is_err());
        assert!(parse_sparql("{ ?x p ?y").is_err());
        assert!(parse_sparql("{ OPTIONAL { ?x p ?y } }").is_err());
        assert!(parse_sparql("{ ?x p ?y } trailing").is_err());
    }

    #[test]
    fn select_list_is_parsed() {
        let (pat, proj) =
            parse_sparql_select("SELECT ?x ?e WHERE { ?x knows ?y OPTIONAL { ?y email ?e } }")
                .unwrap();
        assert_eq!(
            pat,
            parse_pattern("(?x, knows, ?y) OPT (?y, email, ?e)").unwrap()
        );
        assert_eq!(proj, Some(vec![Variable::new("x"), Variable::new("e")]));
    }

    #[test]
    fn select_star_and_bare_group_report_no_projection() {
        let (_, star) = parse_sparql_select("SELECT * WHERE { ?x p ?y }").unwrap();
        assert_eq!(star, None);
        let (_, bare) = parse_sparql_select("{ ?x p ?y }").unwrap();
        assert_eq!(bare, None);
    }

    #[test]
    fn filter_clauses_are_parsed_and_applied() {
        use crate::filter::{eval_filter, FilterExpr};
        let (pat, proj, f) = parse_sparql_filtered(
            "{ ?x knows ?y OPTIONAL { ?y email ?e } FILTER(?x != ?y && BOUND(?e)) }",
        )
        .unwrap();
        assert_eq!(proj, None);
        assert_ne!(f, FilterExpr::True);
        let g = RdfGraph::from_strs([
            ("alice", "knows", "bob"),
            ("alice", "knows", "alice"),
            ("bob", "email", "b@x.org"),
            ("alice", "knows", "carol"),
        ]);
        let sols = eval_filter(&pat, &f, &g);
        // (alice,alice) fails ?x != ?y; (alice,carol) fails BOUND(?e).
        assert_eq!(sols.len(), 1);
        let mu = sols.iter().next().unwrap();
        assert_eq!(
            mu.get(wdsparql_rdf::Variable::new("y")),
            Some(wdsparql_rdf::Iri::new("bob"))
        );
    }

    #[test]
    fn filter_expression_grammar() {
        // Operators, precedence, parentheses, negation, constants.
        let (_, _, f) =
            parse_sparql_filtered("{ ?x p ?y FILTER(!(?x = c1) || ?y = c2 && ?x != ?y) }").unwrap();
        let yes = wdsparql_rdf::Mapping::from_strs([("x", "c9"), ("y", "c2")]);
        assert!(f.holds(&yes));
        let no = wdsparql_rdf::Mapping::from_strs([("x", "c1"), ("y", "c3")]);
        assert!(!f.holds(&no));
        // Multiple FILTER clauses conjoin.
        let (_, _, f2) =
            parse_sparql_filtered("{ ?x p ?y FILTER(?x != c1) FILTER(?y != c2) }").unwrap();
        assert!(f2.holds(&wdsparql_rdf::Mapping::from_strs([("x", "a"), ("y", "b")])));
        assert!(!f2.holds(&wdsparql_rdf::Mapping::from_strs([("x", "a"), ("y", "c2")])));
        // Constant folding: equal constants are True, distinct are errors.
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(c = c) }").is_ok());
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(c = d) }").is_err());
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(c != c) }").is_err());
    }

    #[test]
    fn neq_is_not_negated_eq() {
        // Error-as-false: ?e != c fails (not holds) when ?e is unbound,
        // while !(?e = c) holds.
        let (_, _, neq) = parse_sparql_filtered("{ ?x p ?y FILTER(?e != c) }").unwrap();
        let (_, _, noteq) = parse_sparql_filtered("{ ?x p ?y FILTER(!(?e = c)) }").unwrap();
        let unbound = wdsparql_rdf::Mapping::from_strs([("x", "a")]);
        assert!(!neq.holds(&unbound));
        assert!(noteq.holds(&unbound));
    }

    #[test]
    fn filter_scope_restrictions() {
        // Nested FILTER is rejected, not reinterpreted.
        assert!(parse_sparql_filtered("{ ?x p ?y OPTIONAL { ?y q ?z FILTER(?z != c) } }").is_err());
        // Top-level UNION with a branch filter is ambiguous: rejected.
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(?x != ?y) UNION ?x q ?y }").is_err());
        // The unambiguous grouped form works.
        assert!(
            parse_sparql_filtered("{ { { ?x p ?y } UNION { ?x q ?y } } FILTER(?x != ?y) }").is_ok()
        );
        // The filter-less entry points refuse to drop a filter.
        assert!(parse_sparql("{ ?x p ?y FILTER(?x != ?y) }").is_err());
        assert!(parse_sparql_select("SELECT ?x WHERE { ?x p ?y FILTER(?x != ?y) }").is_err());
        // Lexer errors for stray operators.
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(?x = ?y &) }").is_err());
        assert!(parse_sparql_filtered("{ ?x p ?y FILTER(BOUND(c)) }").is_err());
    }

    #[test]
    fn select_list_errors() {
        // Empty list: neither '*' nor a variable follows SELECT.
        assert!(parse_sparql_select("SELECT WHERE { ?x p ?y }").is_err());
        // Duplicate projection variable.
        assert!(parse_sparql_select("SELECT ?x ?x WHERE { ?x p ?y }").is_err());
        // Missing WHERE after the list.
        assert!(parse_sparql_select("SELECT ?x { ?x p ?y }").is_err());
        // Projection is accepted by parse_sparql (and dropped).
        assert!(parse_sparql("SELECT ?x WHERE { ?x p ?y }").is_ok());
    }

    #[test]
    fn group_conjunction() {
        let p = parse_sparql("{ { ?x p ?y . ?y p ?z } ?z p ?w }").unwrap();
        let expected = parse_pattern("((?x, p, ?y) AND (?y, p, ?z)) AND (?z, p, ?w)").unwrap();
        assert_eq!(p, expected);
    }
}
