//! # wdsparql-algebra
//!
//! The SPARQL AND/OPT/UNION algebra of the paper (§2): the
//! [`GraphPattern`] AST, a parser for the paper's textual syntax, the
//! well-designedness check, and the reference bottom-up semantics
//! `⟦P⟧_G` used as executable ground truth by every optimised evaluator
//! in the workspace.

#![forbid(unsafe_code)]

pub mod filter;
pub mod parser;
pub mod pattern;
pub mod semantics;
pub mod sparql;
pub mod well_designed;

pub use filter::{eval_filter, filter_solutions, FilterExpr};
pub use parser::{parse_pattern, ParseError};
pub use pattern::GraphPattern;
pub use semantics::{contains, eval, join, left_outer_join, SolutionSet};
pub use sparql::{parse_sparql, parse_sparql_filtered, parse_sparql_select};
pub use well_designed::{check_well_designed, is_well_designed, WdViolation};
