//! Reference semantics `⟦P⟧_G` (Pérez et al.; §2 "SPARQL Semantics").
//!
//! This is the textbook bottom-up evaluator implementing the four rules
//! verbatim on *sets of mappings*. It is exponential in general and exists
//! as executable ground truth: every optimised algorithm in the workspace
//! is differential-tested against it.

use crate::pattern::GraphPattern;
use std::collections::BTreeSet;
use wdsparql_rdf::{Mapping, TripleIndex};

/// A set of mappings, ordered for deterministic comparison.
pub type SolutionSet = BTreeSet<Mapping>;

/// Evaluates `⟦P⟧_G` bottom-up.
pub fn eval(p: &GraphPattern, g: &dyn TripleIndex) -> SolutionSet {
    match p {
        GraphPattern::Triple(t) => g.solutions(t).into_iter().collect(),
        GraphPattern::And(l, r) => join(&eval(l, g), &eval(r, g)),
        GraphPattern::Opt(l, r) => left_outer_join(&eval(l, g), &eval(r, g)),
        GraphPattern::Union(l, r) => {
            let mut out = eval(l, g);
            out.extend(eval(r, g));
            out
        }
    }
}

/// `⟦P1 AND P2⟧ = {µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, compatible}`.
pub fn join(a: &SolutionSet, b: &SolutionSet) -> SolutionSet {
    let mut out = SolutionSet::new();
    for m1 in a {
        for m2 in b {
            if let Some(u) = m1.union(m2) {
                out.insert(u);
            }
        }
    }
    out
}

/// `⟦P1 OPT P2⟧ = (Ω1 ⋈ Ω2) ∪ {µ1 ∈ Ω1 | no compatible µ2 ∈ Ω2}`.
pub fn left_outer_join(a: &SolutionSet, b: &SolutionSet) -> SolutionSet {
    let mut out = join(a, b);
    for m1 in a {
        if b.iter().all(|m2| !m1.compatible(m2)) {
            out.insert(m1.clone());
        }
    }
    out
}

/// Membership check `µ ∈ ⟦P⟧_G` via full evaluation (reference oracle).
pub fn contains(p: &GraphPattern, g: &dyn TripleIndex, mu: &Mapping) -> bool {
    eval(p, g).contains(mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, RdfGraph};

    fn g() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "q", "d"),
            ("x", "p", "y"),
        ])
    }

    fn t_xy() -> GraphPattern {
        GraphPattern::triple(tp(var("u"), iri("p"), var("v")))
    }

    fn t_vq() -> GraphPattern {
        GraphPattern::triple(tp(var("v"), iri("q"), var("w")))
    }

    #[test]
    fn triple_rule() {
        let sols = eval(&t_xy(), &g());
        assert_eq!(sols.len(), 3);
        assert!(sols.contains(&Mapping::from_strs([("u", "a"), ("v", "b")])));
    }

    #[test]
    fn and_rule_joins_compatible() {
        let p = GraphPattern::and(t_xy(), t_vq());
        let sols = eval(&p, &g());
        assert_eq!(sols.len(), 1);
        assert!(sols.contains(&Mapping::from_strs([("u", "a"), ("v", "b"), ("w", "d")])));
    }

    #[test]
    fn opt_rule_keeps_unextendable() {
        let p = GraphPattern::opt(t_xy(), t_vq());
        let sols = eval(&p, &g());
        // (a,b) extends with w=d; (a,c) and (x,y) stay bare.
        assert_eq!(sols.len(), 3);
        assert!(sols.contains(&Mapping::from_strs([("u", "a"), ("v", "b"), ("w", "d")])));
        assert!(sols.contains(&Mapping::from_strs([("u", "a"), ("v", "c")])));
        assert!(sols.contains(&Mapping::from_strs([("u", "x"), ("v", "y")])));
        // The un-extended (a,b) must NOT be a solution.
        assert!(!sols.contains(&Mapping::from_strs([("u", "a"), ("v", "b")])));
    }

    #[test]
    fn union_rule_is_set_union() {
        let p = GraphPattern::union(t_xy(), t_vq());
        let sols = eval(&p, &g());
        assert_eq!(sols.len(), 4);
    }

    #[test]
    fn empty_graph_yields_no_solutions() {
        let sols = eval(&t_xy(), &RdfGraph::new());
        assert!(sols.is_empty());
    }

    #[test]
    fn ground_triple_pattern_yields_empty_mapping() {
        let p = GraphPattern::triple(tp(iri("a"), iri("p"), iri("b")));
        let sols = eval(&p, &g());
        assert_eq!(sols.len(), 1);
        assert!(sols.contains(&Mapping::new()));
    }

    #[test]
    fn opt_with_incompatible_right_side() {
        // Right side binds v to something incompatible: left survives bare.
        let right = GraphPattern::triple(tp(var("v"), iri("p"), var("w")));
        let p = GraphPattern::opt(t_vq(), right);
        // t_vq over g: v=b, w=d. Right side: (v,p,w) has matches with
        // v ∈ {a, x}; none compatible with v=b.
        let sols = eval(&p, &g());
        assert_eq!(sols.len(), 1);
        assert!(sols.contains(&Mapping::from_strs([("v", "b"), ("w", "d")])));
    }

    #[test]
    fn nested_opt_example1_pattern_evaluates() {
        // P1 from Example 1 (well-designed): ((x,p,y) OPT (z,q,x)) OPT
        //                                    ((y,r,o1) AND (o1,r,o2))
        let p1 = GraphPattern::opt(
            GraphPattern::opt(
                GraphPattern::triple(tp(var("x"), iri("p"), var("y"))),
                GraphPattern::triple(tp(var("z"), iri("q"), var("x"))),
            ),
            GraphPattern::and(
                GraphPattern::triple(tp(var("y"), iri("r"), var("o1"))),
                GraphPattern::triple(tp(var("o1"), iri("r"), var("o2"))),
            ),
        );
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
        ]);
        let sols = eval(&p1, &g);
        assert!(sols.contains(&Mapping::from_strs([
            ("x", "a"),
            ("y", "b"),
            ("z", "z0"),
            ("o1", "c"),
            ("o2", "d"),
        ])));
        // (e, f) extends with neither OPT branch.
        assert!(sols.contains(&Mapping::from_strs([("x", "e"), ("y", "f")])));
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn join_and_outer_join_primitives() {
        let a: SolutionSet = [Mapping::from_strs([("x", "1")])].into_iter().collect();
        let b: SolutionSet = [
            Mapping::from_strs([("x", "1"), ("y", "2")]),
            Mapping::from_strs([("x", "9")]),
        ]
        .into_iter()
        .collect();
        let j = join(&a, &b);
        assert_eq!(j.len(), 1);
        let oj = left_outer_join(&a, &b);
        assert_eq!(oj.len(), 1); // compatible partner exists, so no bare µ1
        let c: SolutionSet = [Mapping::from_strs([("x", "9")])].into_iter().collect();
        let oj2 = left_outer_join(&a, &c);
        assert_eq!(oj2.len(), 1);
        assert!(oj2.contains(&Mapping::from_strs([("x", "1")])));
    }
}
