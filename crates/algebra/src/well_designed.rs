//! Well-designedness (§2, "Well-designed SPARQL").
//!
//! A UNION-free pattern `P` is *well-designed* if for every subpattern
//! `P' = (P1 OPT P2)` of `P`, every variable occurring in `P2` but not in
//! `P1` does not occur outside `P'` in `P`. A general pattern is
//! well-designed if it is `P1 UNION ··· UNION Pm` with every branch a
//! UNION-free well-designed pattern (UNION normal form).

use crate::pattern::GraphPattern;
use std::collections::BTreeSet;
use std::fmt;
use wdsparql_rdf::Variable;

/// Why a pattern fails to be well-designed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WdViolation {
    /// A UNION occurs below an AND or OPT, so the pattern has no UNION
    /// normal form.
    UnionNotTopLevel,
    /// Some `(P1 OPT P2)` has a variable in `P2 \ P1` that also occurs
    /// outside the OPT subpattern.
    OptScope {
        variable: Variable,
        subpattern: String,
    },
}

impl fmt::Display for WdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdViolation::UnionNotTopLevel => {
                write!(f, "UNION occurs below AND/OPT (no UNION normal form)")
            }
            WdViolation::OptScope {
                variable,
                subpattern,
            } => write!(
                f,
                "variable {variable} of the optional side of {subpattern} occurs outside it"
            ),
        }
    }
}

impl std::error::Error for WdViolation {}

/// Checks whether `p` is well-designed; `Err` explains the first violation.
pub fn check_well_designed(p: &GraphPattern) -> Result<(), WdViolation> {
    let branches = p.union_branches().ok_or(WdViolation::UnionNotTopLevel)?;
    for b in branches {
        check_union_free_wd(b, &BTreeSet::new())?;
    }
    Ok(())
}

/// Convenience boolean wrapper around [`check_well_designed`].
pub fn is_well_designed(p: &GraphPattern) -> bool {
    check_well_designed(p).is_ok()
}

/// Recursive check for UNION-free patterns. `outside` is the set of
/// variables occurring in `P` strictly outside the current subpattern.
fn check_union_free_wd(p: &GraphPattern, outside: &BTreeSet<Variable>) -> Result<(), WdViolation> {
    match p {
        GraphPattern::Triple(_) => Ok(()),
        GraphPattern::Union(_, _) => Err(WdViolation::UnionNotTopLevel),
        GraphPattern::And(l, r) => {
            let mut outside_l = outside.clone();
            outside_l.extend(r.vars());
            check_union_free_wd(l, &outside_l)?;
            let mut outside_r = outside.clone();
            outside_r.extend(l.vars());
            check_union_free_wd(r, &outside_r)
        }
        GraphPattern::Opt(l, r) => {
            let lv = l.vars();
            if let Some(&bad) = r
                .vars()
                .iter()
                .find(|v| !lv.contains(v) && outside.contains(v))
            {
                return Err(WdViolation::OptScope {
                    variable: bad,
                    subpattern: p.to_string(),
                });
            }
            let mut outside_l = outside.clone();
            outside_l.extend(r.vars());
            check_union_free_wd(l, &outside_l)?;
            let mut outside_r = outside.clone();
            outside_r.extend(lv);
            check_union_free_wd(r, &outside_r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn t(s: &str, p: &str, o: &str) -> GraphPattern {
        let term = |x: &str| {
            if let Some(name) = x.strip_prefix('?') {
                var(name)
            } else {
                iri(x)
            }
        };
        GraphPattern::triple(tp(term(s), term(p), term(o)))
    }

    /// P1 from Example 1 — well-designed.
    fn example1_p1() -> GraphPattern {
        GraphPattern::opt(
            GraphPattern::opt(t("?x", "p", "?y"), t("?z", "q", "?x")),
            GraphPattern::and(t("?y", "r", "?o1"), t("?o1", "r", "?o2")),
        )
    }

    /// P2 from Example 1 — NOT well-designed (`?z` escapes its OPT).
    fn example1_p2() -> GraphPattern {
        GraphPattern::opt(
            GraphPattern::opt(t("?x", "p", "?y"), t("?z", "q", "?x")),
            GraphPattern::and(t("?y", "r", "?z"), t("?z", "r", "?o2")),
        )
    }

    #[test]
    fn example1_classification() {
        assert!(is_well_designed(&example1_p1()));
        let err = check_well_designed(&example1_p2()).unwrap_err();
        match err {
            WdViolation::OptScope { variable, .. } => {
                assert_eq!(variable, Variable::new("z"));
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn single_triple_is_well_designed() {
        assert!(is_well_designed(&t("?x", "p", "?y")));
    }

    #[test]
    fn and_only_patterns_are_well_designed() {
        let p = GraphPattern::and(
            GraphPattern::and(t("?x", "p", "?y"), t("?y", "q", "?z")),
            t("?z", "r", "c"),
        );
        assert!(is_well_designed(&p));
    }

    #[test]
    fn top_level_union_of_wd_branches_is_wd() {
        let p = GraphPattern::union(
            example1_p1(),
            GraphPattern::opt(
                t("?x", "p", "?y"),
                GraphPattern::and(t("?z", "q", "?x"), t("?w", "q", "?z")),
            ),
        );
        assert!(is_well_designed(&p));
    }

    #[test]
    fn union_under_and_is_rejected() {
        let p = GraphPattern::and(
            GraphPattern::union(t("?x", "p", "?y"), t("?x", "q", "?y")),
            t("?y", "r", "?z"),
        );
        assert_eq!(check_well_designed(&p), Err(WdViolation::UnionNotTopLevel));
    }

    #[test]
    fn violation_through_and_sibling() {
        // (A OPT B) AND C where B's private var reappears in C.
        let p = GraphPattern::and(
            GraphPattern::opt(t("?x", "p", "?y"), t("?z", "q", "?x")),
            t("?z", "r", "?w"),
        );
        assert!(!is_well_designed(&p));
    }

    #[test]
    fn shared_lhs_variable_is_fine() {
        // Variable shared between OPT's left side and outside is allowed.
        let p = GraphPattern::and(
            GraphPattern::opt(t("?x", "p", "?y"), t("?y", "q", "?w")),
            t("?x", "r", "?u"),
        );
        assert!(is_well_designed(&p));
    }

    #[test]
    fn nested_opt_inner_private_vars() {
        // ((A OPT B) OPT C) where C reuses B's private variable: violation
        // because the inner OPT's ?z occurs outside it (in C).
        let p = GraphPattern::opt(
            GraphPattern::opt(t("?x", "p", "?y"), t("?z", "q", "?x")),
            t("?z", "r", "?o"),
        );
        assert!(!is_well_designed(&p));
        // But a deeper OPT extending its own branch is fine:
        // (A OPT (B OPT C)) with C using B's vars.
        let q = GraphPattern::opt(
            t("?x", "p", "?y"),
            GraphPattern::opt(t("?z", "q", "?x"), t("?z", "r", "?o")),
        );
        assert!(is_well_designed(&q));
    }

    #[test]
    fn violation_display_mentions_variable() {
        let err = check_well_designed(&example1_p2()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("?z"), "message was {msg}");
    }
}
