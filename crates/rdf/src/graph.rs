//! Indexed ground RDF graphs.
//!
//! An [`RdfGraph`] is a finite set of ground [`Triple`]s with positional
//! indexes (S, P, O and the three pairs) so that triple-pattern matching
//! picks the most selective access path — the substrate the evaluation
//! algorithms and the pebble game run against.

use crate::mapping::Mapping;
use crate::term::{Iri, Term};
use crate::triple::{Triple, TriplePattern};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite set of ground RDF triples with positional indexes.
#[derive(Clone, Default)]
pub struct RdfGraph {
    triples: Vec<Triple>,
    set: HashSet<Triple>,
    by_s: HashMap<Iri, Vec<u32>>,
    by_p: HashMap<Iri, Vec<u32>>,
    by_o: HashMap<Iri, Vec<u32>>,
    by_sp: HashMap<(Iri, Iri), Vec<u32>>,
    by_so: HashMap<(Iri, Iri), Vec<u32>>,
    by_po: HashMap<(Iri, Iri), Vec<u32>>,
    dom: BTreeSet<Iri>,
}

impl RdfGraph {
    pub fn new() -> RdfGraph {
        RdfGraph::default()
    }

    pub fn from_triples<I>(triples: I) -> RdfGraph
    where
        I: IntoIterator<Item = Triple>,
    {
        let mut g = RdfGraph::new();
        for t in triples {
            g.insert(t);
        }
        g
    }

    /// Convenience constructor from spellings.
    pub fn from_strs<'a, I>(triples: I) -> RdfGraph
    where
        I: IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    {
        RdfGraph::from_triples(
            triples
                .into_iter()
                .map(|(s, p, o)| Triple::from_strs(s, p, o)),
        )
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.set.insert(t) {
            return false;
        }
        let idx = u32::try_from(self.triples.len()).expect("graph too large");
        self.triples.push(t);
        self.by_s.entry(t.s).or_default().push(idx);
        self.by_p.entry(t.p).or_default().push(idx);
        self.by_o.entry(t.o).or_default().push(idx);
        self.by_sp.entry((t.s, t.p)).or_default().push(idx);
        self.by_so.entry((t.s, t.o)).or_default().push(idx);
        self.by_po.entry((t.p, t.o)).or_default().push(idx);
        self.dom.insert(t.s);
        self.dom.insert(t.p);
        self.dom.insert(t.o);
        true
    }

    pub fn contains(&self, t: &Triple) -> bool {
        self.set.contains(t)
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// `dom(G)`: the IRIs appearing in the graph (in any position).
    pub fn dom(&self) -> impl Iterator<Item = Iri> + '_ {
        self.dom.iter().copied()
    }

    pub fn dom_size(&self) -> usize {
        self.dom.len()
    }

    pub fn dom_contains(&self, i: Iri) -> bool {
        self.dom.contains(&i)
    }

    /// Number of triples matching the pattern's *constant* positions — an
    /// upper bound on the matches of the pattern itself, used by the
    /// homomorphism solver's fail-first heuristic. O(1).
    pub fn candidate_count(&self, pat: &TriplePattern) -> usize {
        match self.access_path(pat) {
            AccessPath::All => self.triples.len(),
            AccessPath::List(list) => list.map_or(0, <[u32]>::len),
        }
    }

    fn access_path(&self, pat: &TriplePattern) -> AccessPath<'_> {
        let s = pat.s.as_iri();
        let p = pat.p.as_iri();
        let o = pat.o.as_iri();
        match (s, p, o) {
            (Some(s), Some(p), _) => AccessPath::List(self.by_sp.get(&(s, p)).map(Vec::as_slice)),
            (Some(s), _, Some(o)) => AccessPath::List(self.by_so.get(&(s, o)).map(Vec::as_slice)),
            (_, Some(p), Some(o)) => AccessPath::List(self.by_po.get(&(p, o)).map(Vec::as_slice)),
            (Some(s), None, None) => AccessPath::List(self.by_s.get(&s).map(Vec::as_slice)),
            (None, Some(p), None) => AccessPath::List(self.by_p.get(&p).map(Vec::as_slice)),
            (None, None, Some(o)) => AccessPath::List(self.by_o.get(&o).map(Vec::as_slice)),
            (None, None, None) => AccessPath::All,
        }
    }

    /// All triples matching `pat`, honouring repeated variables (e.g.
    /// `(?x, p, ?x)` only matches triples with `s = o`).
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        let pat = *pat;
        let check = move |t: &Triple| pattern_matches(&pat, t);
        match self.access_path(&pat) {
            AccessPath::All => self.triples.iter().filter(|t| check(t)).copied().collect(),
            AccessPath::List(None) => Vec::new(),
            AccessPath::List(Some(list)) => list
                .iter()
                .map(|&i| self.triples[i as usize])
                .filter(|t| check(t))
                .collect(),
        }
    }

    /// The solutions of a single triple pattern: `⟦t⟧_G = {µ | dom(µ) =
    /// vars(t) and µ(t) ∈ G}` (Pérez et al., rule 1).
    pub fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        self.match_pattern(pat)
            .into_iter()
            .filter_map(|t| binding_of(pat, &t))
            .collect()
    }

    /// All distinct subject/object IRIs connected by predicate `p`, as raw
    /// edges — convenient for building adversarial graph families.
    pub fn edges_with_predicate(&self, p: Iri) -> Vec<(Iri, Iri)> {
        self.by_p
            .get(&p)
            .map(|list| {
                list.iter()
                    .map(|&i| {
                        let t = self.triples[i as usize];
                        (t.s, t.o)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

enum AccessPath<'g> {
    All,
    List(Option<&'g [u32]>),
}

/// Does ground triple `t` match pattern `pat` (constants equal, repeated
/// variables bound consistently)?
pub fn pattern_matches(pat: &TriplePattern, t: &Triple) -> bool {
    binding_of(pat, t).is_some()
}

/// The mapping `µ` with `dom(µ) = vars(pat)` and `µ(pat) = t`, if any.
pub fn binding_of(pat: &TriplePattern, t: &Triple) -> Option<Mapping> {
    let mut mu = Mapping::new();
    let mut bind = |term: Term, value: Iri| -> bool {
        match term {
            Term::Iri(i) => i == value,
            Term::Var(v) => match mu.get(v) {
                Some(prev) => prev == value,
                None => {
                    mu.bind(v, value);
                    true
                }
            },
        }
    };
    if bind(pat.s, t.s) && bind(pat.p, t.p) && bind(pat.o, t.o) {
        Some(mu)
    } else {
        None
    }
}

impl PartialEq for RdfGraph {
    fn eq(&self, other: &RdfGraph) -> bool {
        self.set == other.set
    }
}

impl Eq for RdfGraph {}

impl fmt::Debug for RdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sorted: Vec<_> = self.triples.clone();
        sorted.sort();
        f.debug_set().entries(sorted).finish()
    }
}

impl FromIterator<Triple> for RdfGraph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> RdfGraph {
        RdfGraph::from_triples(iter)
    }
}

impl Extend<Triple> for RdfGraph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{iri, var, Variable};
    use crate::triple::tp;

    fn sample() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("b", "q", "a"),
            ("c", "q", "a"),
        ])
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = RdfGraph::new();
        assert!(g.insert(Triple::from_strs("a", "p", "b")));
        assert!(!g.insert(Triple::from_strs("a", "p", "b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn dom_collects_all_positions() {
        let g = sample();
        let dom: Vec<_> = g.dom().collect();
        assert_eq!(dom.len(), 5); // a, b, c, p, q
        assert!(g.dom_contains(Iri::new("p")));
        assert!(!g.dom_contains(Iri::new("zzz")));
    }

    #[test]
    fn match_fully_bound() {
        let g = sample();
        assert_eq!(g.match_pattern(&tp(iri("a"), iri("p"), iri("b"))).len(), 1);
        assert_eq!(g.match_pattern(&tp(iri("a"), iri("p"), iri("z"))).len(), 0);
    }

    #[test]
    fn match_by_each_index() {
        let g = sample();
        assert_eq!(g.match_pattern(&tp(iri("a"), var("x"), var("y"))).len(), 2);
        assert_eq!(g.match_pattern(&tp(var("x"), iri("q"), var("y"))).len(), 2);
        assert_eq!(g.match_pattern(&tp(var("x"), var("y"), iri("c"))).len(), 2);
        assert_eq!(g.match_pattern(&tp(iri("a"), iri("p"), var("y"))).len(), 2);
        assert_eq!(g.match_pattern(&tp(iri("b"), var("x"), iri("c"))).len(), 1);
        assert_eq!(g.match_pattern(&tp(var("x"), iri("q"), iri("a"))).len(), 2);
        assert_eq!(g.match_pattern(&tp(var("x"), var("y"), var("z"))).len(), 5);
    }

    #[test]
    fn repeated_variables_constrain_matches() {
        let mut g = sample();
        g.insert(Triple::from_strs("d", "p", "d"));
        let loops = g.match_pattern(&tp(var("x"), iri("p"), var("x")));
        assert_eq!(loops, vec![Triple::from_strs("d", "p", "d")]);
    }

    #[test]
    fn solutions_bind_pattern_variables() {
        let g = sample();
        let sols = g.solutions(&tp(var("x"), iri("q"), var("y")));
        assert_eq!(sols.len(), 2);
        for mu in &sols {
            assert!(mu.domain_is([Variable::new("x"), Variable::new("y")]));
            assert_eq!(mu.get(Variable::new("y")), Some(Iri::new("a")));
        }
    }

    #[test]
    fn solutions_of_ground_pattern() {
        let g = sample();
        let sols = g.solutions(&tp(iri("a"), iri("p"), iri("b")));
        assert_eq!(sols, vec![Mapping::new()]);
        assert!(g.solutions(&tp(iri("a"), iri("p"), iri("zzz"))).is_empty());
    }

    #[test]
    fn candidate_count_is_an_upper_bound() {
        let g = sample();
        let pat = tp(var("x"), iri("p"), var("x"));
        assert!(g.candidate_count(&pat) >= g.match_pattern(&pat).len());
        assert_eq!(
            g.candidate_count(&tp(var("x"), var("y"), var("z"))),
            g.len()
        );
        assert_eq!(g.candidate_count(&tp(iri("zz"), var("y"), var("z"))), 0);
    }

    #[test]
    fn graph_equality_ignores_insertion_order() {
        let g1 = RdfGraph::from_strs([("a", "p", "b"), ("b", "p", "c")]);
        let g2 = RdfGraph::from_strs([("b", "p", "c"), ("a", "p", "b")]);
        assert_eq!(g1, g2);
    }

    #[test]
    fn edges_with_predicate_projects_pairs() {
        let g = sample();
        let mut qs = g.edges_with_predicate(Iri::new("q"));
        qs.sort();
        assert_eq!(
            qs,
            vec![
                (Iri::new("b"), Iri::new("a")),
                (Iri::new("c"), Iri::new("a"))
            ]
        );
    }
}
