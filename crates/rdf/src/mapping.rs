//! Mappings: partial functions `µ : V → I` (Pérez et al. semantics).

use crate::term::{Iri, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A mapping `µ` — a partial function from variables to IRIs.
///
/// Backed by a `BTreeMap` so iteration, display and equality are
/// deterministic, which matters when mappings are collected into solution
/// sets and compared across evaluation strategies.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mapping {
    bindings: BTreeMap<Variable, Iri>,
}

impl Mapping {
    /// The empty mapping `µ_∅`.
    pub fn new() -> Mapping {
        Mapping::default()
    }

    /// Builds a mapping from `(variable, iri)` pairs.
    ///
    /// Panics if the same variable is bound twice to different IRIs, since
    /// that would silently lose a binding.
    pub fn from_pairs<I>(pairs: I) -> Mapping
    where
        I: IntoIterator<Item = (Variable, Iri)>,
    {
        let mut m = Mapping::new();
        for (v, i) in pairs {
            if let Some(prev) = m.bindings.insert(v, i) {
                assert_eq!(prev, i, "conflicting binding for {v}");
            }
        }
        m
    }

    /// Convenience constructor from spellings.
    pub fn from_strs<'a, I>(pairs: I) -> Mapping
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Mapping::from_pairs(
            pairs
                .into_iter()
                .map(|(v, i)| (Variable::new(v), Iri::new(i))),
        )
    }

    pub fn bind(&mut self, v: Variable, i: Iri) {
        self.bindings.insert(v, i);
    }

    pub fn get(&self, v: Variable) -> Option<Iri> {
        self.bindings.get(&v).copied()
    }

    pub fn contains(&self, v: Variable) -> bool {
        self.bindings.contains_key(&v)
    }

    /// `dom(µ)`.
    pub fn domain(&self) -> impl Iterator<Item = Variable> + '_ {
        self.bindings.keys().copied()
    }

    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Variable, Iri)> + '_ {
        self.bindings.iter().map(|(&v, &i)| (v, i))
    }

    /// Two mappings are *compatible* if they agree on every shared variable.
    pub fn compatible(&self, other: &Mapping) -> bool {
        // Iterate over the smaller mapping.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(v, i)| large.get(v).is_none_or(|j| j == i))
    }

    /// `µ1 ∪ µ2` for compatible mappings; `None` if incompatible.
    pub fn union(&self, other: &Mapping) -> Option<Mapping> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (v, i) in other.iter() {
            out.bindings.insert(v, i);
        }
        Some(out)
    }

    /// The restriction `µ|_W` to the variables in `W`.
    pub fn restrict<I>(&self, vars: I) -> Mapping
    where
        I: IntoIterator<Item = Variable>,
    {
        let mut out = Mapping::new();
        for v in vars {
            if let Some(i) = self.get(v) {
                out.bind(v, i);
            }
        }
        out
    }

    /// True iff `dom(µ)` equals exactly the given variable set.
    pub fn domain_is<I>(&self, vars: I) -> bool
    where
        I: IntoIterator<Item = Variable>,
    {
        let mut count = 0usize;
        for v in vars {
            if !self.contains(v) {
                return false;
            }
            count += 1;
        }
        count == self.len()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, (v, i)) in self.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} → {i}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<(Variable, Iri)> for Mapping {
    fn from_iter<T: IntoIterator<Item = (Variable, Iri)>>(iter: T) -> Mapping {
        Mapping::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }
    fn i(n: &str) -> Iri {
        Iri::new(n)
    }

    #[test]
    fn empty_mapping_is_compatible_with_everything() {
        let e = Mapping::new();
        let m = Mapping::from_strs([("x", "a")]);
        assert!(e.compatible(&m));
        assert!(m.compatible(&e));
        assert_eq!(e.union(&m), Some(m.clone()));
    }

    #[test]
    fn compatibility_is_agreement_on_shared_vars() {
        let m1 = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let m2 = Mapping::from_strs([("y", "b"), ("z", "c")]);
        let m3 = Mapping::from_strs([("y", "c")]);
        assert!(m1.compatible(&m2));
        assert!(!m1.compatible(&m3));
        assert_eq!(m1.union(&m3), None);
    }

    #[test]
    fn union_takes_bindings_from_both() {
        let m1 = Mapping::from_strs([("x", "a")]);
        let m2 = Mapping::from_strs([("y", "b")]);
        let u = m1.union(&m2).unwrap();
        assert_eq!(u.get(v("x")), Some(i("a")));
        assert_eq!(u.get(v("y")), Some(i("b")));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn restrict_and_domain_is() {
        let m = Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")]);
        let r = m.restrict([v("x"), v("z"), v("unbound")]);
        assert_eq!(r.len(), 2);
        assert!(r.domain_is([v("x"), v("z")]));
        assert!(!r.domain_is([v("x")]));
        assert!(!r.domain_is([v("x"), v("z"), v("y")]));
    }

    #[test]
    fn display_is_deterministic() {
        let m = Mapping::from_strs([("b", "1"), ("a", "2")]);
        let n = Mapping::from_strs([("a", "2"), ("b", "1")]);
        assert_eq!(m.to_string(), n.to_string());
    }

    #[test]
    #[should_panic(expected = "conflicting binding")]
    fn from_pairs_rejects_conflicts() {
        let _ = Mapping::from_strs([("x", "a"), ("x", "b")]);
    }

    #[test]
    fn union_is_commutative_on_compatible() {
        let m1 = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let m2 = Mapping::from_strs([("y", "b"), ("z", "c")]);
        assert_eq!(m1.union(&m2), m2.union(&m1));
    }
}
