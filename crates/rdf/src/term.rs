//! Interned RDF terms: IRIs, variables, and the [`Term`] sum type.
//!
//! The paper works over a countably infinite set `I` of IRIs and a disjoint
//! countably infinite set `V = {?x, ?y, ...}` of variables. We intern both
//! into process-global tables so that terms are `Copy` 32-bit ids: equality,
//! hashing and ordering are integer operations, and the string spelling can
//! be recovered in O(1) for display.
//!
//! Interned strings are leaked (`Box::leak`) so lookups can hand out
//! `&'static str` without holding a lock. The vocabulary lives for the whole
//! process, which is the intended lifetime of a query workload; the leak is
//! bounded by the number of *distinct* names ever created.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

#[derive(Default)]
struct Vocab {
    iri_names: Vec<&'static str>,
    iri_ids: HashMap<&'static str, u32>,
    var_names: Vec<&'static str>,
    var_ids: HashMap<&'static str, u32>,
    fresh_counter: u64,
}

fn vocab() -> &'static RwLock<Vocab> {
    static VOCAB: OnceLock<RwLock<Vocab>> = OnceLock::new();
    VOCAB.get_or_init(|| RwLock::new(Vocab::default()))
}

/// An interned IRI (internationalised resource identifier).
///
/// ```
/// use wdsparql_rdf::Iri;
/// let a = Iri::new("http://example.org/p");
/// let b = Iri::new("http://example.org/p");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "http://example.org/p");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Iri(u32);

impl Iri {
    /// Interns `name` and returns its id. Idempotent per spelling.
    pub fn new(name: &str) -> Iri {
        let v = vocab();
        if let Some(&id) = v.read().iri_ids.get(name) {
            return Iri(id);
        }
        let mut w = v.write();
        if let Some(&id) = w.iri_ids.get(name) {
            return Iri(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.iri_names.len()).expect("IRI vocabulary overflow");
        w.iri_names.push(leaked);
        w.iri_ids.insert(leaked, id);
        Iri(id)
    }

    /// The interned spelling.
    pub fn as_str(self) -> &'static str {
        vocab().read().iri_names[self.0 as usize]
    }

    /// The raw interned id (stable within the process, useful as an index).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Rebuilds an [`Iri`] from an id previously obtained via
    /// [`Iri::id`]. Crate-internal: only ids that came out of the
    /// interner are valid.
    pub(crate) fn from_raw(id: u32) -> Iri {
        Iri(id)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iri({})", self.as_str())
    }
}

/// An interned SPARQL variable.
///
/// Names are canonicalised without the leading `?`; [`fmt::Display`] adds it
/// back, so `Variable::new("?x")` and `Variable::new("x")` are the same
/// variable, printed `?x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(u32);

impl Variable {
    /// Interns a variable by name (leading `?` optional).
    pub fn new(name: &str) -> Variable {
        let name = name.strip_prefix('?').unwrap_or(name);
        assert!(!name.is_empty(), "variable name must be non-empty");
        let v = vocab();
        if let Some(&id) = v.read().var_ids.get(name) {
            return Variable(id);
        }
        let mut w = v.write();
        if let Some(&id) = w.var_ids.get(name) {
            return Variable(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.var_names.len()).expect("variable vocabulary overflow");
        w.var_names.push(leaked);
        w.var_ids.insert(leaked, id);
        Variable(id)
    }

    /// A variable guaranteed to be distinct from every variable created so
    /// far (used by the ρ_∆ renaming of children assignments, §3.1).
    pub fn fresh() -> Variable {
        let v = vocab();
        let mut w = v.write();
        loop {
            let n = w.fresh_counter;
            w.fresh_counter += 1;
            let name = format!("_f{n}");
            if !w.var_ids.contains_key(name.as_str()) {
                let leaked: &'static str = Box::leak(name.into_boxed_str());
                let id = u32::try_from(w.var_names.len()).expect("variable vocabulary overflow");
                w.var_names.push(leaked);
                w.var_ids.insert(leaked, id);
                return Variable(id);
            }
        }
    }

    /// The canonical spelling, without the leading `?`.
    pub fn name(self) -> &'static str {
        vocab().read().var_names[self.0 as usize]
    }

    /// The raw interned id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.name())
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(?{})", self.name())
    }
}

/// A term in a triple pattern: either an IRI constant or a variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    Iri(Iri),
    Var(Variable),
}

impl Term {
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    pub fn is_iri(self) -> bool {
        matches!(self, Term::Iri(_))
    }

    pub fn as_var(self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Iri(_) => None,
        }
    }

    pub fn as_iri(self) -> Option<Iri> {
        match self {
            Term::Iri(i) => Some(i),
            Term::Var(_) => None,
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Term {
        Term::Iri(i)
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Term {
        Term::Var(v)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Var(v) => v.fmt(f),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Var(v) => v.fmt(f),
        }
    }
}

/// Convenience constructor for an IRI term.
pub fn iri(name: &str) -> Term {
    Term::Iri(Iri::new(name))
}

/// Convenience constructor for a variable term.
pub fn var(name: &str) -> Term {
    Term::Var(Variable::new(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_interning_is_idempotent() {
        let a = Iri::new("p");
        let b = Iri::new("p");
        let c = Iri::new("q");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "p");
        assert_eq!(c.as_str(), "q");
    }

    #[test]
    fn variable_question_mark_is_canonicalised() {
        assert_eq!(Variable::new("?x"), Variable::new("x"));
        assert_eq!(Variable::new("?x").to_string(), "?x");
        assert_eq!(Variable::new("x").name(), "x");
    }

    #[test]
    fn fresh_variables_never_collide() {
        let user = Variable::new("_f0"); // squat on a fresh-style name
        let f1 = Variable::fresh();
        let f2 = Variable::fresh();
        assert_ne!(f1, user);
        assert_ne!(f1, f2);
    }

    #[test]
    fn term_accessors() {
        let t = iri("a");
        let u = var("x");
        assert!(t.is_iri() && !t.is_var());
        assert!(u.is_var() && !u.is_iri());
        assert_eq!(t.as_iri(), Some(Iri::new("a")));
        assert_eq!(t.as_var(), None);
        assert_eq!(u.as_var(), Some(Variable::new("x")));
        assert_eq!(u.as_iri(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(iri("a").to_string(), "a");
        assert_eq!(var("y").to_string(), "?y");
        assert_eq!(format!("{:?}", Variable::new("y")), "Var(?y)");
        assert_eq!(format!("{:?}", Iri::new("a")), "Iri(a)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_variable_name_panics() {
        let _ = Variable::new("?");
    }

    #[test]
    fn ids_are_dense_and_distinct() {
        let a = Iri::new("dense-test-a");
        let b = Iri::new("dense-test-b");
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..100 {
                        ids.push(Iri::new(&format!("t{}", (i + j) % 50)).id());
                    }
                    ids
                })
            })
            .collect();
        let all: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same spelling must yield the same id in every thread.
        for w in 0..50 {
            let id = Iri::new(&format!("t{w}")).id();
            for (i, ids) in all.iter().enumerate() {
                for (j, &got) in ids.iter().enumerate() {
                    if (i + j) % 50 == w {
                        assert_eq!(got, id);
                    }
                }
            }
        }
    }
}
