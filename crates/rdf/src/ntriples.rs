//! A minimal N-Triples-style reader/writer for ground RDF graphs.
//!
//! Accepted line grammar (one statement per line):
//!
//! ```text
//! statement := term term term '.'
//! term      := '<' [^>]* '>'        # bracketed IRI
//!            | bare-word            # unquoted IRI, no whitespace/brackets
//! comment   := '#' ... end-of-line
//! ```
//!
//! This is deliberately a subset of W3C N-Triples (no literals, no blank
//! nodes: the paper works with ground RDF graphs over IRIs only), extended
//! with bare words so test fixtures stay readable.

use crate::graph::RdfGraph;
use crate::term::Iri;
use crate::triple::Triple;
use std::fmt;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

fn err(line: usize, message: impl Into<String>) -> NtError {
    NtError {
        line,
        message: message.into(),
    }
}

/// Parses a graph from N-Triples-style text.
pub fn parse_ntriples(input: &str) -> Result<RdfGraph, NtError> {
    let mut g = RdfGraph::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_suffix('.')
            .ok_or_else(|| err(lineno, "statement must end with '.'"))?
            .trim_end();
        let mut rest = body;
        let mut terms = Vec::with_capacity(3);
        while !rest.is_empty() {
            let (term, tail) = next_term(rest, lineno)?;
            terms.push(term);
            rest = tail.trim_start();
        }
        match <[Iri; 3]>::try_from(terms) {
            Ok([s, p, o]) => {
                g.insert(Triple::new(s, p, o));
            }
            Err(got) => {
                return Err(err(
                    lineno,
                    format!("expected exactly 3 terms, found {}", got.len()),
                ))
            }
        }
    }
    Ok(g)
}

fn strip_comment(line: &str) -> &str {
    // '#' only starts a comment outside of a bracketed IRI.
    let mut in_brackets = false;
    for (i, c) in line.char_indices() {
        match c {
            '<' => in_brackets = true,
            '>' => in_brackets = false,
            '#' if !in_brackets => return &line[..i],
            _ => {}
        }
    }
    line
}

fn next_term(input: &str, lineno: usize) -> Result<(Iri, &str), NtError> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('<') {
        let end = rest
            .find('>')
            .ok_or_else(|| err(lineno, "unterminated '<'"))?;
        let name = &rest[..end];
        if name.is_empty() {
            return Err(err(lineno, "empty IRI '<>'"));
        }
        Ok((Iri::new(name), &rest[end + 1..]))
    } else {
        let end = input
            .find(|c: char| c.is_whitespace())
            .unwrap_or(input.len());
        let word = &input[..end];
        if word.is_empty() {
            return Err(err(lineno, "expected a term"));
        }
        if word.contains('<') || word.contains('>') {
            return Err(err(lineno, format!("malformed term {word:?}")));
        }
        Ok((Iri::new(word), &input[end..]))
    }
}

/// Serialises a graph in sorted order; bare words are used when safe,
/// brackets otherwise. The output round-trips through [`parse_ntriples`].
pub fn write_ntriples(g: &RdfGraph) -> String {
    let mut triples: Vec<Triple> = g.iter().copied().collect();
    triples.sort();
    let mut out = String::new();
    for t in triples {
        for term in t.terms() {
            let s = term.as_str();
            let bare = !s.is_empty()
                && !s
                    .chars()
                    .any(|c| c.is_whitespace() || c == '<' || c == '>' || c == '#')
                && s != "."
                && !s.ends_with('.');
            if bare {
                out.push_str(s);
            } else {
                out.push('<');
                out.push_str(s);
                out.push('>');
            }
            out.push(' ');
        }
        out.push_str(".\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_and_bracketed_terms() {
        let g = parse_ntriples("a p b .\n<http://x> <p q> c .\n").unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::from_strs("a", "p", "b")));
        assert!(g.contains(&Triple::from_strs("http://x", "p q", "c")));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g = parse_ntriples("# header\n\na p b . # trailing\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn hash_inside_brackets_is_not_a_comment() {
        let g = parse_ntriples("<http://x#frag> p b .\n").unwrap();
        assert!(g.contains(&Triple::from_strs("http://x#frag", "p", "b")));
    }

    #[test]
    fn missing_dot_is_an_error() {
        let e = parse_ntriples("a p b\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("'.'"));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        assert!(parse_ntriples("a p .\n").is_err());
        assert!(parse_ntriples("a p b c .\n").is_err());
    }

    #[test]
    fn unterminated_bracket_is_an_error() {
        let e = parse_ntriples("<a p b .\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn error_reports_correct_line() {
        let e = parse_ntriples("a p b .\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = RdfGraph::from_strs([("a", "p", "b"), ("with space", "p", "b"), ("x#y", "q", "z")]);
        let text = write_ntriples(&g);
        let g2 = parse_ntriples(&text).unwrap();
        assert_eq!(g, g2);
    }
}
