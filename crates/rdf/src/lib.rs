//! # wdsparql-rdf
//!
//! The ground RDF substrate for the `wdsparql` workspace — the data model
//! underneath Romero's *"The Tractability Frontier of Well-designed SPARQL
//! Queries"* (PODS 2018).
//!
//! Provides:
//!
//! * interned [`Iri`]s, [`Variable`]s and [`Term`]s ([`term`]),
//! * ground [`Triple`]s and SPARQL [`TriplePattern`]s ([`triple`]),
//! * partial mappings `µ : V → I` with compatibility/union ([`mapping`]),
//! * indexed [`RdfGraph`]s with triple-pattern matching ([`graph`]),
//! * the [`TripleIndex`] trait — the pattern-matching surface shared by
//!   every graph backend ([`index`]),
//! * the pull-based execution substrate — [`SolutionStream`],
//!   [`QueryBudget`] deadlines/cancellation and the typed [`ExecError`]
//!   ([`exec`]),
//! * a small N-Triples-style reader/writer ([`ntriples`]).
//!
//! Everything here is deliberately *ground* (no blank nodes, no literals):
//! the paper's setting is ground RDF graphs over IRIs.

#![forbid(unsafe_code)]

pub mod exec;
pub mod graph;
pub mod index;
pub mod mapping;
pub mod ntriples;
pub mod term;
pub mod trie;
pub mod triple;

pub use exec::{CancelToken, ExecError, QueryBudget, SolutionStream, VecStream};
pub use graph::{binding_of, pattern_matches, RdfGraph};
pub use index::TripleIndex;
pub use mapping::Mapping;
pub use ntriples::{parse_ntriples, write_ntriples, NtError};
pub use term::{iri, var, Iri, Term, Variable};
pub use trie::{gallop, MaterializedTrie, TrieCursor, TrieOpStats};
pub use triple::{tp, Triple, TriplePattern};
