//! The pull-based execution substrate: [`SolutionStream`] (solutions
//! produced one pull at a time), [`QueryBudget`] (deadline +
//! cancellation + op accounting) and the typed [`ExecError`] every
//! evaluator returns instead of running to completion.
//!
//! ## Why pull
//!
//! The paper's enumeration results produce answers one at a time with
//! bounded delay; materialise-all evaluation throws that property away.
//! A `SolutionStream` restores it: `next()` does a bounded slice of
//! work (one alignment round of the leapfrog join, one bind-join probe)
//! and either yields a solution, reports exhaustion, or fails with a
//! typed budget error. `LIMIT k` is then just "stop pulling after k",
//! and a deadline is enforced at every pull *and* inside the evaluator
//! inner loops — no answer costs more than one seek/merge step past
//! the budget.
//!
//! ## Checkpoint placement rule
//!
//! Every unbounded `loop`/`while` on an evaluation hot path calls
//! [`QueryBudget::check`] once per iteration (the store's analyzer
//! enforces this as the `budget-checkpoint` lint). `check` is engineered
//! to be nearly free: cancellation is one relaxed atomic load, and the
//! clock is consulted only every [`CHECK_MASK`]+1 calls — except the
//! very first, so a zero deadline fails before any work happens.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::mapping::Mapping;

/// Why an evaluation stopped before exhausting its solutions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecError {
    /// The query's deadline passed; checked at pull granularity and
    /// inside evaluator inner loops, so the overshoot is bounded by one
    /// seek/merge step.
    DeadlineExceeded,
    /// The query's [`CancelToken`] was triggered by another thread.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ExecError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A shared cancellation flag: clone it, hand one copy to the query,
/// trip the other from any thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token; every stream holding it fails its next
    /// checkpoint with [`ExecError::Cancelled`].
    pub fn cancel(&self) {
        // relaxed-ok: a cancellation flag orders nothing — observers
        // only need to see the store eventually, and every checkpoint
        // re-loads it.
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        // relaxed-ok: see `cancel` — a monotone flag with no ordering
        // obligations.
        self.flag.load(Ordering::Relaxed)
    }
}

/// Clock checks happen when `ops & CHECK_MASK == 0`: every 64th
/// checkpoint, *including the first* (op 0), so a zero deadline fails
/// before any work is done and the overshoot past a deadline is at
/// most 64 checkpoint-bounded steps.
const CHECK_MASK: u64 = 0x3F;

/// The resource envelope of one query: an optional deadline, an
/// optional cancellation token, and an op counter that amortises the
/// clock reads. Threaded by reference through every stream; `check()`
/// is the single checkpoint every evaluation loop calls.
#[derive(Debug, Default)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    ops: AtomicU64,
}

impl QueryBudget {
    /// No deadline, no cancellation: `check()` never fails. The budget
    /// materialising wrappers run under.
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// Fails checkpoints once `ttl` has elapsed from now.
    pub fn with_deadline(ttl: Duration) -> QueryBudget {
        QueryBudget {
            deadline: Instant::now().checked_add(ttl),
            cancel: None,
            ops: AtomicU64::new(0),
        }
    }

    /// Fails checkpoints once `token` is cancelled.
    pub fn with_cancel(token: CancelToken) -> QueryBudget {
        QueryBudget {
            deadline: None,
            cancel: Some(token),
            ops: AtomicU64::new(0),
        }
    }

    /// Builder-style deadline on an existing budget.
    pub fn and_deadline(mut self, ttl: Duration) -> QueryBudget {
        self.deadline = Instant::now().checked_add(ttl);
        self
    }

    /// Builder-style cancellation token on an existing budget.
    pub fn and_cancel(mut self, token: CancelToken) -> QueryBudget {
        self.cancel = Some(token);
        self
    }

    /// Checkpoints consumed so far (monotone; one per `check` call).
    pub fn ops(&self) -> u64 {
        // relaxed-ok: a monotone statistics counter read with no
        // cross-variable ordering.
        self.ops.load(Ordering::Relaxed)
    }

    /// The checkpoint: cancellation every call, the clock every
    /// [`CHECK_MASK`]+1 calls (and always on the first, so a zero
    /// deadline fails before any work). Evaluation loops call this once
    /// per iteration — see the module docs for the placement rule.
    #[inline]
    pub fn check(&self) -> Result<(), ExecError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(ExecError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            // relaxed-ok: a per-budget op counter; contention-free in
            // practice (one stream drives one budget) and ordering
            // nothing.
            let prev = self.ops.fetch_add(1, Ordering::Relaxed);
            if prev & CHECK_MASK == 0 && Instant::now() >= deadline {
                return Err(ExecError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// A pull-based stream of solution mappings: the execution surface
/// every evaluator implements. `next()` yields `Ok(Some(mu))` per
/// solution, `Ok(None)` once exhausted, or a typed [`ExecError`] when
/// the budget fails — after which the stream must not be pulled again.
pub trait SolutionStream {
    /// Pulls the next solution, doing a bounded slice of work.
    fn next(&mut self) -> Result<Option<Mapping>, ExecError>;

    /// Drains up to `limit` solutions (all of them when `None`) — the
    /// LIMIT-pushdown collector the materialising wrappers are built
    /// on. Stops pulling the instant the k-th solution arrives.
    fn collect_limit(&mut self, limit: Option<usize>) -> Result<Vec<Mapping>, ExecError> {
        let mut out = Vec::new();
        if limit == Some(0) {
            return Ok(out);
        }
        while let Some(mu) = self.next()? {
            out.push(mu);
            if limit.is_some_and(|k| out.len() >= k) {
                break;
            }
        }
        Ok(out)
    }
}

impl SolutionStream for Box<dyn SolutionStream + '_> {
    fn next(&mut self) -> Result<Option<Mapping>, ExecError> {
        self.as_mut().next()
    }
}

/// An already-materialised run served as a stream (the adapter for
/// empty/singleton sources and cached results), checkpointing its
/// budget on every pull.
pub struct VecStream<'a> {
    items: Vec<Mapping>,
    pos: usize,
    budget: &'a QueryBudget,
}

impl<'a> VecStream<'a> {
    pub fn new(items: Vec<Mapping>, budget: &'a QueryBudget) -> VecStream<'a> {
        VecStream {
            items,
            pos: 0,
            budget,
        }
    }
}

impl SolutionStream for VecStream<'_> {
    fn next(&mut self) -> Result<Option<Mapping>, ExecError> {
        self.budget.check()?;
        if self.pos >= self.items.len() {
            return Ok(None);
        }
        let mu = std::mem::take(&mut self.items[self.pos]);
        self.pos += 1;
        Ok(Some(mu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mu(pairs: &[(&str, &str)]) -> Mapping {
        Mapping::from_strs(pairs.iter().copied())
    }

    #[test]
    fn unlimited_budget_never_fails() {
        let b = QueryBudget::unlimited();
        for _ in 0..10_000 {
            b.check().expect("unlimited budget");
        }
        assert_eq!(b.ops(), 0, "no deadline, no op accounting needed");
    }

    #[test]
    fn zero_deadline_fails_the_first_checkpoint() {
        let b = QueryBudget::with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_passes_checkpoints() {
        let b = QueryBudget::with_deadline(Duration::from_secs(3600));
        for _ in 0..1_000 {
            b.check().expect("one hour is plenty");
        }
        assert_eq!(b.ops(), 1_000);
    }

    #[test]
    fn cancellation_trips_every_holder() {
        let token = CancelToken::new();
        let b = QueryBudget::with_cancel(token.clone());
        b.check().expect("not yet cancelled");
        token.cancel();
        assert_eq!(b.check(), Err(ExecError::Cancelled));
        // Cancellation wins over a live deadline: it is checked first.
        let b2 = QueryBudget::with_deadline(Duration::from_secs(3600)).and_cancel(token);
        assert_eq!(b2.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn vec_stream_yields_in_order_and_honours_limits() {
        let budget = QueryBudget::unlimited();
        let items = vec![mu(&[("x", "a")]), mu(&[("x", "b")]), mu(&[("x", "c")])];
        let mut s = VecStream::new(items.clone(), &budget);
        assert_eq!(s.next(), Ok(Some(items[0].clone())));
        let rest = s.collect_limit(None).expect("unlimited");
        assert_eq!(rest, items[1..].to_vec());
        assert_eq!(s.next(), Ok(None), "exhausted streams stay exhausted");

        let mut s = VecStream::new(items.clone(), &budget);
        assert_eq!(s.collect_limit(Some(2)).expect("limit 2"), items[..2]);
        let mut s = VecStream::new(items, &budget);
        assert_eq!(s.collect_limit(Some(0)).expect("limit 0"), Vec::new());
    }

    #[test]
    fn vec_stream_respects_a_dead_budget() {
        let budget = QueryBudget::with_deadline(Duration::ZERO);
        let mut s = VecStream::new(vec![mu(&[("x", "a")])], &budget);
        assert_eq!(s.next(), Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn exec_error_displays_and_is_an_error() {
        let e: Box<dyn std::error::Error> = Box::new(ExecError::DeadlineExceeded);
        assert_eq!(e.to_string(), "query deadline exceeded");
        assert_eq!(ExecError::Cancelled.to_string(), "query cancelled");
    }
}
