//! The [`TripleIndex`] abstraction: the pattern-matching surface every
//! evaluation algorithm in the workspace consumes.
//!
//! The algorithms of the paper — reference semantics, the Lemma 1
//! machinery, the homomorphism solver's fail-first search, the pebble
//! game — never look at *how* a graph indexes its triples; they only ask
//! four questions: "which triples match this pattern?", "roughly how
//! many?" (for search ordering), "is this ground triple present?", and
//! "what is `dom(G)`?". This trait captures exactly that surface, so the
//! same algorithms run unchanged against [`RdfGraph`]'s hash indexes or
//! against `wdsparql-store`'s dictionary-encoded sorted permutations.
//!
//! The trait is dyn-compatible on purpose: call sites take
//! `&dyn TripleIndex`, and `&RdfGraph` coerces implicitly, so existing
//! callers did not have to change.

use crate::graph::{binding_of, RdfGraph};
use crate::mapping::Mapping;
use crate::term::{Iri, Variable};
use crate::trie::{MaterializedTrie, TrieCursor};
use crate::triple::{Triple, TriplePattern};

/// Read-only access to an indexed set of ground triples.
pub trait TripleIndex {
    /// Number of triples.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is the ground triple present?
    fn contains(&self, t: &Triple) -> bool;

    /// All triples, in implementation order.
    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_>;

    /// `dom(G)`: the IRIs appearing in any position, ascending by id.
    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_>;

    /// Does `i` appear in the graph (in any position)?
    fn dom_contains(&self, i: Iri) -> bool;

    /// Number of triples matching the pattern's *constant* positions — an
    /// upper bound on the matches of the pattern itself, used by the
    /// homomorphism solver's fail-first heuristic. Must be cheap
    /// (constant or logarithmic).
    fn candidate_count(&self, pat: &TriplePattern) -> usize;

    /// All triples matching `pat`, honouring repeated variables (e.g.
    /// `(?x, p, ?x)` only matches triples with `s = o`).
    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple>;

    /// The solutions of a single triple pattern: `⟦t⟧_G = {µ | dom(µ) =
    /// vars(t) and µ(t) ∈ G}` (Pérez et al., rule 1).
    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        self.match_pattern(pat)
            .into_iter()
            .filter_map(|t| binding_of(pat, &t))
            .collect()
    }

    /// The sorted, deduplicated values variable `v` can take in a match
    /// of `pat` — a semi-join / merge-join input. `None` when the
    /// backend has no cheap way to produce it (the default), or when `v`
    /// does not occur in `pat`; callers must treat `None` as "filter
    /// unavailable", never as "no values". Implementations must return
    /// the list ascending in [`Iri`]'s order so callers can probe it by
    /// binary search.
    fn candidate_values(&self, pat: &TriplePattern, v: Variable) -> Option<Vec<Iri>> {
        let _ = (pat, v);
        None
    }

    /// A seekable trie view over the matches of `pat`, with one level
    /// per variable of `vars` — which must list `vars(pat)` exactly,
    /// each once, in the caller's (join) order. The worst-case-optimal
    /// join opens one of these per pattern and intersects levels with
    /// galloping [`TrieCursor::seek`].
    ///
    /// Keys ascend in a total order that is consistent across every
    /// cursor this index produces, but is otherwise backend-private (the
    /// default uses [`Iri`] interner ids; `wdsparql-store` serves its
    /// dictionary ids straight off the sorted permutation arrays).
    /// [`TrieCursor::value`] decodes keys when bindings are emitted.
    fn trie_cursor<'a>(
        &'a self,
        pat: &TriplePattern,
        vars: &[Variable],
    ) -> Box<dyn TrieCursor + 'a> {
        Box::new(MaterializedTrie::from_solutions(&self.solutions(pat), vars))
    }
}

impl TripleIndex for RdfGraph {
    fn len(&self) -> usize {
        RdfGraph::len(self)
    }

    fn contains(&self, t: &Triple) -> bool {
        RdfGraph::contains(self, t)
    }

    fn triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.iter().copied())
    }

    fn dom(&self) -> Box<dyn Iterator<Item = Iri> + '_> {
        Box::new(RdfGraph::dom(self))
    }

    fn dom_contains(&self, i: Iri) -> bool {
        RdfGraph::dom_contains(self, i)
    }

    fn candidate_count(&self, pat: &TriplePattern) -> usize {
        RdfGraph::candidate_count(self, pat)
    }

    fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        RdfGraph::match_pattern(self, pat)
    }

    fn solutions(&self, pat: &TriplePattern) -> Vec<Mapping> {
        RdfGraph::solutions(self, pat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{iri, var};
    use crate::triple::tp;

    #[test]
    fn rdf_graph_implements_the_trait_consistently() {
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "p", "c"), ("b", "q", "a")]);
        let ix: &dyn TripleIndex = &g;
        assert_eq!(ix.len(), 3);
        assert!(!ix.is_empty());
        assert!(ix.contains(&Triple::from_strs("a", "p", "b")));
        assert_eq!(ix.triples().count(), 3);
        assert_eq!(ix.dom().count(), 5);
        assert!(ix.dom_contains(Iri::new("q")));
        let pat = tp(var("x"), iri("p"), var("y"));
        assert_eq!(ix.match_pattern(&pat).len(), 2);
        assert!(ix.candidate_count(&pat) >= 2);
        assert_eq!(ix.solutions(&pat).len(), 2);
    }
}
