//! Seekable pattern tries: the per-pattern input of a worst-case-optimal
//! (leapfrog) multiway join.
//!
//! A [`TrieCursor`] presents the matches of one triple pattern as a trie
//! with one level per variable, in a caller-chosen variable order: level
//! 0 enumerates the distinct values of the first variable, opening a key
//! descends into the sub-trie of bindings that extend it, and `seek`
//! gallops forward to the first key `≥ target` — the primitive a
//! leapfrog join intersects with instead of materialising pairwise
//! intermediates.
//!
//! Keys are opaque `u64`s. A backend may expose its *native* key space —
//! `wdsparql-store` serves dictionary ids straight off its sorted
//! permutation arrays — as long as every cursor produced by the same
//! [`TripleIndex`](crate::TripleIndex) value uses one consistent total
//! order; joins never compare keys across backends. [`TrieCursor::value`]
//! decodes the current key back to its [`Iri`] when a binding is
//! emitted. The default backend implementation is [`MaterializedTrie`]:
//! the pattern's solutions projected onto the variable order, sorted and
//! deduplicated, with interner ids as keys.

use crate::mapping::Mapping;
use crate::term::Iri;
use crate::term::Variable;

/// Cumulative operation counters a [`TrieCursor`] may expose for query
/// profiling: how many `seek`s it served and an estimate of the
/// galloping work they cost (the summed bit-lengths of the row
/// distances galloped over — each doubling probe plus each binary-search
/// halving inspects one position, so a jump of `d` rows costs
/// `O(log d)` ≈ `bit_len(d)` steps).
///
/// Backends that do not count return the default zeros; profilers must
/// treat the stats as best-effort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrieOpStats {
    /// `seek` calls served.
    pub seeks: u64,
    /// Estimated galloping steps (summed `bit_len` of seek distances).
    pub gallop_steps: u64,
}

impl TrieOpStats {
    /// Folds another counter sample into this one.
    pub fn absorb(&mut self, other: TrieOpStats) {
        self.seeks += other.seeks;
        self.gallop_steps += other.gallop_steps;
    }

    /// The galloping cost of moving `rows` positions: `bit_len(rows)`,
    /// 0 when the seek did not move.
    pub fn gallop_cost(rows: usize) -> u64 {
        (usize::BITS - rows.leading_zeros()) as u64
    }
}

/// A seekable, sorted cursor over the match trie of one triple pattern.
///
/// The cursor starts at a **virtual root** above level 0 — the leapfrog
/// driver re-enters a trie's first level every time an outer variable
/// advances, and descending from the root is what rewinds it. Levels
/// are opened and closed strictly like a stack; the contract (what
/// leapfrog drives, and what implementations may rely on):
///
/// * [`open`](TrieCursor::open) — descend one level: from the root into
///   level 0 (the full relation), or from a positioned key into its
///   sub-trie; either way the new level starts on its first key;
/// * [`key`](TrieCursor::key) — the current key at the current level,
///   `None` once the level is exhausted (and at the root);
/// * [`advance`](TrieCursor::advance) / [`seek`](TrieCursor::seek) —
///   move to the next distinct key / the first key `≥ target` (both may
///   exhaust the level; `seek` never moves backwards);
/// * [`up`](TrieCursor::up) — return to the parent level, positioned on
///   the key that was opened (callers `advance` past it to move on).
pub trait TrieCursor {
    /// Number of variable levels.
    fn depth(&self) -> usize;

    /// The current key at the current level; `None` when exhausted.
    fn key(&self) -> Option<u64>;

    /// The [`Iri`] the current key denotes. Panics when `key()` is
    /// `None`.
    fn value(&self) -> Iri;

    /// Moves to the next distinct key at this level.
    fn advance(&mut self);

    /// Gallops to the first key `≥ target` at this level.
    fn seek(&mut self, target: u64);

    /// Descends into the current key's sub-trie.
    fn open(&mut self);

    /// Returns to the parent level (positioned on the opened key).
    fn up(&mut self);

    /// Cumulative [`TrieOpStats`] since construction — a profiling
    /// hook; the default reports nothing.
    fn op_stats(&self) -> TrieOpStats {
        TrieOpStats::default()
    }
}

/// The count of leading elements of `run` satisfying `pred` (which must
/// be monotone: once false, false for the rest), by galloping —
/// exponential probing from the front, then binary search inside the
/// overshot window. `O(log i)` for an answer at position `i`, which is
/// what makes a leapfrog `seek` cheap when intersections are selective.
pub fn gallop<T>(run: &[T], pred: impl Fn(&T) -> bool) -> usize {
    if run.is_empty() || !pred(&run[0]) {
        return 0;
    }
    let mut step = 1usize;
    let mut lo = 0usize; // greatest index known to satisfy `pred`
    while lo + step < run.len() && pred(&run[lo + step]) {
        lo += step;
        step <<= 1;
    }
    let hi = run.len().min(lo + step);
    lo + 1 + run[lo + 1..hi].partition_point(|x| pred(x))
}

/// A [`TrieCursor`] over materialised rows: the pattern's distinct
/// bindings projected onto the variable order, sorted — the fallback
/// every [`TripleIndex`](crate::TripleIndex) backend can serve, and the
/// fallback `wdsparql-store` uses when no sorted permutation matches a
/// pattern's constant/variable layout.
///
/// Rows are fixed-width `[u64; 3]` with positions beyond
/// [`depth`](TrieCursor::depth) padded (padding is never compared). The
/// `decode` closure maps a key back to its [`Iri`].
pub struct MaterializedTrie<'a> {
    rows: Vec<[u64; 3]>,
    depth: usize,
    decode: Box<dyn Fn(u64) -> Iri + 'a>,
    /// Current half-open row range; meaningful only below the root.
    lo: usize,
    hi: usize,
    /// Saved parent ranges, one per open level (so the current level is
    /// `stack.len() - 1`; an empty stack is the virtual root — the
    /// bottom frame holds the root's unused placeholder range).
    stack: Vec<(usize, usize)>,
    stats: TrieOpStats,
}

impl<'a> MaterializedTrie<'a> {
    /// Builds a trie from raw projected rows (positions `depth..` are
    /// padding). Sorts and deduplicates.
    pub fn from_rows(
        mut rows: Vec<[u64; 3]>,
        depth: usize,
        decode: impl Fn(u64) -> Iri + 'a,
    ) -> MaterializedTrie<'a> {
        assert!(depth <= 3, "a triple pattern has at most three variables");
        rows.sort_unstable();
        rows.dedup();
        MaterializedTrie {
            rows,
            depth,
            decode: Box::new(decode),
            lo: 0,
            hi: 0,
            stack: Vec::new(),
            stats: TrieOpStats::default(),
        }
    }

    /// Builds the trie of a pattern's solution mappings projected onto
    /// `vars` (which must list `vars(pat)` exactly, in the desired
    /// order). Keys are [`Iri`] interner ids, so every cursor built this
    /// way — over any backend — shares one key order.
    pub fn from_solutions(sols: &[Mapping], vars: &[Variable]) -> MaterializedTrie<'static> {
        let rows = sols
            .iter()
            .map(|mu| {
                let mut row = [0u64; 3];
                for (i, &v) in vars.iter().enumerate() {
                    row[i] = u64::from(
                        mu.get(v)
                            .expect("solution mappings bind every pattern variable")
                            .id(),
                    );
                }
                row
            })
            .collect();
        MaterializedTrie::from_rows(rows, vars.len(), |k| {
            Iri::from_raw(u32::try_from(k).expect("interner ids fit u32"))
        })
    }

    /// Current level, `None` at the virtual root.
    fn level(&self) -> Option<usize> {
        self.stack.len().checked_sub(1)
    }
}

impl TrieCursor for MaterializedTrie<'_> {
    fn depth(&self) -> usize {
        self.depth
    }

    fn key(&self) -> Option<u64> {
        let level = self.level()?;
        (self.lo < self.hi).then(|| self.rows[self.lo][level])
    }

    fn value(&self) -> Iri {
        (self.decode)(self.key().expect("value() requires a current key"))
    }

    fn advance(&mut self) {
        let Some(level) = self.level() else { return };
        if let Some(k) = self.key() {
            self.lo += gallop(&self.rows[self.lo..self.hi], |r| r[level] <= k);
        }
    }

    fn seek(&mut self, target: u64) {
        let Some(level) = self.level() else { return };
        let moved = gallop(&self.rows[self.lo..self.hi], |r| r[level] < target);
        self.stats.seeks += 1;
        self.stats.gallop_steps += TrieOpStats::gallop_cost(moved);
        self.lo += moved;
    }

    fn open(&mut self) {
        match self.level() {
            // From the root: level 0 spans the whole relation.
            None => {
                self.stack.push((0, 0));
                self.lo = 0;
                self.hi = self.rows.len();
            }
            Some(level) => {
                let k = self.key().expect("open() requires a current key");
                let end = self.lo + gallop(&self.rows[self.lo..self.hi], |r| r[level] <= k);
                self.stack.push((self.lo, self.hi));
                self.hi = end;
            }
        }
    }

    fn up(&mut self) {
        let (lo, hi) = self.stack.pop().expect("up() without a matching open()");
        self.lo = lo;
        self.hi = hi;
    }

    fn op_stats(&self) -> TrieOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallop_agrees_with_partition_point() {
        let xs: Vec<u32> = (0..100).map(|i| i * 3).collect();
        for t in 0..320 {
            assert_eq!(
                gallop(&xs, |&x| x < t),
                xs.partition_point(|&x| x < t),
                "target {t}"
            );
        }
        assert_eq!(gallop(&[] as &[u32], |&x| x < 5), 0);
    }

    #[test]
    fn cursor_walks_a_two_level_trie() {
        // Pairs (x, y): x=1 → {10, 11}; x=5 → {20}.
        let rows = vec![[5, 20, 0], [1, 10, 0], [1, 11, 0], [1, 10, 0]];
        let mut t = MaterializedTrie::from_rows(rows, 2, |k| Iri::new(&format!("i{k}")));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.key(), None, "the cursor starts at the virtual root");
        t.open();
        assert_eq!(t.key(), Some(1));
        assert_eq!(t.value(), Iri::new("i1"));
        t.open();
        assert_eq!(t.key(), Some(10));
        t.advance();
        assert_eq!(t.key(), Some(11));
        t.advance();
        assert_eq!(t.key(), None);
        t.up();
        assert_eq!(t.key(), Some(1), "up() restores the opened key");
        t.advance();
        assert_eq!(t.key(), Some(5));
        t.open();
        assert_eq!(t.key(), Some(20));
        t.up();
        t.advance();
        assert_eq!(t.key(), None);
        // Re-entering from the root rewinds the whole level — what lets
        // the leapfrog driver restart a trie when an outer variable
        // advances.
        t.up();
        t.open();
        assert_eq!(t.key(), Some(1));
        t.up();
    }

    #[test]
    fn op_stats_count_seeks_and_their_gallop_cost() {
        let rows: Vec<[u64; 3]> = (0..64).map(|i| [i, 0, 0]).collect();
        let mut t = MaterializedTrie::from_rows(rows, 1, |k| Iri::new(&format!("i{k}")));
        assert_eq!(t.op_stats(), TrieOpStats::default());
        t.open();
        t.seek(32);
        t.seek(32); // in place: a seek, but zero gallop cost
        let stats = t.op_stats();
        assert_eq!(stats.seeks, 2);
        assert_eq!(stats.gallop_steps, TrieOpStats::gallop_cost(32));
        let mut folded = TrieOpStats::default();
        folded.absorb(stats);
        folded.absorb(stats);
        assert_eq!(folded.seeks, 4);
    }

    #[test]
    fn seek_gallops_forward_only() {
        let rows: Vec<[u64; 3]> = (0..50).map(|i| [i * 2, 0, 0]).collect();
        let mut t = MaterializedTrie::from_rows(rows, 1, |k| Iri::new(&format!("i{k}")));
        t.open();
        t.seek(31);
        assert_eq!(t.key(), Some(32));
        t.seek(32);
        assert_eq!(t.key(), Some(32), "seek to the current key stays put");
        t.seek(7);
        assert_eq!(t.key(), Some(32), "seek never moves backwards");
        t.seek(99);
        assert_eq!(t.key(), None);
    }
}
