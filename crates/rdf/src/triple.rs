//! Ground RDF triples and SPARQL triple patterns.

use crate::mapping::Mapping;
use crate::term::{Iri, Term, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A ground RDF triple `(s, p, o) ∈ I × I × I`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    pub s: Iri,
    pub p: Iri,
    pub o: Iri,
}

impl Triple {
    pub fn new(s: Iri, p: Iri, o: Iri) -> Triple {
        Triple { s, p, o }
    }

    /// Builds a triple from spellings, interning each position.
    pub fn from_strs(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Iri::new(s), Iri::new(p), Iri::new(o))
    }

    pub fn terms(self) -> [Iri; 3] {
        [self.s, self.p, self.o]
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A SPARQL triple pattern: a tuple in `(I ∪ V) × (I ∪ V) × (I ∪ V)`.
///
/// A ground pattern (no variables) is the same thing as an RDF triple; see
/// [`TriplePattern::as_triple`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TriplePattern {
    pub s: Term,
    pub p: Term,
    pub o: Term,
}

impl TriplePattern {
    pub fn new(s: impl Into<Term>, p: impl Into<Term>, o: impl Into<Term>) -> TriplePattern {
        TriplePattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    pub fn positions(self) -> [Term; 3] {
        [self.s, self.p, self.o]
    }

    /// The set of variables occurring in the pattern (`vars(t)` in the paper).
    pub fn vars(self) -> BTreeSet<Variable> {
        self.positions()
            .into_iter()
            .filter_map(Term::as_var)
            .collect()
    }

    /// Iterates the variables in position order, with repetitions.
    pub fn var_occurrences(self) -> impl Iterator<Item = Variable> {
        self.positions().into_iter().filter_map(Term::as_var)
    }

    pub fn is_ground(self) -> bool {
        self.positions().iter().all(|t| t.is_iri())
    }

    /// Interprets a ground pattern as an RDF triple.
    pub fn as_triple(self) -> Option<Triple> {
        match (self.s, self.p, self.o) {
            (Term::Iri(s), Term::Iri(p), Term::Iri(o)) => Some(Triple::new(s, p, o)),
            _ => None,
        }
    }

    /// `µ(t)`: the RDF triple obtained by replacing every variable through
    /// `µ`. Requires `vars(t) ⊆ dom(µ)`; returns `None` otherwise.
    pub fn apply(self, mu: &Mapping) -> Option<Triple> {
        let f = |t: Term| match t {
            Term::Iri(i) => Some(i),
            Term::Var(v) => mu.get(v),
        };
        Some(Triple::new(f(self.s)?, f(self.p)?, f(self.o)?))
    }

    /// Substitutes the variables bound by `µ`, leaving the rest in place.
    pub fn apply_partial(self, mu: &Mapping) -> TriplePattern {
        let f = |t: Term| match t {
            Term::Iri(i) => Term::Iri(i),
            Term::Var(v) => mu.get(v).map_or(Term::Var(v), Term::Iri),
        };
        TriplePattern::new(f(self.s), f(self.p), f(self.o))
    }

    /// Rewrites each position through an arbitrary term substitution
    /// (`h(t)` for a partial function `h : V → I ∪ V`; unbound variables are
    /// left unchanged).
    pub fn substitute(self, h: &dyn Fn(Variable) -> Option<Term>) -> TriplePattern {
        let f = |t: Term| match t {
            Term::Iri(i) => Term::Iri(i),
            Term::Var(v) => h(v).unwrap_or(Term::Var(v)),
        };
        TriplePattern::new(f(self.s), f(self.p), f(self.o))
    }
}

impl From<Triple> for TriplePattern {
    fn from(t: Triple) -> TriplePattern {
        TriplePattern::new(t.s, t.p, t.o)
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

impl fmt::Debug for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Shorthand for building a triple pattern out of [`Term`]-convertible parts.
///
/// ```
/// use wdsparql_rdf::{tp, term::{iri, var}};
/// let t = tp(var("x"), iri("p"), var("y"));
/// assert_eq!(t.vars().len(), 2);
/// ```
pub fn tp(s: impl Into<Term>, p: impl Into<Term>, o: impl Into<Term>) -> TriplePattern {
    TriplePattern::new(s, p, o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{iri, var};

    #[test]
    fn ground_pattern_roundtrip() {
        let t = Triple::from_strs("a", "p", "b");
        let pat = TriplePattern::from(t);
        assert!(pat.is_ground());
        assert_eq!(pat.as_triple(), Some(t));
        assert!(pat.vars().is_empty());
    }

    #[test]
    fn vars_deduplicates() {
        let t = tp(var("x"), iri("p"), var("x"));
        assert_eq!(t.vars().len(), 1);
        assert_eq!(t.var_occurrences().count(), 2);
    }

    #[test]
    fn apply_full_and_partial() {
        let t = tp(var("x"), iri("p"), var("y"));
        let mut mu = Mapping::new();
        mu.bind(Variable::new("x"), Iri::new("a"));
        assert_eq!(t.apply(&mu), None);
        let t2 = t.apply_partial(&mu);
        assert_eq!(t2, tp(iri("a"), iri("p"), var("y")));
        mu.bind(Variable::new("y"), Iri::new("b"));
        assert_eq!(t.apply(&mu), Some(Triple::from_strs("a", "p", "b")));
    }

    #[test]
    fn substitute_maps_vars_to_terms() {
        let t = tp(var("x"), iri("p"), var("y"));
        let h = |v: Variable| {
            if v == Variable::new("x") {
                Some(var("z"))
            } else {
                None
            }
        };
        assert_eq!(t.substitute(&h), tp(var("z"), iri("p"), var("y")));
    }

    #[test]
    fn display_is_paper_style() {
        let t = tp(var("x"), iri("p"), var("y"));
        assert_eq!(t.to_string(), "(?x, p, ?y)");
    }
}
