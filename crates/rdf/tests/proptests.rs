//! Property tests for the RDF substrate: mapping laws, graph indexing
//! consistency, and N-Triples round-trips.

use proptest::prelude::*;
use wdsparql_rdf::{
    binding_of, parse_ntriples, tp, write_ntriples, Iri, Mapping, RdfGraph, Term, Triple, Variable,
};

fn arb_mapping() -> impl Strategy<Value = Mapping> {
    proptest::collection::btree_map(0..6usize, 0..6usize, 0..5).prop_map(|m| {
        Mapping::from_pairs(m.into_iter().map(|(v, i)| {
            (
                Variable::new(&format!("mv{v}")),
                Iri::new(&format!("mi{i}")),
            )
        }))
    })
}

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..5usize, 0..3usize, 0..5usize), 0..14).prop_map(|ts| {
        RdfGraph::from_triples(ts.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("gn{s}"), &format!("gp{p}"), &format!("gn{o}"))
        }))
    })
}

/// IRI strings that are valid in our N-Triples subset (bracketed form
/// covers anything without '>' or newlines).
fn arb_iri_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 :/#._-]{1,12}".prop_filter("non-empty trimmed", |s| !s.trim().is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compatibility is symmetric; union is commutative on compatible
    /// mappings and has the empty mapping as identity.
    #[test]
    fn mapping_union_laws(a in arb_mapping(), b in arb_mapping()) {
        prop_assert_eq!(a.compatible(&b), b.compatible(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
        let empty = Mapping::new();
        prop_assert_eq!(a.union(&empty), Some(a.clone()));
        if let Some(u) = a.union(&b) {
            // The union restricted to each domain gives back the parts.
            for (v, i) in a.iter() {
                prop_assert_eq!(u.get(v), Some(i));
            }
            for (v, i) in b.iter() {
                prop_assert_eq!(u.get(v), Some(i));
            }
            prop_assert!(u.len() <= a.len() + b.len());
        } else {
            prop_assert!(!a.compatible(&b));
        }
    }

    /// Restriction is idempotent and domain-correct.
    #[test]
    fn restriction_laws(a in arb_mapping()) {
        let dom: Vec<Variable> = a.domain().collect();
        let half: Vec<Variable> = dom.iter().copied().take(dom.len() / 2).collect();
        let r = a.restrict(half.iter().copied());
        prop_assert_eq!(r.len(), half.len());
        prop_assert_eq!(r.restrict(half.iter().copied()), r.clone());
        for v in half {
            prop_assert_eq!(r.get(v), a.get(v));
        }
    }

    /// Every triple reported by match_pattern actually matches, and the
    /// full scan agrees with the indexed path.
    #[test]
    fn match_pattern_is_sound_and_complete(g in arb_graph(), s in 0..6usize, p in 0..4usize) {
        use wdsparql_rdf::{iri, var};
        // A pattern with a constant subject (maybe absent) and predicate.
        let pat = tp(
            if s < 5 { iri(&format!("gn{s}")) } else { var("ms") },
            if p < 3 { iri(&format!("gp{p}")) } else { var("mp") },
            var("mo"),
        );
        let indexed: std::collections::BTreeSet<Triple> =
            g.match_pattern(&pat).into_iter().collect();
        let scanned: std::collections::BTreeSet<Triple> = g
            .iter()
            .filter(|t| binding_of(&pat, t).is_some())
            .copied()
            .collect();
        prop_assert_eq!(indexed, scanned);
    }

    /// binding_of produces a mapping that reproduces the triple.
    #[test]
    fn binding_roundtrip(g in arb_graph()) {
        use wdsparql_rdf::var;
        let pat = tp(var("bs"), var("bp"), var("bo"));
        for t in g.iter() {
            let mu = binding_of(&pat, t).expect("open pattern matches everything");
            prop_assert_eq!(pat.apply(&mu), Some(*t));
        }
    }

    /// A pattern with a repeated variable only matches triples with equal
    /// positions.
    #[test]
    fn repeated_variable_semantics(g in arb_graph()) {
        use wdsparql_rdf::var;
        let pat = tp(var("rx"), var("rp"), var("rx"));
        for t in g.match_pattern(&pat) {
            prop_assert_eq!(t.s, t.o);
        }
    }

    /// write → parse is the identity on graphs, for arbitrary IRI
    /// spellings (spaces, hashes, slashes...).
    #[test]
    fn ntriples_roundtrip(names in proptest::collection::vec(arb_iri_string(), 3..9)) {
        let mut g = RdfGraph::new();
        for w in names.windows(3) {
            g.insert(Triple::from_strs(&w[0], &w[1], &w[2]));
        }
        let text = write_ntriples(&g);
        let parsed = parse_ntriples(&text).expect("writer output parses");
        prop_assert_eq!(parsed, g);
    }

    /// Term ordering is total and consistent with equality.
    #[test]
    fn term_ordering(a in 0..8usize, b in 0..8usize) {
        let term = |i: usize| -> Term {
            if i.is_multiple_of(2) {
                Term::Iri(Iri::new(&format!("ti{i}")))
            } else {
                Term::Var(Variable::new(&format!("tv{i}")))
            }
        };
        let (x, y) = (term(a), term(b));
        prop_assert_eq!(x == y, x.cmp(&y) == std::cmp::Ordering::Equal);
    }
}
