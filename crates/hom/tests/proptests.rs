//! Property tests for the homomorphism/core/treewidth toolkit.

use proptest::prelude::*;
use wdsparql_hom::{
    core_of, decomposition_from_order, find_hom, find_hom_into_graph, hom_equivalent, is_core,
    min_degree_order, min_fill_order, mmd_lower_bound, treewidth, verify_decomposition,
    width_of_order, GenTGraph, TGraph, UGraph,
};
use wdsparql_rdf::{iri, tp, var, Mapping, RdfGraph, Term, Triple, Variable};

/// Random small t-graphs over 5 variables, 2 predicates, 2 constants.
fn arb_tgraph() -> impl Strategy<Value = TGraph> {
    proptest::collection::vec((0..7usize, 0..2usize, 0..7usize), 1..8).prop_map(|triples| {
        let term = |i: usize| -> Term {
            if i < 5 {
                var(&format!("ht{i}"))
            } else {
                iri(&format!("hc{i}"))
            }
        };
        TGraph::from_patterns(
            triples
                .into_iter()
                .map(|(s, p, o)| tp(term(s), iri(["hp", "hq"][p]), term(o))),
        )
    })
}

/// Random distinguished subset of the t-graph's variables.
fn arb_gen_tgraph() -> impl Strategy<Value = GenTGraph> {
    (arb_tgraph(), proptest::collection::vec(any::<bool>(), 5)).prop_map(|(s, mask)| {
        let vars: Vec<Variable> = s
            .vars()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
            .map(|(_, v)| v)
            .collect();
        GenTGraph::new(s, vars)
    })
}

fn arb_graph() -> impl Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..4usize, 0..2usize, 0..4usize), 0..10).prop_map(|triples| {
        RdfGraph::from_triples(triples.into_iter().map(|(s, p, o)| {
            Triple::from_strs(&format!("hn{s}"), ["hp", "hq"][p], &format!("hn{o}"))
        }))
    })
}

fn arb_ugraph() -> impl Strategy<Value = UGraph> {
    (2usize..9, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, coins)| {
        let mut g = UGraph::new(n);
        let mut idx = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                if coins[idx % coins.len()] {
                    g.add_edge(u, v);
                }
                idx += 1;
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core is hom-equivalent to the input, is itself a core, is a
    /// subgraph, and coring is idempotent (Proposition 1).
    #[test]
    fn core_properties(g in arb_gen_tgraph()) {
        let c = core_of(&g);
        prop_assert!(c.s.is_subset(&g.s));
        prop_assert!(is_core(&c));
        prop_assert!(hom_equivalent(&c, &g));
        prop_assert_eq!(core_of(&c), c);
    }

    /// Hom found ⇒ the witness actually maps every triple.
    #[test]
    fn hom_witnesses_are_valid(a in arb_gen_tgraph(), b in arb_tgraph()) {
        if let Some(h) = find_hom(&a, &b) {
            let image = a.s.apply(&h);
            prop_assert!(image.is_subset(&b), "image {} ⊄ {}", image, b);
            for x in &a.x {
                prop_assert_eq!(h.get(x).copied(), Some(Term::Var(*x)));
            }
        }
    }

    /// Graph homomorphism witnesses check out, and identity always maps a
    /// graph-shaped t-graph into its own RDF graph.
    #[test]
    fn graph_hom_witnesses_are_valid(a in arb_tgraph(), g in arb_graph()) {
        let src = GenTGraph::new(a.clone(), []);
        if let Some(mu) = find_hom_into_graph(&src, &g, &Mapping::new()) {
            prop_assert!(a.maps_into_under(&mu, &g));
        }
    }

    /// → is transitive through the core: S → core(S) → S.
    #[test]
    fn core_retraction_composes(g in arb_gen_tgraph()) {
        let c = core_of(&g);
        prop_assert!(find_hom(&g, &c.s).is_some());
        prop_assert!(find_hom(&c, &g.s).is_some());
    }

    /// Treewidth: lower bound ≤ width ≤ any elimination-order width, and
    /// decompositions from greedy orders verify.
    #[test]
    fn treewidth_bounds_and_decompositions(g in arb_ugraph()) {
        let tw = treewidth(&g);
        prop_assert!(tw.exact);
        prop_assert!(mmd_lower_bound(&g) <= tw.width);
        for order in [min_fill_order(&g), min_degree_order(&g)] {
            let w = width_of_order(&g, &order);
            prop_assert!(w >= tw.width);
            let td = decomposition_from_order(&g, &order);
            let verified = verify_decomposition(&g, &td).expect("valid decomposition");
            prop_assert_eq!(verified, td.width());
            prop_assert!(verified >= tw.width);
        }
    }

    /// Treewidth is monotone under taking subgraphs (edge deletion).
    #[test]
    fn treewidth_monotone_under_edge_deletion(g in arb_ugraph()) {
        let tw = treewidth(&g).width;
        let edges = g.edges();
        if let Some(&(u, v)) = edges.first() {
            let mut smaller = UGraph::new(g.n());
            for &(a, b) in &edges {
                if (a, b) != (u, v) {
                    smaller.add_edge(a, b);
                }
            }
            prop_assert!(treewidth(&smaller).width <= tw);
        }
    }
}
