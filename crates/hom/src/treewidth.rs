//! Treewidth: exact computation, heuristic bounds and verified tree
//! decompositions.
//!
//! The exact algorithm is the Bodlaender et al. dynamic program over
//! elimination-ordering prefixes: for a set `S` of already-eliminated
//! vertices, `Q(S) = min_{v ∈ S} max(Q(S \ {v}), d(v, S \ {v}))` where
//! `d(v, S)` counts the vertices outside `S ∪ {v}` that are adjacent to `v`
//! or reachable from it through `S`. This runs in `O(2^n · n · (n + m))`
//! per connected component and is applied per component (treewidth is the
//! maximum over components), so graphs comfortably beyond 20 vertices are
//! exact as long as each component is small.
//!
//! Upper bounds come from min-fill / min-degree elimination orderings;
//! lower bounds from the maximum-minimum-degree (MMD) heuristic.

use crate::ugraph::UGraph;
use std::collections::BTreeSet;

/// Largest component size for which the exact subset DP is attempted.
pub const EXACT_LIMIT: usize = 22;

/// The result of a treewidth computation, tracking exactness honestly: when
/// a component exceeds [`EXACT_LIMIT`] and the heuristic bounds do not meet,
/// `exact` is `false` and `width` is the best upper bound found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwResult {
    pub width: usize,
    pub exact: bool,
}

/// Treewidth of `g` (maximum over connected components; 0 for edgeless).
pub fn treewidth(g: &UGraph) -> TwResult {
    let mut width = 0usize;
    let mut exact = true;
    for comp in g.components() {
        if comp.len() == 1 {
            continue;
        }
        let (sub, _) = g.induced(&comp);
        let r = treewidth_connected(&sub);
        width = width.max(r.width);
        exact &= r.exact;
    }
    TwResult { width, exact }
}

fn treewidth_connected(g: &UGraph) -> TwResult {
    let lb = mmd_lower_bound(g);
    let ub_order = min_fill_order(g);
    let ub = width_of_order(g, &ub_order).min({
        let d_order = min_degree_order(g);
        width_of_order(g, &d_order)
    });
    if lb == ub {
        return TwResult {
            width: ub,
            exact: true,
        };
    }
    if g.n() <= EXACT_LIMIT {
        TwResult {
            width: exact_dp(g),
            exact: true,
        }
    } else {
        TwResult {
            width: ub,
            exact: false,
        }
    }
}

/// Exact treewidth if every component is within [`EXACT_LIMIT`].
pub fn treewidth_exact(g: &UGraph) -> Option<usize> {
    let r = treewidth(g);
    r.exact.then_some(r.width)
}

/// `d(v, s)`: vertices outside `s ∪ {v}` adjacent to `v` or reachable from
/// `v` through vertices of `s`.
fn elimination_degree(adj: &[u32], v: usize, s: u32) -> u32 {
    let mut seen = 1u32 << v;
    let mut frontier = 1u32 << v;
    let mut outside = 0u32;
    while frontier != 0 {
        let mut reach = 0u32;
        let mut f = frontier;
        while f != 0 {
            let u = f.trailing_zeros() as usize;
            f &= f - 1;
            reach |= adj[u];
        }
        reach &= !seen;
        seen |= reach;
        outside |= reach & !s;
        frontier = reach & s; // only expand through eliminated vertices
    }
    (outside & !(1u32 << v)).count_ones()
}

fn exact_dp(g: &UGraph) -> usize {
    let n = g.n();
    assert!(
        n <= EXACT_LIMIT,
        "exact DP capped at {EXACT_LIMIT} vertices"
    );
    let adj: Vec<u32> = (0..n)
        .map(|u| g.neighbors(u).iter().fold(0u32, |m, v| m | (1 << v)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    // q[s] = best achievable max elimination degree over orderings of s.
    let mut q = vec![u8::MAX; (full as usize) + 1];
    q[0] = 0;
    for s in 1..=full {
        let mut best = u8::MAX;
        let mut iter = s;
        while iter != 0 {
            let v = iter.trailing_zeros() as usize;
            iter &= iter - 1;
            let prev = s & !(1u32 << v);
            let sub = q[prev as usize];
            if sub >= best {
                continue;
            }
            let d = elimination_degree(&adj, v, prev) as u8;
            let cost = sub.max(d);
            if cost < best {
                best = cost;
            }
        }
        q[s as usize] = best;
    }
    q[full as usize] as usize
}

/// The width of the elimination ordering `order` (max degree at elimination
/// time in the fill-in graph) — an upper bound on treewidth.
pub fn width_of_order(g: &UGraph, order: &[usize]) -> usize {
    let mut adj: Vec<BTreeSet<usize>> = (0..g.n())
        .map(|u| g.neighbors(u).iter().collect())
        .collect();
    let mut alive = vec![true; g.n()];
    let mut width = 0;
    for &v in order {
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        width = width.max(nbrs.len());
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        alive[v] = false;
    }
    width
}

/// Min-fill elimination ordering: repeatedly eliminate the vertex whose
/// elimination adds the fewest fill edges.
pub fn min_fill_order(g: &UGraph) -> Vec<usize> {
    greedy_order(g, |adj, alive, v| {
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        let mut fill = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if !adj[a].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

/// Min-degree elimination ordering.
pub fn min_degree_order(g: &UGraph) -> Vec<usize> {
    greedy_order(g, |adj, alive, v| {
        adj[v].iter().filter(|&&u| alive[u]).count()
    })
}

fn greedy_order(
    g: &UGraph,
    score: impl Fn(&[BTreeSet<usize>], &[bool], usize) -> usize,
) -> Vec<usize> {
    let n = g.n();
    let mut adj: Vec<BTreeSet<usize>> = (0..n).map(|u| g.neighbors(u).iter().collect()).collect();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (score(&adj, &alive, v), v))
            .expect("some vertex is alive");
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        alive[v] = false;
        order.push(v);
    }
    order
}

/// Maximum-minimum-degree lower bound: repeatedly delete a minimum-degree
/// vertex; the largest minimum degree seen is ≤ treewidth.
pub fn mmd_lower_bound(g: &UGraph) -> usize {
    let n = g.n();
    let adj: Vec<BTreeSet<usize>> = (0..n).map(|u| g.neighbors(u).iter().collect()).collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut best = 0;
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| adj[v].iter().filter(|&&u| alive[u]).count())
            .unwrap();
        let deg = adj[v].iter().filter(|&&u| alive[u]).count();
        best = best.max(deg);
        alive[v] = false;
        remaining -= 1;
    }
    best
}

/// A tree decomposition: bags plus tree edges between bag indices.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    pub bags: Vec<BTreeSet<usize>>,
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }
}

/// Builds a tree decomposition from an elimination ordering: bag of `v` is
/// `{v} ∪ (alive neighbours in the fill graph)`; its parent is the bag of
/// the earliest-eliminated vertex among those neighbours.
pub fn decomposition_from_order(g: &UGraph, order: &[usize]) -> TreeDecomposition {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut adj: Vec<BTreeSet<usize>> = (0..n).map(|u| g.neighbors(u).iter().collect()).collect();
    let mut alive = vec![true; n];
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    let mut bags: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
    let mut bag_of = vec![usize::MAX; n];
    let mut edges = Vec::new();
    for (i, &v) in order.iter().enumerate() {
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        let mut bag: BTreeSet<usize> = nbrs.iter().copied().collect();
        bag.insert(v);
        bag_of[v] = i;
        bags.push(bag);
        for (a_i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[a_i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        alive[v] = false;
        if let Some(&next) = nbrs.iter().min_by_key(|&&u| position[u]) {
            edges.push((i, usize::MAX - next)); // placeholder, fixed below
        }
    }
    // Second pass: resolve parent bag indices (bag_of is complete now).
    for e in &mut edges {
        let next_vertex = usize::MAX - e.1;
        e.1 = bag_of[next_vertex];
    }
    TreeDecomposition { bags, edges }
}

/// Verifies the three tree-decomposition conditions and returns the width.
pub fn verify_decomposition(g: &UGraph, td: &TreeDecomposition) -> Result<usize, String> {
    let b = td.bags.len();
    for &(x, y) in &td.edges {
        if x >= b || y >= b {
            return Err(format!("edge ({x},{y}) out of range"));
        }
    }
    // The edge set must form a forest that is a tree per covered component;
    // we only require acyclicity + connectivity of occurrence sets below,
    // which is the standard formulation.
    // 1. Every vertex occurs in some bag, and its occurrence set is
    //    connected in the decomposition forest.
    let mut tadj: Vec<Vec<usize>> = vec![Vec::new(); b];
    for &(x, y) in &td.edges {
        tadj[x].push(y);
        tadj[y].push(x);
    }
    for v in 0..g.n() {
        let holders: Vec<usize> = (0..b).filter(|&i| td.bags[i].contains(&v)).collect();
        if holders.is_empty() {
            return Err(format!("vertex {v} is in no bag"));
        }
        // BFS within holder bags.
        let mut seen = vec![false; b];
        let mut stack = vec![holders[0]];
        seen[holders[0]] = true;
        while let Some(i) = stack.pop() {
            for &j in &tadj[i] {
                if !seen[j] && td.bags[j].contains(&v) {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        if holders.iter().any(|&i| !seen[i]) {
            return Err(format!("occurrences of vertex {v} are not connected"));
        }
    }
    // 2. Every edge is covered by some bag.
    for (u, v) in g.edges() {
        if !td
            .bags
            .iter()
            .any(|bag| bag.contains(&u) && bag.contains(&v))
        {
            return Err(format!("edge ({u},{v}) not covered"));
        }
    }
    Ok(td.width())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_treewidths() {
        assert_eq!(treewidth(&UGraph::new(0)).width, 0);
        assert_eq!(treewidth(&UGraph::new(5)).width, 0); // edgeless
        assert_eq!(treewidth(&UGraph::path(6)).width, 1);
        assert_eq!(treewidth(&UGraph::cycle(6)).width, 2);
        for k in 2..=7 {
            assert_eq!(treewidth(&UGraph::complete(k)).width, k - 1, "K_{k}");
        }
    }

    #[test]
    fn grid_treewidth_is_min_dimension() {
        assert_eq!(treewidth(&UGraph::grid(2, 2)).width, 2);
        assert_eq!(treewidth(&UGraph::grid(3, 3)).width, 3);
        assert_eq!(treewidth(&UGraph::grid(2, 5)).width, 2);
        assert_eq!(treewidth(&UGraph::grid(4, 4)).width, 4);
    }

    #[test]
    fn treewidth_of_disconnected_graph_is_max_over_components() {
        let mut g = UGraph::new(8);
        // K4 on {0..3}, path on {4..7}
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(6, 7);
        let r = treewidth(&g);
        assert_eq!(r.width, 3);
        assert!(r.exact);
    }

    #[test]
    fn components_allow_large_total_graphs() {
        // 3 disjoint K5s: 15 vertices total but components of size 5.
        let mut g = UGraph::new(15);
        for c in 0..3 {
            for u in 0..5 {
                for v in u + 1..5 {
                    g.add_edge(c * 5 + u, c * 5 + v);
                }
            }
        }
        assert_eq!(treewidth_exact(&g), Some(4));
    }

    #[test]
    fn heuristic_orders_are_valid_upper_bounds() {
        let g = UGraph::grid(3, 3);
        let mf = width_of_order(&g, &min_fill_order(&g));
        let md = width_of_order(&g, &min_degree_order(&g));
        assert!(mf >= 3 && md >= 3);
        assert!(mmd_lower_bound(&g) <= 3);
    }

    #[test]
    fn decomposition_from_order_verifies() {
        for g in [
            UGraph::grid(3, 3),
            UGraph::complete(5),
            UGraph::cycle(7),
            UGraph::path(9),
        ] {
            let order = min_fill_order(&g);
            let td = decomposition_from_order(&g, &order);
            let w = verify_decomposition(&g, &td).expect("valid decomposition");
            assert!(w >= treewidth(&g).width);
        }
    }

    #[test]
    fn verify_rejects_bad_decompositions() {
        let g = UGraph::complete(3);
        // Missing edge coverage.
        let td = TreeDecomposition {
            bags: vec![[0, 1].into_iter().collect(), [2].into_iter().collect()],
            edges: vec![(0, 1)],
        };
        assert!(verify_decomposition(&g, &td).is_err());
        // Disconnected occurrences of vertex 0.
        let td2 = TreeDecomposition {
            bags: vec![
                [0, 1, 2].into_iter().collect(),
                [1].into_iter().collect(),
                [0].into_iter().collect(),
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(verify_decomposition(&g, &td2).is_err());
    }

    #[test]
    fn exact_dp_matches_bounds_on_random_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut coin = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 100 < 30
        };
        for n in [6usize, 8, 10] {
            let g = UGraph::random(n, &mut coin);
            let r = treewidth(&g);
            assert!(r.exact);
            assert!(mmd_lower_bound(&g) <= r.width);
            assert!(width_of_order(&g, &min_fill_order(&g)) >= r.width);
            // A verified decomposition of width = treewidth must exist via
            // brute check: min-fill often achieves it on small graphs, but
            // we only assert soundness of the bound here.
            let td = decomposition_from_order(&g, &min_fill_order(&g));
            let w = verify_decomposition(&g, &td).unwrap();
            assert!(w >= r.width);
        }
    }
}
