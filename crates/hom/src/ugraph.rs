//! Small undirected graphs with bitset adjacency, used for Gaifman graphs,
//! treewidth computations and the hardness constructions (grids, cliques,
//! minors).

use std::fmt;

/// A growable bitset over `usize` indices.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new() -> BitSet {
        BitSet::default()
    }

    pub fn with_capacity(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn ensure(&mut self, bit: usize) {
        let need = bit / 64 + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    pub fn insert(&mut self, bit: usize) -> bool {
        self.ensure(bit);
        let w = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let was = *w & mask != 0;
        *w |= mask;
        !was
    }

    pub fn remove(&mut self, bit: usize) {
        if bit / 64 < self.words.len() {
            self.words[bit / 64] &= !(1u64 << (bit % 64));
        }
    }

    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn union_with(&mut self, other: &BitSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    pub fn difference_with(&mut self, other: &BitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> BitSet {
        let mut s = BitSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

/// An undirected simple graph on vertices `0..n`.
#[derive(Clone, PartialEq, Eq)]
pub struct UGraph {
    n: usize,
    adj: Vec<BitSet>,
}

impl UGraph {
    pub fn new(n: usize) -> UGraph {
        UGraph {
            n,
            adj: vec![BitSet::new(); n],
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v {
            return; // simple graph: ignore self-loops
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
    }

    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].contains(v)
    }

    pub fn neighbors(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BitSet::len).sum::<usize>() / 2
    }

    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in self.adj[u].iter() {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Connected components as vertex lists.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for v in self.adj[u].iter() {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    pub fn is_connected(&self) -> bool {
        self.n <= 1 || self.components().len() == 1
    }

    /// The subgraph induced by `verts`; returns the graph and the map from
    /// new indices to original vertices.
    pub fn induced(&self, verts: &[usize]) -> (UGraph, Vec<usize>) {
        let mut index = vec![usize::MAX; self.n];
        for (i, &v) in verts.iter().enumerate() {
            index[v] = i;
        }
        let mut g = UGraph::new(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for w in self.adj[v].iter() {
                if index[w] != usize::MAX && index[w] > i {
                    g.add_edge(i, index[w]);
                }
            }
        }
        (g, verts.to_vec())
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The path with `n` vertices.
    pub fn path(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for u in 1..n {
            g.add_edge(u - 1, u);
        }
        g
    }

    /// The cycle with `n ≥ 3` vertices.
    pub fn cycle(n: usize) -> UGraph {
        assert!(n >= 3, "a cycle needs at least 3 vertices");
        let mut g = UGraph::path(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// The `rows × cols` grid: vertex `(i, j)` is index `i * cols + j`, with
    /// edges between positions at Manhattan distance 1 (§4.2/appendix).
    pub fn grid(rows: usize, cols: usize) -> UGraph {
        let mut g = UGraph::new(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let u = i * cols + j;
                if j + 1 < cols {
                    g.add_edge(u, u + 1);
                }
                if i + 1 < rows {
                    g.add_edge(u, u + cols);
                }
            }
        }
        g
    }

    /// Erdős–Rényi-style random graph (used by tests and workloads; the
    /// caller supplies its own RNG as a closure returning `true` with the
    /// desired edge probability).
    pub fn random(n: usize, mut coin: impl FnMut() -> bool) -> UGraph {
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if coin() {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

impl fmt::Debug for UGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UGraph(n={}, edges={:?})", self.n, self.edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basic_ops() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3) && s.contains(100) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 100]);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bitset_set_ops() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = UGraph::new(2);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn complete_graph_shape() {
        let g = UGraph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_connected());
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn grid_shape() {
        let g = UGraph::grid(3, 4);
        assert_eq!(g.n(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
        assert!(!g.has_edge(3, 4)); // row wrap is not an edge
    }

    #[test]
    fn components_and_induced() {
        let mut g = UGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        let (sub, map) = g.induced(&[2, 3, 4]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(map, vec![2, 3, 4]);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(UGraph::path(4).edge_count(), 3);
        assert_eq!(UGraph::cycle(4).edge_count(), 4);
        assert!(UGraph::path(1).is_connected());
        assert!(UGraph::new(0).is_connected());
    }
}
