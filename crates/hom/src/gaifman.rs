//! Gaifman graphs and the paper's treewidth measures `tw(S, X)` and
//! `ctw(S, X)` (§3, "Treewidth").
//!
//! The Gaifman graph `G(S, X)` has vertex set `vars(S) \ X` and an edge
//! between two distinct variables that co-occur in a triple pattern.
//! `tw(S, X) := tw(G(S, X))`, with the convention `tw(S, X) := 1` when the
//! Gaifman graph has no vertices or no edges; `ctw(S, X)` is `tw` of the
//! core.

use crate::core::core_of;
use crate::tgraph::GenTGraph;
use crate::treewidth::{treewidth, TwResult};
use crate::ugraph::UGraph;
use std::collections::BTreeMap;
use wdsparql_rdf::Variable;

/// Builds `G(S, X)`; returns the graph and the vertex-index → variable map.
pub fn gaifman(g: &GenTGraph) -> (UGraph, Vec<Variable>) {
    let vars: Vec<Variable> = g.existential_vars().into_iter().collect();
    let index: BTreeMap<Variable, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut ug = UGraph::new(vars.len());
    for t in g.s.iter() {
        let occ: Vec<usize> = t
            .var_occurrences()
            .filter_map(|v| index.get(&v).copied())
            .collect();
        for (i, &a) in occ.iter().enumerate() {
            for &b in &occ[i + 1..] {
                if a != b {
                    ug.add_edge(a, b);
                }
            }
        }
    }
    (ug, vars)
}

/// `tw(S, X)` with the paper's `:= 1` convention for trivial Gaifman graphs.
pub fn tw_gen(g: &GenTGraph) -> TwResult {
    let (ug, _) = gaifman(g);
    if ug.n() == 0 || ug.edge_count() == 0 {
        return TwResult {
            width: 1,
            exact: true,
        };
    }
    treewidth(&ug)
}

/// `ctw(S, X) := tw(core(S, X))`.
pub fn ctw(g: &GenTGraph) -> TwResult {
    tw_gen(&core_of(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgraph::TGraph;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Variable};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn kk_pattern(k: usize) -> Vec<wdsparql_rdf::TriplePattern> {
        let mut pats = Vec::new();
        for i in 1..=k {
            for j in (i + 1)..=k {
                pats.push(tp(var(&format!("o{i}")), iri("r"), var(&format!("o{j}"))));
            }
        }
        pats
    }

    #[test]
    fn gaifman_excludes_x_and_constants() {
        let s = TGraph::from_patterns([
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), iri("c")),
        ]);
        let g = GenTGraph::new(s, [v("x")]);
        let (ug, vars) = gaifman(&g);
        assert_eq!(vars, vec![v("y")]);
        assert_eq!(ug.n(), 1);
        assert_eq!(ug.edge_count(), 0);
    }

    #[test]
    fn trivial_gaifman_graphs_have_tw_one() {
        // No existential vars at all.
        let s = TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]);
        let g = GenTGraph::new(s, [v("x"), v("y")]);
        assert_eq!(tw_gen(&g).width, 1);
        // Existential vars but no Gaifman edges.
        let s2 = TGraph::from_patterns([
            tp(var("x"), iri("p"), var("u")),
            tp(var("x"), iri("p"), var("w")),
        ]);
        let g2 = GenTGraph::new(s2, [v("x")]);
        assert_eq!(tw_gen(&g2).width, 1);
    }

    #[test]
    fn clique_pattern_tw_is_k_minus_one() {
        for k in 2..=5 {
            let g = GenTGraph::new(TGraph::from_patterns(kk_pattern(k)), []);
            assert_eq!(tw_gen(&g).width, (k - 1).max(1), "K_{k}");
        }
    }

    #[test]
    fn example3_widths() {
        // Figure 1, k = 4: ctw(S, X) = k−1 = 3 (it is a core), while
        // ctw(S', X) = 1 and tw(S', X) = k−1.
        let k = 4;
        let x = [v("x"), v("y"), v("z")];
        let mut s_pats = vec![
            tp(var("z"), iri("q"), var("x")),
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
        ];
        s_pats.extend(kk_pattern(k));
        let s = GenTGraph::new(TGraph::from_patterns(s_pats), x);
        assert_eq!(ctw(&s).width, k - 1);

        let mut sp_pats = vec![
            tp(var("z"), iri("q"), var("x")),
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
            tp(var("y"), iri("r"), var("o")),
            tp(var("o"), iri("r"), var("o")),
        ];
        sp_pats.extend(kk_pattern(k));
        let sp = GenTGraph::new(TGraph::from_patterns(sp_pats), x);
        assert_eq!(tw_gen(&sp).width, k - 1);
        assert_eq!(ctw(&sp).width, 1);
    }

    #[test]
    fn repeated_variable_in_one_triple_adds_no_self_edge() {
        let s = TGraph::from_patterns([tp(var("o"), iri("r"), var("o"))]);
        let g = GenTGraph::new(s, []);
        let (ug, _) = gaifman(&g);
        assert_eq!(ug.n(), 1);
        assert_eq!(ug.edge_count(), 0);
        assert_eq!(tw_gen(&g).width, 1);
    }
}
